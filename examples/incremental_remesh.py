#!/usr/bin/env python
"""Incremental partitioning through an adaptive-refinement loop
(paper Sections 3.5 and 4.2, Tables 3 and 6).

Simulates the workload the paper motivates: a solver adaptively refines
its mesh (new nodes appear in a local region), and after every
refinement the partitioner must rebalance.  The incremental GA seeds
each re-partitioning from the previous solution and is compared against
(a) RSB re-run from scratch and (b) the naive assign-to-majority rule
the paper dismisses in its conclusions.

Run:  python examples/incremental_remesh.py
"""

from repro.baselines import rsb_partition
from repro.ga import Fitness1
from repro.graphs import mesh_graph
from repro.incremental import (
    IncrementalGAPartitioner,
    insert_local_nodes,
    naive_incremental_partition,
)


def main() -> None:
    graph = mesh_graph(120, seed=7)
    partitioner = IncrementalGAPartitioner(graph, n_parts=4, seed=0)
    current = partitioner.partition_initial()
    print(f"initial: {graph.n_nodes} nodes, cut={current.cut_size:g}\n")
    print(
        f"{'step':>4} {'nodes':>6} | {'incr-GA':>8} {'bal':>5} | "
        f"{'RSB':>6} {'bal':>5} | {'naive':>6} {'bal':>5}"
    )

    for step in range(1, 5):
        update = insert_local_nodes(graph, 25, seed=100 + step)
        previous_assignment = partitioner.partition.assignment
        new_graph = update.graph

        ga = partitioner.update(new_graph)
        rsb = rsb_partition(new_graph, 4)
        naive = naive_incremental_partition(new_graph, previous_assignment, 4)

        print(
            f"{step:>4} {new_graph.n_nodes:>6} | "
            f"{ga.cut_size:>8.0f} {ga.balance_ratio:>5.2f} | "
            f"{rsb.cut_size:>6.0f} {rsb.balance_ratio:>5.2f} | "
            f"{naive.cut_size:>6.0f} {naive.balance_ratio:>5.2f}"
        )
        graph = new_graph

    fit = Fitness1(graph, 4)
    print(
        "\nfinal fitness (higher is better): "
        f"incr-GA={fit.evaluate(partitioner.partition.assignment):.0f} "
        f"RSB={fit.evaluate(rsb.assignment):.0f} "
        f"naive={fit.evaluate(naive.assignment):.0f}"
    )
    print(
        "note how the naive rule's balance degrades every step — the "
        "paper's reason a GA is needed for incremental repartitioning."
    )


if __name__ == "__main__":
    main()
