#!/usr/bin/env python
"""The distributed-population GA (paper Section 3.4).

Runs the paper's exact experimental configuration — 320 individuals in
16 subpopulations on a 4-dimensional hypercube, crossover restricted to
island members, best individuals migrating along hypercube links —
first in-process (deterministic), then on a multiprocessing pool, which
is this reproduction's stand-in for the paper's CM-5/Paragon targets.

Run:  python examples/islands_dpga.py
"""

import time

from repro.experiments import workload
from repro.ga import (
    DKNUX,
    DPGA,
    DPGAConfig,
    Fitness1,
    GAConfig,
    ParallelDPGA,
    hypercube_topology,
)


def main() -> None:
    graph = workload(167)
    n_parts = 4
    fitness = Fitness1(graph, n_parts)
    dpga_cfg = DPGAConfig(
        total_population=320,
        n_islands=16,
        migration_interval=5,
        migration_size=1,
        max_generations=40,
    )
    print(f"graph: {graph}, k={n_parts}")
    print(
        f"DPGA: {dpga_cfg.n_islands} islands x "
        f"{dpga_cfg.island_population} individuals, 4-D hypercube, "
        f"migration every {dpga_cfg.migration_interval} generations\n"
    )

    t0 = time.perf_counter()
    dpga = DPGA(
        graph,
        fitness,
        crossover_factory=lambda: DKNUX(graph, n_parts),
        ga_config=GAConfig(population_size=20),
        dpga_config=dpga_cfg,
        topology=hypercube_topology(4),
        seed=0,
    )
    res = dpga.run()
    print(
        f"sequential islands: cut={res.best.cut_size:g} "
        f"({time.perf_counter() - t0:.1f}s, "
        f"{res.history.n_evaluations} evaluations)"
    )

    t0 = time.perf_counter()
    par = ParallelDPGA(
        graph,
        "fitness1",
        n_parts,
        crossover_kind="dknux",
        ga_config=GAConfig(population_size=20),
        dpga_config=dpga_cfg,
        topology=hypercube_topology(4),
        n_workers=4,
        seed=0,
    )
    pres = par.run()
    print(
        f"4-worker pool     : cut={pres.best.cut_size:g} "
        f"({time.perf_counter() - t0:.1f}s)"
    )
    print(
        "\n(the pool pays process start-up + IPC at this problem size; "
        "the paper's near-linear speedups appear once per-island work "
        "dominates, i.e. larger graphs or bigger islands)"
    )


if __name__ == "__main__":
    main()
