#!/usr/bin/env python
"""Quickstart: partition an unstructured mesh with the DKNUX GA.

Builds a 200-node Delaunay mesh (the kind of computational graph the
paper targets), partitions it into 4 parts with the one-call API, and
compares against recursive spectral bisection.

Run:  python examples/quickstart.py
"""

from repro import partition_graph
from repro.baselines import rsb_partition
from repro.graphs import mesh_graph


def main() -> None:
    graph = mesh_graph(200, seed=42)
    print(f"graph: {graph}")

    ga = partition_graph(graph, n_parts=4, seed=0)
    print(
        f"DKNUX GA : cut={ga.cut_size:g} worst_part_cut={ga.max_part_cut:g} "
        f"sizes={ga.part_sizes.tolist()} balance={ga.balance_ratio:.3f}"
    )

    rsb = rsb_partition(graph, 4)
    print(
        f"RSB      : cut={rsb.cut_size:g} worst_part_cut={rsb.max_part_cut:g} "
        f"sizes={rsb.part_sizes.tolist()} balance={rsb.balance_ratio:.3f}"
    )

    winner = "DKNUX" if ga.cut_size <= rsb.cut_size else "RSB"
    print(f"lower total cut: {winner}")


if __name__ == "__main__":
    main()
