#!/usr/bin/env python
"""Scaling the GA with graph contraction (paper Section 5).

The paper concludes that "a prior graph contraction step would allow
these techniques to be applied to graphs much larger than those explored
in this paper".  This script demonstrates that pipeline on a
2,000-node mesh: heavy-edge-matching coarsening down to GA scale, the
DKNUX GA on the coarsest graph, then hill-climbing refinement while
interpolating back up — compared against the flat GA and RSB.

Run:  python examples/multilevel_large_graph.py
"""

import time

from repro.baselines import rsb_partition
from repro.ga import DKNUX, Fitness1, GAConfig, GAEngine
from repro.graphs import mesh_graph
from repro.multilevel import coarsen_to, multilevel_ga_partition


def main() -> None:
    graph = mesh_graph(2000, seed=99, candidates=4)
    n_parts = 8
    print(f"graph: {graph}, k={n_parts}\n")

    levels = coarsen_to(graph, 200, seed=0)
    chain = " -> ".join(
        str(lv.fine.n_nodes) for lv in levels
    ) + f" -> {levels[-1].coarse.n_nodes}"
    print(f"coarsening hierarchy: {chain}\n")

    cfg = GAConfig(
        population_size=48,
        max_generations=60,
        patience=15,
        hill_climb="all",
        hill_climb_passes=2,
    )

    t0 = time.perf_counter()
    ml = multilevel_ga_partition(
        graph, n_parts, coarse_nodes=200, config=cfg, seed=1
    )
    t_ml = time.perf_counter() - t0

    t0 = time.perf_counter()
    fitness = Fitness1(graph, n_parts)
    flat = GAEngine(
        graph,
        fitness,
        DKNUX(graph, n_parts),
        cfg.with_updates(max_generations=20, patience=8),
        seed=1,
    ).run()
    t_flat = time.perf_counter() - t0

    t0 = time.perf_counter()
    rsb = rsb_partition(graph, n_parts)
    t_rsb = time.perf_counter() - t0

    print(f"{'method':>12} {'cut':>7} {'worst':>7} {'balance':>8} {'time':>7}")
    print(
        f"{'multilevel':>12} {ml.cut_size:>7.0f} {ml.max_part_cut:>7.0f} "
        f"{ml.balance_ratio:>8.3f} {t_ml:>6.1f}s"
    )
    print(
        f"{'flat GA':>12} {flat.best.cut_size:>7.0f} "
        f"{flat.best.max_part_cut:>7.0f} "
        f"{flat.best.balance_ratio:>8.3f} {t_flat:>6.1f}s"
    )
    print(
        f"{'RSB':>12} {rsb.cut_size:>7.0f} {rsb.max_part_cut:>7.0f} "
        f"{rsb.balance_ratio:>8.3f} {t_rsb:>6.1f}s"
    )
    print(
        "\ncontraction turns an out-of-reach problem for the flat GA into "
        "a few-hundred-node one it handles well — the paper's scaling path."
    )


if __name__ == "__main__":
    main()
