#!/usr/bin/env python
"""Refining partitions from other methods (paper Section 4.1, Table 2).

A fast heuristic produces a starting partition; the DKNUX GA, seeded
with it, explores its neighborhood and returns the best individual
found — never worse than the seed.  This script refines RSB, IBP, and
greedy-growth partitions of a paper-scale mesh and reports the
improvement for each.

Run:  python examples/improve_rsb.py
"""

from repro import refine_partition
from repro.baselines import greedy_partition, ibp_partition, rsb_partition
from repro.experiments import workload


def main() -> None:
    graph = workload(213)  # the paper's 213-node graph (= 183+30)
    n_parts = 8
    print(f"graph: {graph}, k={n_parts}\n")
    starts = {
        "RSB": rsb_partition(graph, n_parts),
        "IBP": ibp_partition(graph, n_parts),
        "greedy": greedy_partition(graph, n_parts, seed=0),
    }
    print(f"{'seed':>8} {'before':>8} {'after':>8} {'improvement':>12}")
    for name, start in starts.items():
        refined = refine_partition(start, seed=1)
        gain = (start.cut_size - refined.cut_size) / start.cut_size
        print(
            f"{name:>8} {start.cut_size:>8.0f} {refined.cut_size:>8.0f} "
            f"{gain:>11.1%}"
        )


if __name__ == "__main__":
    main()
