#!/usr/bin/env python
"""Index-based partitioning and the paper's appendix indexing schemes.

Reproduces Figure 1 (row-major and shuffled row-major index matrices of
an 8x8 image) exactly, walks through the appendix's two bit-interleaving
examples, and then runs the full IBP pipeline (index -> sort -> color)
on a mesh under all three indexing schemes.

Run:  python examples/indexing_demo.py
"""

from repro.baselines import ibp_partition
from repro.experiments import workload
from repro.indexing import (
    interleave_bits,
    row_major_matrix,
    shuffled_row_major_matrix,
)


def main() -> None:
    print("Figure 1(a): row-major indexing of an 8x8 image")
    for row in row_major_matrix(8, 8):
        print(" ".join(f"{v:02d}" for v in row))
    print("\nFigure 1(b): shuffled row-major indexing")
    for row in shuffled_row_major_matrix(8, 8):
        print(" ".join(f"{v:02d}" for v in row))

    print("\nAppendix interleave examples:")
    v = interleave_bits([0b001, 0b010, 0b110], [3, 3, 3])
    print(f"  001, 010, 110       -> {v:09b} (paper: 001011100)")
    v = interleave_bits([0b101, 0b01, 0b0], [3, 2, 1])
    print(f"  101, 01, 0 (ragged) -> {v:06b} (paper: 100110)")

    graph = workload(167)
    n_parts = 8
    print(f"\nIBP on {graph}, k={n_parts}:")
    print(f"{'scheme':>10} {'cut':>5} {'worst':>6} {'balance':>8}")
    for scheme in ("row_major", "shuffled", "hilbert"):
        p = ibp_partition(graph, n_parts, scheme=scheme)
        print(
            f"{scheme:>10} {p.cut_size:>5.0f} {p.max_part_cut:>6.0f} "
            f"{p.balance_ratio:>8.3f}"
        )
    print(
        "\nshuffled row-major / hilbert preserve 2-D locality in the 1-D "
        "order, so their parts are compact — this is the seed the paper "
        "feeds the GA in Table 1."
    )


if __name__ == "__main__":
    main()
