#!/usr/bin/env python
"""Visual tour: what the different partitioners actually produce.

Renders a mesh partition as ASCII art for four methods — random, IBP,
RSB, and the DKNUX GA — making the qualitative story behind the cut
numbers visible: random fragments the domain, IBP/RSB produce compact
regions, and the GA polishes boundaries further.

Run:  python examples/visualize_partitions.py
"""

from repro import partition_graph
from repro.baselines import ibp_partition, random_partition, rsb_partition
from repro.graphs import mesh_graph
from repro.partition import ascii_render, part_summary


def show(title, part):
    print(f"--- {title} " + "-" * max(0, 50 - len(title)))
    print(ascii_render(part, width=56, height=16))
    print(part_summary(part))
    print()


def main() -> None:
    graph = mesh_graph(180, seed=13)
    k = 4
    print(f"graph: {graph}, k={k}\n")
    show("random", random_partition(graph, k, seed=0))
    show("IBP (shuffled row-major)", ibp_partition(graph, k))
    show("RSB", rsb_partition(graph, k))
    show("DKNUX GA", partition_graph(graph, k, seed=0))


if __name__ == "__main__":
    main()
