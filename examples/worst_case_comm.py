#!/usr/bin/env python
"""Minimizing worst-case communication cost (paper Section 4.3, Tables 4-6).

``max_q C(q)`` — the busiest processor's communication volume — is the
quantity that actually bounds a bulk-synchronous step, but it is
non-differentiable in the assignment, so gradient-style methods cannot
optimize it directly.  A GA can: Fitness 2 penalizes exactly this
quantity.  This script partitions a mesh under both fitness functions
and shows the trade: Fitness 2 accepts a slightly larger total cut to
flatten the per-part communication profile.

Run:  python examples/worst_case_comm.py
"""

import numpy as np

from repro import partition_graph
from repro.baselines import rsb_partition
from repro.experiments import workload


def profile(tag, part):
    cuts = part.part_cuts
    print(
        f"{tag:>10}: total={part.cut_size:>5.0f} worst={cuts.max():>4.0f} "
        f"mean={cuts.mean():>6.1f} C(q)={np.array2string(cuts, precision=0)}"
    )


def main() -> None:
    graph = workload(98)
    n_parts = 8
    print(f"graph: {graph}, k={n_parts}\n")

    f1 = partition_graph(graph, n_parts, fitness_kind="fitness1", seed=3)
    f2 = partition_graph(graph, n_parts, fitness_kind="fitness2", seed=3)
    rsb = rsb_partition(graph, n_parts)

    profile("fitness1", f1)
    profile("fitness2", f2)
    profile("RSB", rsb)

    print(
        "\nfitness2 trades a little total cut for a flatter profile: "
        f"worst part {f2.max_part_cut:.0f} vs {f1.max_part_cut:.0f} "
        "(fitness1) — the knob differentiable methods don't have."
    )


if __name__ == "__main__":
    main()
