"""Table 2 — improving RSB solutions with DKNUX, Fitness 1.

Paper shape: seeded with the RSB solution itself, the GA's best-ever
individual never loses to RSB and strictly improves on most cells.
"""

from .conftest import run_and_report


def test_table2(benchmark, mode, bench_seed):
    result = benchmark.pedantic(
        run_and_report, args=("table2", mode, bench_seed), rounds=1, iterations=1
    )
    # seeding with RSB makes losing impossible for the cut metric
    assert result.ga_win_fraction == 1.0
    strict = sum(c.dknux < c.rsb for c in result.cells)
    # the paper strictly improves 10/12 cells; require some real refinement
    assert strict >= len(result.cells) // 3
