"""Ablation — final solution quality per crossover operator.

DESIGN.md §5: isolate the operator's contribution at a fixed budget
(no hill-climbing, identical populations and seeds).  The paper claims
KNUX/DKNUX give "orders of magnitude improvement over traditional
genetic operators in solution quality and speed".
"""

import os

import numpy as np

from repro.baselines import ibp_partition
from repro.experiments import workload
from repro.ga import (
    DKNUX,
    KNUX,
    Fitness1,
    GAConfig,
    GAEngine,
    KPointCrossover,
    OnePointCrossover,
    TwoPointCrossover,
    UniformCrossover,
)

GENERATIONS = 120 if os.environ.get("REPRO_BENCH_FULL") == "1" else 50


def _run_all():
    graph = workload(167)
    k = 4
    fitness = Fitness1(graph, k)
    cfg = GAConfig(population_size=64, max_generations=GENERATIONS)
    ibp = ibp_partition(graph, k).assignment
    operators = {
        "1-point": lambda: OnePointCrossover(),
        "2-point": lambda: TwoPointCrossover(),
        "4-point": lambda: KPointCrossover(4),
        "uniform": lambda: UniformCrossover(),
        "knux(ibp)": lambda: KNUX(graph, ibp, k),
        "dknux": lambda: DKNUX(graph, k),
    }
    rows = {}
    for name, factory in operators.items():
        res = GAEngine(graph, fitness, factory(), cfg, seed=7).run()
        rows[name] = (res.best_fitness, res.best_cut)
    print("\nOperator ablation on 167-node mesh, k=4, no hill climbing")
    print(f"{'operator':>10} {'fitness':>10} {'cut':>6}")
    for name, (fit, cut) in rows.items():
        print(f"{name:>10} {fit:>10.0f} {cut:>6.0f}")
    return rows


def test_operator_ablation(benchmark):
    rows = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    trad_best = max(rows[n][0] for n in ("1-point", "2-point", "4-point", "uniform"))
    assert rows["knux(ibp)"][0] > trad_best
    assert rows["dknux"][0] > trad_best
    # the knowledge-based cut should be dramatically smaller, not marginal
    trad_cut = min(rows[n][1] for n in ("1-point", "2-point", "4-point", "uniform"))
    assert rows["knux(ibp)"][1] < 0.75 * trad_cut
