"""Ablation — hill-climbing modes (paper Section 3.6 / Section 5).

"Performance can further be improved by incorporating a hill-climbing
step."  This bench quantifies that: the same DKNUX GA with hill-climbing
off, on the per-generation best, on all offspring (memetic), and as a
final polish only.
"""

import os

from repro.experiments import workload
from repro.ga import DKNUX, Fitness1, GAConfig, GAEngine

GENERATIONS = 80 if os.environ.get("REPRO_BENCH_FULL") == "1" else 30


def _run_modes():
    graph = workload(144)
    k = 4
    fitness = Fitness1(graph, k)
    rows = {}
    for mode in ("off", "best", "final", "all"):
        cfg = GAConfig(
            population_size=48,
            max_generations=GENERATIONS,
            hill_climb=mode,
            hill_climb_passes=2,
        )
        res = GAEngine(graph, fitness, DKNUX(graph, k), cfg, seed=3).run()
        rows[mode] = (res.best_fitness, res.best_cut, res.history.n_evaluations)
    print("\nHill-climbing ablation on 144-node mesh, k=4")
    print(f"{'mode':>6} {'fitness':>9} {'cut':>5} {'evals':>7}")
    for mode, (fit, cut, evals) in rows.items():
        print(f"{mode:>6} {fit:>9.0f} {cut:>5.0f} {evals:>7}")
    return rows


def test_hillclimb_ablation(benchmark):
    rows = benchmark.pedantic(_run_modes, rounds=1, iterations=1)
    # the memetic mode dominates plain GA at equal generation budget
    assert rows["all"][0] >= rows["off"][0]
    # final polish can only help relative to off
    assert rows["final"][0] >= rows["off"][0]
