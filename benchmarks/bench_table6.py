"""Table 6 — incremental partitioning, Fitness 2 (worst cut).

Paper shape: warm-started DKNUX beats RSB-from-scratch on worst-part
cost in most incremental cells (paper wins 13 of 14 compared cells).
"""

from .conftest import run_and_report


def test_table6(benchmark, mode, bench_seed):
    result = benchmark.pedantic(
        run_and_report, args=("table6", mode, bench_seed), rounds=1, iterations=1
    )
    compared = [c for c in result.cells if c.paper_rsb is not None]
    assert compared  # the 78+20 row has no RSB column in the paper
    assert result.ga_win_fraction >= 0.4
