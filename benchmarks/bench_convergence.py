"""Convergence figures — best fitness vs generation, averaged over runs.

The paper's (unnumbered) figures average 5 runs and show KNUX/DKNUX
converging orders of magnitude faster than 2-point crossover.  This
bench regenerates those series on the 144-node mesh (k = 4, Fitness 1,
no hill-climbing so the operator effect is isolated) via
:func:`repro.experiments.run_convergence` and prints the
fitness-vs-generation table plus the speed metrics.
"""

import os

from repro.experiments import format_convergence, run_convergence

FULL = os.environ.get("REPRO_BENCH_FULL") == "1"
N_RUNS = 5 if FULL else 2
GENERATIONS = 120 if FULL else 60


def _run():
    result = run_convergence(
        size=144,
        n_parts=4,
        n_runs=N_RUNS,
        generations=GENERATIONS,
        population_size=64,
        seed=0,
    )
    print()
    print(format_convergence(result))
    return result


def test_convergence_figure(benchmark):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    curves = result.curves
    final = {n: c.summary.mean[-1] for n, c in curves.items()}
    # headline shape: knowledge-based operators dominate traditional ones
    assert final["dknux"] > final["2-point"]
    assert final["dknux"] > final["uniform"]
    assert final["knux"] > final["2-point"]
    # speed: knux passes 2-point's *final* level in a fraction of the budget
    gen = curves["knux"].speedup_generation
    assert gen is not None and gen < GENERATIONS // 3
    # and already dominates at the halfway point
    mid = curves["dknux"].summary.n_generations // 2
    assert curves["dknux"].summary.mean[mid] > curves["2-point"].summary.mean[mid]
