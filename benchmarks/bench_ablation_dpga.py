"""Ablation — single population vs the paper's 16-island hypercube DPGA.

The paper ran "a single population as well as ... 16 subpopulations
configured as a four dimensional hypercube" with 320 total individuals.
This bench compares the two at equal evaluation budgets and also checks
ring vs hypercube migration topology.
"""

import os

from repro.experiments import workload
from repro.ga import (
    DKNUX,
    DPGA,
    DPGAConfig,
    Fitness1,
    GAConfig,
    GAEngine,
    hypercube_topology,
    ring_topology,
)

GENERATIONS = 60 if os.environ.get("REPRO_BENCH_FULL") == "1" else 25


def _run_variants():
    graph = workload(118)
    k = 4
    fitness = Fitness1(graph, k)
    rows = {}

    single_cfg = GAConfig(population_size=320, max_generations=GENERATIONS)
    res = GAEngine(graph, fitness, DKNUX(graph, k), single_cfg, seed=11).run()
    rows["single-320"] = (res.best_fitness, res.best_cut)

    for name, topo in (
        ("dpga-hc4", hypercube_topology(4)),
        ("dpga-ring", ring_topology(16)),
    ):
        dpga = DPGA(
            graph,
            fitness,
            crossover_factory=lambda: DKNUX(graph, k),
            ga_config=GAConfig(population_size=20),
            dpga_config=DPGAConfig(
                total_population=320,
                n_islands=16,
                migration_interval=5,
                max_generations=GENERATIONS,
            ),
            topology=topo,
            seed=11,
        )
        r = dpga.run()
        rows[name] = (r.best_fitness, r.best_cut)

    print("\nDPGA ablation on 118-node mesh, k=4, 320 individuals")
    print(f"{'variant':>12} {'fitness':>9} {'cut':>5}")
    for name, (fit, cut) in rows.items():
        print(f"{name:>12} {fit:>9.0f} {cut:>5.0f}")
    return rows


def test_dpga_ablation(benchmark):
    rows = benchmark.pedantic(_run_variants, rounds=1, iterations=1)
    # all variants must land in the same quality regime (island model is
    # about parallelism, not quality loss)
    values = [v[0] for v in rows.values()]
    assert max(values) - min(values) < 0.5 * abs(max(values))
