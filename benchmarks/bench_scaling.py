"""Scaling — graph size sweep and the multilevel extension.

Section 5 of the paper: "partitioning very large graphs does require
high amounts of computation by the genetic algorithm. A prior graph
contraction step would allow these techniques to be applied to graphs
much larger."  This bench measures the flat memetic GA against the
multilevel (contract → GA → refine) pipeline and RSB as size grows.
"""

import os
import time

from repro.baselines import rsb_partition
from repro.ga import DKNUX, Fitness1, GAConfig, GAEngine
from repro.graphs import mesh_graph
from repro.multilevel import multilevel_ga_partition

SIZES = (200, 400, 800) if os.environ.get("REPRO_BENCH_FULL") != "1" else (
    200, 400, 800, 1600,
)
K = 8
QUICK_GA = GAConfig(
    population_size=32,
    max_generations=25,
    patience=8,
    hill_climb="all",
    hill_climb_passes=1,
)


def _sweep():
    rows = []
    for n in SIZES:
        graph = mesh_graph(n, seed=100 + n, candidates=5)
        fitness = Fitness1(graph, K)

        t0 = time.perf_counter()
        flat = GAEngine(graph, fitness, DKNUX(graph, K), QUICK_GA, seed=1).run()
        t_flat = time.perf_counter() - t0

        t0 = time.perf_counter()
        ml = multilevel_ga_partition(
            graph, K, coarse_nodes=150, config=QUICK_GA, seed=1
        )
        t_ml = time.perf_counter() - t0

        t0 = time.perf_counter()
        rsb = rsb_partition(graph, K)
        t_rsb = time.perf_counter() - t0

        rows.append(
            (n, flat.best_cut, t_flat, ml.cut_size, t_ml, rsb.cut_size, t_rsb)
        )
    print("\nScaling sweep, k=8 (cut / seconds)")
    print(f"{'n':>6} {'flat-GA':>14} {'multilevel':>14} {'RSB':>14}")
    for n, fc, ft, mc, mt, rc, rt in rows:
        print(
            f"{n:>6} {fc:>7.0f}/{ft:>5.2f}s {mc:>7.0f}/{mt:>5.2f}s "
            f"{rc:>7.0f}/{rt:>5.2f}s"
        )
    return rows


def test_scaling(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    # the multilevel pipeline must stay within a reasonable factor of RSB
    # even at the largest size, where the flat GA struggles
    n, fc, ft, mc, mt, rc, rt = rows[-1]
    assert mc < 2.0 * rc
    # and multilevel should not be slower than the flat GA at scale
    assert mt <= ft * 1.5
