#!/usr/bin/env python
"""Cross-commit perf trajectory: diff benchmark metric snapshots.

Every CI run (and every local ``check_bench.py`` / ``bench_service.py``
run) writes a metrics JSON — ``BENCH_metrics.json`` with per-kernel
timings, ``SERVICE_metrics.json`` with serving-layer numbers (its flat
``serving`` section).  This script lines up any number of such
snapshots — files on disk, downloaded CI artifacts, or versions read
straight out of git history — into one markdown trajectory table, so
"did PR N make the kernels faster?" is a table lookup instead of an
artifact archaeology session.  Kernel rows and serving rows render as
separate sections; a snapshot missing one section simply shows dashes.

Usage::

    # explicit snapshot files (labelled by file name)
    python benchmarks/bench_trajectory.py a/BENCH_metrics.json b/BENCH_metrics.json

    # label:file pairs
    python benchmarks/bench_trajectory.py pr2:old.json pr3:new.json

    # straight from git history (any revision that committed the file)
    python benchmarks/bench_trajectory.py --git HEAD~1 --git HEAD

    # CI: committed snapshot vs freshly measured one
    python benchmarks/bench_trajectory.py --git HEAD fresh:benchmarks/BENCH_metrics.json \
        --out benchmarks/BENCH_trajectory.md

    # serving trajectory (SERVICE_metrics.json committed at revisions)
    python benchmarks/bench_trajectory.py --path benchmarks/SERVICE_metrics.json \
        --git HEAD fresh:benchmarks/SERVICE_metrics.json

Exits 0 on success (the table is informational; perf *floors* are
``check_bench.py``'s / ``bench_service.py``'s job), 2 on unreadable
inputs.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

#: metric shown in the trajectory cells, with fallback order
PRIMARY_METRIC = "new_ms"

REPO_METRICS_PATH = "benchmarks/BENCH_metrics.json"


def load_snapshot(spec: str) -> tuple[str, dict]:
    """``[label:]path`` → ``(label, parsed snapshot)``."""
    label, sep, path = spec.partition(":")
    if not sep or ("/" in label or "\\" in label or label == "."):
        label, path = "", spec
    try:
        data = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"error: cannot read snapshot {path!r}: {exc}")
    return label or Path(path).parent.name or Path(path).stem, data


def load_git_snapshot(rev: str, path: str = REPO_METRICS_PATH) -> tuple[str, dict]:
    """Snapshot committed at ``rev`` (short sha as label)."""
    try:
        blob = subprocess.run(
            ["git", "show", f"{rev}:{path}"],
            capture_output=True, text=True, check=True,
        ).stdout
        label = subprocess.run(
            ["git", "rev-parse", "--short", rev],
            capture_output=True, text=True, check=True,
        ).stdout.strip()
    except (subprocess.CalledProcessError, FileNotFoundError) as exc:
        detail = getattr(exc, "stderr", "") or str(exc)
        raise SystemExit(
            f"error: cannot read {path} at {rev!r}: {detail.strip()}"
        )
    try:
        return label, json.loads(blob)
    except json.JSONDecodeError as exc:
        raise SystemExit(f"error: snapshot at {rev!r} is not JSON: {exc}")


def build_trajectory(snapshots: list[tuple[str, dict]]) -> str:
    """Markdown trajectory table over any number of snapshots.

    One row per (kernel, metric); the final column is the relative
    change of the last snapshot vs the first (negative = faster).
    """
    if not snapshots:
        return "(no snapshots)\n"
    labels = [label for label, _ in snapshots]
    kernels: list[str] = []
    for _, snap in snapshots:
        for name in snap.get("kernels", {}):
            if name not in kernels:
                kernels.append(name)

    lines = [
        "# Perf trajectory",
        "",
        f"Columns: {', '.join(labels)} — kernel cells = {PRIMARY_METRIC} "
        "(speedup vs seed kernel where measured).",
    ]
    if kernels:
        lines += [
            "",
            "| kernel | " + " | ".join(labels) + " | Δ last vs first |",
            "|---" * (len(labels) + 2) + "|",
        ]
    for kernel in kernels:
        cells = []
        series = []
        for _, snap in snapshots:
            entry = snap.get("kernels", {}).get(kernel)
            if not entry or PRIMARY_METRIC not in entry:
                cells.append("—")
                series.append(None)
                continue
            ms = entry[PRIMARY_METRIC]
            series.append(ms)
            cell = f"{ms:g} ms"
            if "speedup" in entry:
                cell += f" ({entry['speedup']:g}x)"
            cells.append(cell)
        known = [s for s in series if s is not None]
        if len(known) >= 2 and known[0] > 0:
            delta = (known[-1] - known[0]) / known[0] * 100.0
            arrow = "🟢" if delta <= 0 else "🔴"
            delta_cell = f"{arrow} {delta:+.1f}%"
        else:
            delta_cell = "—"
        lines.append(f"| {kernel} | " + " | ".join(cells) + f" | {delta_cell} |")

    # serving-layer sections (bench_service.py's flat dicts: `serving`
    # throughput/latency numbers, `failover` crash-recovery numbers,
    # `elastic` live-resize numbers, `concurrency`
    # simultaneous-connection numbers, `observability` tracing-overhead
    # numbers)
    for section in (
        "serving", "failover", "elastic", "concurrency", "observability"
    ):
        section_keys: list[str] = []
        for _, snap in snapshots:
            for name in snap.get(section, {}):
                if name not in section_keys:
                    section_keys.append(name)
        if not section_keys:
            continue
        lines += [
            "",
            f"| {section} metric | " + " | ".join(labels) + " |",
            "|---" * (len(labels) + 1) + "|",
        ]
        for name in section_keys:
            cells = []
            for _, snap in snapshots:
                value = snap.get(section, {}).get(name)
                cells.append("—" if value is None else f"{value:g}")
            lines.append(f"| {name} | " + " | ".join(cells) + " |")

    scales = {
        json.dumps(snap.get("scale", {}), sort_keys=True) for _, snap in snapshots
    }
    if len(scales) > 1:
        lines += ["", "> ⚠ snapshots were measured at different scales; "
                  "timings are not directly comparable."]
    ok_flags = [
        f"{label}: {'ok' if snap.get('ok', True) else 'FAIL'}"
        for label, snap in snapshots
    ]
    lines += ["", "Guard status — " + ", ".join(ok_flags), ""]
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "snapshots", nargs="*",
        help="snapshot files, optionally labelled as label:path",
    )
    parser.add_argument(
        "--git", action="append", default=[], metavar="REV",
        help="also read the snapshot committed at REV (repeatable)",
    )
    parser.add_argument(
        "--path", default=REPO_METRICS_PATH,
        help="repo path read by --git revisions (default: "
             f"{REPO_METRICS_PATH}; pass benchmarks/SERVICE_metrics.json "
             "for the serving trajectory)",
    )
    parser.add_argument(
        "--out", type=Path, default=None,
        help="write the markdown table here as well as stdout",
    )
    args = parser.parse_args(argv)

    loaded = [load_git_snapshot(rev, args.path) for rev in args.git]
    loaded += [load_snapshot(spec) for spec in args.snapshots]
    if not loaded:
        parser.error("no snapshots given (pass files and/or --git revisions)")

    table = build_trajectory(loaded)
    print(table)
    if args.out is not None:
        args.out.write_text(table + ("" if table.endswith("\n") else "\n"))
    return 0


if __name__ == "__main__":
    sys.exit(main())
