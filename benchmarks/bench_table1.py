"""Table 1 — best solutions: DKNUX (IBP-seeded) vs RSB, Fitness 1.

Paper shape: DKNUX, starting from an Index-Based-Partitioning seed,
matches or beats RSB's total cut on most of the 167/144-node cells.
"""

from .conftest import run_and_report


def test_table1(benchmark, mode, bench_seed):
    result = benchmark.pedantic(
        run_and_report, args=("table1", mode, bench_seed), rounds=1, iterations=1
    )
    # the paper's DKNUX wins/ties 4 of 6 cells; our memetic GA should win
    # at least half even at the quick budget
    assert result.ga_win_fraction >= 0.5
    for cell in result.cells:
        assert cell.dknux > 0 and cell.rsb > 0
