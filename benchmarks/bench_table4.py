"""Table 4 — random initialization, Fitness 2 (worst cut): DKNUX vs RSB.

Paper shape: even from a random start, DKNUX directly optimizing the
non-differentiable ``max_q C(q)`` objective beats RSB on the small
graphs (78–98 nodes) and is close on the larger ones.
"""

import numpy as np

from .conftest import run_and_report


def test_table4(benchmark, mode, bench_seed):
    result = benchmark.pedantic(
        run_and_report, args=("table4", mode, bench_seed), rounds=1, iterations=1
    )
    # random-start quick runs are noisy; require the aggregate ratio to be
    # competitive rather than per-cell wins
    ratios = [c.dknux / c.rsb for c in result.cells]
    assert np.mean(ratios) < 1.35
    assert result.ga_win_fraction >= 0.2
