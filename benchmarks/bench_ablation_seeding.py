"""Ablation — population seeding regimes (paper Section 3.5).

Compares random initialization against IBP-seeded, RSB-seeded, and (for
an updated graph) previous-partition seeding, at one fixed GA budget.
The paper's recommendation: seed with a fast heuristic; in the
incremental case the previous partition is the best seed available.
"""

import os

from repro.baselines import ibp_partition, rsb_partition
from repro.experiments import incremental_case
from repro.ga import DKNUX, Fitness1, GAConfig, GAEngine
from repro.ga.population import random_population, seeded_population
from repro.incremental import seed_population_from_previous

GENERATIONS = 60 if os.environ.get("REPRO_BENCH_FULL") == "1" else 25


def _run_seedings():
    base_graph, update = incremental_case(118, 21)
    graph = update.graph
    k = 4
    fitness = Fitness1(graph, k)
    cfg = GAConfig(population_size=48, max_generations=GENERATIONS)
    pop_size = cfg.population_size

    prev = rsb_partition(base_graph, k).assignment
    # extend the base partition's labels only as far as the base nodes go;
    # the seeding helper handles the new ones
    seeds = {
        "random": random_population(graph.n_nodes, k, pop_size, seed=1),
        "ibp": seeded_population(
            graph, k, pop_size, ibp_partition(graph, k).assignment, seed=1
        ),
        "rsb": seeded_population(
            graph, k, pop_size, rsb_partition(graph, k).assignment, seed=1
        ),
        "previous": seed_population_from_previous(graph, prev, k, pop_size, seed=1),
    }
    rows = {}
    for name, pop in seeds.items():
        res = GAEngine(graph, fitness, DKNUX(graph, k), cfg, seed=5).run(pop)
        rows[name] = (res.best_fitness, res.best_cut)
    print("\nSeeding ablation on the 118+21 incremental graph, k=4")
    print(f"{'seeding':>9} {'fitness':>9} {'cut':>5}")
    for name, (fit, cut) in rows.items():
        print(f"{name:>9} {fit:>9.0f} {cut:>5.0f}")
    return rows


def test_seeding_ablation(benchmark):
    rows = benchmark.pedantic(_run_seedings, rounds=1, iterations=1)
    # any heuristic seed beats random initialization at this budget
    assert rows["rsb"][0] >= rows["random"][0]
    assert rows["previous"][0] >= rows["random"][0]
