#!/usr/bin/env python
"""Perf guard for the GA's batch kernels.

Times the fused-bincount batch metrics against the seed's ``np.add.at``
scatter-add forms, and the lockstep batch hill-climber against the
per-row scalar climb loop, at paper scale (P=320 individuals, ~300-node
mesh, k=8).  Verifies agreement (bit-identical for the hill climber)
and writes the measurements to ``BENCH_metrics.json`` so later PRs can
track the perf trajectory.  Exits non-zero if a kernel falls below its
speedup floor or disagrees with the baseline.

Usage::

    PYTHONPATH=src python benchmarks/check_bench.py \
        [--min-speedup 3.0] [--min-climb-speedup 4.0] [--repeats 30] \
        [--out benchmarks/BENCH_metrics.json]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.ga import Fitness1, HillClimber, climb_batch
from repro.ga.population import random_population
from repro.graphs import mesh_graph
from repro.partition.metrics import (
    batch_cut_size,
    batch_part_cuts,
    batch_part_loads,
)

from bench_microbench import (
    scalar_improve_batch,
    seed_batch_part_cuts,
    seed_batch_part_loads,
)

#: paper-scale workload (Section 4: population 320, few-hundred-node meshes)
MESH_NODES = 300
N_PARTS = 8
POPULATION = 320


def best_of(fn, repeats: int) -> float:
    """Best wall time over ``repeats`` runs (seconds); best-of filters
    scheduler noise better than the mean for sub-ms kernels."""
    fn()  # warm up
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=3.0,
        help="floor for new/seed speedup of the rewritten kernels",
    )
    parser.add_argument(
        "--min-climb-speedup",
        type=float,
        default=4.0,
        help="floor for batch/scalar speedup of the lockstep hill-climber",
    )
    parser.add_argument("--repeats", type=int, default=30)
    parser.add_argument(
        "--climb-repeats",
        type=int,
        default=3,
        help="repeats for the hill-climb pair (its scalar baseline runs "
        "seconds per call, so best-of-few keeps the guard fast)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).parent / "BENCH_metrics.json",
    )
    args = parser.parse_args(argv)

    graph = mesh_graph(MESH_NODES, seed=77, candidates=6)
    pop = random_population(graph.n_nodes, N_PARTS, POPULATION, seed=1)
    fitness = Fitness1(graph, N_PARTS)

    failures: list[str] = []
    kernels: dict[str, dict] = {}

    guarded = [
        (
            "batch_part_loads",
            lambda: batch_part_loads(graph, pop, N_PARTS),
            lambda: seed_batch_part_loads(graph, pop, N_PARTS),
        ),
        (
            "batch_part_cuts",
            lambda: batch_part_cuts(graph, pop, N_PARTS),
            lambda: seed_batch_part_cuts(graph, pop, N_PARTS),
        ),
    ]
    for name, new_fn, seed_fn in guarded:
        if not np.allclose(new_fn(), seed_fn(), rtol=0, atol=1e-9):
            failures.append(f"{name}: results diverge from the seed kernel")
            continue
        new_s = best_of(new_fn, args.repeats)
        seed_s = best_of(seed_fn, args.repeats)
        speedup = seed_s / new_s if new_s > 0 else float("inf")
        kernels[name] = {
            "new_ms": round(new_s * 1e3, 4),
            "seed_ms": round(seed_s * 1e3, 4),
            "speedup": round(speedup, 2),
        }
        if speedup < args.min_speedup:
            failures.append(
                f"{name}: speedup {speedup:.2f}x below floor "
                f"{args.min_speedup:.2f}x"
            )

    # lockstep batch hill-climber vs the per-row scalar loop: the guard
    # requires bit-identical climbed assignments (deterministic scan
    # order), not mere numerical agreement
    climber = HillClimber(graph, fitness)
    new_fn = lambda: climb_batch(graph, fitness, pop, 1)  # noqa: E731
    base_fn = lambda: scalar_improve_batch(climber, pop, 1)  # noqa: E731
    if not np.array_equal(new_fn(), base_fn()):
        failures.append(
            "batch_hillclimb: climbed assignments are not bit-identical "
            "to the scalar climber"
        )
    else:
        new_s = best_of(new_fn, args.climb_repeats)
        seed_s = best_of(base_fn, args.climb_repeats)
        speedup = seed_s / new_s if new_s > 0 else float("inf")
        kernels["batch_hillclimb"] = {
            "new_ms": round(new_s * 1e3, 4),
            "seed_ms": round(seed_s * 1e3, 4),
            "speedup": round(speedup, 2),
        }
        if speedup < args.min_climb_speedup:
            failures.append(
                f"batch_hillclimb: speedup {speedup:.2f}x below floor "
                f"{args.min_climb_speedup:.2f}x"
            )

    # trajectory-only kernels (no seed baseline / no floor)
    for name, fn in [
        ("batch_cut_size", lambda: batch_cut_size(graph, pop)),
        ("fitness1_evaluate_batch", lambda: fitness.evaluate_batch(pop)),
    ]:
        kernels[name] = {"new_ms": round(best_of(fn, args.repeats) * 1e3, 4)}

    report = {
        "scale": {
            "mesh_nodes": graph.n_nodes,
            "edges": graph.n_edges,
            "population": POPULATION,
            "n_parts": N_PARTS,
        },
        "min_speedup": args.min_speedup,
        "min_climb_speedup": args.min_climb_speedup,
        "kernels": kernels,
        "ok": not failures,
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n")

    print(json.dumps(report, indent=2))
    for msg in failures:
        print(f"FAIL: {msg}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
