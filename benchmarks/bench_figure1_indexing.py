"""Figure 1 — row-major and shuffled row-major indexing of an 8x8 image.

The paper's only true figure prints the two index matrices explicitly,
so this is the one artifact we can reproduce *exactly*.  The bench
regenerates both matrices, checks them bit-for-bit, prints them in the
figure's layout, and times the vectorized indexing kernels at scale.
"""

import numpy as np

from repro.indexing import (
    row_major_matrix,
    shuffled_row_major_indices,
    shuffled_row_major_matrix,
)

FIGURE_1B = np.array(
    [
        [0, 1, 4, 5, 16, 17, 20, 21],
        [2, 3, 6, 7, 18, 19, 22, 23],
        [8, 9, 12, 13, 24, 25, 28, 29],
        [10, 11, 14, 15, 26, 27, 30, 31],
        [32, 33, 36, 37, 48, 49, 52, 53],
        [34, 35, 38, 39, 50, 51, 54, 55],
        [40, 41, 44, 45, 56, 57, 60, 61],
        [42, 43, 46, 47, 58, 59, 62, 63],
    ]
)


def _print_figure():
    a = row_major_matrix(8, 8)
    b = shuffled_row_major_matrix(8, 8)
    print("\nFigure 1(a) row-major           (b) shuffled row-major")
    for ra, rb in zip(a, b):
        left = " ".join(f"{v:02d}" for v in ra)
        right = " ".join(f"{v:02d}" for v in rb)
        print(f"{left}   {right}")
    return a, b


def test_figure1_exact(benchmark):
    a, b = benchmark.pedantic(_print_figure, rounds=1, iterations=1)
    assert np.array_equal(a, np.arange(64).reshape(8, 8))
    assert np.array_equal(b, FIGURE_1B)


def test_shuffled_indexing_kernel_speed(benchmark):
    """Throughput of the vectorized interleave over 100k points."""
    rng = np.random.default_rng(0)
    coords = rng.integers(0, 1024, size=(100_000, 2))
    out = benchmark(shuffled_row_major_indices, coords, (1024, 1024))
    assert np.unique(out).size > 90_000  # near-injective on random input
