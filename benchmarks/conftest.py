"""Shared infrastructure for the benchmark harness.

Every paper table/figure has a module here that regenerates it.  By
default the benches run in "quick" mode (single GA run per cell,
compact budgets — a few minutes for the whole suite); set
``REPRO_BENCH_FULL=1`` for paper-scale best-of-5 runs.

Run with::

    pytest benchmarks/ --benchmark-only

Each bench prints its table (measured vs published) to stdout; pass
``-s`` to see them inline, or read the captured output of the run.
"""

from __future__ import annotations

import os

import pytest


def bench_mode() -> str:
    return "full" if os.environ.get("REPRO_BENCH_FULL") == "1" else "quick"


@pytest.fixture(scope="session")
def mode() -> str:
    return bench_mode()


@pytest.fixture(scope="session")
def bench_seed() -> int:
    return int(os.environ.get("REPRO_BENCH_SEED", "0"))


def run_and_report(table_id: str, mode: str, seed: int):
    """Run one paper table and print the paper-vs-measured report."""
    from repro.experiments import format_table, get_spec, run_table

    result = run_table(get_spec(table_id), mode=mode, seed=seed)
    print()
    print(format_table(result))
    return result
