"""Table 3 — incremental graph partitioning, Fitness 1.

Paper shape: DKNUX warm-started from the pre-update partition matches
or beats RSB re-run from scratch on the updated graph in most cells
(the paper wins 10 of 12).
"""

from .conftest import run_and_report


def test_table3(benchmark, mode, bench_seed):
    result = benchmark.pedantic(
        run_and_report, args=("table3", mode, bench_seed), rounds=1, iterations=1
    )
    assert result.ga_win_fraction >= 0.5
