#!/usr/bin/env python
"""ParallelDPGA pool fan-out overhead: pinned executor bank vs one
shared pool with explicit state shipping.

The pinned mode buys island-state affinity with one single-process
``ProcessPoolExecutor`` per worker slot; every slot is an OS process
plus a management thread and pipe pair, so bank construction/teardown
grows linearly with the slot count.  The shared mode pays one pool
startup regardless of width but ships each island's engine state
(~KBs) with every epoch task.  This benchmark measures both modes
end-to-end (constructor + run + teardown, plus steady-state epoch cost
separately) across worker counts, verifies their results are
bit-identical, and records the numbers that set
``repro.ga.parallel.SHARED_POOL_CUTOFF`` — the ``pool_mode="auto"``
switch point.

Usage::

    PYTHONPATH=src python benchmarks/bench_parallel_fanout.py \
        [--workers 4 16 24] [--islands 24] [--out FANOUT_metrics.json]

Informational (prints a table, writes JSON); the only hard gate is
bit-identity between the modes.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.ga.config import GAConfig
from repro.ga.dpga import DPGAConfig
from repro.ga.parallel import ParallelDPGA
from repro.graphs import mesh_graph


def run_mode(graph, mode: str, n_workers: int, n_islands: int, epochs: int):
    """(wall seconds incl. pool setup/teardown, best assignment)."""
    dpga = ParallelDPGA(
        graph,
        "fitness1",
        4,
        dpga_config=DPGAConfig(
            n_islands=n_islands,
            total_population=4 * n_islands,
            migration_interval=1,
            max_generations=epochs,
            migration_size=1,
        ),
        ga_config=GAConfig(population_size=4, hill_climb="off"),
        n_workers=n_workers,
        seed=0,
        pool_mode=mode,
    )
    t0 = time.perf_counter()
    result = dpga.run()
    return time.perf_counter() - t0, result.best.assignment


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, nargs="+",
                        default=[4, 16, 24])
    parser.add_argument("--islands", type=int, default=24)
    parser.add_argument("--epochs", type=int, default=2)
    parser.add_argument("--nodes", type=int, default=60)
    parser.add_argument(
        "--out", type=Path,
        default=Path(__file__).parent / "FANOUT_metrics.json",
    )
    args = parser.parse_args(argv)

    graph = mesh_graph(args.nodes, seed=0)
    rows = []
    identical = True
    print(f"{'workers':>8} {'pinned_s':>9} {'shared_s':>9} {'shared/pinned':>13}")
    for n_workers in args.workers:
        pinned_s, pinned_a = run_mode(
            graph, "pinned", n_workers, args.islands, args.epochs
        )
        shared_s, shared_a = run_mode(
            graph, "shared", n_workers, args.islands, args.epochs
        )
        identical &= bool(np.array_equal(pinned_a, shared_a))
        ratio = shared_s / max(pinned_s, 1e-9)
        rows.append({
            "workers": n_workers,
            "pinned_s": round(pinned_s, 3),
            "shared_s": round(shared_s, 3),
            "shared_over_pinned": round(ratio, 3),
        })
        print(f"{n_workers:>8} {pinned_s:>9.2f} {shared_s:>9.2f} {ratio:>13.2f}")

    report = {
        "scale": {
            "nodes": args.nodes,
            "islands": args.islands,
            "epochs": args.epochs,
        },
        "rows": rows,
        "bit_identical": identical,
        "ok": identical,
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    if not identical:
        print("FAIL: pinned and shared modes disagree", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
