"""Table 5 — improving RSB solutions with DKNUX, Fitness 2 (worst cut).

Paper shape: the GA improves RSB's worst-part communication cost on
every row (paper wins 14 of 14 cells).
"""

from .conftest import run_and_report


def test_table5(benchmark, mode, bench_seed):
    result = benchmark.pedantic(
        run_and_report, args=("table5", mode, bench_seed), rounds=1, iterations=1
    )
    # fitness2 couples worst-cut with balance, so "never lose" is not
    # structurally guaranteed as in table 2 — but near-universal wins are
    assert result.ga_win_fraction >= 0.75
