"""Micro-benchmarks of the GA's hot kernels.

These are classical pytest-benchmark timing benches (many rounds) for
the vectorized primitives the engine is built on: batch fitness
evaluation, KNUX bias + crossover, mutation, and a hill-climbing pass.
They guard against performance regressions in the inner loop.
"""

import numpy as np
import pytest

from repro.ga import (
    DKNUX,
    Fitness1,
    Fitness2,
    HillClimber,
    PointMutation,
    TwoPointCrossover,
)
from repro.ga.knux import KNUX
from repro.ga.population import random_population
from repro.graphs import mesh_graph


@pytest.fixture(scope="module")
def setup():
    graph = mesh_graph(300, seed=77, candidates=6)
    k = 8
    pop = random_population(graph.n_nodes, k, 320, seed=1)
    return graph, k, pop


def test_fitness1_batch_eval(benchmark, setup):
    graph, k, pop = setup
    fitness = Fitness1(graph, k)
    out = benchmark(fitness.evaluate_batch, pop)
    assert out.shape == (320,)


def test_fitness2_batch_eval(benchmark, setup):
    graph, k, pop = setup
    fitness = Fitness2(graph, k)
    out = benchmark(fitness.evaluate_batch, pop)
    assert out.shape == (320,)


def test_knux_crossover_batch(benchmark, setup):
    graph, k, pop = setup
    op = KNUX(graph, pop[0], k)
    rng = np.random.default_rng(0)
    a, b = pop[:160], pop[160:]
    c1, c2 = benchmark(op.cross, a, b, rng)
    assert c1.shape == a.shape


def test_two_point_crossover_batch(benchmark, setup):
    graph, k, pop = setup
    op = TwoPointCrossover()
    rng = np.random.default_rng(0)
    a, b = pop[:160], pop[160:]
    c1, _ = benchmark(op.cross, a, b, rng)
    assert c1.shape == a.shape


def test_point_mutation_batch(benchmark, setup):
    graph, k, pop = setup
    op = PointMutation(k)
    rng = np.random.default_rng(0)
    out = benchmark(op.mutate, pop, 0.01, rng)
    assert out.shape == pop.shape


def test_hillclimb_single_pass(benchmark, setup):
    graph, k, pop = setup
    climber = HillClimber(graph, Fitness1(graph, k))
    out, value = benchmark(climber.improve, pop[0], 1)
    assert np.isfinite(value)


def test_dknux_estimate_rebuild(benchmark, setup):
    """Cost of adopting a new estimate (neighbor-table scatter-add)."""
    graph, k, pop = setup
    op = DKNUX(graph, k)
    fitness = np.linspace(-1000, -1, pop.shape[0])

    def adopt():
        op._best_fitness = -np.inf  # force re-adoption every round
        op.prepare(pop, fitness)

    benchmark(adopt)
    assert op.best_fitness_seen == -1.0
