"""Micro-benchmarks of the GA's hot kernels.

These are classical pytest-benchmark timing benches (many rounds) for
the vectorized primitives the engine is built on: batch fitness
evaluation, the batch partition metrics (with the seed's ``np.add.at``
forms kept as before/after references), KNUX bias + crossover,
mutation, and a hill-climbing pass.  They guard against performance
regressions in the inner loop; ``check_bench.py`` turns the metric
benches into a JSON perf-trajectory artifact.
"""

import numpy as np
import pytest

from repro.ga import (
    DKNUX,
    Fitness1,
    Fitness2,
    HillClimber,
    PointMutation,
    TwoPointCrossover,
)
from repro.ga.batch_climb import climb_batch
from repro.ga.knux import KNUX
from repro.ga.population import random_population
from repro.graphs import mesh_graph
from repro.partition.metrics import (
    batch_cut_size,
    batch_part_cuts,
    batch_part_loads,
)


# ----------------------------------------------------------------------
# Reference kernels: the seed's scatter-add batch metrics, kept verbatim
# so the bincount rewrites are benchmarked against a fixed baseline.
# ----------------------------------------------------------------------

def seed_batch_part_loads(graph, pop, n_parts):
    p = pop.shape[0]
    loads = np.zeros((p, n_parts))
    rows = np.broadcast_to(np.arange(p)[:, None], pop.shape)
    np.add.at(loads, (rows, pop), graph.node_weights[None, :])
    return loads


def seed_batch_part_cuts(graph, pop, n_parts):
    p = pop.shape[0]
    cuts = np.zeros((p, n_parts))
    pu = pop[:, graph.edges_u]
    pv = pop[:, graph.edges_v]
    w = np.where(pu != pv, graph.edge_weights[None, :], 0.0)
    rows = np.broadcast_to(np.arange(p)[:, None], pu.shape)
    np.add.at(cuts, (rows, pu), w)
    np.add.at(cuts, (rows, pv), w)
    return cuts


def scalar_improve_batch(hc, pop, max_passes):
    """Baseline: the per-row scalar climb loop that ``improve_batch``
    ran before the lockstep batch kernel (PR 2 tentpole reference)."""
    out = np.empty_like(pop)
    for r in range(pop.shape[0]):
        out[r] = hc._climb(pop[r], max_passes, None)
    return out


@pytest.fixture(scope="module")
def setup():
    graph = mesh_graph(300, seed=77, candidates=6)
    k = 8
    pop = random_population(graph.n_nodes, k, 320, seed=1)
    return graph, k, pop


def test_batch_part_loads_bincount(benchmark, setup):
    graph, k, pop = setup
    out = benchmark(batch_part_loads, graph, pop, k)
    assert out.shape == (320, k)


def test_batch_part_cuts_bincount(benchmark, setup):
    graph, k, pop = setup
    out = benchmark(batch_part_cuts, graph, pop, k)
    assert out.shape == (320, k)


def test_batch_cut_size(benchmark, setup):
    graph, k, pop = setup
    out = benchmark(batch_cut_size, graph, pop)
    assert out.shape == (320,)


def test_batch_part_loads_seed_addat(benchmark, setup):
    """Baseline: the seed's np.add.at form (before/after comparison)."""
    graph, k, pop = setup
    out = benchmark(seed_batch_part_loads, graph, pop, k)
    assert np.array_equal(out, batch_part_loads(graph, pop, k))


def test_batch_part_cuts_seed_addat(benchmark, setup):
    """Baseline: the seed's np.add.at form (before/after comparison)."""
    graph, k, pop = setup
    out = benchmark(seed_batch_part_cuts, graph, pop, k)
    assert np.array_equal(out, batch_part_cuts(graph, pop, k))


def test_fitness1_batch_eval(benchmark, setup):
    graph, k, pop = setup
    fitness = Fitness1(graph, k)
    out = benchmark(fitness.evaluate_batch, pop)
    assert out.shape == (320,)


def test_fitness2_batch_eval(benchmark, setup):
    graph, k, pop = setup
    fitness = Fitness2(graph, k)
    out = benchmark(fitness.evaluate_batch, pop)
    assert out.shape == (320,)


def test_knux_crossover_batch(benchmark, setup):
    graph, k, pop = setup
    op = KNUX(graph, pop[0], k)
    rng = np.random.default_rng(0)
    a, b = pop[:160], pop[160:]
    c1, c2 = benchmark(op.cross, a, b, rng)
    assert c1.shape == a.shape


def test_two_point_crossover_batch(benchmark, setup):
    graph, k, pop = setup
    op = TwoPointCrossover()
    rng = np.random.default_rng(0)
    a, b = pop[:160], pop[160:]
    c1, _ = benchmark(op.cross, a, b, rng)
    assert c1.shape == a.shape


def test_point_mutation_batch(benchmark, setup):
    graph, k, pop = setup
    op = PointMutation(k)
    rng = np.random.default_rng(0)
    out = benchmark(op.mutate, pop, 0.01, rng)
    assert out.shape == pop.shape


def test_hillclimb_single_pass(benchmark, setup):
    graph, k, pop = setup
    climber = HillClimber(graph, Fitness1(graph, k))
    out, value = benchmark(climber.improve, pop[0], 1)
    assert np.isfinite(value)


def test_batch_hillclimb_lockstep(benchmark, setup):
    """The vectorized population-axis climb (one pass, whole batch)."""
    graph, k, pop = setup
    fitness = Fitness1(graph, k)
    out = benchmark(climb_batch, graph, fitness, pop, 1)
    assert out.shape == pop.shape


def test_batch_hillclimb_scalar_loop(benchmark, setup):
    """Baseline: the per-row Python loop the batch kernel replaced."""
    graph, k, pop = setup
    hc = HillClimber(graph, Fitness1(graph, k))
    out = benchmark(scalar_improve_batch, hc, pop, 1)
    assert np.array_equal(out, climb_batch(graph, hc.fitness, pop, 1))


def test_dknux_estimate_rebuild(benchmark, setup):
    """Cost of adopting a new estimate (neighbor-table scatter-add)."""
    graph, k, pop = setup
    op = DKNUX(graph, k)
    fitness = np.linspace(-1000, -1, pop.shape[0])

    def adopt():
        op._best_fitness = -np.inf  # force re-adoption every round
        op.prepare(pop, fitness)

    benchmark(adopt)
    assert op.best_fitness_seen == -1.0
