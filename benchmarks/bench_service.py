#!/usr/bin/env python
"""Smoke + load test of the partition service (``repro.service``).

Four phases, all deterministic:

1. **Warm vs cold** — the acceptance measurement of the serving layer.
   Repeated one-shot traffic and incremental-session traffic are served
   by a live :class:`PartitionService` (content cache, warm
   partitioners) and timed against *cold per-request runs*: the same
   work performed the way the one-shot CLI does it, a fresh
   ``partition_graph`` per request with the identical effective
   GAConfig.  The guard requires the warm aggregate throughput to beat
   cold by ``--min-warm-speedup`` (default 5x) **and** repeated-request
   answers to be bit-identical to the cold run at the same seed.
2. **HTTP replay** — a ~20-request mixed trace from
   :func:`repro.experiments.service_trace` (one-shot + repeated +
   incremental sessions) replayed over the real HTTP endpoint (the
   event-loop front, PR 9) through the keep-alive
   :class:`HTTPServiceClient`; p50 latency and cache-hit counters come
   from the service's own stats endpoint.
3. **Process-parallel scaling** (PR 4) — a CPU-bound trace of distinct
   dknux requests is driven concurrently against (a) one
   single-process service with ``--scaling-shards`` worker threads and
   (b) a digest-sharded :class:`ShardedPartitionService` of the same
   width, plus (c) the single-process service again with its
   process-pool execution lane.  Every sharded/process answer must be
   bit-identical to the single-process one; aggregate sharded
   throughput must beat single-process by ``--min-shard-speedup``
   (default 2x) **when the machine has ≥ 4 cores** — on fewer cores
   the number is recorded and the gate reported as skipped, since a
   process can't out-parallel a thread without cores to run on.
4. **Failover smoke** (PR 5) — a 2-shard fleet serves a replayed
   mixed trace while one shard is killed mid-traffic.  The driver
   retries :class:`ShardDiedError` (the fail-fast answer for requests
   caught in flight), so the gate is *no lost answers*: every request
   eventually answers, bit-identical to an uninterrupted
   single-process replay; the crashed shard's session resumes from its
   snapshot bit-identically; and the warm-cache speedup is retained
   after restart (a repeated request on the restarted shard hits the
   cache again).
5. **Connection concurrency** (PR 9) — ``--concurrency-clients``
   (default 256) simultaneous keep-alive connections hammer the
   event-loop front with mixed traffic (healthz, stats, greedy
   partitions whose shape is client-specific); every answer must match
   its request's reference exactly — zero cross-talk — and p50/p95
   client-side latency, aggregate rps, and per-core rps land in the
   report.  The p95 ceiling (``--max-concurrency-p95-ms``) is enforced
   only on machines with ≥ 4 cores; below that the numbers are
   recorded and the gate reported as skipped (identity is always
   enforced).
6. **Observability overhead** (PR 6) — the cache-hit replay is run
   twice, tracing off and on (ring + JSONL sink); answers must stay
   bit-identical and per-request overhead must clear the
   ``--max-trace-overhead-pct`` gate; p50/p95/p99 come from the
   unified metrics registry and a span sample is kept as
   ``SERVICE_trace_sample.jsonl``.
7. **Elastic grow** (PR 10) — a 2-shard fleet grows to 4 while the
   mixed trace is replayed against it.  Gates: zero lost answers
   (requests caught by the topology swap fail fast and answer on
   retry), every answer bit-identical to the uninterrupted
   single-process replay, the open session crosses the resize to its
   new ring owner bit-identically, and the warm-hit rate is preserved
   — every width-2 answer repeats as a cache hit at width 4 because
   the grow re-seeds the new owners from the write-behind journals.
8. **Report** — everything lands in ``SERVICE_metrics.json`` next to
   ``BENCH_metrics.json`` (with flat ``serving`` + ``failover`` +
   ``elastic`` + ``concurrency`` + ``observability`` sections that
   ``bench_trajectory.py`` renders across commits) so CI archives the
   serving trajectory alongside the kernel trajectory.

Usage::

    PYTHONPATH=src python benchmarks/bench_service.py \
        [--requests 20] [--repeats 10] [--updates 3] \
        [--min-warm-speedup 5.0] \
        [--scaling-shards 4] [--scaling-requests 12] \
        [--min-shard-speedup 2.0] \
        [--out benchmarks/SERVICE_metrics.json]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

import os
from concurrent.futures import ThreadPoolExecutor

from repro import partition_graph
from repro.errors import ShardDiedError
from repro.experiments import TRACE_GA_DEFAULTS, replay_trace, service_trace
from repro.experiments.workloads import BASE_SIZES, incremental_case, workload
from repro.ga.config import GAConfig
from repro.graphs import paper_mesh
from repro.incremental.updates import insert_local_nodes
from repro.service import (
    DEFAULT_GA_OVERRIDES,
    HTTPServiceClient,
    PartitionRequest,
    PartitionService,
    ShardedPartitionService,
    UpdateRequest,
    serve,
)

#: the canonical incremental case the session phase replays
SESSION_BASE = 78
SESSION_STEP_NODES = 10
N_PARTS = 4


def effective_config(ga: dict) -> GAConfig:
    """The GAConfig the service resolves for a dknux request with
    overrides ``ga`` — cold runs must use exactly this to be a fair
    (and bit-identical) baseline."""
    return GAConfig(**{**DEFAULT_GA_OVERRIDES, **ga})


def phase_warm_vs_cold(repeats: int, updates: int) -> dict:
    """Serve repeated + session traffic warm; time the cold equivalent."""
    ga = dict(TRACE_GA_DEFAULTS)
    config = effective_config(ga)
    base = paper_mesh(SESSION_BASE)

    with PartitionService(n_workers=2) as service:
        # -- repeated one-shot traffic --------------------------------
        request = PartitionRequest(base, N_PARTS, seed=0, ga=ga)
        first = service.submit(request)  # populates the cache
        t0 = time.perf_counter()
        warm_results = [
            service.submit(PartitionRequest(base, N_PARTS, seed=0, ga=ga))
            for _ in range(repeats)
        ]
        warm_repeat_s = time.perf_counter() - t0
        hits = sum(r.cache_hit for r in warm_results)

        # cold equivalent: fresh engine + graph state per request, the
        # way `repro-partition partition` pays for it. The cold path is
        # deterministic, so per-run variance is scheduler noise — use
        # the median of 3 timed runs, scaled to the request count.
        n_cold = min(3, repeats)
        cold_parts = []
        cold_times = []
        for _ in range(n_cold):
            t0 = time.perf_counter()
            cold_parts.append(
                partition_graph(
                    paper_mesh(SESSION_BASE), N_PARTS, config=config, seed=0
                )
            )
            cold_times.append(time.perf_counter() - t0)
        cold_repeat_s = float(np.median(cold_times)) * repeats

        identical = all(
            np.array_equal(r.assignment, cold_parts[0].assignment)
            for r in warm_results
        ) and np.array_equal(first.assignment, cold_parts[0].assignment)

        # -- incremental session traffic ------------------------------
        opened = service.open_session(base, N_PARTS, seed=0, ga=ga)
        graphs = []
        graph = base
        for step in range(updates):
            graph = insert_local_nodes(
                graph, SESSION_STEP_NODES, seed=1000 + step
            ).graph
            graphs.append(graph)
        t0 = time.perf_counter()
        session_cuts = []
        for graph in graphs:
            result = service.update_session(
                UpdateRequest(opened.session_id, graph)
            )
            session_cuts.append(result.cut_size)
        warm_session_s = time.perf_counter() - t0
        service.close_session(opened.session_id)

        # cold equivalent: partition each updated graph from scratch
        t0 = time.perf_counter()
        cold_session_cuts = [
            partition_graph(graph, N_PARTS, config=config, seed=0).cut_size
            for graph in graphs
        ]
        cold_session_s = time.perf_counter() - t0

        stats = service.stats()

    warm_total = warm_repeat_s + warm_session_s
    cold_total = cold_repeat_s + cold_session_s
    return {
        "repeats": repeats,
        "updates": updates,
        "cache_hits": int(hits),
        "repeat_identical_to_cold": bool(identical),
        "warm_repeat_s": round(warm_repeat_s, 4),
        "cold_repeat_s": round(cold_repeat_s, 4),
        "repeat_speedup": round(cold_repeat_s / max(warm_repeat_s, 1e-9), 1),
        "warm_session_s": round(warm_session_s, 4),
        "cold_session_s": round(cold_session_s, 4),
        "session_speedup": round(cold_session_s / max(warm_session_s, 1e-9), 2),
        "session_cuts": session_cuts,
        "cold_session_cuts": cold_session_cuts,
        "warm_total_s": round(warm_total, 4),
        "cold_total_s": round(cold_total, 4),
        "aggregate_speedup": round(cold_total / max(warm_total, 1e-9), 2),
        "service_stats": stats,
    }


def phase_http_replay(n_requests: int) -> dict:
    """Replay a mixed trace over a real HTTP server; report p50 + hits."""
    server = serve(port=0, background=True, n_workers=2)
    host, port = server.server_address
    client = HTTPServiceClient(f"http://{host}:{port}", timeout=300.0)
    try:
        assert client.healthy(), "service /v1/healthz failed"
        trace = service_trace(n_requests=n_requests, seed=0, n_parts=N_PARTS)
        t0 = time.perf_counter()
        results = replay_trace(client, trace)
        wall_s = time.perf_counter() - t0
        stats = client.stats()
    finally:
        server.service.close()
        server.shutdown()
        server.server_close()
    op_counts: dict[str, int] = {}
    for op, _ in results:
        op_counts[op["op"]] = op_counts.get(op["op"], 0) + 1
    return {
        "requests": len(trace),
        "op_counts": op_counts,
        "wall_s": round(wall_s, 4),
        "p50_ms": stats["latency"].get("p50_ms"),
        "p95_ms": stats["latency"].get("p95_ms"),
        "session_p50_ms": stats["session_latency"].get("p50_ms"),
        "cache_hits": stats["cache"]["results"]["hits"],
        "cache_misses": stats["cache"]["results"]["misses"],
        "graphs_interned": stats["cache"]["graphs"]["interned"],
        "sessions": stats["sessions"],
    }


def _scaling_trace(n_requests: int) -> list[PartitionRequest]:
    """Distinct CPU-bound dknux requests over the canonical workloads
    (deterministic; no repeats, so nothing hides behind the cache)."""
    ga = dict(TRACE_GA_DEFAULTS, patience=None)  # fixed work per request
    requests = []
    seed = 0
    while len(requests) < n_requests:
        for size in BASE_SIZES:
            if len(requests) >= n_requests:
                break
            requests.append(
                PartitionRequest(workload(size), N_PARTS, seed=seed, ga=ga)
            )
        seed += 1
    return requests


def _drive(service, requests, width: int) -> tuple[float, list]:
    """Fan the request list at ``width`` concurrency; returns
    (wall seconds, results in request order)."""
    with ThreadPoolExecutor(max_workers=width) as fan:
        t0 = time.perf_counter()
        futures = [fan.submit(service.submit, r) for r in requests]
        results = [f.result() for f in futures]
        wall = time.perf_counter() - t0
    return wall, results


def phase_scaling(
    shards: int, n_requests: int
) -> dict:
    """Sharded + process-mode throughput vs one single-process service.

    The comparison holds the parallelism budget fixed: the
    single-process baseline gets ``shards`` worker threads, the sharded
    service gets ``shards`` worker processes, the process-mode service
    gets ``shards`` process slots — the driver fans requests at the
    same concurrency against each.
    """
    cores = os.cpu_count() or 1
    requests = _scaling_trace(n_requests)

    with PartitionService(n_workers=shards) as single:
        single_s, single_results = _drive(single, requests, shards)

    with ShardedPartitionService(n_shards=shards, n_workers=2) as sharded:
        sharded_s, sharded_results = _drive(sharded, requests, shards)

    with PartitionService(
        n_workers=shards, process_workers=shards, process_threshold=0
    ) as procs:
        process_s, process_results = _drive(procs, requests, shards)

    identical = all(
        np.array_equal(a.assignment, b.assignment)
        and a.cut_size == b.cut_size
        for a, b in zip(single_results, sharded_results)
    )
    process_identical = all(
        np.array_equal(a.assignment, b.assignment)
        and a.cut_size == b.cut_size
        for a, b in zip(single_results, process_results)
    )
    n = len(requests)
    return {
        "cores": cores,
        "shards": shards,
        "requests": n,
        "single_s": round(single_s, 4),
        "sharded_s": round(sharded_s, 4),
        "process_s": round(process_s, 4),
        "single_rps": round(n / max(single_s, 1e-9), 3),
        "sharded_rps": round(n / max(sharded_s, 1e-9), 3),
        "process_rps": round(n / max(process_s, 1e-9), 3),
        "sharded_per_core_rps": round(n / max(sharded_s, 1e-9) / cores, 3),
        "sharded_speedup": round(single_s / max(sharded_s, 1e-9), 2),
        "process_speedup": round(single_s / max(process_s, 1e-9), 2),
        "sharded_identical_to_single": bool(identical),
        "process_identical_to_single": bool(process_identical),
    }


def phase_concurrency(n_clients: int) -> dict:
    """``n_clients`` simultaneous keep-alive connections, mixed traffic.

    Every client opens its own persistent connection to the event-loop
    front (one :class:`HTTPServiceClient` — its connections are
    per-thread), waits on a barrier so all connections are open before
    any traffic, then issues healthz, a greedy partition whose
    ``n_parts``/``seed`` are client-specific, and stats.  Cross-talk
    between connections would surface as a partition answer that does
    not match that client's reference, computed up front against a
    plain in-process service.
    """
    import threading

    cores = os.cpu_count() or 1
    base = paper_mesh(SESSION_BASE)
    shapes = [(2 + i % 3, i % 5) for i in range(n_clients)]
    with PartitionService(n_workers=2) as ref_svc:
        refs = {
            shape: ref_svc.submit(
                PartitionRequest(
                    base, shape[0], seed=shape[1], method="greedy"
                )
            )
            for shape in set(shapes)
        }

    server = serve(port=0, background=True, n_workers=2)
    host, port = server.server_address[:2]
    client = HTTPServiceClient(f"http://{host}:{port}", timeout=300.0)
    latencies: list[float] = []
    failures: list[str] = []
    record = threading.Lock()
    barrier = threading.Barrier(n_clients + 1, timeout=300)

    def worker(idx: int) -> None:
        n_parts, seed = shapes[idx]
        try:
            client.healthy()  # opens this thread's connection
            barrier.wait()
            times = []
            t0 = time.perf_counter()
            assert client.healthy()
            times.append(time.perf_counter() - t0)
            t0 = time.perf_counter()
            answer = client.partition(
                base, n_parts, seed=seed, method="greedy"
            )
            times.append(time.perf_counter() - t0)
            t0 = time.perf_counter()
            client.stats()
            times.append(time.perf_counter() - t0)
            ref = refs[(n_parts, seed)]
            ok = (
                np.array_equal(answer.assignment, ref.assignment)
                and answer.cut_size == ref.cut_size
            )
        except Exception as exc:  # noqa: BLE001 - recorded for the gate
            with record:
                failures.append(f"client {idx}: {exc!r}")
            return
        with record:
            latencies.extend(times)
            if not ok:
                failures.append(f"client {idx}: answer mismatch")

    try:
        threads = [
            threading.Thread(target=worker, args=(i,), daemon=True)
            for i in range(n_clients)
        ]
        for t in threads:
            t.start()
        barrier.wait()
        t0 = time.perf_counter()
        for t in threads:
            t.join(timeout=300)
        wall_s = time.perf_counter() - t0
        hung = sum(t.is_alive() for t in threads)
    finally:
        server.service.close()
        server.shutdown()
        server.server_close()

    n_requests = len(latencies)
    lat_ms = np.sort(np.asarray(latencies)) * 1e3 if latencies else np.zeros(1)
    return {
        "clients": n_clients,
        "cores": cores,
        "requests": n_requests,
        "hung_clients": int(hung),
        "errors": failures[:10],
        "all_matched": not failures and not hung,
        "wall_s": round(wall_s, 4),
        "p50_ms": round(float(np.percentile(lat_ms, 50)), 3),
        "p95_ms": round(float(np.percentile(lat_ms, 95)), 3),
        "rps": round(n_requests / max(wall_s, 1e-9), 3),
        "per_core_rps": round(n_requests / max(wall_s, 1e-9) / cores, 3),
    }


def phase_observability(
    repeats: int, trace_path: Path, max_overhead_pct: float
) -> dict:
    """Tracing + metrics overhead on cache-hit traffic (PR 6).

    Replays ``repeats`` identical requests against a warmed service
    twice — tracing off, then tracing on (ring + JSONL sink) — and
    gates the per-request overhead.  Cache hits are the worst case for
    instrumentation: the request does almost no work, so the span
    bookkeeping is the largest relative cost it will ever be.  The gate
    passes when overhead is within ``max_overhead_pct`` *or* under an
    absolute 50 µs/request floor (relative noise on a ~100 µs path is
    scheduler jitter, not instrumentation).  Answers must be
    bit-identical with tracing on; p50/p95/p99 come from the unified
    metrics registry (``/v1/metrics`` percentiles, not wall-clock
    re-derivation); a sample of the JSONL trace is kept as an artifact.
    """
    ga = dict(TRACE_GA_DEFAULTS)
    base = paper_mesh(SESSION_BASE)

    def replay(**service_kwargs):
        with PartitionService(n_workers=2, **service_kwargs) as service:
            first = service.submit(
                PartitionRequest(base, N_PARTS, seed=0, ga=ga)
            )
            rounds = []
            for _ in range(3):
                t0 = time.perf_counter()
                results = [
                    service.submit(
                        PartitionRequest(base, N_PARTS, seed=0, ga=ga)
                    )
                    for _ in range(repeats)
                ]
                rounds.append(time.perf_counter() - t0)
            metrics = service.metrics()
        per_request = float(np.median(rounds)) / repeats
        return first, results, per_request, metrics

    plain_first, plain, plain_s, _ = replay()
    trace_first, traced, traced_s, metrics = replay(
        trace_enabled=True, trace_jsonl=str(trace_path)
    )

    identical = np.array_equal(
        plain_first.assignment, trace_first.assignment
    ) and all(
        np.array_equal(a.assignment, b.assignment)
        and a.cut_size == b.cut_size
        for a, b in zip(plain, traced)
    )
    overhead_s = traced_s - plain_s
    overhead_pct = overhead_s / max(plain_s, 1e-9) * 100.0
    within = overhead_pct <= max_overhead_pct or overhead_s <= 50e-6
    latency = metrics.get("latency_ms", {}).get("partition", {})
    trace_lines = 0
    if trace_path.exists():
        with open(trace_path) as fh:
            trace_lines = sum(1 for _ in fh)
    return {
        "repeats": repeats,
        "identical_with_tracing": bool(identical),
        "plain_us_per_request": round(plain_s * 1e6, 2),
        "traced_us_per_request": round(traced_s * 1e6, 2),
        "overhead_us_per_request": round(overhead_s * 1e6, 2),
        "overhead_pct": round(overhead_pct, 2),
        "overhead_within_gate": bool(within),
        "max_overhead_pct": max_overhead_pct,
        "registry_p50_ms": latency.get("p50_ms"),
        "registry_p95_ms": latency.get("p95_ms"),
        "registry_p99_ms": latency.get("p99_ms"),
        "trace_sample_lines": int(trace_lines),
        "trace_sample": str(trace_path),
    }


def _wait_for(predicate, timeout: float = 60.0) -> bool:
    deadline = time.time() + timeout
    while time.time() < deadline:
        if predicate():
            return True
        time.sleep(0.05)
    return False


def _submit_with_retry(service, request, tries: int = 5):
    """Requests caught in flight by a shard death fail fast with
    ShardDiedError (never hang); the replay driver retries them, so the
    no-lost-answers gate measures the fleet, not the driver."""
    retries = 0
    for _ in range(tries):
        try:
            return service.submit(request), retries
        except ShardDiedError:
            retries += 1
            time.sleep(0.2)
    raise SystemExit("failover phase: request lost after retries")


def phase_failover() -> dict:
    """Kill + restart one of 2 shards under replayed traffic.

    Gates: (a) no lost answers — every concurrent request answers,
    bit-identical to an uninterrupted single-process run; (b) the
    killed shard's open session resumes from its snapshot with
    bit-identical assignments; (c) warm-cache speedup is retained
    after restart (a repeated request hits the restarted shard's
    cache).
    """
    ga = dict(TRACE_GA_DEFAULTS)
    base = paper_mesh(SESSION_BASE)
    session_updates = []
    graph = base
    for step in range(2):
        graph = insert_local_nodes(
            graph, SESSION_STEP_NODES, seed=2000 + step
        ).graph
        session_updates.append(graph)
    requests = [
        PartitionRequest(workload(size), N_PARTS, seed=s, ga=ga)
        for s in range(2)
        for size in BASE_SIZES
    ]

    # uninterrupted single-process reference (the bit-identity oracle)
    with PartitionService(n_workers=2) as ref_svc:
        ref_results = [ref_svc.submit(r) for r in requests]
        ref_open = ref_svc.open_session(base, N_PARTS, seed=0, ga=ga)
        ref_updates = [
            ref_svc.update_session(UpdateRequest(ref_open.session_id, g))
            for g in session_updates
        ]

    lost = 0
    retried = 0
    with ShardedPartitionService(n_shards=2, n_workers=2) as svc:
        target = svc.shard_of(base)
        opened = svc.open_session(base, N_PARTS, seed=0, ga=ga)
        u1 = svc.update_session(
            UpdateRequest(opened.session_id, session_updates[0])
        )

        # fan the trace while the session's shard is killed mid-flight;
        # a watcher thread times the actual kill→up supervisor latency
        # (timing it after the trace drains would fold GA/retry time —
        # trace-size noise — into the restart_s trajectory metric)
        import threading

        restart_seen: dict = {}

        def watch_restart(t_kill: float) -> None:
            if _wait_for(
                lambda: svc.shard_health()[target]["state"] == "up"
                and svc.shard_health()[target]["restarts"] >= 1
            ):
                restart_seen["s"] = time.perf_counter() - t_kill

        with ThreadPoolExecutor(max_workers=4) as fan:
            futures = [
                fan.submit(_submit_with_retry, svc, r) for r in requests
            ]
            time.sleep(0.05)  # let requests reach the shards
            t_kill = time.perf_counter()
            svc._slots[target].handle.process.kill()
            watcher = threading.Thread(target=watch_restart, args=(t_kill,))
            watcher.start()
            outcomes = []
            for future in futures:
                try:
                    outcomes.append(future.result())
                except SystemExit:
                    lost += 1
                    outcomes.append(None)
        watcher.join()
        restarted = "s" in restart_seen
        restart_s = restart_seen.get("s", -1.0)
        retried = sum(o[1] for o in outcomes if o is not None)
        identical = restarted and all(
            o is not None
            and np.array_equal(o[0].assignment, ref.assignment)
            and o[0].cut_size == ref.cut_size
            for o, ref in zip(outcomes, ref_results)
        )

        # (b) the session crossed the crash: resumes bit-identically
        u2 = svc.update_session(
            UpdateRequest(opened.session_id, session_updates[1])
        )
        session_resumed = (
            np.array_equal(u1.assignment, ref_updates[0].assignment)
            and np.array_equal(u2.assignment, ref_updates[1].assignment)
            and u2.session_id == opened.session_id
        )

        # (c) warm-cache speedup retained: repeat a request routed to
        # the restarted shard — recomputed once cold, then a cache hit
        probe = PartitionRequest(base, N_PARTS, seed=0, ga=ga)
        cold = svc.submit(probe)
        warm = svc.submit(probe)
        cache_retained = bool(warm.cache_hit)
        repeat_speedup = cold.latency_s / max(warm.latency_s, 1e-9)
        restarts = svc.shard_health()[target]["restarts"]

    return {
        "requests": len(requests),
        "lost_answers": int(lost),
        "retried_after_death": int(retried),
        "restarted": bool(restarted),
        "restarts": int(restarts),
        "restart_s": round(restart_s, 4),
        "answers_identical_to_single": bool(identical),
        "session_resumed_identical": bool(session_resumed),
        "post_restart_cache_hit": bool(cache_retained),
        "post_restart_repeat_speedup": round(repeat_speedup, 1),
    }


def phase_elastic() -> dict:
    """Grow a 2-shard fleet to 4 under replayed traffic (PR 10).

    Gates: (a) zero lost answers — every request issued across the
    resize answers, bit-identical to an uninterrupted single-process
    run; (b) the open session crosses the resize (handed to its new
    ring owner over the snapshot store) with bit-identical updates;
    (c) the warm-hit rate is preserved — every answer served at width
    2 repeats as a cache hit at width 4, because the grow re-seeds the
    new owners from the per-shard write-behind journals.
    """
    ga = dict(TRACE_GA_DEFAULTS)
    base = paper_mesh(SESSION_BASE)
    session_updates = []
    graph = base
    for step in range(2):
        graph = insert_local_nodes(
            graph, SESSION_STEP_NODES, seed=3000 + step
        ).graph
        session_updates.append(graph)
    requests = [
        PartitionRequest(workload(size), N_PARTS, seed=s, ga=ga)
        for s in range(2)
        for size in BASE_SIZES
    ]

    # uninterrupted single-process reference (the bit-identity oracle)
    with PartitionService(n_workers=2) as ref_svc:
        ref_results = [ref_svc.submit(r) for r in requests]
        ref_open = ref_svc.open_session(base, N_PARTS, seed=0, ga=ga)
        ref_updates = [
            ref_svc.update_session(UpdateRequest(ref_open.session_id, g))
            for g in session_updates
        ]

    lost = 0
    with ShardedPartitionService(n_shards=2, n_workers=2) as svc:
        opened = svc.open_session(base, N_PARTS, seed=0, ga=ga)
        u1 = svc.update_session(
            UpdateRequest(opened.session_id, session_updates[0])
        )
        # serve everything once at width 2: warms the shards' caches
        # and fills the write-behind journals the grow re-seeds from
        pre = [svc.submit(r) for r in requests]
        pre_identical = all(
            np.array_equal(a.assignment, ref.assignment)
            for a, ref in zip(pre, ref_results)
        )

        # grow 2→4 while the same trace is replayed concurrently; any
        # request caught by the topology swap fails fast and retries
        t0 = time.perf_counter()
        with ThreadPoolExecutor(max_workers=4) as fan:
            futures = [
                fan.submit(_submit_with_retry, svc, r) for r in requests
            ]
            summary = svc.resize(4)
            outcomes = []
            for future in futures:
                try:
                    outcomes.append(future.result())
                except SystemExit:
                    lost += 1
                    outcomes.append(None)
        resize_s = time.perf_counter() - t0
        retried = sum(o[1] for o in outcomes if o is not None)
        identical = pre_identical and all(
            o is not None
            and np.array_equal(o[0].assignment, ref.assignment)
            and o[0].cut_size == ref.cut_size
            for o, ref in zip(outcomes, ref_results)
        )
        grown = (
            bool(summary["changed"])
            and svc.n_shards == 4
            and sorted(svc.ring.members) == [0, 1, 2, 3]
        )

        # (b) the session crossed the resize: resumes bit-identically
        u2 = svc.update_session(
            UpdateRequest(opened.session_id, session_updates[1])
        )
        session_crossed = (
            np.array_equal(u1.assignment, ref_updates[0].assignment)
            and np.array_equal(u2.assignment, ref_updates[1].assignment)
            and u2.session_id == opened.session_id
        )

        # (c) warm-hit rate preserved: width-2 answers repeat as hits
        # at width 4, wherever the ring routes them now
        post = [svc.submit(r) for r in requests]
        warm_hits = sum(1 for r in post if r.cache_hit)
        post_identical = all(
            np.array_equal(a.assignment, ref.assignment)
            for a, ref in zip(post, ref_results)
        )
        ring_epoch = svc.ring.epoch

    return {
        "requests": len(requests),
        "lost_answers": int(lost),
        "retried_during_resize": int(retried),
        "grown_to": 4,
        "grown": bool(grown),
        "ring_epoch": int(ring_epoch),
        "resize_s": round(resize_s, 4),
        "sessions_moved": len(summary["sessions_moved"]),
        "results_warmed": int(summary["results_warmed"]),
        "answers_identical_to_single": bool(identical and post_identical),
        "session_crossed_resize_identical": bool(session_crossed),
        "warm_hits_after_grow": int(warm_hits),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--requests", type=int, default=20,
                        help="mixed requests in the HTTP replay phase")
    parser.add_argument("--repeats", type=int, default=10,
                        help="repeated identical requests in the warm phase")
    parser.add_argument("--updates", type=int, default=3,
                        help="incremental session updates in the warm phase")
    parser.add_argument("--min-warm-speedup", type=float, default=5.0,
                        help="floor for warm/cold aggregate throughput")
    parser.add_argument("--scaling-shards", type=int, default=4,
                        help="shards / workers in the scaling phase")
    parser.add_argument("--scaling-requests", type=int, default=12,
                        help="distinct CPU-bound requests per scaling run")
    parser.add_argument("--min-shard-speedup", type=float, default=2.0,
                        help="sharded vs single-process throughput floor "
                             "(enforced only on machines with >= 4 cores)")
    parser.add_argument("--concurrency-clients", type=int, default=256,
                        help="simultaneous keep-alive connections in the "
                             "concurrency phase")
    parser.add_argument("--max-concurrency-p95-ms", type=float, default=2000.0,
                        help="client-side p95 latency ceiling in the "
                             "concurrency phase (enforced only on machines "
                             "with >= 4 cores)")
    parser.add_argument("--obs-repeats", type=int, default=200,
                        help="cache-hit requests per round in the "
                             "observability overhead phase")
    parser.add_argument("--max-trace-overhead-pct", type=float, default=5.0,
                        help="ceiling for tracing overhead on cache-hit "
                             "traffic (an absolute 50 µs/request floor "
                             "absorbs sub-noise paths)")
    parser.add_argument(
        "--out", type=Path,
        default=Path(__file__).parent / "SERVICE_metrics.json",
    )
    args = parser.parse_args(argv)

    failures: list[str] = []

    warm = phase_warm_vs_cold(args.repeats, args.updates)
    if not warm["repeat_identical_to_cold"]:
        failures.append(
            "repeated service answers are not bit-identical to cold runs"
        )
    if warm["cache_hits"] < args.repeats:
        failures.append(
            f"expected {args.repeats} cache hits, saw {warm['cache_hits']}"
        )
    if warm["aggregate_speedup"] < args.min_warm_speedup:
        failures.append(
            f"warm/cold aggregate speedup {warm['aggregate_speedup']}x "
            f"below floor {args.min_warm_speedup}x"
        )

    http = phase_http_replay(args.requests)
    if http["p50_ms"] is None:
        failures.append("HTTP replay recorded no latency samples")
    if http["cache_hits"] < 1:
        failures.append("HTTP replay produced no cache hits")
    if http["sessions"]["updates"] < 1:
        failures.append("HTTP replay exercised no incremental updates")

    failover = phase_failover()
    if failover["lost_answers"]:
        failures.append(
            f"failover lost {failover['lost_answers']} answer(s) — "
            "requests must fail fast and succeed on retry"
        )
    if not failover["restarted"]:
        failures.append("killed shard was not restarted by the supervisor")
    if not failover["answers_identical_to_single"]:
        failures.append(
            "post-failover answers are not bit-identical to single-process"
        )
    if not failover["session_resumed_identical"]:
        failures.append(
            "session did not resume bit-identically from its snapshot"
        )
    if not failover["post_restart_cache_hit"]:
        failures.append(
            "restarted shard did not retain warm-cache behavior "
            "(repeat was not a cache hit)"
        )

    elastic = phase_elastic()
    if elastic["lost_answers"]:
        failures.append(
            f"elastic grow lost {elastic['lost_answers']} answer(s) — "
            "requests must fail fast and succeed on retry across a resize"
        )
    if not elastic["grown"]:
        failures.append("fleet did not grow to 4 ring members")
    if not elastic["answers_identical_to_single"]:
        failures.append(
            "answers across the grow are not bit-identical to single-process"
        )
    if not elastic["session_crossed_resize_identical"]:
        failures.append(
            "session did not cross the resize bit-identically"
        )
    if elastic["warm_hits_after_grow"] < elastic["requests"]:
        failures.append(
            f"warm-hit rate not preserved across the grow: "
            f"{elastic['warm_hits_after_grow']}/{elastic['requests']} "
            "repeats hit the cache"
        )

    concurrency = phase_concurrency(args.concurrency_clients)
    if not concurrency["all_matched"]:
        failures.append(
            f"concurrency phase: {concurrency['hung_clients']} hung "
            f"client(s), errors: {concurrency['errors'][:3]}"
        )
    if concurrency["cores"] >= 4:
        if concurrency["p95_ms"] > args.max_concurrency_p95_ms:
            failures.append(
                f"concurrency p95 {concurrency['p95_ms']} ms over the "
                f"{args.max_concurrency_p95_ms} ms ceiling on "
                f"{concurrency['cores']} cores"
            )
        concurrency["gate"] = f"enforced <= {args.max_concurrency_p95_ms} ms"
    else:
        # one core serializes 256 Python client threads — latency is
        # the clients contending, not the front; identity (zero
        # cross-talk, zero hangs) is still fully gated above
        concurrency["gate"] = (
            f"skipped: {concurrency['cores']} core(s) < 4 (p95 recorded, "
            "identity still enforced)"
        )

    obs = phase_observability(
        args.obs_repeats,
        args.out.parent / "SERVICE_trace_sample.jsonl",
        args.max_trace_overhead_pct,
    )
    if not obs["identical_with_tracing"]:
        failures.append("answers changed with tracing enabled")
    if not obs["overhead_within_gate"]:
        failures.append(
            f"tracing overhead {obs['overhead_pct']}% "
            f"({obs['overhead_us_per_request']} µs/request) over the "
            f"{args.max_trace_overhead_pct}% gate"
        )
    if obs["registry_p50_ms"] is None:
        failures.append("metrics registry recorded no latency histogram")
    if obs["trace_sample_lines"] < 1:
        failures.append("tracing wrote no JSONL span records")

    scaling = phase_scaling(args.scaling_shards, args.scaling_requests)
    if not scaling["sharded_identical_to_single"]:
        failures.append(
            "sharded responses are not bit-identical to single-process"
        )
    if not scaling["process_identical_to_single"]:
        failures.append(
            "process-lane responses are not bit-identical to thread lane"
        )
    if scaling["cores"] >= 4:
        if scaling["sharded_speedup"] < args.min_shard_speedup:
            failures.append(
                f"sharded throughput {scaling['sharded_speedup']}x single-"
                f"process, below floor {args.min_shard_speedup}x on "
                f"{scaling['cores']} cores"
            )
        scaling["gate"] = f"enforced >= {args.min_shard_speedup}x"
    else:
        # a process can't out-parallel a thread without cores to run
        # on; correctness (bit-identity) is still fully gated above
        scaling["gate"] = (
            f"skipped: {scaling['cores']} core(s) < 4 (throughput "
            "recorded, identity still enforced)"
        )

    report = {
        "scale": {
            "session_base": SESSION_BASE,
            "session_step_nodes": SESSION_STEP_NODES,
            "n_parts": N_PARTS,
            "trace_ga": TRACE_GA_DEFAULTS,
        },
        "min_warm_speedup": args.min_warm_speedup,
        "warm_vs_cold": warm,
        "http_replay": http,
        "scaling": scaling,
        "failover_detail": failover,
        "elastic_detail": elastic,
        "concurrency_detail": concurrency,
        "observability_detail": obs,
        # flat sections bench_trajectory.py renders across commits
        "serving": {
            "warm_cold_speedup_x": warm["aggregate_speedup"],
            "http_p50_ms": http["p50_ms"],
            "sharded_speedup_x": scaling["sharded_speedup"],
            "process_speedup_x": scaling["process_speedup"],
            "sharded_per_core_rps": scaling["sharded_per_core_rps"],
        },
        "failover": {
            "lost_answers": failover["lost_answers"],
            "restart_s": failover["restart_s"],
            "resumed_identical": int(failover["session_resumed_identical"]),
            "post_restart_cache_hit": int(failover["post_restart_cache_hit"]),
            "post_restart_repeat_speedup_x": failover[
                "post_restart_repeat_speedup"
            ],
        },
        "elastic": {
            "lost_answers": elastic["lost_answers"],
            "resize_s": elastic["resize_s"],
            "ring_epoch": elastic["ring_epoch"],
            "sessions_moved": elastic["sessions_moved"],
            "results_warmed": elastic["results_warmed"],
            "answers_identical": int(elastic["answers_identical_to_single"]),
            "warm_hits_after_grow": elastic["warm_hits_after_grow"],
        },
        "concurrency": {
            "clients": concurrency["clients"],
            "p50_ms": concurrency["p50_ms"],
            "p95_ms": concurrency["p95_ms"],
            "rps": concurrency["rps"],
            "per_core_rps": concurrency["per_core_rps"],
        },
        "observability": {
            "trace_overhead_pct": obs["overhead_pct"],
            "trace_overhead_us": obs["overhead_us_per_request"],
            "traced_identical": int(obs["identical_with_tracing"]),
            "registry_p50_ms": obs["registry_p50_ms"],
            "registry_p99_ms": obs["registry_p99_ms"],
        },
        "ok": not failures,
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    for msg in failures:
        print(f"FAIL: {msg}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
