#!/usr/bin/env python
"""Smoke + load test of the partition service (``repro.service``).

Three phases, all deterministic:

1. **Warm vs cold** — the acceptance measurement of the serving layer.
   Repeated one-shot traffic and incremental-session traffic are served
   by a live :class:`PartitionService` (content cache, warm
   partitioners) and timed against *cold per-request runs*: the same
   work performed the way the one-shot CLI does it, a fresh
   ``partition_graph`` per request with the identical effective
   GAConfig.  The guard requires the warm aggregate throughput to beat
   cold by ``--min-warm-speedup`` (default 5x) **and** repeated-request
   answers to be bit-identical to the cold run at the same seed.
2. **HTTP replay** — a ~20-request mixed trace from
   :func:`repro.experiments.service_trace` (one-shot + repeated +
   incremental sessions) replayed over a real ``ThreadingHTTPServer``
   through :class:`HTTPServiceClient`; p50 latency and cache-hit
   counters come from the service's own stats endpoint.
3. **Report** — everything lands in ``SERVICE_metrics.json`` next to
   ``BENCH_metrics.json`` so CI archives the serving trajectory
   alongside the kernel trajectory.

Usage::

    PYTHONPATH=src python benchmarks/bench_service.py \
        [--requests 20] [--repeats 10] [--updates 3] \
        [--min-warm-speedup 5.0] [--out benchmarks/SERVICE_metrics.json]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro import partition_graph
from repro.experiments import TRACE_GA_DEFAULTS, replay_trace, service_trace
from repro.experiments.workloads import incremental_case
from repro.ga.config import GAConfig
from repro.graphs import paper_mesh
from repro.incremental.updates import insert_local_nodes
from repro.service import (
    DEFAULT_GA_OVERRIDES,
    HTTPServiceClient,
    PartitionRequest,
    PartitionService,
    serve,
)

#: the canonical incremental case the session phase replays
SESSION_BASE = 78
SESSION_STEP_NODES = 10
N_PARTS = 4


def effective_config(ga: dict) -> GAConfig:
    """The GAConfig the service resolves for a dknux request with
    overrides ``ga`` — cold runs must use exactly this to be a fair
    (and bit-identical) baseline."""
    return GAConfig(**{**DEFAULT_GA_OVERRIDES, **ga})


def phase_warm_vs_cold(repeats: int, updates: int) -> dict:
    """Serve repeated + session traffic warm; time the cold equivalent."""
    ga = dict(TRACE_GA_DEFAULTS)
    config = effective_config(ga)
    base = paper_mesh(SESSION_BASE)

    with PartitionService(n_workers=2) as service:
        # -- repeated one-shot traffic --------------------------------
        request = PartitionRequest(base, N_PARTS, seed=0, ga=ga)
        first = service.submit(request)  # populates the cache
        t0 = time.perf_counter()
        warm_results = [
            service.submit(PartitionRequest(base, N_PARTS, seed=0, ga=ga))
            for _ in range(repeats)
        ]
        warm_repeat_s = time.perf_counter() - t0
        hits = sum(r.cache_hit for r in warm_results)

        # cold equivalent: fresh engine + graph state per request, the
        # way `repro-partition partition` pays for it. The cold path is
        # deterministic, so per-run variance is scheduler noise — use
        # the median of 3 timed runs, scaled to the request count.
        n_cold = min(3, repeats)
        cold_parts = []
        cold_times = []
        for _ in range(n_cold):
            t0 = time.perf_counter()
            cold_parts.append(
                partition_graph(
                    paper_mesh(SESSION_BASE), N_PARTS, config=config, seed=0
                )
            )
            cold_times.append(time.perf_counter() - t0)
        cold_repeat_s = float(np.median(cold_times)) * repeats

        identical = all(
            np.array_equal(r.assignment, cold_parts[0].assignment)
            for r in warm_results
        ) and np.array_equal(first.assignment, cold_parts[0].assignment)

        # -- incremental session traffic ------------------------------
        opened = service.open_session(base, N_PARTS, seed=0, ga=ga)
        graphs = []
        graph = base
        for step in range(updates):
            graph = insert_local_nodes(
                graph, SESSION_STEP_NODES, seed=1000 + step
            ).graph
            graphs.append(graph)
        t0 = time.perf_counter()
        session_cuts = []
        from repro.service.models import UpdateRequest

        for graph in graphs:
            result = service.update_session(
                UpdateRequest(opened.session_id, graph)
            )
            session_cuts.append(result.cut_size)
        warm_session_s = time.perf_counter() - t0
        service.close_session(opened.session_id)

        # cold equivalent: partition each updated graph from scratch
        t0 = time.perf_counter()
        cold_session_cuts = [
            partition_graph(graph, N_PARTS, config=config, seed=0).cut_size
            for graph in graphs
        ]
        cold_session_s = time.perf_counter() - t0

        stats = service.stats()

    warm_total = warm_repeat_s + warm_session_s
    cold_total = cold_repeat_s + cold_session_s
    return {
        "repeats": repeats,
        "updates": updates,
        "cache_hits": int(hits),
        "repeat_identical_to_cold": bool(identical),
        "warm_repeat_s": round(warm_repeat_s, 4),
        "cold_repeat_s": round(cold_repeat_s, 4),
        "repeat_speedup": round(cold_repeat_s / max(warm_repeat_s, 1e-9), 1),
        "warm_session_s": round(warm_session_s, 4),
        "cold_session_s": round(cold_session_s, 4),
        "session_speedup": round(cold_session_s / max(warm_session_s, 1e-9), 2),
        "session_cuts": session_cuts,
        "cold_session_cuts": cold_session_cuts,
        "warm_total_s": round(warm_total, 4),
        "cold_total_s": round(cold_total, 4),
        "aggregate_speedup": round(cold_total / max(warm_total, 1e-9), 2),
        "service_stats": stats,
    }


def phase_http_replay(n_requests: int) -> dict:
    """Replay a mixed trace over a real HTTP server; report p50 + hits."""
    server = serve(port=0, background=True, n_workers=2)
    host, port = server.server_address
    client = HTTPServiceClient(f"http://{host}:{port}", timeout=300.0)
    try:
        assert client.healthy(), "service /v1/healthz failed"
        trace = service_trace(n_requests=n_requests, seed=0, n_parts=N_PARTS)
        t0 = time.perf_counter()
        results = replay_trace(client, trace)
        wall_s = time.perf_counter() - t0
        stats = client.stats()
    finally:
        server.service.close()
        server.shutdown()
        server.server_close()
    op_counts: dict[str, int] = {}
    for op, _ in results:
        op_counts[op["op"]] = op_counts.get(op["op"], 0) + 1
    return {
        "requests": len(trace),
        "op_counts": op_counts,
        "wall_s": round(wall_s, 4),
        "p50_ms": stats["latency"].get("p50_ms"),
        "p95_ms": stats["latency"].get("p95_ms"),
        "session_p50_ms": stats["session_latency"].get("p50_ms"),
        "cache_hits": stats["cache"]["results"]["hits"],
        "cache_misses": stats["cache"]["results"]["misses"],
        "graphs_interned": stats["cache"]["graphs"]["interned"],
        "sessions": stats["sessions"],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--requests", type=int, default=20,
                        help="mixed requests in the HTTP replay phase")
    parser.add_argument("--repeats", type=int, default=10,
                        help="repeated identical requests in the warm phase")
    parser.add_argument("--updates", type=int, default=3,
                        help="incremental session updates in the warm phase")
    parser.add_argument("--min-warm-speedup", type=float, default=5.0,
                        help="floor for warm/cold aggregate throughput")
    parser.add_argument(
        "--out", type=Path,
        default=Path(__file__).parent / "SERVICE_metrics.json",
    )
    args = parser.parse_args(argv)

    failures: list[str] = []

    warm = phase_warm_vs_cold(args.repeats, args.updates)
    if not warm["repeat_identical_to_cold"]:
        failures.append(
            "repeated service answers are not bit-identical to cold runs"
        )
    if warm["cache_hits"] < args.repeats:
        failures.append(
            f"expected {args.repeats} cache hits, saw {warm['cache_hits']}"
        )
    if warm["aggregate_speedup"] < args.min_warm_speedup:
        failures.append(
            f"warm/cold aggregate speedup {warm['aggregate_speedup']}x "
            f"below floor {args.min_warm_speedup}x"
        )

    http = phase_http_replay(args.requests)
    if http["p50_ms"] is None:
        failures.append("HTTP replay recorded no latency samples")
    if http["cache_hits"] < 1:
        failures.append("HTTP replay produced no cache hits")
    if http["sessions"]["updates"] < 1:
        failures.append("HTTP replay exercised no incremental updates")

    report = {
        "scale": {
            "session_base": SESSION_BASE,
            "session_step_nodes": SESSION_STEP_NODES,
            "n_parts": N_PARTS,
            "trace_ga": TRACE_GA_DEFAULTS,
        },
        "min_warm_speedup": args.min_warm_speedup,
        "warm_vs_cold": warm,
        "http_replay": http,
        "ok": not failures,
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    for msg in failures:
        print(f"FAIL: {msg}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
