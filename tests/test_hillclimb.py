"""Tests for boundary hill-climbing (paper Section 3.6)."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.ga import Fitness1, Fitness2, HillClimber
from repro.graphs import caveman_graph, grid2d, mesh_graph
from repro.partition import random_balanced_assignment


class TestCorrectness:
    @pytest.mark.parametrize("fitness_cls", [Fitness1, Fitness2])
    def test_reported_fitness_is_true_fitness(self, fitness_cls, mesh60, rng):
        fit = fitness_cls(mesh60, 4)
        hc = HillClimber(mesh60, fit)
        for _ in range(10):
            a = random_balanced_assignment(60, 4, seed=rng)
            improved, value = hc.improve(a, max_passes=3)
            assert np.isclose(value, fit.evaluate(improved))

    @pytest.mark.parametrize("fitness_cls", [Fitness1, Fitness2])
    def test_never_worsens(self, fitness_cls, mesh60, rng):
        fit = fitness_cls(mesh60, 4)
        hc = HillClimber(mesh60, fit)
        for _ in range(10):
            a = random_balanced_assignment(60, 4, seed=rng)
            _, value = hc.improve(a, max_passes=2)
            assert value >= fit.evaluate(a) - 1e-9

    def test_weighted_graph_deltas(self, rng):
        """Incremental deltas must be right for non-unit weights too."""
        g = mesh_graph(40, seed=3).with_weights(
            node_weights=np.linspace(1, 3, 40),
            edge_weights=None,
        )
        fit = Fitness1(g, 3)
        hc = HillClimber(g, fit)
        a = random_balanced_assignment(40, 3, seed=1)
        improved, value = hc.improve(a, max_passes=4)
        assert np.isclose(value, fit.evaluate(improved))
        assert value >= fit.evaluate(a)

    def test_local_optimum_is_fixed_point(self, mesh60):
        fit = Fitness1(mesh60, 2)
        hc = HillClimber(mesh60, fit)
        a = random_balanced_assignment(60, 2, seed=9)
        first, v1 = hc.improve(a, max_passes=50)
        second, v2 = hc.improve(first, max_passes=5)
        assert v2 == v1
        assert np.array_equal(first, second)

    def test_finds_obvious_optimum_on_caveman(self):
        """From a mildly scrambled caveman partition, hill climbing should
        restore the clique structure."""
        g = caveman_graph(2, 6)
        fit = Fitness1(g, 2)
        hc = HillClimber(g, fit)
        a = np.array([0] * 6 + [1] * 6)
        a[0], a[6] = 1, 0  # swap one node each way
        improved, _ = hc.improve(a, max_passes=5)
        p_cut = fit.evaluate(improved)
        ideal = np.array([0] * 6 + [1] * 6)
        assert p_cut == fit.evaluate(ideal)


class TestBatchAndKnobs:
    def test_improve_batch_improves_each_row(self, mesh60, rng):
        fit = Fitness1(mesh60, 4)
        hc = HillClimber(mesh60, fit)
        pop = np.vstack(
            [random_balanced_assignment(60, 4, seed=rng) for _ in range(6)]
        )
        before = fit.evaluate_batch(pop)
        out, after = hc.improve_batch(pop, max_passes=2)
        assert np.all(after >= before - 1e-9)
        assert out.shape == pop.shape
        # the returned fitness is exactly the batch evaluation of the rows
        assert np.array_equal(after, fit.evaluate_batch(out))

    def test_rng_shuffles_scan_order(self, mesh60):
        fit = Fitness1(mesh60, 4)
        hc = HillClimber(mesh60, fit)
        a = random_balanced_assignment(60, 4, seed=3)
        det1, _ = hc.improve(a, max_passes=1)
        det2, _ = hc.improve(a, max_passes=1)
        assert np.array_equal(det1, det2)  # deterministic without rng

    def test_unsupported_fitness_rejected(self, mesh60):
        class Weird:
            pass

        with pytest.raises(ConfigError):
            HillClimber(mesh60, Weird())

    def test_fitness2_max_tracking(self, rng):
        """Fitness2 climbs must track the max over *all* parts, not just
        source/destination."""
        g = grid2d(6, 6)
        fit = Fitness2(g, 4)
        hc = HillClimber(g, fit)
        for seed in range(5):
            a = random_balanced_assignment(36, 4, seed=seed)
            improved, value = hc.improve(a, max_passes=3)
            assert np.isclose(value, fit.evaluate(improved))
