"""Tests for GAConfig validation and GAHistory bookkeeping."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.ga import (
    GAConfig,
    GAHistory,
    PAPER_CROSSOVER_RATE,
    PAPER_MUTATION_RATE,
    PAPER_POPULATION,
)


class TestGAConfig:
    def test_defaults_match_paper(self):
        cfg = GAConfig()
        assert cfg.population_size == PAPER_POPULATION == 320
        assert cfg.crossover_rate == PAPER_CROSSOVER_RATE == 0.7
        assert cfg.mutation_rate == PAPER_MUTATION_RATE == 0.01

    def test_paper_factory_overrides(self):
        cfg = GAConfig.paper(max_generations=50)
        assert cfg.population_size == 320
        assert cfg.max_generations == 50

    def test_with_updates_functional(self):
        cfg = GAConfig()
        cfg2 = cfg.with_updates(population_size=10)
        assert cfg.population_size == 320
        assert cfg2.population_size == 10

    def test_frozen(self):
        cfg = GAConfig()
        with pytest.raises(AttributeError):
            cfg.population_size = 5

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"population_size": 1},
            {"crossover_rate": 1.5},
            {"crossover_rate": -0.1},
            {"mutation_rate": 2.0},
            {"max_generations": -1},
            {"patience": 0},
            {"selection": "best"},
            {"tournament_size": 0},
            {"replacement": "steady"},
            {"elite": -1},
            {"elite": 999},
            {"hill_climb": "sometimes"},
            {"hill_climb_passes": 0},
            {"mutation": "swap"},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            GAConfig(**kwargs)

    def test_valid_extremes(self):
        GAConfig(crossover_rate=0.0, mutation_rate=0.0, max_generations=0)
        GAConfig(crossover_rate=1.0, mutation_rate=1.0)


class TestGAHistory:
    def test_record_and_stats(self):
        h = GAHistory()
        h.record(np.array([-5.0, -1.0, -3.0]), best_cut=10, best_worst_cut=6, evaluations=3)
        h.record(np.array([-4.0, -0.5, -2.0]), best_cut=8, best_worst_cut=5, evaluations=3)
        assert h.n_generations == 2
        assert h.best_fitness == [-1.0, -0.5]
        assert h.mean_fitness[0] == -3.0
        assert h.worst_fitness == [-5.0, -4.0]
        assert h.best_cut == [10.0, 8.0]
        assert h.n_evaluations == 6
        assert h.n_improvements == 2

    def test_no_improvement_not_counted(self):
        h = GAHistory()
        h.record(np.array([-1.0]), 5, 5, 1)
        h.record(np.array([-1.0]), 5, 5, 1)
        h.record(np.array([-2.0]), 6, 6, 1)
        assert h.n_improvements == 1

    def test_generations_since_improvement(self):
        h = GAHistory()
        for f in [-3.0, -2.0, -2.0, -2.0]:
            h.record(np.array([f]), 1, 1, 1)
        assert h.generations_since_improvement() == 2

    def test_generations_since_improvement_empty(self):
        assert GAHistory().generations_since_improvement() == 0

    def test_as_arrays(self):
        h = GAHistory()
        h.record(np.array([-1.0, -2.0]), 4, 3, 2)
        arrays = h.as_arrays()
        assert set(arrays) == {
            "best_fitness",
            "mean_fitness",
            "worst_fitness",
            "best_cut",
            "best_worst_cut",
        }
        assert arrays["best_fitness"].tolist() == [-1.0]

    def test_repr(self):
        h = GAHistory()
        assert "empty" in repr(h)
        h.record(np.array([-1.0]), 1, 1, 1)
        assert "generations=1" in repr(h)
