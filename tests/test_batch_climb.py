"""Equivalence and reproducibility tests for the vectorized batch climber.

Two contracts from this PR:

* :func:`repro.ga.batch_climb.climb_batch` in deterministic scan order
  is **bit-identical** to climbing each row with the scalar
  ``HillClimber._climb`` reference — across weighted and unweighted
  graphs, part counts, both fitness functions, pass budgets, and any
  row chunking;
* same-seed :class:`repro.ga.ParallelDPGA` runs produce identical
  results for any ``n_workers`` (islands are pinned to worker
  processes), and their histories carry real cut metrics instead of
  the old ``0.0`` placeholders.
"""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.ga import (
    DPGAConfig,
    Fitness1,
    Fitness2,
    GAConfig,
    HillClimber,
    ParallelDPGA,
    climb_batch,
)
from repro.ga.population import random_population
from repro.graphs import mesh_graph


def scalar_reference(hc: HillClimber, pop: np.ndarray, passes: int) -> np.ndarray:
    """Per-row scalar climb — the trajectory the batch kernel must match."""
    out = np.empty_like(pop)
    for r in range(pop.shape[0]):
        out[r] = hc._climb(pop[r], passes, None)
    return out


def make_graph(weights: str):
    g = mesh_graph(64, seed=5)
    if weights == "unit":
        return g
    rng = np.random.default_rng(3)
    if weights == "integer":
        return g.with_weights(
            node_weights=rng.integers(1, 4, g.n_nodes).astype(np.float64),
            edge_weights=rng.integers(1, 5, g.n_edges).astype(np.float64),
        )
    # fractional edge weights force the metrics' direct (non-identity)
    # cut kernel, exercising the climber on that accumulation path too
    return g.with_weights(
        node_weights=rng.integers(1, 4, g.n_nodes).astype(np.float64),
        edge_weights=rng.uniform(0.5, 2.0, g.n_edges),
    )


class TestBitEquivalence:
    @pytest.mark.parametrize("weights", ["unit", "integer", "fractional"])
    @pytest.mark.parametrize("k", [2, 4, 16])
    @pytest.mark.parametrize("fitness_cls", [Fitness1, Fitness2])
    def test_matches_scalar_bit_for_bit(self, weights, k, fitness_cls):
        g = make_graph(weights)
        fit = fitness_cls(g, k)
        hc = HillClimber(g, fit)
        pop = random_population(g.n_nodes, k, 12, seed=7)
        for passes in (1, 3):
            ref = scalar_reference(hc, pop, passes)
            out = climb_batch(g, fit, pop, max_passes=passes)
            assert np.array_equal(out, ref)

    def test_improve_batch_dispatches_to_kernel(self):
        g = make_graph("unit")
        fit = Fitness2(g, 4)
        hc = HillClimber(g, fit)
        pop = random_population(g.n_nodes, 4, 8, seed=2)
        ref = scalar_reference(hc, pop, 2)
        out, values = hc.improve_batch(pop, max_passes=2)
        assert np.array_equal(out, ref)
        assert np.array_equal(values, fit.evaluate_batch(ref))

    @pytest.mark.parametrize("chunk_rows", [1, 3, 7])
    def test_chunking_never_changes_results(self, chunk_rows):
        g = make_graph("integer")
        fit = Fitness1(g, 4)
        pop = random_population(g.n_nodes, 4, 10, seed=9)
        full = climb_batch(g, fit, pop, max_passes=2)
        chunked = climb_batch(g, fit, pop, max_passes=2, chunk_rows=chunk_rows)
        assert np.array_equal(full, chunked)

    def test_runs_to_fixed_point_like_scalar(self):
        """A generous pass budget must terminate at the same local
        optimum the scalar climber reaches (early per-row stop)."""
        g = make_graph("unit")
        fit = Fitness1(g, 3)
        hc = HillClimber(g, fit)
        pop = random_population(g.n_nodes, 3, 6, seed=4)
        ref = scalar_reference(hc, pop, 50)
        out = climb_batch(g, fit, pop, max_passes=50)
        assert np.array_equal(out, ref)
        # fixed point: climbing again changes nothing
        assert np.array_equal(climb_batch(g, fit, out, max_passes=5), out)


class TestBatchBehavior:
    def test_input_not_modified_and_fitness_never_worsens(self):
        g = make_graph("unit")
        fit = Fitness2(g, 4)
        pop = random_population(g.n_nodes, 4, 8, seed=1)
        before = pop.copy()
        out = climb_batch(g, fit, pop, max_passes=2)
        assert np.array_equal(pop, before)
        assert np.all(
            fit.evaluate_batch(out) >= fit.evaluate_batch(pop) - 1e-9
        )

    def test_rng_mode_is_seed_deterministic(self):
        g = make_graph("unit")
        fit = Fitness1(g, 4)
        pop = random_population(g.n_nodes, 4, 8, seed=6)
        out1 = climb_batch(
            g, fit, pop, max_passes=2, rng=np.random.default_rng(42)
        )
        out2 = climb_batch(
            g, fit, pop, max_passes=2, rng=np.random.default_rng(42)
        )
        assert np.array_equal(out1, out2)
        assert np.all(
            fit.evaluate_batch(out1) >= fit.evaluate_batch(pop) - 1e-9
        )

    def test_rng_draws_independent_of_chunking(self):
        g = make_graph("unit")
        fit = Fitness1(g, 4)
        pop = random_population(g.n_nodes, 4, 9, seed=8)
        out_full = climb_batch(
            g, fit, pop, max_passes=3, rng=np.random.default_rng(7)
        )
        out_chunked = climb_batch(
            g, fit, pop, max_passes=3, rng=np.random.default_rng(7),
            chunk_rows=2,
        )
        assert np.array_equal(out_full, out_chunked)

    def test_empty_population_and_zero_passes(self):
        g = make_graph("unit")
        fit = Fitness1(g, 4)
        empty = np.empty((0, g.n_nodes), dtype=np.int64)
        assert climb_batch(g, fit, empty, max_passes=2).shape == (0, g.n_nodes)
        pop = random_population(g.n_nodes, 4, 3, seed=1)
        assert np.array_equal(climb_batch(g, fit, pop, max_passes=0), pop)

    def test_single_part_is_a_no_op(self):
        g = make_graph("unit")
        fit = Fitness1(g, 1)
        pop = np.zeros((4, g.n_nodes), dtype=np.int64)
        assert np.array_equal(climb_batch(g, fit, pop, max_passes=3), pop)

    def test_rejects_unsupported_fitness(self):
        g = make_graph("unit")

        class Weird:
            n_parts = 2

        with pytest.raises(ConfigError):
            climb_batch(g, Weird(), np.zeros((1, g.n_nodes), dtype=np.int64))


# ----------------------------------------------------------------------
# ParallelDPGA reproducibility (pinned islands) and history metrics
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def pgraph():
    return mesh_graph(40, seed=23)


def run_parallel(graph, n_workers, seed=11, max_generations=6):
    runner = ParallelDPGA(
        graph,
        "fitness1",
        4,
        crossover_kind="dknux",
        ga_config=GAConfig(population_size=8),
        dpga_config=DPGAConfig(
            total_population=16,
            n_islands=4,
            migration_interval=2,
            max_generations=max_generations,
        ),
        n_workers=n_workers,
        seed=seed,
    )
    return runner.run()


class TestParallelReproducibility:
    def test_same_seed_identical_across_worker_counts(self, pgraph):
        """Regression: worker-cached engines used to follow pool
        scheduling, so results depended on n_workers (and on OS timing).
        With islands pinned to workers, same-seed runs are identical."""
        r1 = run_parallel(pgraph, n_workers=1)
        r4 = run_parallel(pgraph, n_workers=4)
        assert r1.best_fitness == r4.best_fitness
        assert np.array_equal(r1.best.assignment, r4.best.assignment)
        assert r1.history.best_fitness == r4.history.best_fitness
        assert r1.history.mean_fitness == r4.history.mean_fitness
        assert r1.history.best_cut == r4.history.best_cut
        assert r1.history.best_worst_cut == r4.history.best_worst_cut

    def test_history_records_real_cut_metrics(self, pgraph):
        """Regression: per-epoch history rows carried best_cut=0.0 /
        best_worst_cut=0.0 placeholders."""
        res = run_parallel(pgraph, n_workers=2)
        h = res.history
        assert h.n_generations == 3  # one row per epoch
        for total_cut, worst_cut in zip(h.best_cut, h.best_worst_cut):
            # a real partition of a connected mesh always has a cut
            assert total_cut > 0.0
            assert worst_cut > 0.0
            # max_q C(q) <= sum_q C(q) = 2 * cut_size
            assert worst_cut <= 2.0 * total_cut
