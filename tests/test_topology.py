"""Tests for DPGA island topologies."""

import pytest

from repro.errors import ConfigError
from repro.ga import (
    Topology,
    hypercube_topology,
    make_topology,
    mesh_topology,
    ring_topology,
)


class TestRing:
    def test_two_neighbors_each(self):
        t = ring_topology(6)
        for i in range(6):
            assert t.degree(i) == 2
        assert t.neighbors(0) == [1, 5]

    def test_edge_count(self):
        assert len(ring_topology(8).edges()) == 8

    def test_small_rings(self):
        assert ring_topology(1).neighbors(0) == []
        t2 = ring_topology(2)
        assert t2.neighbors(0) == [1]

    def test_bad_count(self):
        with pytest.raises(ConfigError):
            ring_topology(0)


class TestMesh:
    def test_corner_and_interior_degrees(self):
        t = mesh_topology(3, 4)
        assert t.degree(0) == 2  # corner
        assert t.degree(5) == 4  # interior (row1, col1)

    def test_edge_count(self):
        # rows*(cols-1) + (rows-1)*cols
        t = mesh_topology(3, 4)
        assert len(t.edges()) == 3 * 3 + 2 * 4

    def test_single_island(self):
        t = mesh_topology(1, 1)
        assert t.neighbors(0) == []

    def test_bad_dims(self):
        with pytest.raises(ConfigError):
            mesh_topology(0, 3)


class TestHypercube:
    def test_paper_configuration(self):
        """16 subpopulations on a 4-D hypercube (paper Section 4)."""
        t = hypercube_topology(4)
        assert t.n_islands == 16
        for i in range(16):
            assert t.degree(i) == 4
        assert len(t.edges()) == 32

    def test_neighbors_one_bit_apart(self):
        t = hypercube_topology(3)
        for i, j in t.edges():
            assert bin(i ^ j).count("1") == 1

    def test_dim_zero(self):
        t = hypercube_topology(0)
        assert t.n_islands == 1

    def test_negative_dim(self):
        with pytest.raises(ConfigError):
            hypercube_topology(-1)


class TestTopologyValidation:
    def test_asymmetric_rejected(self):
        with pytest.raises(ConfigError, match="asymmetric"):
            Topology(2, {0: [1], 1: []}, "broken")

    def test_self_loop_rejected(self):
        with pytest.raises(ConfigError):
            Topology(2, {0: [0], 1: []}, "loop")

    def test_out_of_range_rejected(self):
        with pytest.raises(ConfigError):
            Topology(2, {0: [5], 1: []}, "oob")

    def test_neighbors_bad_island(self):
        t = ring_topology(4)
        with pytest.raises(ConfigError):
            t.neighbors(9)

    def test_repr(self):
        assert "ring" in repr(ring_topology(3))


class TestFactory:
    def test_ring(self):
        assert make_topology("ring", 5).name == "ring"

    def test_hypercube_power_of_two(self):
        t = make_topology("hypercube", 16)
        assert t.name == "hypercube4"

    def test_hypercube_non_power_rejected(self):
        with pytest.raises(ConfigError):
            make_topology("hypercube", 12)

    def test_mesh_factors_squarely(self):
        t = make_topology("mesh", 12)
        assert t.name in ("mesh3x4", "mesh4x3")

    def test_mesh_prime_degenerates_to_line(self):
        t = make_topology("mesh", 7)
        assert t.name == "mesh1x7"

    def test_unknown(self):
        with pytest.raises(ConfigError):
            make_topology("torus", 4)
