"""End-to-end integration tests across subsystems.

These exercise the whole pipelines the paper describes: improving
heuristic solutions, incremental remeshing loops, worst-case-cost
optimization, the DPGA, and the top-level convenience API.
"""

import numpy as np
import pytest

from repro import partition_graph, refine_partition
from repro.baselines import (
    greedy_partition,
    ibp_partition,
    random_partition,
    rsb_partition,
)
from repro.ga import (
    DKNUX,
    DPGA,
    DPGAConfig,
    Fitness1,
    Fitness2,
    GAConfig,
    GAEngine,
    TwoPointCrossover,
    hypercube_topology,
)
from repro.ga.population import seeded_population
from repro.graphs import mesh_graph, paper_mesh
from repro.incremental import (
    IncrementalGAPartitioner,
    insert_local_nodes,
    naive_incremental_partition,
)
from repro.partition import check_partition, require_all_parts_nonempty

QUICK = GAConfig(
    population_size=32,
    max_generations=40,
    patience=12,
    hill_climb="all",
    hill_climb_passes=2,
    mutation="boundary",
    mutation_rate=0.02,
)


class TestPaperClaim1_ImprovingOtherMethods:
    """Section 4.1: the GA refines IBP and RSB partitions."""

    def test_refines_ibp_seed(self):
        g = paper_mesh(144)
        ibp = ibp_partition(g, 4)
        fit = Fitness1(g, 4)
        pop = seeded_population(g, 4, QUICK.population_size, ibp.assignment, seed=1)
        res = GAEngine(g, fit, DKNUX(g, 4), QUICK, seed=1).run(pop)
        assert res.best.cut_size < ibp.cut_size
        check_partition(res.best)

    def test_refines_rsb_seed(self):
        g = paper_mesh(139)
        rsb = rsb_partition(g, 4)
        refined = refine_partition(rsb, config=QUICK, seed=2)
        fit = Fitness1(g, 4)
        assert fit.evaluate(refined.assignment) >= fit.evaluate(rsb.assignment)

    def test_ga_competitive_with_rsb_from_ibp_start(self):
        """Table 1's shape: DKNUX seeded with (weaker) IBP ends at least
        close to RSB quality."""
        g = paper_mesh(144)
        rsb = rsb_partition(g, 4)
        part = partition_graph(
            g, 4, config=QUICK, seed=3,
            seed_assignment=ibp_partition(g, 4).assignment,
        )
        assert part.cut_size <= rsb.cut_size * 1.15


class TestPaperClaim2_OperatorSuperiority:
    """The abstract's claim: DKNUX beats traditional crossover."""

    def test_dknux_vs_two_point_same_budget(self):
        g = paper_mesh(118)
        fit = Fitness1(g, 4)
        cfg = GAConfig(population_size=48, max_generations=80)
        d = GAEngine(g, fit, DKNUX(g, 4), cfg, seed=4).run()
        t = GAEngine(g, fit, TwoPointCrossover(), cfg, seed=4).run()
        assert d.best_cut < t.best_cut
        # and the gap is substantial, not marginal
        assert d.best_cut < 0.8 * t.best_cut


class TestPaperClaim3_WorstCaseCost:
    """Section 4.3: direct optimization of the non-differentiable
    max-cut objective."""

    def test_fitness2_reduces_worst_cut_vs_fitness1(self):
        g = paper_mesh(98)
        p2 = partition_graph(g, 4, fitness_kind="fitness2", config=QUICK, seed=5)
        check_partition(p2)
        rand = random_partition(g, 4, seed=5)
        assert p2.max_part_cut < rand.max_part_cut

    def test_fitness2_competitive_with_rsb_on_worst_cut(self):
        """Table 4's shape on small graphs: random-init DKNUX matches or
        beats RSB's worst cut.  Like the paper we take the best of
        several runs (the paper uses 5; 3 suffices here)."""
        g = paper_mesh(78)
        rsb = rsb_partition(g, 4)
        best = min(
            partition_graph(
                g, 4, fitness_kind="fitness2", config=QUICK, seed=s
            ).max_part_cut
            for s in (6, 7, 8)
        )
        assert best <= rsb.max_part_cut * 1.15


class TestPaperClaim4_Incremental:
    """Sections 3.5/4.2: incremental partitioning from previous solutions."""

    def test_remesh_loop(self):
        g = mesh_graph(70, seed=51)
        part = IncrementalGAPartitioner(g, 4, config=QUICK, seed=7)
        part.partition_initial()
        current = g
        for step in range(2):
            upd = insert_local_nodes(current, 10, seed=60 + step)
            p = part.update(upd.graph)
            check_partition(p)
            require_all_parts_nonempty(p)
            assert p.balance_ratio < 1.4
            current = upd.graph
        assert part.n_updates == 2

    def test_incremental_beats_naive(self):
        g = paper_mesh(118)
        part = IncrementalGAPartitioner(g, 4, config=QUICK, seed=8)
        p0 = part.partition_initial()
        upd = insert_local_nodes(g, 21, seed=9)
        ga = part.update(upd.graph)
        naive = naive_incremental_partition(upd.graph, p0.assignment, 4)
        fit = Fitness1(upd.graph, 4)
        assert fit.evaluate(ga.assignment) > fit.evaluate(naive.assignment)

    def test_incremental_competitive_with_rsb_scratch(self):
        """Table 3's shape: warm-started DKNUX vs RSB re-run from scratch."""
        g = paper_mesh(118)
        part = IncrementalGAPartitioner(g, 4, config=QUICK, seed=10)
        part.partition_initial()
        upd = insert_local_nodes(g, 21, seed=11)
        ga = part.update(upd.graph)
        rsb = rsb_partition(upd.graph, 4)
        assert ga.cut_size <= rsb.cut_size * 1.15


class TestPaperClaim5_DPGA:
    """Section 3.4: the 16-island hypercube model runs and produces
    competitive partitions."""

    def test_paper_configuration_runs(self):
        g = paper_mesh(78)
        fit = Fitness1(g, 4)
        dpga = DPGA(
            g,
            fit,
            crossover_factory=lambda: DKNUX(g, 4),
            ga_config=GAConfig(population_size=20),
            dpga_config=DPGAConfig(
                total_population=320,
                n_islands=16,
                migration_interval=5,
                max_generations=30,
            ),
            topology=hypercube_topology(4),
            seed=12,
        )
        res = dpga.run()
        check_partition(res.best)
        rand = random_partition(g, 4, seed=0)
        assert res.best.cut_size < 0.6 * rand.cut_size


class TestConvenienceAPI:
    def test_partition_graph_defaults(self):
        g = mesh_graph(60, seed=53)
        p = partition_graph(g, 3, seed=13)
        check_partition(p)
        require_all_parts_nonempty(p)
        assert p.n_parts == 3

    def test_partition_beats_greedy(self):
        g = mesh_graph(90, seed=54)
        ga = partition_graph(g, 4, config=QUICK, seed=14)
        gr = greedy_partition(g, 4, seed=14)
        fit = Fitness1(g, 4)
        assert fit.evaluate(ga.assignment) >= fit.evaluate(gr.assignment)

    def test_refine_never_worsens(self):
        g = mesh_graph(60, seed=55)
        start = random_partition(g, 4, seed=15)
        out = refine_partition(start, config=QUICK, seed=15)
        fit = Fitness1(g, 4)
        assert fit.evaluate(out.assignment) >= fit.evaluate(start.assignment)
