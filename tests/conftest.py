"""Shared fixtures for the test-suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import (
    CSRGraph,
    caveman_graph,
    cycle_graph,
    grid2d,
    mesh_graph,
    path_graph,
)


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def path6():
    """Path 0-1-2-3-4-5."""
    return path_graph(6)


@pytest.fixture
def cycle8():
    return cycle_graph(8)


@pytest.fixture
def grid4x4():
    return grid2d(4, 4)


@pytest.fixture
def grid8x8():
    return grid2d(8, 8)


@pytest.fixture
def mesh60():
    """Small Delaunay mesh with coordinates (deterministic)."""
    return mesh_graph(60, seed=7)


@pytest.fixture
def mesh120():
    return mesh_graph(120, seed=21)


@pytest.fixture
def caveman():
    """4 cliques of 5 nodes in a ring — obvious optimal 4-way partition."""
    return caveman_graph(4, 5)


@pytest.fixture
def weighted_triangle():
    """Triangle with distinct node and edge weights for weighted metrics."""
    return CSRGraph(
        3,
        [0, 1, 0],
        [1, 2, 2],
        edge_weights=[1.0, 2.0, 4.0],
        node_weights=[1.0, 2.0, 3.0],
    )
