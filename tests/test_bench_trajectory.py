"""Tests for the BENCH_metrics.json trajectory differ."""

import json
import subprocess
import sys
from pathlib import Path

SCRIPT = Path(__file__).parent.parent / "benchmarks" / "bench_trajectory.py"


def snapshot(ms_loads, ms_climb, ok=True):
    return {
        "scale": {"mesh_nodes": 300, "population": 320, "n_parts": 8},
        "kernels": {
            "batch_part_loads": {"new_ms": ms_loads, "speedup": 5.0},
            "batch_hillclimb": {"new_ms": ms_climb, "speedup": 18.0},
        },
        "ok": ok,
    }


def run_cli(*args):
    return subprocess.run(
        [sys.executable, str(SCRIPT), *args],
        capture_output=True, text=True,
    )


class TestTrajectory:
    def test_two_snapshots_build_a_table(self, tmp_path):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        a.write_text(json.dumps(snapshot(2.0, 100.0)))
        b.write_text(json.dumps(snapshot(1.0, 80.0)))
        out = run_cli(f"pr2:{a}", f"pr3:{b}")
        assert out.returncode == 0, out.stderr
        table = out.stdout
        assert "| kernel | pr2 | pr3 |" in table
        assert "batch_part_loads" in table and "batch_hillclimb" in table
        assert "-50.0%" in table  # 2.0 ms -> 1.0 ms
        assert "🟢" in table

    def test_regression_flagged_red(self, tmp_path):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        a.write_text(json.dumps(snapshot(1.0, 50.0)))
        b.write_text(json.dumps(snapshot(2.0, 50.0)))
        out = run_cli(str(a), str(b))
        assert "🔴 +100.0%" in out.stdout

    def test_missing_kernel_shown_as_gap(self, tmp_path):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        a.write_text(json.dumps(snapshot(1.0, 50.0)))
        partial = snapshot(1.5, 60.0)
        del partial["kernels"]["batch_hillclimb"]
        b.write_text(json.dumps(partial))
        out = run_cli(str(a), str(b))
        assert out.returncode == 0
        assert "—" in out.stdout

    def test_serving_section_rendered(self, tmp_path):
        """SERVICE_metrics.json snapshots (flat `serving` dict) render
        as their own section — with or without kernel rows present."""
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        serving_a = {"serving": {"sharded_speedup_x": 2.4}, "ok": True}
        serving_b = snapshot(1.0, 50.0)
        serving_b["serving"] = {
            "sharded_speedup_x": 2.9, "http_p50_ms": 80.0,
        }
        a.write_text(json.dumps(serving_a))
        b.write_text(json.dumps(serving_b))
        out = run_cli(f"pr3:{a}", f"pr4:{b}")
        assert out.returncode == 0, out.stderr
        assert "| serving metric | pr3 | pr4 |" in out.stdout
        assert "sharded_speedup_x | 2.4 | 2.9" in out.stdout
        assert "http_p50_ms | — | 80" in out.stdout
        # kernel rows from the second snapshot still render
        assert "batch_part_loads" in out.stdout

    def test_failover_section_rendered(self, tmp_path):
        """The failover smoke numbers (PR 5) render as their own
        section alongside the serving one."""
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        snap_a = {"serving": {"sharded_speedup_x": 2.4}, "ok": True}
        snap_b = {
            "serving": {"sharded_speedup_x": 2.9},
            "failover": {"lost_answers": 0, "restart_s": 1.25,
                         "resumed_identical": 1},
            "ok": True,
        }
        a.write_text(json.dumps(snap_a))
        b.write_text(json.dumps(snap_b))
        out = run_cli(f"pr4:{a}", f"pr5:{b}")
        assert out.returncode == 0, out.stderr
        assert "| failover metric | pr4 | pr5 |" in out.stdout
        assert "lost_answers | — | 0" in out.stdout
        assert "restart_s | — | 1.25" in out.stdout

    def test_out_file_written(self, tmp_path):
        a = tmp_path / "a.json"
        a.write_text(json.dumps(snapshot(1.0, 50.0)))
        out_md = tmp_path / "traj.md"
        out = run_cli(str(a), "--out", str(out_md))
        assert out.returncode == 0
        assert out_md.read_text().startswith("# Perf trajectory")

    def test_guard_failures_surfaced(self, tmp_path):
        a = tmp_path / "a.json"
        a.write_text(json.dumps(snapshot(1.0, 50.0, ok=False)))
        out = run_cli(str(a))
        assert "FAIL" in out.stdout

    def test_unreadable_snapshot_errors_cleanly(self, tmp_path):
        out = run_cli(str(tmp_path / "missing.json"))
        assert out.returncode != 0
        assert "cannot read snapshot" in out.stderr

    def test_git_snapshot_reads_committed_metrics(self):
        """The repo commits BENCH_metrics.json, so --git HEAD works."""
        out = subprocess.run(
            [sys.executable, str(SCRIPT), "--git", "HEAD"],
            capture_output=True, text=True,
            cwd=str(SCRIPT.parent.parent),
        )
        assert out.returncode == 0, out.stderr
        assert "batch_hillclimb" in out.stdout
