"""Tests for RCB, RGB, KL, FM, greedy, and random baselines."""

import numpy as np
import pytest

from repro.baselines import (
    fm_refine,
    greedy_partition,
    kl_refine,
    random_partition,
    rcb_partition,
    recursive_kl_partition,
    rgb_partition,
    rsb_partition,
)
from repro.errors import GraphError, PartitionError
from repro.graphs import CSRGraph, caveman_graph, grid2d, mesh_graph, path_graph
from repro.partition import (
    Partition,
    check_partition,
    cut_size,
    require_all_parts_nonempty,
)


class TestRCB:
    @pytest.mark.parametrize("k", [2, 3, 4, 8])
    def test_valid_balanced(self, mesh120, k):
        p = rcb_partition(mesh120, k)
        check_partition(p)
        require_all_parts_nonempty(p)
        assert p.part_sizes.max() - p.part_sizes.min() <= 1

    def test_grid_bisection_optimal(self):
        p = rcb_partition(grid2d(8, 8), 2)
        assert p.cut_size == 8.0

    def test_requires_coords(self):
        with pytest.raises(GraphError):
            rcb_partition(CSRGraph(4, [0], [1]), 2)

    def test_splits_longest_axis(self):
        """A 2x16 grid should be cut across its long axis (cut 2)."""
        p = rcb_partition(grid2d(2, 16), 2)
        assert p.cut_size == 2.0

    def test_bad_k(self, mesh60):
        with pytest.raises(PartitionError):
            rcb_partition(mesh60, 0)
        with pytest.raises(PartitionError):
            rcb_partition(mesh60, 61)


class TestRGB:
    @pytest.mark.parametrize("k", [2, 4, 8])
    def test_valid_balanced(self, mesh120, k):
        p = rgb_partition(mesh120, k)
        check_partition(p)
        require_all_parts_nonempty(p)
        assert p.part_sizes.max() - p.part_sizes.min() <= 1

    def test_no_coords_needed(self):
        g = caveman_graph(4, 5)
        p = rgb_partition(g, 2)
        check_partition(p)

    def test_path_bisection_optimal(self):
        p = rgb_partition(path_graph(10), 2)
        assert p.cut_size == 1.0

    def test_disconnected(self):
        g = CSRGraph(6, [0, 1, 3, 4], [1, 2, 4, 5])
        p = rgb_partition(g, 2)
        check_partition(p)

    def test_empty_graph(self):
        p = rgb_partition(CSRGraph(0, [], []), 2)
        assert p.assignment.size == 0


class TestKL:
    def test_refine_improves_random_bisection(self, mesh120, rng):
        side = np.zeros(120, dtype=bool)
        side[rng.choice(120, 60, replace=False)] = True
        before = cut_size(mesh120, side.astype(np.int64))
        refined = kl_refine(mesh120, side)
        after = cut_size(mesh120, refined.astype(np.int64))
        assert after < before

    def test_refine_preserves_sizes(self, mesh120, rng):
        side = np.zeros(120, dtype=bool)
        side[rng.choice(120, 50, replace=False)] = True
        refined = kl_refine(mesh120, side)
        assert refined.sum() == 50

    def test_optimal_is_fixed_point_on_grid(self):
        """The straight bisection of a grid is KL-optimal."""
        g = grid2d(6, 6)
        side = np.zeros(36, dtype=bool)
        side[18:] = True
        refined = kl_refine(g, side)
        assert cut_size(g, refined.astype(np.int64)) <= 6.0

    def test_length_mismatch(self, mesh60):
        with pytest.raises(PartitionError):
            kl_refine(mesh60, np.zeros(10, dtype=bool))

    @pytest.mark.parametrize("k", [2, 4])
    def test_recursive_partition_quality(self, mesh120, k):
        p = recursive_kl_partition(mesh120, k, seed=0)
        check_partition(p)
        require_all_parts_nonempty(p)
        rand = random_partition(mesh120, k, seed=0)
        assert p.cut_size < 0.6 * rand.cut_size

    def test_recursive_validation(self, mesh60):
        with pytest.raises(PartitionError):
            recursive_kl_partition(mesh60, 0)
        with pytest.raises(PartitionError):
            recursive_kl_partition(mesh60, 61)

    def test_deadline_nonbinding_bit_identical(self, mesh120):
        """A deadline that never binds changes nothing — same labels,
        same RNG consumption (the racing portfolio's contract)."""
        import time

        plain = recursive_kl_partition(mesh120, 4, seed=0)
        budgeted = recursive_kl_partition(
            mesh120, 4, seed=0, deadline=time.perf_counter() + 1e6
        )
        assert np.array_equal(plain.assignment, budgeted.assignment)

    def test_deadline_binding_cancels_midrun(self, mesh120):
        """An already-passed deadline skips all refinement sweeps but
        still returns a valid balanced k-way partition promptly."""
        import time

        t0 = time.perf_counter()
        p = recursive_kl_partition(mesh120, 8, seed=0, deadline=t0)
        elapsed = time.perf_counter() - t0
        check_partition(p)
        require_all_parts_nonempty(p)
        unrefined = recursive_kl_partition(mesh120, 8, seed=0)
        assert elapsed < 1.0  # no KL sweeps ran
        assert p.cut_size >= unrefined.cut_size  # refinement was skipped


class TestFM:
    def test_refine_improves_or_keeps(self, mesh120, rng):
        a = rng.integers(0, 4, 120)
        p = Partition(mesh120, a, 4)
        refined = fm_refine(p, max_ratio=1.3)
        assert refined.cut_size <= p.cut_size
        check_partition(refined)

    def test_respects_balance_cap(self, mesh120):
        p = rsb_partition(mesh120, 4)
        refined = fm_refine(p, max_ratio=1.1)
        assert refined.balance_ratio <= 1.1 + 1e-9

    def test_local_optimum_stable(self, mesh60):
        p = rsb_partition(mesh60, 2)
        once = fm_refine(p, max_passes=10)
        twice = fm_refine(once, max_passes=3)
        assert twice.cut_size == once.cut_size

    def test_bad_ratio(self, mesh60):
        p = rsb_partition(mesh60, 2)
        with pytest.raises(PartitionError):
            fm_refine(p, max_ratio=0.5)

    def test_escapes_hill_climb_traps(self):
        """FM's negative-gain moves recover the clique split from a bad
        but locally-stable start at least as well as the start."""
        g = caveman_graph(2, 5)
        bad = np.array([0, 1] * 5)
        p = Partition(g, bad, 2)
        refined = fm_refine(p, max_passes=10, max_ratio=1.2)
        assert refined.cut_size <= p.cut_size


class TestGreedy:
    @pytest.mark.parametrize("k", [2, 4, 6])
    def test_valid_and_covering(self, mesh120, k):
        p = greedy_partition(mesh120, k, seed=1)
        check_partition(p)
        require_all_parts_nonempty(p)

    def test_balance_reasonable(self, mesh120):
        p = greedy_partition(mesh120, 4, seed=2)
        assert p.balance_ratio < 1.5

    def test_beats_random(self, mesh120):
        g = greedy_partition(mesh120, 4, seed=3)
        r = random_partition(mesh120, 4, seed=3)
        assert g.cut_size < r.cut_size

    def test_deterministic_given_seed(self, mesh60):
        a = greedy_partition(mesh60, 3, seed=5)
        b = greedy_partition(mesh60, 3, seed=5)
        assert np.array_equal(a.assignment, b.assignment)

    def test_disconnected_leftovers_assigned(self):
        g = CSRGraph(7, [0, 1], [1, 2])  # nodes 3..6 isolated
        p = greedy_partition(g, 2, seed=0)
        assert p.part_sizes.sum() == 7

    def test_bad_k(self, mesh60):
        with pytest.raises(PartitionError):
            greedy_partition(mesh60, 0)


class TestRandomPartition:
    def test_balanced(self, mesh60):
        p = random_partition(mesh60, 4, seed=1)
        assert p.part_sizes.max() - p.part_sizes.min() <= 1

    def test_too_many_parts(self):
        with pytest.raises(PartitionError):
            random_partition(path_graph(3), 5)
