"""Tests for the classical crossover operators."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.ga import (
    KPointCrossover,
    OnePointCrossover,
    TwoPointCrossover,
    UniformCrossover,
)

OPERATORS = [
    OnePointCrossover(),
    TwoPointCrossover(),
    KPointCrossover(3),
    KPointCrossover(5),
    UniformCrossover(),
]


def _parents(rng, batch=16, n=30, k=4):
    a = rng.integers(0, k, size=(batch, n))
    b = rng.integers(0, k, size=(batch, n))
    return a, b


class TestCommonLaws:
    @pytest.mark.parametrize("op", OPERATORS, ids=lambda o: o.name)
    def test_genes_come_from_parents(self, op, rng):
        a, b = _parents(rng)
        c1, c2 = op.cross(a, b, rng)
        assert np.all((c1 == a) | (c1 == b))
        assert np.all((c2 == a) | (c2 == b))

    @pytest.mark.parametrize("op", OPERATORS, ids=lambda o: o.name)
    def test_children_are_complementary(self, op, rng):
        """Where c1 takes from a, c2 takes from b (mask crossover law)."""
        a, b = _parents(rng)
        c1, c2 = op.cross(a, b, rng)
        disagree = a != b
        took_a = (c1 == a) & disagree
        assert np.all(c2[took_a] == b[took_a])

    @pytest.mark.parametrize("op", OPERATORS, ids=lambda o: o.name)
    def test_identical_parents_reproduce(self, op, rng):
        a, _ = _parents(rng)
        c1, c2 = op.cross(a, a.copy(), rng)
        assert np.array_equal(c1, a)
        assert np.array_equal(c2, a)

    @pytest.mark.parametrize("op", OPERATORS, ids=lambda o: o.name)
    def test_shapes_preserved(self, op, rng):
        a, b = _parents(rng, batch=7, n=13)
        c1, c2 = op.cross(a, b, rng)
        assert c1.shape == (7, 13)
        assert c2.shape == (7, 13)

    @pytest.mark.parametrize("op", OPERATORS, ids=lambda o: o.name)
    def test_mismatched_shapes_rejected(self, op, rng):
        with pytest.raises(ConfigError):
            op.cross(np.zeros((2, 5), dtype=int), np.zeros((2, 6), dtype=int), rng)

    @pytest.mark.parametrize("op", OPERATORS, ids=lambda o: o.name)
    def test_parents_not_mutated(self, op, rng):
        a, b = _parents(rng)
        a0, b0 = a.copy(), b.copy()
        op.cross(a, b, rng)
        assert np.array_equal(a, a0)
        assert np.array_equal(b, b0)

    @pytest.mark.parametrize("op", OPERATORS, ids=lambda o: o.name)
    def test_prepare_is_noop(self, op, rng):
        op.prepare(np.zeros((2, 3), dtype=int), np.zeros(2))  # must not raise


class TestOnePoint:
    def test_single_contiguous_switch(self, rng):
        a = np.zeros((50, 20), dtype=np.int64)
        b = np.ones((50, 20), dtype=np.int64)
        c1, _ = OnePointCrossover().cross(a, b, rng)
        for row in c1:
            # row is a prefix of one value followed by a suffix of the other
            changes = np.sum(row[1:] != row[:-1])
            assert changes <= 1

    def test_cut_not_at_zero(self, rng):
        """Offspring must mix: the cut site lies in 1..n-1, so a 2-gene
        chromosome always swaps its tail."""
        a = np.zeros((100, 2), dtype=np.int64)
        b = np.ones((100, 2), dtype=np.int64)
        c1, _ = OnePointCrossover().cross(a, b, rng)
        assert np.all(c1[:, 0] == 0)
        assert np.all(c1[:, 1] == 1)


class TestTwoPoint:
    def test_at_most_two_switches(self, rng):
        a = np.zeros((50, 20), dtype=np.int64)
        b = np.ones((50, 20), dtype=np.int64)
        c1, _ = TwoPointCrossover().cross(a, b, rng)
        for row in c1:
            assert np.sum(row[1:] != row[:-1]) <= 2

    def test_ends_inherited_from_first_parent(self, rng):
        a = np.zeros((50, 20), dtype=np.int64)
        b = np.ones((50, 20), dtype=np.int64)
        c1, _ = TwoPointCrossover().cross(a, b, rng)
        # mask parity starts at parent a, and after two cuts returns to a
        assert np.all(c1[:, 0] == 0)


class TestKPoint:
    def test_bad_k(self):
        with pytest.raises(ConfigError):
            KPointCrossover(0)

    def test_k_clamped_to_length(self, rng):
        a = np.zeros((10, 3), dtype=np.int64)
        b = np.ones((10, 3), dtype=np.int64)
        c1, c2 = KPointCrossover(10).cross(a, b, rng)
        assert np.all((c1 == 0) | (c1 == 1))

    def test_name(self):
        assert KPointCrossover(4).name == "4-point"

    def test_switch_count_bounded_by_k(self, rng):
        k = 4
        a = np.zeros((40, 30), dtype=np.int64)
        b = np.ones((40, 30), dtype=np.int64)
        c1, _ = KPointCrossover(k).cross(a, b, rng)
        for row in c1:
            assert np.sum(row[1:] != row[:-1]) <= k


class TestUniform:
    def test_roughly_half_from_each(self, rng):
        a = np.zeros((200, 100), dtype=np.int64)
        b = np.ones((200, 100), dtype=np.int64)
        c1, _ = UniformCrossover().cross(a, b, rng)
        frac = c1.mean()
        assert 0.45 < frac < 0.55

    def test_single_gene(self, rng):
        a = np.zeros((5, 1), dtype=np.int64)
        b = np.ones((5, 1), dtype=np.int64)
        c1, c2 = UniformCrossover().cross(a, b, rng)
        assert np.all((c1 == 0) | (c1 == 1))
