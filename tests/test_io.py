"""Tests for graph serialization (METIS, edge list, JSON)."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graphs import (
    CSRGraph,
    grid2d,
    mesh_graph,
    read_edge_list,
    read_json,
    read_metis,
    write_edge_list,
    write_json,
    write_metis,
)


class TestMetis:
    def test_roundtrip_unweighted(self, tmp_path, grid4x4):
        path = tmp_path / "g.graph"
        write_metis(grid4x4, path)
        g = read_metis(path)
        assert g.n_nodes == grid4x4.n_nodes
        assert g.n_edges == grid4x4.n_edges
        assert np.array_equal(g.edges_u, grid4x4.edges_u)
        assert np.array_equal(g.edges_v, grid4x4.edges_v)

    def test_roundtrip_node_weights(self, tmp_path):
        g = CSRGraph(3, [0, 1], [1, 2], node_weights=[1, 2, 3])
        path = tmp_path / "nw.graph"
        write_metis(g, path)
        back = read_metis(path)
        assert back.node_weights.tolist() == [1.0, 2.0, 3.0]

    def test_roundtrip_edge_weights(self, tmp_path):
        g = CSRGraph(3, [0, 1], [1, 2], edge_weights=[5, 7])
        path = tmp_path / "ew.graph"
        write_metis(g, path)
        back = read_metis(path)
        assert back.edge_weights.tolist() == [5.0, 7.0]

    def test_roundtrip_both_weights(self, tmp_path):
        g = CSRGraph(
            3, [0, 1], [1, 2], edge_weights=[5, 7], node_weights=[2, 2, 4]
        )
        path = tmp_path / "b.graph"
        write_metis(g, path)
        back = read_metis(path)
        assert back == g.with_coords(np.zeros((3, 1))) or (
            back.edge_weights.tolist() == [5.0, 7.0]
            and back.node_weights.tolist() == [2.0, 2.0, 4.0]
        )

    def test_header_flag_absent_when_unit(self, tmp_path, path6):
        path = tmp_path / "u.graph"
        write_metis(path6, path)
        header = path.read_text().splitlines()[0].split()
        assert len(header) == 2

    def test_comments_ignored(self, tmp_path):
        path = tmp_path / "c.graph"
        path.write_text("% comment\n2 1\n2\n1\n")
        g = read_metis(path)
        assert g.n_edges == 1

    def test_float_weights_rejected_on_write(self, tmp_path):
        g = CSRGraph(2, [0], [1], edge_weights=[1.5])
        with pytest.raises(GraphFormatError):
            write_metis(g, tmp_path / "f.graph")

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "e.graph"
        path.write_text("")
        with pytest.raises(GraphFormatError):
            read_metis(path)

    def test_wrong_line_count_rejected(self, tmp_path):
        path = tmp_path / "w.graph"
        path.write_text("3 1\n2\n1\n")  # header says 3 nodes, only 2 lines
        with pytest.raises(GraphFormatError):
            read_metis(path)

    def test_wrong_edge_count_rejected(self, tmp_path):
        path = tmp_path / "m.graph"
        path.write_text("2 5\n2\n1\n")
        with pytest.raises(GraphFormatError, match="declares 5 edges"):
            read_metis(path)

    def test_neighbor_out_of_range_rejected(self, tmp_path):
        path = tmp_path / "o.graph"
        path.write_text("2 1\n9\n1\n")
        with pytest.raises(GraphFormatError):
            read_metis(path)

    def test_mesh_roundtrip(self, tmp_path, mesh60):
        path = tmp_path / "mesh.graph"
        write_metis(mesh60, path)
        back = read_metis(path)
        assert back.n_edges == mesh60.n_edges


class TestEdgeList:
    def test_roundtrip(self, tmp_path, weighted_triangle):
        path = tmp_path / "g.edges"
        write_edge_list(weighted_triangle, path)
        g = read_edge_list(path)
        assert g.n_nodes == 3
        assert g.edge_weights.tolist() == [1.0, 4.0, 2.0] or sorted(
            g.edge_weights.tolist()
        ) == [1.0, 2.0, 4.0]

    def test_isolated_node_preserved_via_header(self, tmp_path):
        g = CSRGraph(4, [0], [1])  # nodes 2, 3 isolated
        path = tmp_path / "iso.edges"
        write_edge_list(g, path)
        back = read_edge_list(path)
        assert back.n_nodes == 4

    def test_headerless_infers_nodes(self, tmp_path):
        path = tmp_path / "h.edges"
        path.write_text("0 1\n1 2\n")
        g = read_edge_list(path)
        assert g.n_nodes == 3

    def test_bad_line_rejected(self, tmp_path):
        path = tmp_path / "bad.edges"
        path.write_text("0 1 2 3\n")
        with pytest.raises(GraphFormatError):
            read_edge_list(path)


class TestJson:
    def test_roundtrip_with_coords(self, tmp_path, grid4x4):
        path = tmp_path / "g.json"
        write_json(grid4x4, path)
        g = read_json(path)
        assert g == grid4x4

    def test_roundtrip_weighted(self, tmp_path, weighted_triangle):
        path = tmp_path / "w.json"
        write_json(weighted_triangle, path)
        assert read_json(path) == weighted_triangle

    def test_garbage_rejected(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("{not json")
        with pytest.raises(GraphFormatError):
            read_json(path)

    def test_missing_key_rejected(self, tmp_path):
        path = tmp_path / "mk.json"
        path.write_text('{"n_nodes": 2}')
        with pytest.raises(GraphFormatError):
            read_json(path)
