"""Tests for graph serialization (METIS, edge list, JSON)."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graphs import (
    CSRGraph,
    graph_from_payload,
    graph_to_payload,
    grid2d,
    mesh_graph,
    parse_metis,
    read_edge_list,
    read_json,
    read_metis,
    write_edge_list,
    write_json,
    write_metis,
)


class TestMetis:
    def test_roundtrip_unweighted(self, tmp_path, grid4x4):
        path = tmp_path / "g.graph"
        write_metis(grid4x4, path)
        g = read_metis(path)
        assert g.n_nodes == grid4x4.n_nodes
        assert g.n_edges == grid4x4.n_edges
        assert np.array_equal(g.edges_u, grid4x4.edges_u)
        assert np.array_equal(g.edges_v, grid4x4.edges_v)

    def test_roundtrip_node_weights(self, tmp_path):
        g = CSRGraph(3, [0, 1], [1, 2], node_weights=[1, 2, 3])
        path = tmp_path / "nw.graph"
        write_metis(g, path)
        back = read_metis(path)
        assert back.node_weights.tolist() == [1.0, 2.0, 3.0]

    def test_roundtrip_edge_weights(self, tmp_path):
        g = CSRGraph(3, [0, 1], [1, 2], edge_weights=[5, 7])
        path = tmp_path / "ew.graph"
        write_metis(g, path)
        back = read_metis(path)
        assert back.edge_weights.tolist() == [5.0, 7.0]

    def test_roundtrip_both_weights(self, tmp_path):
        g = CSRGraph(
            3, [0, 1], [1, 2], edge_weights=[5, 7], node_weights=[2, 2, 4]
        )
        path = tmp_path / "b.graph"
        write_metis(g, path)
        back = read_metis(path)
        assert back == g.with_coords(np.zeros((3, 1))) or (
            back.edge_weights.tolist() == [5.0, 7.0]
            and back.node_weights.tolist() == [2.0, 2.0, 4.0]
        )

    def test_header_flag_absent_when_unit(self, tmp_path, path6):
        path = tmp_path / "u.graph"
        write_metis(path6, path)
        header = path.read_text().splitlines()[0].split()
        assert len(header) == 2

    def test_comments_ignored(self, tmp_path):
        path = tmp_path / "c.graph"
        path.write_text("% comment\n2 1\n2\n1\n")
        g = read_metis(path)
        assert g.n_edges == 1

    def test_float_weights_rejected_on_write(self, tmp_path):
        g = CSRGraph(2, [0], [1], edge_weights=[1.5])
        with pytest.raises(GraphFormatError):
            write_metis(g, tmp_path / "f.graph")

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "e.graph"
        path.write_text("")
        with pytest.raises(GraphFormatError):
            read_metis(path)

    def test_wrong_line_count_rejected(self, tmp_path):
        path = tmp_path / "w.graph"
        path.write_text("3 1\n2\n1\n")  # header says 3 nodes, only 2 lines
        with pytest.raises(GraphFormatError):
            read_metis(path)

    def test_wrong_edge_count_rejected(self, tmp_path):
        path = tmp_path / "m.graph"
        path.write_text("2 5\n2\n1\n")
        with pytest.raises(GraphFormatError, match="declares 5 edges"):
            read_metis(path)

    def test_neighbor_out_of_range_rejected(self, tmp_path):
        path = tmp_path / "o.graph"
        path.write_text("2 1\n9\n1\n")
        with pytest.raises(GraphFormatError):
            read_metis(path)

    def test_mesh_roundtrip(self, tmp_path, mesh60):
        path = tmp_path / "mesh.graph"
        write_metis(mesh60, path)
        back = read_metis(path)
        assert back.n_edges == mesh60.n_edges


class TestMetisStrictErrors:
    """The strict parser: clear line-numbered GraphFormatError on
    malformed input (the service endpoint feeds it untrusted bytes),
    never a raw ValueError."""

    def test_truncated_file_names_the_line(self):
        with pytest.raises(GraphFormatError, match="truncated") as exc:
            parse_metis("3 1\n2\n1\n")  # header says 3 nodes, 2 lines given
        assert "3 nodes" in str(exc.value)
        assert "line" in str(exc.value)

    def test_nonnumeric_header_is_format_error(self):
        with pytest.raises(GraphFormatError, match="line 1"):
            parse_metis("banana 3\n")
        with pytest.raises(GraphFormatError, match="line 1"):
            parse_metis("3 pear\n")

    def test_nonnumeric_neighbor_names_line(self):
        with pytest.raises(GraphFormatError, match="line 3"):
            parse_metis("2 1\n2\nkumquat\n")

    def test_nonnumeric_weight_names_line(self):
        with pytest.raises(GraphFormatError, match="line 2"):
            parse_metis("2 1 10\nheavy 2\n1\n")

    def test_extra_lines_name_the_line(self):
        with pytest.raises(GraphFormatError, match="line 4"):
            parse_metis("2 1\n2\n1\n2\n")

    def test_ragged_weighted_adjacency_names_line(self):
        with pytest.raises(GraphFormatError, match="line 2"):
            parse_metis("2 1 1\n2 5 3\n1 5\n")  # odd token count on line 2

    def test_self_loop_rejected_with_line(self):
        with pytest.raises(GraphFormatError, match="line 2"):
            parse_metis("2 1\n1\n1\n")

    def test_comment_lines_do_not_shift_numbering(self):
        text = "% header comment\n2 1\n% mid comment\n2\nbad\n"
        with pytest.raises(GraphFormatError, match="line 5"):
            parse_metis(text)

    def test_blank_line_is_isolated_node(self):
        # METIS semantics: an empty adjacency line is an isolated vertex
        g = parse_metis("3 1\n2\n1\n\n")
        assert g.n_nodes == 3
        assert g.n_edges == 1
        assert g.degree(2) == 0

    def test_isolated_node_roundtrip(self, tmp_path):
        g = CSRGraph(4, [0], [1])  # nodes 2, 3 isolated
        path = tmp_path / "iso.graph"
        write_metis(g, path)
        back = read_metis(path)
        assert back.n_nodes == 4
        assert back.n_edges == 1

    def test_unsupported_header_features_rejected(self):
        # multi-constraint weights (ncon > 1) would misparse the body
        with pytest.raises(GraphFormatError, match="ncon=2"):
            parse_metis("2 1 10 2\n5 2 2\n3 1 1\n")
        # vertex sizes (3-digit fmt with leading 1) are not implemented
        with pytest.raises(GraphFormatError, match="vertex sizes"):
            parse_metis("2 1 100\n1 2\n1 1\n")
        # but ncon=1 and a redundant leading 0 are fine
        g = parse_metis("2 1 010 1\n5 2\n3 1\n")
        assert g.node_weights.tolist() == [5.0, 3.0]

    def test_nonfinite_weights_rejected(self):
        # float() accepts nan/inf — the strict parser must not
        with pytest.raises(GraphFormatError, match="line 2"):
            parse_metis("2 1 1\n2 nan\n1 nan\n")
        with pytest.raises(GraphFormatError, match="line 2"):
            parse_metis("2 1 1\n2 inf\n1 1\n")
        with pytest.raises(GraphFormatError, match="line 2"):
            parse_metis("2 1 10\n-3 2\n1\n")  # negative node weight

    def test_no_raw_valueerror_on_fuzzed_junk(self):
        for junk in (
            "", "%only comments\n", "1", "x", "2 1 zz\n2\n1\n",
            "2 1\n2 1\n1\n", "-1 0\n", "2 1\n\n\n\n\n",
        ):
            with pytest.raises(GraphFormatError):
                parse_metis(junk)


class TestGraphPayload:
    def test_payload_roundtrip(self, mesh60):
        back = graph_from_payload(graph_to_payload(mesh60))
        assert back == mesh60

    def test_payload_type_errors(self):
        with pytest.raises(GraphFormatError):
            graph_from_payload("not a dict")
        with pytest.raises(GraphFormatError):
            graph_from_payload({"n_nodes": 2})
        with pytest.raises(GraphFormatError):
            graph_from_payload(
                {"n_nodes": 2, "edges_u": [0], "edges_v": ["x"],
                 "edge_weights": [1], "node_weights": [1, 1], "coords": None}
            )


class TestEdgeList:
    def test_roundtrip(self, tmp_path, weighted_triangle):
        path = tmp_path / "g.edges"
        write_edge_list(weighted_triangle, path)
        g = read_edge_list(path)
        assert g.n_nodes == 3
        assert g.edge_weights.tolist() == [1.0, 4.0, 2.0] or sorted(
            g.edge_weights.tolist()
        ) == [1.0, 2.0, 4.0]

    def test_isolated_node_preserved_via_header(self, tmp_path):
        g = CSRGraph(4, [0], [1])  # nodes 2, 3 isolated
        path = tmp_path / "iso.edges"
        write_edge_list(g, path)
        back = read_edge_list(path)
        assert back.n_nodes == 4

    def test_headerless_infers_nodes(self, tmp_path):
        path = tmp_path / "h.edges"
        path.write_text("0 1\n1 2\n")
        g = read_edge_list(path)
        assert g.n_nodes == 3

    def test_bad_line_rejected(self, tmp_path):
        path = tmp_path / "bad.edges"
        path.write_text("0 1 2 3\n")
        with pytest.raises(GraphFormatError):
            read_edge_list(path)


class TestJson:
    def test_roundtrip_with_coords(self, tmp_path, grid4x4):
        path = tmp_path / "g.json"
        write_json(grid4x4, path)
        g = read_json(path)
        assert g == grid4x4

    def test_roundtrip_weighted(self, tmp_path, weighted_triangle):
        path = tmp_path / "w.json"
        write_json(weighted_triangle, path)
        assert read_json(path) == weighted_triangle

    def test_garbage_rejected(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("{not json")
        with pytest.raises(GraphFormatError):
            read_json(path)

    def test_missing_key_rejected(self, tmp_path):
        path = tmp_path / "mk.json"
        path.write_text('{"n_nodes": 2}')
        with pytest.raises(GraphFormatError):
            read_json(path)
