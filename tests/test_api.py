"""Tests for the top-level convenience API."""

import numpy as np
import pytest

import repro
from repro import GAConfig, partition_graph, refine_partition
from repro.baselines import random_partition, rsb_partition
from repro.ga import Fitness1, Fitness2
from repro.graphs import mesh_graph
from repro.partition import check_partition

FAST = GAConfig(
    population_size=20,
    max_generations=15,
    patience=6,
    hill_climb="all",
    hill_climb_passes=1,
)


class TestVersion:
    def test_version_string(self):
        assert repro.__version__.count(".") == 2


class TestPartitionGraph:
    def test_basic(self):
        g = mesh_graph(50, seed=71)
        p = partition_graph(g, 3, config=FAST, seed=1)
        check_partition(p)
        assert p.n_parts == 3

    def test_fitness2_kind(self):
        g = mesh_graph(50, seed=72)
        p = partition_graph(g, 4, fitness_kind="fitness2", config=FAST, seed=2)
        check_partition(p)

    def test_seed_assignment_used(self):
        g = mesh_graph(50, seed=73)
        seed_assign = rsb_partition(g, 4).assignment
        p = partition_graph(g, 4, config=FAST, seed=3, seed_assignment=seed_assign)
        fit = Fitness1(g, 4)
        assert fit.evaluate(p.assignment) >= fit.evaluate(seed_assign)

    def test_deterministic(self):
        g = mesh_graph(50, seed=74)
        a = partition_graph(g, 2, config=FAST, seed=5)
        b = partition_graph(g, 2, config=FAST, seed=5)
        assert np.array_equal(a.assignment, b.assignment)

    def test_unknown_fitness(self):
        g = mesh_graph(50, seed=75)
        with pytest.raises(repro.ConfigError):
            partition_graph(g, 2, fitness_kind="fitness7", config=FAST)


class TestRefinePartition:
    def test_improves_random(self):
        g = mesh_graph(60, seed=76)
        start = random_partition(g, 4, seed=0)
        out = refine_partition(start, config=FAST, seed=1)
        fit = Fitness1(g, 4)
        assert fit.evaluate(out.assignment) > fit.evaluate(start.assignment)

    def test_never_returns_worse(self):
        """Even with a hopeless budget, the contract holds: output fitness
        >= input fitness."""
        g = mesh_graph(60, seed=77)
        start = rsb_partition(g, 4)
        tiny = GAConfig(population_size=8, max_generations=1)
        out = refine_partition(start, config=tiny, seed=2)
        fit = Fitness1(g, 4)
        assert fit.evaluate(out.assignment) >= fit.evaluate(start.assignment)

    def test_fitness2_refinement(self):
        g = mesh_graph(60, seed=78)
        start = rsb_partition(g, 4)
        out = refine_partition(start, fitness_kind="fitness2", config=FAST, seed=3)
        fit = Fitness2(g, 4)
        assert fit.evaluate(out.assignment) >= fit.evaluate(start.assignment)


class TestPublicSurface:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackage_exports_resolve(self):
        import repro.baselines
        import repro.experiments
        import repro.ga
        import repro.graphs
        import repro.incremental
        import repro.indexing
        import repro.multilevel
        import repro.partition

        for mod in (
            repro.graphs,
            repro.partition,
            repro.ga,
            repro.baselines,
            repro.indexing,
            repro.incremental,
            repro.multilevel,
            repro.experiments,
        ):
            for name in mod.__all__:
                assert hasattr(mod, name), f"{mod.__name__}.{name}"
