"""Degenerate-input and failure-injection tests across the stack."""

import numpy as np
import pytest

from repro.baselines import greedy_partition, rgb_partition, rsb_partition
from repro.errors import PartitionError
from repro.ga import (
    DKNUX,
    Fitness1,
    Fitness2,
    GAConfig,
    GAEngine,
    HillClimber,
    UniformCrossover,
)
from repro.graphs import CSRGraph, path_graph, star_graph
from repro.partition import Partition, check_partition


class TestTrivialGraphs:
    def test_engine_on_edgeless_graph(self):
        """With no edges the only objective is balance; the GA must find
        a perfectly balanced assignment."""
        g = CSRGraph(12, [], [])
        fit = Fitness1(g, 3)
        cfg = GAConfig(population_size=12, max_generations=15)
        res = GAEngine(g, fit, UniformCrossover(), cfg, seed=1).run()
        assert res.best.load_imbalance == 0.0
        assert res.best_fitness == 0.0

    def test_engine_single_part(self):
        g = path_graph(8)
        fit = Fitness1(g, 1)
        cfg = GAConfig(population_size=8, max_generations=3)
        res = GAEngine(g, fit, UniformCrossover(), cfg, seed=2).run()
        assert res.best.cut_size == 0.0
        assert res.best.part_sizes.tolist() == [8]

    def test_fitness_on_two_node_graph(self):
        g = CSRGraph(2, [0], [1])
        fit = Fitness1(g, 2)
        assert fit.evaluate(np.array([0, 1])) == -2.0  # cut 1 counted twice
        assert fit.evaluate(np.array([0, 0])) == -2.0  # pure imbalance

    def test_hillclimb_on_star(self):
        """On a star graph the center dominates every cut; the climber
        must remain consistent with single-node moves around it."""
        g = star_graph(8)
        for cls in (Fitness1, Fitness2):
            fit = cls(g, 3)
            hc = HillClimber(g, fit)
            a = np.arange(9, dtype=np.int64) % 3
            improved, value = hc.improve(a, max_passes=4)
            assert np.isclose(value, fit.evaluate(improved))

    def test_partition_of_empty_graph(self):
        g = CSRGraph(0, [], [])
        p = Partition(g, np.zeros(0, dtype=np.int64), 2)
        assert p.cut_size == 0.0
        assert p.part_sizes.tolist() == [0, 0]
        check_partition(p)


class TestDegenerateParameters:
    def test_rsb_each_node_its_own_part(self):
        g = path_graph(5)
        p = rsb_partition(g, 5)
        assert sorted(p.assignment.tolist()) == [0, 1, 2, 3, 4]
        check_partition(p)

    def test_greedy_k_equals_n(self):
        g = path_graph(6)
        p = greedy_partition(g, 6, seed=0)
        assert p.part_sizes.tolist() == [1] * 6

    def test_rgb_star(self):
        p = rgb_partition(star_graph(9), 2)
        check_partition(p)
        # any bisection of a star cuts ~half the spokes
        assert p.cut_size >= 4.0

    def test_mutation_rate_one_engine_survives(self):
        """Even pathological mutation cannot break invariants."""
        g = path_graph(10)
        fit = Fitness1(g, 2)
        cfg = GAConfig(
            population_size=8, max_generations=5, mutation_rate=1.0
        )
        res = GAEngine(g, fit, UniformCrossover(), cfg, seed=3).run()
        check_partition(res.best)

    def test_crossover_rate_one(self):
        g = path_graph(10)
        fit = Fitness1(g, 2)
        cfg = GAConfig(population_size=8, max_generations=5, crossover_rate=1.0)
        res = GAEngine(g, fit, DKNUX(g, 2), cfg, seed=4).run()
        check_partition(res.best)

    def test_population_of_two(self):
        g = path_graph(6)
        fit = Fitness1(g, 2)
        cfg = GAConfig(population_size=2, max_generations=10)
        res = GAEngine(g, fit, UniformCrossover(), cfg, seed=5).run()
        check_partition(res.best)


class TestDisconnectedStack:
    @pytest.fixture
    def islands(self):
        """Three disjoint triangles."""
        us = [0, 1, 0, 3, 4, 3, 6, 7, 6]
        vs = [1, 2, 2, 4, 5, 5, 7, 8, 8]
        return CSRGraph(9, us, vs)

    def test_rsb_on_disconnected(self, islands):
        p = rsb_partition(islands, 3)
        check_partition(p)
        assert p.part_sizes.max() - p.part_sizes.min() <= 1

    def test_optimal_partition_has_zero_cut(self, islands):
        a = np.repeat([0, 1, 2], 3)
        p = Partition(islands, a, 3)
        assert p.cut_size == 0.0
        assert p.load_imbalance == 0.0

    def test_ga_finds_zero_cut(self, islands):
        fit = Fitness1(islands, 3)
        cfg = GAConfig(
            population_size=32,
            max_generations=40,
            hill_climb="all",
            patience=15,
            target_fitness=0.0,
        )
        res = GAEngine(islands, fit, DKNUX(islands, 3), cfg, seed=6).run()
        assert res.best_fitness == 0.0
        assert res.stopped_by == "target_fitness"

    def test_greedy_on_disconnected(self, islands):
        p = greedy_partition(islands, 3, seed=1)
        check_partition(p)
        assert int(p.part_sizes.sum()) == 9
