"""Tests for selection and replacement strategies."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.ga import (
    generational_replacement,
    make_selector,
    plus_replacement,
    rank_select,
    random_select,
    roulette_select,
    tournament_select,
)


class TestTournament:
    def test_prefers_fitter(self, rng):
        fit = np.array([-100.0, -1.0, -50.0, -80.0])
        idx = tournament_select(fit, 2000, rng, size=2)
        counts = np.bincount(idx, minlength=4)
        assert counts[1] == counts.max()
        assert counts[0] < counts[1]

    def test_size_one_is_uniform(self, rng):
        fit = np.array([-100.0, -1.0])
        idx = tournament_select(fit, 4000, rng, size=1)
        frac = (idx == 0).mean()
        assert 0.45 < frac < 0.55

    def test_large_size_nearly_always_best(self, rng):
        fit = np.arange(10, dtype=float)
        idx = tournament_select(fit, 500, rng, size=8)
        assert (idx == 9).mean() > 0.5

    def test_count(self, rng):
        idx = tournament_select(np.zeros(5), 13, rng)
        assert idx.shape == (13,)
        assert idx.min() >= 0 and idx.max() < 5

    def test_bad_size(self, rng):
        with pytest.raises(ConfigError):
            tournament_select(np.zeros(3), 2, rng, size=0)

    def test_empty_population(self, rng):
        with pytest.raises(ConfigError):
            tournament_select(np.zeros(0), 2, rng)


class TestRoulette:
    def test_proportional_preference(self, rng):
        fit = np.array([-10.0, 0.0, -10.0])
        idx = roulette_select(fit, 3000, rng)
        counts = np.bincount(idx, minlength=3)
        assert counts[1] > counts[0]
        assert counts[1] > counts[2]

    def test_all_equal_is_uniform(self, rng):
        fit = np.full(4, -7.0)
        idx = roulette_select(fit, 4000, rng)
        counts = np.bincount(idx, minlength=4)
        assert counts.min() > 800

    def test_worst_not_strictly_excluded(self, rng):
        fit = np.array([-10.0, 0.0])
        idx = roulette_select(fit, 5000, rng)
        assert (idx == 0).sum() >= 0  # never raises; epsilon floor works

    def test_empty(self, rng):
        with pytest.raises(ConfigError):
            roulette_select(np.zeros(0), 1, rng)


class TestRank:
    def test_rank_order_preference(self, rng):
        fit = np.array([-30.0, -20.0, -10.0])
        idx = rank_select(fit, 6000, rng)
        counts = np.bincount(idx, minlength=3)
        assert counts[0] < counts[1] < counts[2]

    def test_shift_invariance(self, rng):
        """Rank selection depends only on order, not magnitudes."""
        fit1 = np.array([-30.0, -20.0, -10.0])
        fit2 = np.array([-3e9, -2.0, -1.0])
        rng1 = np.random.default_rng(0)
        rng2 = np.random.default_rng(0)
        assert np.array_equal(
            rank_select(fit1, 100, rng1), rank_select(fit2, 100, rng2)
        )

    def test_empty(self, rng):
        with pytest.raises(ConfigError):
            rank_select(np.zeros(0), 1, rng)


class TestRandomSelect:
    def test_uniform(self, rng):
        idx = random_select(np.array([-1000.0, 0.0]), 4000, rng)
        assert 0.45 < (idx == 0).mean() < 0.55

    def test_empty(self, rng):
        with pytest.raises(ConfigError):
            random_select(np.zeros(0), 1, rng)


class TestFactory:
    @pytest.mark.parametrize("kind", ["tournament", "roulette", "rank", "random"])
    def test_known_kinds(self, kind, rng):
        sel = make_selector(kind)
        idx = sel(np.array([-1.0, -2.0, -3.0]), 5, rng)
        assert idx.shape == (5,)

    def test_unknown_kind(self):
        with pytest.raises(ConfigError):
            make_selector("lottery")


class TestReplacement:
    def _pops(self, rng):
        parents = rng.integers(0, 2, (4, 6))
        offspring = rng.integers(0, 2, (4, 6))
        pf = np.array([-4.0, -3.0, -2.0, -1.0])
        of = np.array([-3.5, -0.5, -9.0, -2.5])
        return parents, pf, offspring, of

    def test_plus_takes_global_best(self, rng):
        parents, pf, offspring, of = self._pops(rng)
        pop, fit = plus_replacement(parents, pf, offspring, of, 4)
        assert fit.tolist() == [-0.5, -1.0, -2.0, -2.5]
        assert np.array_equal(pop[0], offspring[1])

    def test_plus_monotone_best(self, rng):
        """Best fitness never decreases under plus replacement."""
        parents, pf, offspring, of = self._pops(rng)
        _, fit = plus_replacement(parents, pf, offspring, of, 4)
        assert fit.max() >= max(pf.max(), of.max()) - 1e-12

    def test_plus_ties_prefer_offspring(self, rng):
        parents = np.zeros((1, 3), dtype=np.int64)
        offspring = np.ones((1, 3), dtype=np.int64)
        pop, _ = plus_replacement(
            parents, np.array([-1.0]), offspring, np.array([-1.0]), 1
        )
        assert np.array_equal(pop[0], offspring[0])

    def test_generational_keeps_elite(self, rng):
        parents, pf, offspring, of = self._pops(rng)
        pop, fit = generational_replacement(
            parents, pf, offspring, of, 4, elite=1
        )
        # best parent (-1.0) survives; worst offspring (-9.0) dropped
        assert -1.0 in fit.tolist()
        assert -9.0 not in fit.tolist()

    def test_generational_zero_elite(self, rng):
        parents, pf, offspring, of = self._pops(rng)
        pop, fit = generational_replacement(
            parents, pf, offspring, of, 4, elite=0
        )
        assert sorted(fit.tolist()) == sorted(of.tolist())

    def test_generational_sorted_best_first(self, rng):
        parents, pf, offspring, of = self._pops(rng)
        _, fit = generational_replacement(parents, pf, offspring, of, 4, elite=2)
        assert np.all(np.diff(fit) <= 0)

    def test_generational_bad_elite(self, rng):
        parents, pf, offspring, of = self._pops(rng)
        with pytest.raises(ConfigError):
            generational_replacement(parents, pf, offspring, of, 4, elite=9)
