"""Tests for graph structural operations."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graphs import (
    CSRGraph,
    adjacency_matrix,
    bfs_distances,
    bfs_order,
    caveman_graph,
    connected_components,
    degree_histogram,
    grid2d,
    is_connected,
    laplacian,
    path_graph,
    peripheral_node,
    subgraph,
)


class TestComponents:
    def test_connected_graph_one_component(self, grid4x4):
        labels = connected_components(grid4x4)
        assert labels.max() == 0
        assert is_connected(grid4x4)

    def test_two_components(self):
        g = CSRGraph(5, [0, 3], [1, 4])  # {0,1}, {2}, {3,4}
        labels = connected_components(g)
        assert labels[0] == labels[1]
        assert labels[3] == labels[4]
        assert len({labels[0], labels[2], labels[3]}) == 3
        assert not is_connected(g)

    def test_empty_and_singleton(self):
        assert is_connected(CSRGraph(0, [], []))
        assert is_connected(CSRGraph(1, [], []))

    def test_isolated_nodes(self):
        g = CSRGraph(4, [], [])
        assert connected_components(g).tolist() == [0, 1, 2, 3]


class TestBFS:
    def test_order_starts_at_source(self, path6):
        order = bfs_order(path6, 2)
        assert order[0] == 2
        assert sorted(order.tolist()) == list(range(6))

    def test_order_respects_levels(self, path6):
        order = bfs_order(path6, 0).tolist()
        assert order == [0, 1, 2, 3, 4, 5]

    def test_distances_on_path(self, path6):
        dist = bfs_distances(path6, 0)
        assert dist.tolist() == [0, 1, 2, 3, 4, 5]

    def test_distances_unreachable(self):
        g = CSRGraph(4, [0], [1])
        dist = bfs_distances(g, 0)
        assert dist[1] == 1
        assert dist[2] == -1 and dist[3] == -1

    def test_bad_start(self, path6):
        with pytest.raises(GraphError):
            bfs_order(path6, 10)
        with pytest.raises(GraphError):
            bfs_distances(path6, -1)

    def test_grid_distance_is_manhattan(self):
        g = grid2d(5, 5)
        dist = bfs_distances(g, 0)
        # node (r, c) has id 5r + c; distance from (0,0) is r + c
        for r in range(5):
            for c in range(5):
                assert dist[5 * r + c] == r + c


class TestMatrices:
    def test_laplacian_rows_sum_to_zero(self, mesh60):
        lap = laplacian(mesh60, dense=True)
        assert np.allclose(lap.sum(axis=1), 0.0)
        assert np.allclose(lap, lap.T)

    def test_laplacian_sparse_matches_dense(self, grid4x4):
        dense = laplacian(grid4x4, dense=True)
        sparse = laplacian(grid4x4).toarray()
        assert np.allclose(dense, sparse)

    def test_adjacency_weighted(self, weighted_triangle):
        adj = adjacency_matrix(weighted_triangle, dense=True)
        assert adj[0, 2] == 4.0
        assert adj[2, 0] == 4.0
        assert np.all(np.diag(adj) == 0)


class TestSubgraph:
    def test_induced_edges(self, grid4x4):
        # top-left 2x2 block: nodes 0,1,4,5
        sub, mapping = subgraph(grid4x4, np.array([0, 1, 4, 5]))
        assert sub.n_nodes == 4
        assert sub.n_edges == 4
        assert mapping.tolist() == [0, 1, 4, 5]

    def test_weights_carried(self, weighted_triangle):
        sub, _ = subgraph(weighted_triangle, np.array([0, 2]))
        assert sub.node_weights.tolist() == [1.0, 3.0]
        assert sub.edge_weights.tolist() == [4.0]

    def test_coords_carried(self, grid4x4):
        sub, _ = subgraph(grid4x4, np.array([5, 6]))
        assert sub.coords is not None
        assert sub.coords.shape == (2, 2)

    def test_duplicates_rejected(self, grid4x4):
        with pytest.raises(GraphError):
            subgraph(grid4x4, np.array([0, 0]))

    def test_out_of_range_rejected(self, grid4x4):
        with pytest.raises(GraphError):
            subgraph(grid4x4, np.array([0, 99]))

    def test_empty_selection(self, grid4x4):
        sub, mapping = subgraph(grid4x4, np.array([], dtype=np.int64))
        assert sub.n_nodes == 0
        assert mapping.size == 0


class TestMisc:
    def test_degree_histogram(self, path6):
        hist = degree_histogram(path6)
        assert hist.tolist() == [0, 2, 4]

    def test_degree_histogram_empty(self):
        assert degree_histogram(CSRGraph(0, [], [])).size == 0

    def test_peripheral_node_on_path(self, path6):
        p = peripheral_node(path6, start=3)
        assert p in (0, 5)

    def test_peripheral_node_caveman(self):
        g = caveman_graph(3, 4)
        p = peripheral_node(g)
        assert 0 <= p < g.n_nodes

    def test_peripheral_empty_rejected(self):
        with pytest.raises(GraphError):
            peripheral_node(CSRGraph(0, [], []))
