"""Tests for the indexing schemes, including the paper's exact examples."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.indexing import (
    deinterleave_bits,
    hilbert_index,
    hilbert_indices,
    hilbert_matrix,
    interleave_arrays,
    interleave_bits,
    row_major_index,
    row_major_indices,
    row_major_matrix,
    shuffled_row_major_index,
    shuffled_row_major_indices,
    shuffled_row_major_matrix,
)

#: Figure 1(a) of the paper: row-major indexing of an 8x8 image.
FIGURE_1A = np.arange(64).reshape(8, 8)

#: Figure 1(b) of the paper: shuffled row-major indexing of an 8x8 image.
FIGURE_1B = np.array(
    [
        [0, 1, 4, 5, 16, 17, 20, 21],
        [2, 3, 6, 7, 18, 19, 22, 23],
        [8, 9, 12, 13, 24, 25, 28, 29],
        [10, 11, 14, 15, 26, 27, 30, 31],
        [32, 33, 36, 37, 48, 49, 52, 53],
        [34, 35, 38, 39, 50, 51, 54, 55],
        [40, 41, 44, 45, 56, 57, 60, 61],
        [42, 43, 46, 47, 58, 59, 62, 63],
    ]
)


class TestPaperExamples:
    def test_appendix_equal_width_example(self):
        """index1=001, index2=010, index3=110 -> 001011100."""
        assert interleave_bits([0b001, 0b010, 0b110], [3, 3, 3]) == 0b001011100

    def test_appendix_unequal_width_example(self):
        """index1=101, index2=01, index3=0 -> 100110."""
        assert interleave_bits([0b101, 0b01, 0b0], [3, 2, 1]) == 0b100110

    def test_figure_1a_exact(self):
        assert np.array_equal(row_major_matrix(8, 8), FIGURE_1A)

    def test_figure_1b_exact(self):
        assert np.array_equal(shuffled_row_major_matrix(8, 8), FIGURE_1B)


class TestInterleave:
    def test_roundtrip(self):
        widths = [4, 3, 5]
        for values in [(3, 2, 17), (15, 7, 31), (0, 0, 0)]:
            idx = interleave_bits(list(values), widths)
            assert deinterleave_bits(idx, widths) == values

    def test_bijective_over_small_domain(self):
        widths = [2, 3]
        seen = set()
        for a in range(4):
            for b in range(8):
                seen.add(interleave_bits([a, b], widths))
        assert seen == set(range(32))

    def test_value_too_wide_rejected(self):
        with pytest.raises(ConfigError):
            interleave_bits([4], [2])

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            interleave_bits([-1], [3])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            interleave_bits([1, 2], [3])

    def test_deinterleave_excess_bits_rejected(self):
        with pytest.raises(ConfigError):
            deinterleave_bits(1 << 10, [2, 2])

    def test_array_matches_scalar(self, rng):
        widths = [5, 5]
        coords = rng.integers(0, 32, size=(50, 2))
        vec = interleave_arrays(coords, widths)
        for i in range(50):
            assert vec[i] == interleave_bits(list(coords[i]), widths)

    def test_array_validation(self):
        with pytest.raises(ConfigError):
            interleave_arrays(np.zeros((3, 2)), [2, 2])  # float dtype
        with pytest.raises(ConfigError):
            interleave_arrays(np.zeros((3, 2), dtype=np.int64), [40, 40])


class TestRowMajor:
    def test_scalar_2d(self):
        assert row_major_index([2, 3], (8, 8)) == 19

    def test_scalar_3d(self):
        assert row_major_index([1, 2, 3], (4, 5, 6)) == 1 * 30 + 2 * 6 + 3

    def test_vectorized(self, rng):
        coords = rng.integers(0, 8, size=(30, 2))
        vec = row_major_indices(coords, (8, 8))
        for i in range(30):
            assert vec[i] == row_major_index(list(coords[i]), (8, 8))

    def test_out_of_range(self):
        with pytest.raises(ConfigError):
            row_major_index([9, 0], (8, 8))
        with pytest.raises(ConfigError):
            row_major_indices(np.array([[0, 8]]), (8, 8))

    def test_dim_mismatch(self):
        with pytest.raises(ConfigError):
            row_major_index([1], (4, 4))


class TestShuffled:
    def test_matrix_is_bijection(self):
        m = shuffled_row_major_matrix(8, 8)
        assert sorted(m.ravel().tolist()) == list(range(64))

    def test_scalar_matches_matrix(self):
        m = shuffled_row_major_matrix(8, 8)
        assert shuffled_row_major_index([3, 5], (8, 8)) == m[3, 5]

    def test_rectangular_unequal_bits(self):
        """Paper's generalized unequal-width interleave on a 4x16 grid."""
        m = shuffled_row_major_matrix(4, 16)
        assert sorted(m.ravel().tolist()) == list(range(64))

    def test_locality_preservation(self):
        """Adjacent cells mostly map to nearby indices — the property IBP
        needs. Compare average index distance of grid-neighbors against
        random pairs."""
        m = shuffled_row_major_matrix(16, 16).astype(float)
        horiz = np.abs(np.diff(m, axis=1)).mean()
        rng = np.random.default_rng(0)
        rand_pairs = np.abs(
            m.ravel()[rng.integers(0, 256, 500)]
            - m.ravel()[rng.integers(0, 256, 500)]
        ).mean()
        assert horiz < rand_pairs / 2

    def test_out_of_range(self):
        with pytest.raises(ConfigError):
            shuffled_row_major_index([8, 0], (8, 8))

    def test_vectorized_matches_scalar(self, rng):
        coords = rng.integers(0, 8, size=(40, 2))
        vec = shuffled_row_major_indices(coords, (8, 8))
        for i in range(40):
            assert vec[i] == shuffled_row_major_index(list(coords[i]), (8, 8))


class TestHilbert:
    def test_order1(self):
        # canonical order-1 Hilbert curve: (0,0)=0 (0,1)=1 (1,1)=2 (1,0)=3
        assert hilbert_index(0, 0, 1) == 0
        assert hilbert_index(0, 1, 1) == 1
        assert hilbert_index(1, 1, 1) == 2
        assert hilbert_index(1, 0, 1) == 3

    @pytest.mark.parametrize("order", [1, 2, 3, 4])
    def test_bijection(self, order):
        m = hilbert_matrix(order)
        side = 1 << order
        assert sorted(m.ravel().tolist()) == list(range(side * side))

    @pytest.mark.parametrize("order", [2, 3, 4])
    def test_continuity(self, order):
        """Consecutive Hilbert indices are grid-adjacent — the defining
        property of the curve."""
        side = 1 << order
        m = hilbert_matrix(order)
        pos = np.empty((side * side, 2), dtype=np.int64)
        for y in range(side):
            for x in range(side):
                pos[m[y, x]] = (x, y)
        steps = np.abs(np.diff(pos, axis=0)).sum(axis=1)
        assert np.all(steps == 1)

    def test_vector_scalar_agree(self, rng):
        coords = rng.integers(0, 16, size=(30, 2))
        vec = hilbert_indices(coords, 4)
        for i in range(30):
            assert vec[i] == hilbert_index(*coords[i], 4)

    def test_validation(self):
        with pytest.raises(ConfigError):
            hilbert_indices(np.array([[0, 0]]), 0)
        with pytest.raises(ConfigError):
            hilbert_indices(np.array([[99, 0]]), 2)
        with pytest.raises(ConfigError):
            hilbert_indices(np.zeros((2, 3), dtype=np.int64), 2)
