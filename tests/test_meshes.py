"""Tests for the paper-scale mesh workload generators."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graphs import (
    PAPER_SIZES,
    blue_noise_points,
    check_graph,
    is_connected,
    mesh_graph,
    paper_mesh,
)


class TestBlueNoise:
    def test_count_and_range(self):
        pts = blue_noise_points(30, seed=1)
        assert pts.shape == (30, 2)
        assert pts.min() >= 0.0 and pts.max() <= 1.0

    def test_deterministic(self):
        a = blue_noise_points(25, seed=4)
        b = blue_noise_points(25, seed=4)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = blue_noise_points(25, seed=4)
        b = blue_noise_points(25, seed=5)
        assert not np.array_equal(a, b)

    def test_zero_points(self):
        assert blue_noise_points(0, seed=1).shape == (0, 2)

    def test_negative_rejected(self):
        with pytest.raises(GraphError):
            blue_noise_points(-3)

    def test_spacing_better_than_uniform(self):
        """Best-candidate sampling should avoid very close pairs."""
        pts = blue_noise_points(50, seed=2)
        d = np.sqrt(
            ((pts[:, None, :] - pts[None, :, :]) ** 2).sum(-1)
        )
        np.fill_diagonal(d, np.inf)
        # minimum pairwise distance well above the uniform-sampling
        # expectation (~1/(2n) for close pairs)
        assert d.min() > 0.02


class TestMeshGraph:
    def test_valid_and_connected(self):
        g = mesh_graph(60, seed=3)
        check_graph(g)
        assert is_connected(g)
        assert g.coords is not None

    def test_deterministic(self):
        assert mesh_graph(40, seed=8) == mesh_graph(40, seed=8)

    def test_minimum_size(self):
        with pytest.raises(GraphError):
            mesh_graph(2)

    def test_bounded_average_degree(self):
        g = mesh_graph(150, seed=10)
        # Delaunay triangulations have average degree < 6
        assert g.degree().mean() < 6.0


class TestPaperMesh:
    @pytest.mark.parametrize("n", PAPER_SIZES)
    def test_all_paper_sizes(self, n):
        g = paper_mesh(n)
        assert g.n_nodes == n
        assert is_connected(g)

    def test_stable_across_calls(self):
        assert paper_mesh(78) == paper_mesh(78)

    def test_distinct_sizes_distinct_graphs(self):
        assert paper_mesh(78) != paper_mesh(88)
