"""Tests for the process-parallel serving tier (PR 4/5/10).

Covers: digest→shard routing stability, sharded vs single-process
bit-identity on a replayed mixed trace, the process-pool execution
lane (cost-model routing, graph shipping, bit-identity with the
thread lane), the sharded front's lifecycle/error behavior, (PR 5)
the fault-tolerant fleet: socket-vs-pipe transport equivalence,
shard-death fail-fast, supervised restart with session failover
bit-identity, the exception round-trip hardening, and (PR 10) the
elastic fleet: live resize with session/warm-result handoff, dead
shards serving degraded out of the ring with zero lost answers,
probe-driven eject/readmit, and the ``/v1/admin/ring`` endpoint.
"""

import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.analysis import LockWitness, extract_lock_graph
from repro.errors import ServiceError, ShardDiedError
from repro.incremental.partitioner import IncrementalGAPartitioner
from repro.experiments import replay_trace, service_trace
from repro.graphs import mesh_graph
from repro.incremental.updates import insert_local_nodes
from repro.service import (
    PartitionRequest,
    PartitionService,
    ServiceClient,
    ServiceConfig,
    ShardServer,
    ShardedPartitionService,
    UpdateRequest,
    graph_digest,
    shard_for_digest,
)

#: tiny GA budget — these tests exercise the serving layer, not search
GA = dict(population_size=12, max_generations=6, patience=3)


@pytest.fixture
def graph():
    return mesh_graph(48, seed=3)


@pytest.fixture(scope="module")
def lock_graph():
    """Statically extracted lock graph (``repro.analysis``) — the claim
    the runtime witness checks the failover suite against."""
    import repro

    src = Path(repro.__file__).resolve().parent
    return extract_lock_graph([str(src)])


# ----------------------------------------------------------------------
# shard routing
# ----------------------------------------------------------------------

class TestShardRouting:
    def test_routing_is_stable_across_calls_and_runs(self, graph):
        """shard_for_digest is a pure function of content: same digest,
        same shard, in every process, forever (the frozen literal guards
        against silent changes to the hash construction)."""
        d = graph_digest(graph)
        assert shard_for_digest(d, 4) == shard_for_digest(d, 4)
        twin = graph_digest(mesh_graph(48, seed=3))
        assert shard_for_digest(twin, 4) == shard_for_digest(d, 4)
        # frozen expectation for a literal digest string
        assert shard_for_digest("deadbeef", 4) == 1
        assert shard_for_digest("deadbeef", 2) == 1

    def test_routing_covers_shards(self):
        """The canonical workload digests spread over shards (no
        degenerate all-on-one mapping)."""
        from repro.experiments.workloads import BASE_SIZES, workload

        shards = {
            shard_for_digest(graph_digest(workload(s)), 2) for s in BASE_SIZES
        }
        assert shards == {0, 1}

    def test_single_shard_accepts_everything(self, graph):
        assert shard_for_digest(graph_digest(graph), 1) == 0
        with pytest.raises(ServiceError):
            shard_for_digest("x", 0)


# ----------------------------------------------------------------------
# sharded vs single-process bit-identity
# ----------------------------------------------------------------------

class TestShardedService:
    def test_trace_replay_bit_identical_to_single_process(self):
        """The acceptance contract: a replayed mixed trace (one-shot +
        repeated + incremental sessions) answers with bit-identical
        assignments whether served by one process or by digest-sharded
        worker processes."""
        trace = service_trace(n_requests=10, seed=2, n_parts=4, ga=GA)
        with ServiceClient(n_workers=2) as single:
            single_results = replay_trace(single, trace)
        with ServiceClient(shards=2, n_workers=2) as sharded:
            sharded_results = replay_trace(sharded, trace)
        assert len(single_results) == len(sharded_results)
        for (op_a, res_a), (op_b, res_b) in zip(
            single_results, sharded_results
        ):
            assert op_a == op_b
            if op_a["op"] in ("partition", "open", "update"):
                assert np.array_equal(res_a.assignment, res_b.assignment)
                assert res_a.cut_size == res_b.cut_size
                assert res_a.fitness == res_b.fitness

    def test_same_graph_sticks_to_one_shard(self, graph):
        with ShardedPartitionService(n_shards=3, n_workers=1) as svc:
            expected = svc.shard_of(graph)
            r1 = svc.submit(PartitionRequest(graph, 4, seed=0, ga=GA))
            r2 = svc.submit(PartitionRequest(graph, 4, seed=0, ga=GA))
            assert r1.shard == r2.shard == expected
            assert r2.cache_hit  # the shard's own result cache fired

    def test_submit_many_reassembles_in_order(self, graph):
        other = mesh_graph(56, seed=9)
        requests = [
            PartitionRequest(graph, 4, method="greedy"),
            PartitionRequest(other, 4, method="greedy"),
            PartitionRequest(graph, 4, method="random", seed=1),
        ]
        with ShardedPartitionService(n_shards=2, n_workers=1) as svc:
            out = svc.submit_many(requests)
            assert [r.method for r in out] == ["greedy", "greedy", "random"]
            assert out[0].shard == svc.shard_of(graph)
            assert out[1].shard == svc.shard_of(other)
        with PartitionService(n_workers=1) as single:
            ref = [single.submit(r) for r in requests]
        for a, b in zip(out, ref):
            assert np.array_equal(a.assignment, b.assignment)

    def test_sessions_route_by_id(self, graph):
        with ShardedPartitionService(n_shards=2, n_workers=1) as svc:
            opened = svc.open_session(graph, 4, seed=0, ga=GA)
            update = insert_local_nodes(graph, 5, seed=7)
            result = svc.update_session(
                UpdateRequest(opened.session_id, update.graph)
            )
            assert result.session_id == opened.session_id
            assert result.shard == opened.shard == svc.shard_of(graph)
            summary = svc.close_session(opened.session_id)
            assert summary["n_updates"] == 1
            with pytest.raises(ServiceError, match="unknown session"):
                svc.update_session(UpdateRequest(opened.session_id, graph))

    def test_shard_errors_propagate(self, graph):
        with ShardedPartitionService(n_shards=2, n_workers=1) as svc:
            with pytest.raises(ServiceError):
                svc.submit(PartitionRequest(graph, 4, ga={"bogus": 1}))
            # the shard survives a failed request
            ok = svc.submit(PartitionRequest(graph, 4, method="greedy"))
            assert ok.assignment.shape == (graph.n_nodes,)

    def test_closed_front_rejects_requests(self, graph):
        svc = ShardedPartitionService(n_shards=1, n_workers=1)
        svc.close()
        with pytest.raises(ServiceError, match="closed"):
            svc.submit(PartitionRequest(graph, 2, method="random"))
        svc.close()  # idempotent

    def test_stats_aggregates_shards(self, graph):
        with ShardedPartitionService(n_shards=2, n_workers=1) as svc:
            svc.submit(PartitionRequest(graph, 4, method="greedy"))
            stats = svc.stats()
            assert stats["n_shards"] == 2
            assert len(stats["shards"]) == 2
            executed = sum(
                s["scheduler"]["jobs_executed"] for s in stats["shards"]
            )
            assert executed == 1

    def test_http_serve_with_shards(self, graph):
        """End-to-end: the HTTP frontend drives a sharded service."""
        from repro.service import HTTPServiceClient, serve

        server = serve(port=0, background=True, shards=2, n_workers=1)
        host, port = server.server_address
        client = HTTPServiceClient(f"http://{host}:{port}", timeout=120.0)
        try:
            assert client.healthy()
            r1 = client.partition(graph, 4, seed=0, ga=GA)
            r2 = client.partition(graph, 4, seed=0, ga=GA)
            assert np.array_equal(r1.assignment, r2.assignment)
            assert r2.cache_hit
            assert r1.shard is not None
            stats = client.stats()
            assert stats["n_shards"] == 2
        finally:
            server.service.close()
            server.shutdown()
            server.server_close()


# ----------------------------------------------------------------------
# socket transport (PR 5)
# ----------------------------------------------------------------------

class TestSocketTransport:
    def test_message_codec_roundtrip(self, graph):
        """The length-prefixed JSON codec round-trips the multiplexer
        message shapes losslessly (requests, results, errors)."""
        from repro.service.transport import decode_message, encode_message

        req = PartitionRequest(graph, 4, seed=3, ga=GA)
        msg = decode_message(encode_message((7, "submit", (req,))))
        assert msg[0] == 7 and msg[1] == "submit"
        back = msg[2][0]
        assert back.graph == graph
        assert (back.n_parts, back.seed, back.ga) == (4, 3, GA)

        with PartitionService(n_workers=1) as svc:
            result = svc.submit(PartitionRequest(graph, 4, method="greedy"))
        rid, ok, payload = decode_message(encode_message((9, True, result)))
        assert (rid, ok) == (9, True)
        assert np.array_equal(payload.assignment, result.assignment)
        assert payload.cut_size == result.cut_size
        assert payload.fitness == result.fitness

        rid, ok, payload = decode_message(
            encode_message((1, False, ShardDiedError("gone")))
        )
        assert not ok
        assert isinstance(payload, ShardDiedError)
        assert "gone" in str(payload)

    def test_unknown_error_type_degrades_to_service_error(self):
        from repro.service.models import error_from_wire

        exc = error_from_wire({"type": "WeirdVendorError", "message": "x"})
        assert type(exc) is ServiceError
        assert "WeirdVendorError" in str(exc)

    def test_parse_address(self):
        from repro.service import parse_address

        assert parse_address("10.0.0.5:4001") == ("10.0.0.5", 4001)
        with pytest.raises(ServiceError):
            parse_address("no-port")
        with pytest.raises(ServiceError):
            parse_address("host:abc")

    def test_socket_vs_pipe_trace_bit_identical(self):
        """Transport equivalence: the same mixed trace answers with
        bit-identical assignments over socket-attached shard servers
        and over local pipe shards."""
        trace = service_trace(n_requests=8, seed=5, n_parts=4, ga=GA)
        servers = [ShardServer(n_workers=2).start() for _ in range(2)]
        try:
            front = ShardedPartitionService(
                attach=[s.address for s in servers]
            )
            with ServiceClient(service=front) as client:
                socket_results = replay_trace(client, trace)
            front.close()
            with ServiceClient(shards=2, n_workers=2) as client:
                pipe_results = replay_trace(client, trace)
        finally:
            for server in servers:
                server.close()
        assert len(socket_results) == len(pipe_results)
        for (op_a, res_a), (op_b, res_b) in zip(socket_results, pipe_results):
            assert op_a == op_b
            if op_a["op"] in ("partition", "open", "update"):
                assert np.array_equal(res_a.assignment, res_b.assignment)
                assert res_a.cut_size == res_b.cut_size
                assert res_a.fitness == res_b.fitness

    def test_shard_server_outlives_front(self, graph):
        """Detaching a front is not a shard death: the server keeps its
        caches and sessions, and a re-attached front sees the caches
        warm and rebuilds its session routing (list_sessions) so the
        old front's sessions remain addressable."""
        with ShardServer(n_workers=1) as server:
            server.start()
            front = ShardedPartitionService(attach=[server.address])
            r1 = front.submit(PartitionRequest(graph, 4, seed=0, ga=GA))
            opened = front.open_session(graph, 4, seed=0, ga=GA)
            front.close()
            front = ShardedPartitionService(attach=[server.address])
            r2 = front.submit(PartitionRequest(graph, 4, seed=0, ga=GA))
            assert r2.cache_hit  # the server-side cache survived
            assert np.array_equal(r1.assignment, r2.assignment)
            # the session opened through the previous front still routes
            update = insert_local_nodes(graph, 5, seed=7).graph
            got = front.update_session(
                UpdateRequest(opened.session_id, update)
            )
            assert got.session_id == opened.session_id
            summary = front.close_session(opened.session_id)
            assert summary["n_updates"] == 1
            front.close()

    def test_attach_rejects_unreachable_address(self):
        with pytest.raises(ShardDiedError, match="cannot attach"):
            ShardedPartitionService(attach=["127.0.0.1:1"])

    def test_attach_validation(self):
        """An empty attach list must not silently fall back to local
        shards, and an n_shards that disagrees with the attach list is
        an error, not a guess."""
        with pytest.raises(ServiceError, match="at least one"):
            ShardedPartitionService(attach=[])
        with pytest.raises(ServiceError, match="conflicts"):
            ShardedPartitionService(
                n_shards=3, attach=["127.0.0.1:1", "127.0.0.1:2"]
            )
        # config overrides cannot reach remote workers — reject rather
        # than let the caller believe they took effect
        with pytest.raises(ServiceError, match="no service config"):
            ShardedPartitionService(attach=["127.0.0.1:1"], n_workers=4)

    def test_client_rejects_shards_plus_attach(self):
        with pytest.raises(ServiceError, match="not both"):
            ServiceClient(shards=2, attach=["127.0.0.1:4001"])


# ----------------------------------------------------------------------
# binary data plane (PR 9)
# ----------------------------------------------------------------------

class TestBinaryFrames:
    def _frame(self, message) -> bytes:
        """Whole binary frame body after the magic byte, as one buffer
        (what :meth:`SocketTransport.recv` hands the decoder)."""
        from repro.service.transport import encode_frame_binary

        segments = encode_frame_binary(message)
        return b"".join(bytes(memoryview(s)) for s in segments)[1:]

    def test_roundtrip_bit_identical_to_json_lane(self, graph):
        """The acceptance contract: a message through the binary codec
        decodes to values whose JSON re-encode is byte-identical to the
        JSON lane's — the two wire formats are interchangeable."""
        from repro.service.transport import (
            decode_frame_binary,
            encode_message,
        )

        req = PartitionRequest(graph, 4, seed=3, ga=GA)
        with PartitionService(n_workers=1) as svc:
            result = svc.submit(PartitionRequest(graph, 4, method="greedy"))
        for message in (
            (7, "submit", (req,)),
            (9, True, result),
            (1, False, ShardDiedError("gone")),
            (2, "stats", ()),
        ):
            decoded = decode_frame_binary(self._frame(message))
            assert encode_message(decoded) == encode_message(message)

    def test_decoded_arrays_are_zero_copy_views(self, graph):
        """Result assignments decode as views into the frame buffer —
        no per-array copy on the reply path (requests still canonicalize
        through the CSRGraph constructor)."""
        from repro.service.transport import decode_frame_binary

        with PartitionService(n_workers=1) as svc:
            result = svc.submit(PartitionRequest(graph, 4, method="greedy"))
        decoded = decode_frame_binary(self._frame((9, True, result)))
        back = decoded[2].assignment
        assert not back.flags.owndata  # view into the frame
        assert np.array_equal(back, result.assignment)

    def test_truncated_header_raises_service_error(self, graph):
        from repro.service.transport import decode_frame_binary

        body = self._frame((2, "stats", ()))
        with pytest.raises(ServiceError, match="truncated"):
            decode_frame_binary(body[:3])  # shorter than the length word
        with pytest.raises(ServiceError, match="overruns"):
            decode_frame_binary(body[:6])  # length word, header cut off

    def test_truncated_buffer_raises_service_error(self, graph):
        from repro.service.transport import decode_frame_binary

        body = self._frame((7, "submit", (PartitionRequest(graph, 4),)))
        with pytest.raises(ServiceError, match="declares"):
            decode_frame_binary(body[:-8])  # last array buffer cut short

    def test_length_bomb_rejected_without_allocation(self):
        """A header declaring buffers far beyond the bytes on the wire
        must fail validation — never allocate or hang waiting."""
        import json as _json
        import struct as _struct

        from repro.service.transport import decode_frame_binary

        header = _json.dumps({
            "kind": "request", "id": 1, "verb": "submit",
            "args": [{"__nd__": [0, "i8", [1 << 40]]}],
            "bufs": [8 << 40],
        }).encode()
        body = _struct.pack(">I", len(header)) + header + b"\x00" * 16
        with pytest.raises(ServiceError, match="declares"):
            decode_frame_binary(body)
        # a reference whose shape disagrees with its (plausible) buffer
        header = _json.dumps({
            "kind": "request", "id": 1, "verb": "submit",
            "args": [{"__nd__": [0, "i8", [3]]}],
            "bufs": [16],
        }).encode()
        body = _struct.pack(">I", len(header)) + header + b"\x00" * 16
        with pytest.raises(ServiceError, match="disagrees"):
            decode_frame_binary(body)
        # malformed buffer table (negative / non-int entries)
        for bufs in ([-8], ["8"], [True]):
            header = _json.dumps({"kind": "x", "bufs": bufs}).encode()
            body = _struct.pack(">I", len(header)) + header
            with pytest.raises(ServiceError):
                decode_frame_binary(body)

    def test_socket_transport_mixed_stream_stays_in_sync(self, graph):
        """A receiver accepts JSON and binary frames interleaved on one
        connection, and a validation error leaves the stream usable —
        the decoder consumes whole frames before judging them."""
        import socket as _socket

        from repro.service.transport import SocketTransport

        a, b = _socket.socketpair()
        ta, tb = SocketTransport(a), SocketTransport(b)
        try:
            req = PartitionRequest(graph, 4, seed=3, ga=GA)
            ta.send((1, "submit", (req,)))          # JSON frame
            assert ta.enable_binary()
            ta.send((2, "submit", (req,)))          # binary frame
            ta.send((3, "stats", ()))               # binary, no arrays
            m1, m2, m3 = tb.recv(), tb.recv(), tb.recv()
            assert [m[0] for m in (m1, m2, m3)] == [1, 2, 3]
            assert m1[2][0].graph == graph
            assert m2[2][0].graph == graph
            assert np.array_equal(
                m1[2][0].graph.edges_u, m2[2][0].graph.edges_u
            )
        finally:
            ta.close()
            tb.close()

    def test_pipe_shared_memory_lane_roundtrip(self, graph):
        """Above the size threshold the pipe lane ships raw buffers via
        shared memory; decoded values match the pickle lane exactly."""
        import multiprocessing as mp

        from repro.service.transport import PipeTransport

        left, right = mp.Pipe()
        ta, tb = PipeTransport(left), PipeTransport(right)
        try:
            req = PartitionRequest(graph, 4, seed=3, ga=GA)
            ta.send((1, "submit", (req,)))          # pickle lane
            assert ta.enable_binary()
            ta.shm_threshold = 1                     # force the shm lane
            ta.send((2, "submit", (req,)))          # shared-memory lane
            m1, m2 = tb.recv(), tb.recv()
            assert m1[2][0].graph == m2[2][0].graph == graph
            assert np.array_equal(
                m1[2][0].graph.edge_weights, m2[2][0].graph.edge_weights
            )
        finally:
            ta.close()
            tb.close()

    def test_negotiation_pipe_socket_and_disabled(self, graph):
        """The capabilities handshake: local pipe shards and attached
        socket shards both negotiate binary; ``binary_frames=False``
        pins JSON without touching the peer."""
        with ShardedPartitionService(n_shards=2, n_workers=1) as svc:
            assert all(s.handle.binary for s in svc._slots)
        with ShardedPartitionService(
            n_shards=1, n_workers=1, binary_frames=False
        ) as svc:
            assert not any(s.handle.binary for s in svc._slots)
        with ShardServer(n_workers=1) as server:
            server.start()
            front = ShardedPartitionService(attach=[server.address])
            try:
                assert all(s.handle.binary for s in front._slots)
            finally:
                front.close()

    def test_binary_vs_json_trace_bit_identical(self):
        """The PR's invariant: the binary data plane is purely an
        encoding — a replayed mixed trace answers bit-identically with
        it negotiated on (default) and forced off, over both local pipe
        shards and socket-attached shard servers."""
        trace = service_trace(n_requests=8, seed=5, n_parts=4, ga=GA)
        with ServiceClient(shards=2, n_workers=2) as client:
            binary_pipe = replay_trace(client, trace)
        with ServiceClient(
            shards=2, n_workers=2, binary_frames=False
        ) as client:
            json_pipe = replay_trace(client, trace)
        servers = [ShardServer(n_workers=2).start() for _ in range(2)]
        try:
            front = ShardedPartitionService(
                attach=[s.address for s in servers]
            )
            assert all(s.handle.binary for s in front._slots)
            with ServiceClient(service=front) as client:
                binary_socket = replay_trace(client, trace)
        finally:
            for server in servers:
                server.close()
        for results in (json_pipe, binary_socket):
            assert len(results) == len(binary_pipe)
            for (op_a, res_a), (op_b, res_b) in zip(binary_pipe, results):
                assert op_a == op_b
                if op_a["op"] in ("partition", "open", "update"):
                    assert np.array_equal(res_a.assignment, res_b.assignment)
                    assert res_a.cut_size == res_b.cut_size
                    assert res_a.fitness == res_b.fitness

    def test_restarted_shard_renegotiates_binary(self, graph):
        """Failover keeps the fast path: a supervised replacement shard
        re-runs the handshake, and answers stay bit-identical."""
        with ShardedPartitionService(n_shards=2, n_workers=1) as svc:
            shard = svc.shard_of(graph)
            assert svc._slots[shard].handle.binary
            before = svc.submit(PartitionRequest(graph, 4, seed=0, ga=GA))
            svc._slots[shard].handle.process.kill()
            assert _wait_for(
                lambda: svc.shard_health()[shard]["state"] == "up"
                and svc.shard_health()[shard]["restarts"] == 1
            )
            assert svc._slots[shard].handle.binary  # re-negotiated
            after = svc.submit(PartitionRequest(graph, 4, seed=0, ga=GA))
            assert np.array_equal(after.assignment, before.assignment)
            assert after.cut_size == before.cut_size


# ----------------------------------------------------------------------
# failover: shard death, restart, session persistence (PR 5)
# ----------------------------------------------------------------------

def _wait_for(predicate, timeout=30.0, interval=0.05) -> bool:
    deadline = time.time() + timeout
    while time.time() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


class TestFailover:
    def test_shard_death_fails_pending_fast(self, graph):
        """The satellite bugfix: killing a shard mid-request must fail
        the waiting caller promptly with ShardDiedError — not leave it
        blocked forever on a reply that will never come."""
        with ShardedPartitionService(
            n_shards=2, n_workers=1, auto_restart=False
        ) as svc:
            shard = svc.shard_of(graph)
            caught: dict = {}

            def slow_call():
                try:
                    svc.submit(PartitionRequest(
                        graph, 4, seed=0,
                        ga=dict(population_size=64, max_generations=2000,
                                patience=None),
                    ))
                except Exception as exc:  # noqa: BLE001 - recorded for assert
                    caught["exc"] = exc

            thread = threading.Thread(target=slow_call)
            thread.start()
            handle = svc._slots[shard].handle
            assert _wait_for(lambda: bool(handle._pending))
            handle.process.kill()
            thread.join(timeout=15.0)
            assert not thread.is_alive(), "caller still blocked after death"
            assert isinstance(caught["exc"], ShardDiedError)
            # without auto-restart the slot stays down and fails fast
            assert svc.shard_health()[shard]["state"] == "down"
            with pytest.raises(ShardDiedError):
                svc.submit(PartitionRequest(graph, 4, method="greedy"))

    def test_restarted_shard_serves_same_digests(self, graph):
        """Supervised restart: the replacement takes the dead shard's
        slot, so digest routing is unchanged and answers stay
        bit-identical to a single-process service."""
        with PartitionService(n_workers=1) as single:
            ref = single.submit(PartitionRequest(graph, 4, seed=0, ga=GA))
        with ShardedPartitionService(n_shards=2, n_workers=1) as svc:
            shard = svc.shard_of(graph)
            before = svc.submit(PartitionRequest(graph, 4, seed=0, ga=GA))
            svc._slots[shard].handle.process.kill()
            assert _wait_for(
                lambda: svc.shard_health()[shard]["state"] == "up"
                and svc.shard_health()[shard]["restarts"] == 1
            )
            after = svc.submit(PartitionRequest(graph, 4, seed=0, ga=GA))
            assert after.shard == before.shard == shard
            assert np.array_equal(after.assignment, ref.assignment)
            assert np.array_equal(before.assignment, ref.assignment)
            health = svc.shard_health()[shard]
            assert health["restarts"] == 1 and health["state"] == "up"

    def test_session_failover_bit_identical_to_uninterrupted(
        self, graph, lock_graph
    ):
        """The acceptance contract: a session restored from its
        snapshot after shard death continues with assignments
        bit-identical to an uninterrupted run at the same epochs.

        The whole run executes under the lock-order witness: the
        in-process reference service exercises the session locks, the
        sharded front its fleet/pending locks (the shard *children* are
        separate processes, invisible by design).  Every observed
        acquisition order must be in the static lock graph, the
        compute-lock → state-lock edge must actually be observed, and
        the state lock must never be held across a GA run."""
        updates = []
        g = graph
        for step in range(3):
            g = insert_local_nodes(g, 5, seed=100 + step).graph
            updates.append(g)

        with LockWitness() as witness:
            witness.probe(IncrementalGAPartitioner, "run_pending")

            with PartitionService(n_workers=1) as ref_svc:
                opened = ref_svc.open_session(graph, 4, seed=0, ga=GA)
                ref = [
                    ref_svc.update_session(UpdateRequest(opened.session_id, g))
                    for g in updates
                ]

            with ShardedPartitionService(n_shards=2, n_workers=1) as svc:
                shard = svc.shard_of(graph)
                opened = svc.open_session(graph, 4, seed=0, ga=GA)
                assert opened.shard == shard
                first = svc.update_session(
                    UpdateRequest(opened.session_id, updates[0])
                )
                assert np.array_equal(first.assignment, ref[0].assignment)
                # crash the session's shard between epochs
                svc._slots[shard].handle.process.kill()
                assert _wait_for(
                    lambda: svc.shard_health()[shard]["state"] == "up"
                    and svc.shard_health()[shard]["restarts"] == 1
                )
                # the restored session resumes at the committed epoch —
                # same session id, bit-identical continuation
                for g, expected in zip(updates[1:], ref[1:]):
                    got = svc.update_session(
                        UpdateRequest(opened.session_id, g)
                    )
                    assert got.session_id == opened.session_id
                    assert np.array_equal(got.assignment, expected.assignment)
                    assert got.cut_size == expected.cut_size
                    assert got.fitness == expected.fitness
                summary = svc.close_session(opened.session_id)
                assert summary["n_updates"] == 3

        # witness: observed order ⊆ static graph, and the edge the
        # static analyzer claims between the session's locks was really
        # exercised (the in-process ref run's initial partition + every
        # overlapped ingestion acquire state under compute)
        mapped = witness.assert_subgraph_of(lock_graph)
        assert ("Session.compute_lock", "Session.lock") in mapped
        # the state lock is never observed held across a GA run (ref
        # service defaults to the overlapped path)
        runs = witness.assert_never_held_during(
            lock_graph, "Session.lock", "run_pending"
        )
        assert runs >= len(updates)

    def test_restart_limit_bounds_crash_loop(self, graph):
        """The supervisor restarts at most restart_limit times; beyond
        that the slot goes down and callers fail fast instead of the
        fleet thrashing forever."""
        with ShardedPartitionService(
            n_shards=1, n_workers=1, restart_limit=2
        ) as svc:
            for expected in (1, 2):
                svc._slots[0].handle.process.kill()
                assert _wait_for(
                    lambda: svc.shard_health()[0]["state"] == "up"
                    and svc.shard_health()[0]["restarts"] == expected
                ), f"restart {expected} did not happen"
            svc._slots[0].handle.process.kill()
            assert _wait_for(
                lambda: svc.shard_health()[0]["state"] == "down"
            )
            with pytest.raises(ShardDiedError):
                svc.submit(PartitionRequest(graph, 4, method="greedy"))

    def test_http_shard_death_answers_503(self, graph):
        """At the HTTP boundary a dead shard is the *service's* fault:
        503 (retryable), never 400 — clients must be able to tell
        'retry once the shard is back' from 'fix your request'."""
        from repro.service import HTTPServiceClient, serve

        svc = ShardedPartitionService(
            n_shards=2, n_workers=1, auto_restart=False
        )
        server = serve(port=0, background=True, service=svc)
        host, port = server.server_address
        client = HTTPServiceClient(f"http://{host}:{port}", timeout=60.0)
        try:
            shard = svc.shard_of(graph)
            svc._slots[shard].handle.process.kill()
            assert _wait_for(
                lambda: svc.shard_health()[shard]["state"] == "down"
            )
            with pytest.raises(ServiceError, match="HTTP 503"):
                client.partition(graph, 4, method="greedy")
        finally:
            svc.close()
            server.shutdown()
            server.server_close()

    def test_snapshot_restore_preserves_session_state(self, graph):
        """Unit-level: a PartitionService built over the same snapshot
        dir restores open sessions (same id, same epoch) and a restored
        session's next update is bit-identical."""
        import tempfile

        update = insert_local_nodes(graph, 5, seed=9).graph
        with tempfile.TemporaryDirectory() as tmp:
            with PartitionService(n_workers=1, snapshot_dir=tmp) as svc:
                opened = svc.open_session(graph, 4, seed=0, ga=GA)
                sid = opened.session_id
                assert svc.persistence.stats()["snapshots_written"] == 1
            # "crash": the service is gone, the store survives
            with PartitionService(n_workers=1, snapshot_dir=tmp) as revived:
                assert revived.sessions.stats()["restored"] == 1
                got = revived.update_session(UpdateRequest(sid, update))
            with PartitionService(n_workers=1) as ref_svc:
                ref_open = ref_svc.open_session(graph, 4, seed=0, ga=GA)
                ref = ref_svc.update_session(
                    UpdateRequest(ref_open.session_id, update)
                )
            assert np.array_equal(opened.assignment, ref_open.assignment)
            assert np.array_equal(got.assignment, ref.assignment)

    def test_closed_session_snapshot_is_forgotten(self, graph):
        import tempfile

        with tempfile.TemporaryDirectory() as tmp:
            with PartitionService(n_workers=1, snapshot_dir=tmp) as svc:
                opened = svc.open_session(graph, 4, seed=0, ga=GA)
                assert svc.persistence.store.list_ids() == [opened.session_id]
                svc.close_session(opened.session_id)
                assert svc.persistence.store.list_ids() == []
            with PartitionService(n_workers=1, snapshot_dir=tmp) as revived:
                assert revived.sessions.stats()["restored"] == 0

    def test_corrupt_snapshot_is_skipped(self, graph):
        import tempfile
        from pathlib import Path

        from repro.service.persistence import SNAPSHOT_SUFFIX

        with tempfile.TemporaryDirectory() as tmp:
            Path(tmp, f"s9-bad{SNAPSHOT_SUFFIX}").write_bytes(b"not pickle")
            with PartitionService(n_workers=1, snapshot_dir=tmp) as svc:
                assert svc.persistence.stats()["restore_failures"] == 1
                assert svc.sessions.stats()["restored"] == 0
                # the service still works
                r = svc.submit(PartitionRequest(graph, 4, method="greedy"))
                assert r.assignment.shape == (graph.n_nodes,)

    def test_periodic_snapshot_pass_skips_busy_sessions(self, graph):
        """A periodic pass only stores committed, quiescent state: a
        session whose compute lock is held is skipped."""
        import tempfile

        with tempfile.TemporaryDirectory() as tmp:
            with PartitionService(n_workers=1, snapshot_dir=tmp) as svc:
                opened = svc.open_session(graph, 4, seed=0, ga=GA)
                session = svc.sessions.get(opened.session_id)
                # epoch unchanged since the on-commit write: nothing new
                assert svc.persistence.snapshot_open_sessions() == 0
                session.partitioner._epoch += 1  # simulate progress
                with session.compute_lock:  # simulate a GA mid-flight
                    assert svc.persistence.snapshot_open_sessions() == 0
                assert svc.persistence.snapshot_open_sessions() == 1
                session.partitioner._epoch -= 1


# ----------------------------------------------------------------------
# elastic fleet: ring resize, handoff, probes (PR 10)
# ----------------------------------------------------------------------

class TestElasticFleet:
    def test_grow_and_shrink_bit_identical_with_warm_handoff(self, graph):
        """The PR-10 acceptance contract at unit scale: a live 2→4 grow
        (and the 4→2 shrink back) under session traffic answers
        bit-identically to an uninterrupted single-process run, moves
        open sessions to their new ring owners, and re-seeds warm
        results so a re-submitted request stays a cache hit."""
        other = mesh_graph(56, seed=9)
        update = insert_local_nodes(graph, 5, seed=7).graph
        update2 = insert_local_nodes(update, 5, seed=8).graph
        with PartitionService(n_workers=1) as ref_svc:
            ref_open = ref_svc.open_session(graph, 4, seed=0, ga=GA)
            ref_part = ref_svc.submit(PartitionRequest(other, 4, seed=0, ga=GA))
            ref_upd = ref_svc.update_session(
                UpdateRequest(ref_open.session_id, update)
            )
            ref_upd2 = ref_svc.update_session(
                UpdateRequest(ref_open.session_id, update2)
            )
        with ShardedPartitionService(n_shards=2, n_workers=1) as svc:
            opened = svc.open_session(graph, 4, seed=0, ga=GA)
            assert np.array_equal(opened.assignment, ref_open.assignment)
            before = svc.submit(PartitionRequest(other, 4, seed=0, ga=GA))
            assert np.array_equal(before.assignment, ref_part.assignment)

            summary = svc.resize(4)
            assert summary["changed"] and summary["spawned"] == [2, 3]
            assert svc.n_shards == 4 and svc.ring.epoch >= 1
            assert sorted(svc.ring.members) == [0, 1, 2, 3]

            # the session continues bit-identically wherever it now lives
            got = svc.update_session(UpdateRequest(opened.session_id, update))
            assert got.session_id == opened.session_id
            assert np.array_equal(got.assignment, ref_upd.assignment)
            # warm handoff: the re-submitted one-shot is still a hit,
            # whether or not its digest moved to a new owner
            again = svc.submit(PartitionRequest(other, 4, seed=0, ga=GA))
            assert again.cache_hit
            assert np.array_equal(again.assignment, ref_part.assignment)

            shrink = svc.resize(2)
            assert shrink["changed"] and svc.n_shards == 2
            assert sorted(svc.ring.members) == [0, 1]
            got2 = svc.update_session(UpdateRequest(opened.session_id, update2))
            assert np.array_equal(got2.assignment, ref_upd2.assignment)
            final = svc.submit(PartitionRequest(other, 4, seed=0, ga=GA))
            assert final.cache_hit
            summary = svc.close_session(opened.session_id)
            assert summary["n_updates"] == 2

    def test_resize_noop_and_validation(self, graph):
        with ShardedPartitionService(n_shards=2, n_workers=1) as svc:
            noop = svc.resize(2)
            assert not noop["changed"] and svc.ring.epoch == 0
            with pytest.raises(ServiceError):
                svc.resize(0)
            with pytest.raises(ServiceError):
                svc.ring_admin("bogus")
            with pytest.raises(ServiceError):
                svc.ring_admin("eject", shard=99)

    def test_dead_shard_serves_degraded_with_zero_lost_answers(self, graph):
        """Satellite: kill a shard that owns live keys and sessions;
        after a probe pass ejects it, every key answers from the
        surviving shard — retried one-shots and the adopted session are
        bit-identical to an uninterrupted run (zero lost answers)."""
        update = insert_local_nodes(graph, 5, seed=7).graph
        with PartitionService(n_workers=1) as ref_svc:
            ref_open = ref_svc.open_session(graph, 4, seed=0, ga=GA)
            ref_upd = ref_svc.update_session(
                UpdateRequest(ref_open.session_id, update)
            )
            ref_shot = ref_svc.submit(PartitionRequest(graph, 4, seed=0, ga=GA))
        with ShardedPartitionService(
            n_shards=2, n_workers=1, auto_restart=False
        ) as svc:
            victim = svc.shard_of(graph)
            opened = svc.open_session(graph, 4, seed=0, ga=GA)
            assert opened.shard == victim
            assert np.array_equal(opened.assignment, ref_open.assignment)
            svc._slots[victim].handle.process.kill()
            assert _wait_for(
                lambda: svc.shard_health()[victim]["state"] == "down"
            )
            # the probe pass (normally the probe_interval_s loop)
            # ejects the dead shard: new epoch, keyspace rerouted,
            # sessions adopted from their on-commit snapshots
            svc.probe_shards()
            health = svc.stats()["health"][victim]
            assert health["in_ring"] is False
            assert health["probe_ok"] is False
            assert health["last_probe"] is not None
            assert health["probe_failures"] >= 1
            assert svc.ring.members == (1 - victim,)
            assert svc.ring.epoch == 1
            # retried keys answer bit-identically from the survivor
            retried = svc.submit(PartitionRequest(graph, 4, seed=0, ga=GA))
            assert retried.shard == 1 - victim
            assert np.array_equal(retried.assignment, ref_shot.assignment)
            got = svc.update_session(UpdateRequest(opened.session_id, update))
            assert got.session_id == opened.session_id
            assert np.array_equal(got.assignment, ref_upd.assignment)
            # the probe-failure counter is on the metrics surface
            snapshot = svc.metrics()
            failures = [
                series
                for series in snapshot["counters"]
                if series["name"] == "repro_shard_probe_failures_total"
            ]
            assert failures and sum(s["value"] for s in failures) >= 1

    def test_probe_ejects_and_readmits_remote_shard(self, graph):
        """Front-driven probes on an attached fleet: a killed remote
        shard is ejected (degraded N−1, new epoch) and re-admitted once
        a probe finds it answering again at the same address — no
        operator intervention beyond restarting the worker."""
        s0 = ShardServer(n_workers=1).start()
        s1 = ShardServer(n_workers=1).start()
        addr1 = s1.address
        svc = ShardedPartitionService(attach=[s0.address, s1.address])
        restarted = None
        try:
            assert svc.probe_shards()[1]["probe_ok"] is True
            s1.close()
            assert _wait_for(
                lambda: not svc.probe_shards()[1]["in_ring"]
            ), "dead remote shard was not ejected"
            assert svc.ring.members == (0,)
            # the fleet serves degraded meanwhile
            r = svc.submit(PartitionRequest(graph, 4, method="greedy"))
            assert r.shard == 0
            # recovery at the same address
            host, port = addr1.rsplit(":", 1)
            restarted = ShardServer(host=host, port=int(port), n_workers=1).start()
            assert _wait_for(
                lambda: svc.probe_shards()[1]["in_ring"]
            ), "recovered remote shard was not readmitted"
            assert svc.ring.members == (0, 1)
            assert svc.shard_health()[1]["probe_ok"] is True
        finally:
            svc.close()
            s0.close()
            if restarted is not None:
                restarted.close()

    def test_remove_shard_is_permanent(self, graph):
        with ShardedPartitionService(n_shards=3, n_workers=1) as svc:
            summary = svc.remove_shard(2)
            assert summary["ring"]["members"] == [0, 1]
            assert svc.shard_health()[2]["state"] == "removed"
            # removed slots stay out: probes skip them, readmit refuses
            svc.probe_shards()
            assert svc.shard_health()[2]["state"] == "removed"
            with pytest.raises(ServiceError):
                svc.ring_admin("readmit", shard=2)
            r = svc.submit(PartitionRequest(graph, 4, method="greedy"))
            assert r.shard in (0, 1)
            with pytest.raises(ServiceError):
                svc.remove_shard(0) and svc.remove_shard(1)

    def test_ring_admin_http_endpoint(self, graph):
        """The ``/v1/admin/ring`` endpoint through the shared routing
        table: status, resize, eject/readmit — and 404 on a service
        without a ring."""
        import json

        from repro.service import dispatch_request

        with ShardedPartitionService(n_shards=2, n_workers=1) as svc:
            status, _, body = dispatch_request(svc, "GET", "/v1/admin/ring")
            assert status == 200
            answer = json.loads(body)
            assert answer["ring"]["members"] == [0, 1]
            assert len(answer["health"]) == 2

            status, _, body = dispatch_request(
                svc, "POST", "/v1/admin/ring",
                json.dumps({"action": "eject", "shard": 1}).encode(),
            )
            assert status == 200
            assert json.loads(body)["ring"]["members"] == [0]
            status, _, body = dispatch_request(
                svc, "POST", "/v1/admin/ring",
                json.dumps({"action": "readmit", "shard": 1}).encode(),
            )
            assert status == 200
            assert json.loads(body)["ring"]["members"] == [0, 1]

            status, _, body = dispatch_request(
                svc, "POST", "/v1/admin/ring",
                json.dumps({"action": "resize", "n_shards": 3}).encode(),
            )
            assert status == 200
            assert json.loads(body)["ring"]["n_slots"] == 3

            # bad action → 400, not a crash
            status, _, _ = dispatch_request(
                svc, "POST", "/v1/admin/ring",
                json.dumps({"action": "bogus"}).encode(),
            )
            assert status == 400
        with PartitionService(n_workers=1) as single:
            status, _, _ = dispatch_request(single, "GET", "/v1/admin/ring")
            assert status == 404


# ----------------------------------------------------------------------
# exception round-trip hardening (PR 5 satellite)
# ----------------------------------------------------------------------

class _PicklesButWontUnpickle(Exception):
    """Dumps fine; loads raises TypeError (two required init args)."""

    def __init__(self, a, b):
        super().__init__(f"{a}:{b}")


class _WontPickle(Exception):
    def __reduce__(self):
        raise RuntimeError("nope")


class TestSafeException:
    def test_round_trippable_exception_passes_through(self):
        from repro.service.sharding import _safe_exception

        exc = ServiceError("boom")
        assert _safe_exception(exc) is exc

    def test_unpicklable_exception_falls_back(self):
        from repro.service.sharding import _safe_exception

        out = _safe_exception(_WontPickle("x"))
        assert type(out) is ServiceError
        assert "_WontPickle" in str(out)

    def test_pickles_but_wont_unpickle_falls_back(self):
        """The satellite bugfix: an exception that *dumps* but cannot be
        reconstructed front-side must be converted shard-side, not
        allowed to detonate in the front's reply dispatch."""
        import pickle

        from repro.service.sharding import _safe_exception

        exc = _PicklesButWontUnpickle("a", "b")
        data = pickle.dumps(exc)  # dumps fine...
        with pytest.raises(TypeError):
            pickle.loads(data)  # ...loads does not
        out = _safe_exception(exc)
        assert type(out) is ServiceError
        assert "_PicklesButWontUnpickle" in str(out) and "a:b" in str(out)


# ----------------------------------------------------------------------
# process-pool execution lane
# ----------------------------------------------------------------------

class TestProcessExecution:
    def test_process_lane_bit_identical_to_thread_lane(self, graph):
        with PartitionService(n_workers=1) as svc:
            thread_r = svc.submit(PartitionRequest(graph, 4, seed=0, ga=GA))
        with PartitionService(
            n_workers=1, process_workers=1, process_threshold=0
        ) as svc:
            proc_r = svc.submit(PartitionRequest(graph, 4, seed=0, ga=GA))
            assert proc_r.executed_in == "process"
            assert svc.stats()["scheduler"]["jobs_process"] == 1
        assert np.array_equal(thread_r.assignment, proc_r.assignment)
        assert thread_r.fitness == proc_r.fitness
        assert thread_r.executed_in == ""

    def test_cost_model_routes_by_threshold(self, graph):
        config = ServiceConfig(
            n_workers=1, process_workers=1, process_threshold=1e18
        )
        with PartitionService(config=config) as svc:
            r = svc.submit(PartitionRequest(graph, 4, seed=0, ga=GA))
            assert r.executed_in == ""  # below the floor: thread lane
            assert svc.stats()["scheduler"]["jobs_process"] == 0
        # ... and cheap methods never route regardless of threshold
        with PartitionService(
            n_workers=1, process_workers=1, process_threshold=0
        ) as svc:
            r = svc.submit(PartitionRequest(graph, 4, method="greedy"))
            assert r.executed_in == ""

    def test_graph_ships_once_per_pin(self, graph):
        with PartitionService(
            n_workers=1, process_workers=1, process_threshold=0
        ) as svc:
            svc.submit(PartitionRequest(graph, 4, seed=0, ga=GA))
            pool = svc.scheduler.process_pool
            digest = graph_digest(graph)
            assert svc._was_shipped(pool.slot(digest), digest)
            # a second distinct request reuses the shipped graph
            r2 = svc.submit(PartitionRequest(graph, 4, seed=1, ga=GA))
            assert r2.executed_in == "process"
            assert sum(len(d) for d in svc._shipped.values()) == 1

    def test_worker_resends_graph_after_state_loss(self, graph):
        """The NEEDS_GRAPH fallback: if the parent believes a graph was
        shipped but the worker does not hold it, the job is resent with
        the arrays — shipping is an optimization, not a protocol."""
        with PartitionService(
            n_workers=1, process_workers=1, process_threshold=0
        ) as svc:
            digest = graph_digest(graph)
            slot = svc.scheduler.process_pool.slot(digest)
            svc._mark_shipped(slot, digest)  # lie: nothing was shipped
            r = svc.submit(PartitionRequest(graph, 4, seed=0, ga=GA))
            assert r.executed_in == "process"
        with PartitionService(n_workers=1) as svc:
            ref = svc.submit(PartitionRequest(graph, 4, seed=0, ga=GA))
        assert np.array_equal(r.assignment, ref.assignment)

    def test_shipped_tracking_is_bounded_per_slot(self, graph):
        """The parent-side shipped set mirrors the worker intern LRU's
        capacity — it must not grow without bound on distinct-graph
        traffic (beyond the cap the worker has evicted the graph
        anyway, so remembering it would buy nothing)."""
        from repro.service.procexec import WORKER_GRAPH_CAP

        with PartitionService(
            n_workers=1, process_workers=1, process_threshold=0
        ) as svc:
            for i in range(WORKER_GRAPH_CAP + 5):
                svc._mark_shipped(0, f"digest-{i}")
            assert len(svc._shipped[0]) == WORKER_GRAPH_CAP
            assert not svc._was_shipped(0, "digest-0")  # evicted
            assert svc._was_shipped(0, f"digest-{WORKER_GRAPH_CAP + 4}")

    def test_serve_rejects_service_plus_shards(self, graph):
        from repro.service import make_server

        with PartitionService(n_workers=1) as svc:
            with pytest.raises(ServiceError, match="not both"):
                make_server(port=0, service=svc, shards=2)
            with pytest.raises(ServiceError, match="not both"):
                ServiceClient(service=svc, shards=2)

    def test_process_mode_warm_start_uses_parent_seed(self, graph):
        with PartitionService(
            n_workers=1, process_workers=1, process_threshold=0
        ) as svc:
            cold = svc.submit(PartitionRequest(graph, 4, seed=0, ga=GA))
            warm = svc.submit(
                PartitionRequest(graph, 4, seed=1, warm_start=True, ga=GA)
            )
            assert warm.executed_in == "process"
            assert warm.fitness >= cold.fitness - 1e-9
