"""Tests for the process-parallel serving tier (PR 4).

Covers: digest→shard routing stability, sharded vs single-process
bit-identity on a replayed mixed trace, the process-pool execution
lane (cost-model routing, graph shipping, bit-identity with the
thread lane), and the sharded front's lifecycle/error behavior.
"""

import numpy as np
import pytest

from repro.errors import ServiceError
from repro.experiments import replay_trace, service_trace
from repro.graphs import mesh_graph
from repro.incremental.updates import insert_local_nodes
from repro.service import (
    PartitionRequest,
    PartitionService,
    ServiceClient,
    ServiceConfig,
    ShardedPartitionService,
    UpdateRequest,
    graph_digest,
    shard_for_digest,
)

#: tiny GA budget — these tests exercise the serving layer, not search
GA = dict(population_size=12, max_generations=6, patience=3)


@pytest.fixture
def graph():
    return mesh_graph(48, seed=3)


# ----------------------------------------------------------------------
# shard routing
# ----------------------------------------------------------------------

class TestShardRouting:
    def test_routing_is_stable_across_calls_and_runs(self, graph):
        """shard_for_digest is a pure function of content: same digest,
        same shard, in every process, forever (the frozen literal guards
        against silent changes to the hash construction)."""
        d = graph_digest(graph)
        assert shard_for_digest(d, 4) == shard_for_digest(d, 4)
        twin = graph_digest(mesh_graph(48, seed=3))
        assert shard_for_digest(twin, 4) == shard_for_digest(d, 4)
        # frozen expectation for a literal digest string
        assert shard_for_digest("deadbeef", 4) == 1
        assert shard_for_digest("deadbeef", 2) == 1

    def test_routing_covers_shards(self):
        """The canonical workload digests spread over shards (no
        degenerate all-on-one mapping)."""
        from repro.experiments.workloads import BASE_SIZES, workload

        shards = {
            shard_for_digest(graph_digest(workload(s)), 2) for s in BASE_SIZES
        }
        assert shards == {0, 1}

    def test_single_shard_accepts_everything(self, graph):
        assert shard_for_digest(graph_digest(graph), 1) == 0
        with pytest.raises(ServiceError):
            shard_for_digest("x", 0)


# ----------------------------------------------------------------------
# sharded vs single-process bit-identity
# ----------------------------------------------------------------------

class TestShardedService:
    def test_trace_replay_bit_identical_to_single_process(self):
        """The acceptance contract: a replayed mixed trace (one-shot +
        repeated + incremental sessions) answers with bit-identical
        assignments whether served by one process or by digest-sharded
        worker processes."""
        trace = service_trace(n_requests=10, seed=2, n_parts=4, ga=GA)
        with ServiceClient(n_workers=2) as single:
            single_results = replay_trace(single, trace)
        with ServiceClient(shards=2, n_workers=2) as sharded:
            sharded_results = replay_trace(sharded, trace)
        assert len(single_results) == len(sharded_results)
        for (op_a, res_a), (op_b, res_b) in zip(
            single_results, sharded_results
        ):
            assert op_a == op_b
            if op_a["op"] in ("partition", "open", "update"):
                assert np.array_equal(res_a.assignment, res_b.assignment)
                assert res_a.cut_size == res_b.cut_size
                assert res_a.fitness == res_b.fitness

    def test_same_graph_sticks_to_one_shard(self, graph):
        with ShardedPartitionService(n_shards=3, n_workers=1) as svc:
            expected = svc.shard_of(graph)
            r1 = svc.submit(PartitionRequest(graph, 4, seed=0, ga=GA))
            r2 = svc.submit(PartitionRequest(graph, 4, seed=0, ga=GA))
            assert r1.shard == r2.shard == expected
            assert r2.cache_hit  # the shard's own result cache fired

    def test_submit_many_reassembles_in_order(self, graph):
        other = mesh_graph(56, seed=9)
        requests = [
            PartitionRequest(graph, 4, method="greedy"),
            PartitionRequest(other, 4, method="greedy"),
            PartitionRequest(graph, 4, method="random", seed=1),
        ]
        with ShardedPartitionService(n_shards=2, n_workers=1) as svc:
            out = svc.submit_many(requests)
            assert [r.method for r in out] == ["greedy", "greedy", "random"]
            assert out[0].shard == svc.shard_of(graph)
            assert out[1].shard == svc.shard_of(other)
        with PartitionService(n_workers=1) as single:
            ref = [single.submit(r) for r in requests]
        for a, b in zip(out, ref):
            assert np.array_equal(a.assignment, b.assignment)

    def test_sessions_route_by_id(self, graph):
        with ShardedPartitionService(n_shards=2, n_workers=1) as svc:
            opened = svc.open_session(graph, 4, seed=0, ga=GA)
            update = insert_local_nodes(graph, 5, seed=7)
            result = svc.update_session(
                UpdateRequest(opened.session_id, update.graph)
            )
            assert result.session_id == opened.session_id
            assert result.shard == opened.shard == svc.shard_of(graph)
            summary = svc.close_session(opened.session_id)
            assert summary["n_updates"] == 1
            with pytest.raises(ServiceError, match="unknown session"):
                svc.update_session(UpdateRequest(opened.session_id, graph))

    def test_shard_errors_propagate(self, graph):
        with ShardedPartitionService(n_shards=2, n_workers=1) as svc:
            with pytest.raises(ServiceError):
                svc.submit(PartitionRequest(graph, 4, ga={"bogus": 1}))
            # the shard survives a failed request
            ok = svc.submit(PartitionRequest(graph, 4, method="greedy"))
            assert ok.assignment.shape == (graph.n_nodes,)

    def test_closed_front_rejects_requests(self, graph):
        svc = ShardedPartitionService(n_shards=1, n_workers=1)
        svc.close()
        with pytest.raises(ServiceError, match="closed"):
            svc.submit(PartitionRequest(graph, 2, method="random"))
        svc.close()  # idempotent

    def test_stats_aggregates_shards(self, graph):
        with ShardedPartitionService(n_shards=2, n_workers=1) as svc:
            svc.submit(PartitionRequest(graph, 4, method="greedy"))
            stats = svc.stats()
            assert stats["n_shards"] == 2
            assert len(stats["shards"]) == 2
            executed = sum(
                s["scheduler"]["jobs_executed"] for s in stats["shards"]
            )
            assert executed == 1

    def test_http_serve_with_shards(self, graph):
        """End-to-end: the HTTP frontend drives a sharded service."""
        from repro.service import HTTPServiceClient, serve

        server = serve(port=0, background=True, shards=2, n_workers=1)
        host, port = server.server_address
        client = HTTPServiceClient(f"http://{host}:{port}", timeout=120.0)
        try:
            assert client.healthy()
            r1 = client.partition(graph, 4, seed=0, ga=GA)
            r2 = client.partition(graph, 4, seed=0, ga=GA)
            assert np.array_equal(r1.assignment, r2.assignment)
            assert r2.cache_hit
            assert r1.shard is not None
            stats = client.stats()
            assert stats["n_shards"] == 2
        finally:
            server.service.close()
            server.shutdown()
            server.server_close()


# ----------------------------------------------------------------------
# process-pool execution lane
# ----------------------------------------------------------------------

class TestProcessExecution:
    def test_process_lane_bit_identical_to_thread_lane(self, graph):
        with PartitionService(n_workers=1) as svc:
            thread_r = svc.submit(PartitionRequest(graph, 4, seed=0, ga=GA))
        with PartitionService(
            n_workers=1, process_workers=1, process_threshold=0
        ) as svc:
            proc_r = svc.submit(PartitionRequest(graph, 4, seed=0, ga=GA))
            assert proc_r.executed_in == "process"
            assert svc.stats()["scheduler"]["jobs_process"] == 1
        assert np.array_equal(thread_r.assignment, proc_r.assignment)
        assert thread_r.fitness == proc_r.fitness
        assert thread_r.executed_in == ""

    def test_cost_model_routes_by_threshold(self, graph):
        config = ServiceConfig(
            n_workers=1, process_workers=1, process_threshold=1e18
        )
        with PartitionService(config=config) as svc:
            r = svc.submit(PartitionRequest(graph, 4, seed=0, ga=GA))
            assert r.executed_in == ""  # below the floor: thread lane
            assert svc.stats()["scheduler"]["jobs_process"] == 0
        # ... and cheap methods never route regardless of threshold
        with PartitionService(
            n_workers=1, process_workers=1, process_threshold=0
        ) as svc:
            r = svc.submit(PartitionRequest(graph, 4, method="greedy"))
            assert r.executed_in == ""

    def test_graph_ships_once_per_pin(self, graph):
        with PartitionService(
            n_workers=1, process_workers=1, process_threshold=0
        ) as svc:
            svc.submit(PartitionRequest(graph, 4, seed=0, ga=GA))
            pool = svc.scheduler.process_pool
            digest = graph_digest(graph)
            assert svc._was_shipped(pool.slot(digest), digest)
            # a second distinct request reuses the shipped graph
            r2 = svc.submit(PartitionRequest(graph, 4, seed=1, ga=GA))
            assert r2.executed_in == "process"
            assert sum(len(d) for d in svc._shipped.values()) == 1

    def test_worker_resends_graph_after_state_loss(self, graph):
        """The NEEDS_GRAPH fallback: if the parent believes a graph was
        shipped but the worker does not hold it, the job is resent with
        the arrays — shipping is an optimization, not a protocol."""
        with PartitionService(
            n_workers=1, process_workers=1, process_threshold=0
        ) as svc:
            digest = graph_digest(graph)
            slot = svc.scheduler.process_pool.slot(digest)
            svc._mark_shipped(slot, digest)  # lie: nothing was shipped
            r = svc.submit(PartitionRequest(graph, 4, seed=0, ga=GA))
            assert r.executed_in == "process"
        with PartitionService(n_workers=1) as svc:
            ref = svc.submit(PartitionRequest(graph, 4, seed=0, ga=GA))
        assert np.array_equal(r.assignment, ref.assignment)

    def test_shipped_tracking_is_bounded_per_slot(self, graph):
        """The parent-side shipped set mirrors the worker intern LRU's
        capacity — it must not grow without bound on distinct-graph
        traffic (beyond the cap the worker has evicted the graph
        anyway, so remembering it would buy nothing)."""
        from repro.service.procexec import WORKER_GRAPH_CAP

        with PartitionService(
            n_workers=1, process_workers=1, process_threshold=0
        ) as svc:
            for i in range(WORKER_GRAPH_CAP + 5):
                svc._mark_shipped(0, f"digest-{i}")
            assert len(svc._shipped[0]) == WORKER_GRAPH_CAP
            assert not svc._was_shipped(0, "digest-0")  # evicted
            assert svc._was_shipped(0, f"digest-{WORKER_GRAPH_CAP + 4}")

    def test_serve_rejects_service_plus_shards(self, graph):
        from repro.service import make_server

        with PartitionService(n_workers=1) as svc:
            with pytest.raises(ServiceError, match="not both"):
                make_server(port=0, service=svc, shards=2)
            with pytest.raises(ServiceError, match="not both"):
                ServiceClient(service=svc, shards=2)

    def test_process_mode_warm_start_uses_parent_seed(self, graph):
        with PartitionService(
            n_workers=1, process_workers=1, process_threshold=0
        ) as svc:
            cold = svc.submit(PartitionRequest(graph, 4, seed=0, ga=GA))
            warm = svc.submit(
                PartitionRequest(graph, 4, seed=1, warm_start=True, ga=GA)
            )
            assert warm.executed_in == "process"
            assert warm.fitness >= cold.fitness - 1e-9
