"""Tests for RNG plumbing and the exception hierarchy."""

import numpy as np
import pytest

from repro import errors
from repro.rng import as_generator, seed_sequence, spawn


class TestAsGenerator:
    def test_none_gives_fresh_generator(self):
        g = as_generator(None)
        assert isinstance(g, np.random.Generator)

    def test_int_is_deterministic(self):
        a = as_generator(42).integers(0, 1000, 5)
        b = as_generator(42).integers(0, 1000, 5)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        g = np.random.default_rng(1)
        assert as_generator(g) is g

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(7)
        g = as_generator(seq)
        assert isinstance(g, np.random.Generator)


class TestSeedSequence:
    def test_int_roundtrip(self):
        seq = seed_sequence(5)
        assert isinstance(seq, np.random.SeedSequence)

    def test_sequence_passthrough(self):
        seq = np.random.SeedSequence(3)
        assert seed_sequence(seq) is seq

    def test_generator_input_deterministic(self):
        g1 = np.random.default_rng(9)
        g2 = np.random.default_rng(9)
        s1 = seed_sequence(g1)
        s2 = seed_sequence(g2)
        assert s1.entropy == s2.entropy


class TestSpawn:
    def test_count(self):
        gens = spawn(1, 4)
        assert len(gens) == 4

    def test_streams_independent(self):
        a, b = spawn(1, 2)
        assert not np.array_equal(a.integers(0, 1000, 10), b.integers(0, 1000, 10))

    def test_deterministic(self):
        a1 = spawn(7, 3)[2].integers(0, 1000, 5)
        a2 = spawn(7, 3)[2].integers(0, 1000, 5)
        assert np.array_equal(a1, a2)

    def test_zero(self):
        assert spawn(1, 0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn(1, -1)


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            errors.GraphError,
            errors.GraphFormatError,
            errors.PartitionError,
            errors.ConfigError,
            errors.ConvergenceError,
            errors.ExperimentError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)
        with pytest.raises(errors.ReproError):
            raise exc("boom")

    def test_format_error_is_graph_error(self):
        assert issubclass(errors.GraphFormatError, errors.GraphError)

    def test_catchable_without_masking_builtins(self):
        """Library errors never derive from e.g. ValueError, so catching
        ReproError does not swallow programming errors."""
        assert not issubclass(errors.ReproError, ValueError)
