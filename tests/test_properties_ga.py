"""Property-based tests on GA machinery (selection, replacement,
populations, balance primitives)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ga.population import random_population
from repro.ga.selection import (
    generational_replacement,
    plus_replacement,
    rank_select,
    roulette_select,
    tournament_select,
)
from repro.partition.balance import random_balanced_assignment


@st.composite
def fitness_vectors(draw, max_pop=20):
    pop = draw(st.integers(2, max_pop))
    values = draw(
        st.lists(
            st.floats(-1e6, 0.0, allow_nan=False),
            min_size=pop,
            max_size=pop,
        )
    )
    return np.asarray(values)


class TestSelectionProperties:
    @given(fitness_vectors(), st.integers(1, 30), st.integers(0, 2**31 - 1))
    @settings(max_examples=50, deadline=None)
    def test_selected_indices_valid(self, fitness, n, seed):
        rng = np.random.default_rng(seed)
        for select in (tournament_select, roulette_select, rank_select):
            idx = select(fitness, n, rng)
            assert idx.shape == (n,)
            assert idx.min() >= 0 and idx.max() < fitness.shape[0]

    @given(fitness_vectors(), st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_tournament_winner_at_least_as_fit_as_random(self, fitness, seed):
        """Expected fitness of tournament winners >= population mean."""
        rng = np.random.default_rng(seed)
        idx = tournament_select(fitness, 400, rng, size=2)
        assert fitness[idx].mean() >= fitness.mean() - 1e-6


class TestReplacementProperties:
    @given(
        st.integers(2, 12),
        st.integers(2, 12),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=50, deadline=None)
    def test_plus_replacement_is_elitist(self, pop, n_genes, seed):
        rng = np.random.default_rng(seed)
        parents = rng.integers(0, 3, (pop, n_genes))
        offspring = rng.integers(0, 3, (pop, n_genes))
        pf = rng.uniform(-100, 0, pop)
        of = rng.uniform(-100, 0, pop)
        new_pop, new_fit = plus_replacement(parents, pf, offspring, of, pop)
        assert new_pop.shape == (pop, n_genes)
        # best survivor == global best; worst survivor >= median of union
        union = np.sort(np.concatenate([pf, of]))[::-1]
        assert np.isclose(new_fit.max(), union[0])
        assert np.all(np.sort(new_fit)[::-1] == union[:pop])

    @given(
        st.integers(2, 10),
        st.integers(0, 5),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=50, deadline=None)
    def test_generational_elite_guarantee(self, pop, elite, seed):
        elite = min(elite, pop)
        rng = np.random.default_rng(seed)
        parents = rng.integers(0, 2, (pop, 4))
        offspring = rng.integers(0, 2, (pop, 4))
        pf = rng.uniform(-100, 0, pop)
        of = rng.uniform(-100, 0, pop)
        _, new_fit = generational_replacement(
            parents, pf, offspring, of, pop, elite=elite
        )
        # the top `elite` parent fitness values all survive
        for value in np.sort(pf)[::-1][:elite]:
            assert np.any(np.isclose(new_fit, value))


class TestPopulationProperties:
    @given(
        st.integers(1, 40),
        st.integers(1, 6),
        st.integers(1, 12),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=50, deadline=None)
    def test_random_population_balanced_rows(self, n, k, pop, seed):
        mat = random_population(n, k, pop, seed=seed)
        assert mat.shape == (pop, n)
        for row in mat:
            sizes = np.bincount(row, minlength=k)
            assert sizes.max() - sizes.min() <= 1

    @given(st.integers(0, 60), st.integers(1, 7), st.integers(0, 2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_balanced_assignment_partition_law(self, n, k, seed):
        a = random_balanced_assignment(n, k, seed=seed)
        assert a.shape == (n,)
        if n:
            sizes = np.bincount(a, minlength=k)
            assert sizes.sum() == n
            assert sizes.max() - sizes.min() <= 1
