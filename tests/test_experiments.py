"""Tests for the experiment harness (workloads, registry, runner, report)."""

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.experiments import (
    BASE_SIZES,
    DERIVED_SIZES,
    INCREMENTAL_PAIRS,
    PAPER_TABLES,
    TABLE_SPECS,
    RunnerSettings,
    format_paper_comparison,
    format_summary,
    format_table,
    get_spec,
    incremental_case,
    list_specs,
    run_cell,
    run_table,
    workload,
    workload_names,
)
from repro.experiments.registry import TableSpec
from repro.graphs import check_graph, is_connected


class TestWorkloads:
    def test_base_sizes_exact(self):
        for n in BASE_SIZES:
            g = workload(n)
            assert g.n_nodes == n
            check_graph(g)
            assert is_connected(g)

    def test_derived_sizes_compose(self):
        for size, (base, added) in DERIVED_SIZES.items():
            assert base + added == size
            g = workload(size)
            assert g.n_nodes == size

    def test_derived_graph_is_the_incremental_graph(self):
        """'213 nodes' in Tables 2/5 must be the '183 plus 30' graph of
        Tables 3/6 — the paper's sizes compose this way."""
        base_graph, update = incremental_case(183, 30)
        assert workload(213) == update.graph

    def test_incremental_base_matches_workload(self):
        base_graph, _ = incremental_case(118, 21)
        assert base_graph == workload(118)

    def test_incremental_old_ids_preserved(self):
        base_graph, update = incremental_case(78, 10)
        assert update.n_old == 78
        assert np.allclose(update.graph.coords[:78], base_graph.coords)

    def test_cached_identity(self):
        assert workload(144) is workload(144)

    def test_all_names_resolve(self):
        names = workload_names()
        assert "78" in names and "183+60" in names
        assert len(names) == len(BASE_SIZES) + len(INCREMENTAL_PAIRS)

    def test_bad_incremental_case(self):
        with pytest.raises(ExperimentError):
            incremental_case(78, 0)


class TestRegistry:
    def test_all_six_tables_registered(self):
        assert list_specs() == [f"table{i}" for i in range(1, 7)]

    def test_spec_lookup(self):
        spec = get_spec("table4")
        assert spec.fitness_kind == "fitness2"
        assert spec.metric == "worst_cut"
        assert spec.seeding == "random"

    def test_unknown_spec(self):
        with pytest.raises(ExperimentError):
            get_spec("table9")

    def test_paper_cells_exist_for_all_spec_cells(self):
        """Every (row, k) cell in every spec must have published values."""
        for table_id, spec in TABLE_SPECS.items():
            table = PAPER_TABLES[table_id]
            for cell in spec.cells:
                assert cell in table, f"{table_id} missing {cell}"

    def test_paper_values_match_spec_count(self):
        for table_id, spec in TABLE_SPECS.items():
            assert len(PAPER_TABLES[table_id]) == len(spec.cells)

    def test_spec_validation(self):
        with pytest.raises(ExperimentError):
            TableSpec(
                table_id="x", title="t", fitness_kind="fitness9",
                metric="cut", seeding="random", rows=("78",), parts=(2,),
            )
        with pytest.raises(ExperimentError):
            TableSpec(
                table_id="x", title="t", fitness_kind="fitness1",
                metric="cut", seeding="incremental", rows=("78",), parts=(2,),
            )

    def test_incremental_tables_use_plus_rows(self):
        for tid in ("table3", "table6"):
            for row in get_spec(tid).rows:
                assert "+" in row

    def test_paper_values_show_dknux_mostly_winning(self):
        """Sanity on the transcribed numbers: across all tables the paper's
        DKNUX beats-or-ties RSB on a clear majority of cells."""
        wins = total = 0
        for table in PAPER_TABLES.values():
            for dknux, rsb in table.values():
                if rsb is None:
                    continue
                total += 1
                wins += dknux <= rsb
        assert wins / total > 0.7


class TestRunner:
    @pytest.fixture(scope="class")
    def tiny_settings(self):
        from repro.ga import GAConfig

        return RunnerSettings(
            n_runs=1,
            ga_config=GAConfig(
                population_size=16,
                max_generations=10,
                patience=5,
                hill_climb="all",
                hill_climb_passes=1,
            ),
        )

    def test_run_cell_random_seeding(self, tiny_settings):
        cell = run_cell(get_spec("table4"), "78", 4, settings=tiny_settings, seed=1)
        assert cell.dknux > 0
        assert cell.rsb > 0
        assert cell.paper_dknux == 23
        assert cell.paper_rsb == 26
        assert cell.runtime_s > 0

    def test_run_cell_ibp_seeding(self, tiny_settings):
        cell = run_cell(get_spec("table1"), "144", 2, settings=tiny_settings, seed=2)
        assert cell.dknux > 0

    def test_run_cell_rsb_seeding_never_loses(self, tiny_settings):
        """Seeding with RSB and keeping the best-ever individual means the
        GA can never report a worse value than RSB itself."""
        cell = run_cell(get_spec("table2"), "139", 4, settings=tiny_settings, seed=3)
        assert cell.dknux <= cell.rsb
        assert cell.ga_wins

    def test_run_cell_incremental(self, tiny_settings):
        cell = run_cell(
            get_spec("table3"), "118+21", 2, settings=tiny_settings, seed=4
        )
        assert cell.dknux > 0
        assert cell.row == "118+21"

    def test_run_table_small(self, tiny_settings, monkeypatch):
        # shrink table1 to a single row/part for speed
        spec = TableSpec(
            table_id="table1",
            title="mini",
            fitness_kind="fitness1",
            metric="cut",
            seeding="ibp",
            rows=("144",),
            parts=(2,),
        )
        monkeypatch.setattr(
            "repro.experiments.runner.RunnerSettings.quick",
            classmethod(lambda cls: tiny_settings),
        )
        result = run_table(spec, mode="quick", seed=5)
        assert len(result.cells) == 1
        assert 0.0 <= result.ga_win_fraction <= 1.0
        assert result.cell("144", 2).n_parts == 2
        with pytest.raises(ExperimentError):
            result.cell("999", 2)

    def test_bad_mode(self):
        with pytest.raises(ExperimentError):
            RunnerSettings.for_mode("huge")

    def test_settings_modes(self):
        q = RunnerSettings.for_mode("quick")
        f = RunnerSettings.for_mode("full")
        assert f.n_runs > q.n_runs
        assert f.ga_config.max_generations > q.ga_config.max_generations


class TestReport:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.ga import GAConfig

        settings = RunnerSettings(
            n_runs=1,
            ga_config=GAConfig(population_size=16, max_generations=5),
        )
        spec = get_spec("table1")
        cells = [
            run_cell(spec, "144", 2, settings=settings, seed=6),
        ]
        from repro.experiments.runner import TableResult

        return TableResult(
            spec=spec, cells=cells, mode="quick", seed=6, runtime_s=1.0
        )

    def test_format_table_contains_values(self, result):
        text = format_table(result)
        assert "TABLE1" in text
        assert "paper-DKNUX" in text
        assert "144" in text

    def test_format_summary(self, result):
        text = format_summary(result)
        assert "%" in text

    def test_format_paper_comparison(self, result):
        text = format_paper_comparison([result])
        assert "table1" in text
