"""Tests for partition metrics — the paper's Section 2 quantities."""

import numpy as np
import pytest

from repro.errors import PartitionError
from repro.graphs import CSRGraph, cycle_graph, grid2d, path_graph
from repro.partition import (
    balance_ratio,
    batch_cut_size,
    batch_load_imbalance,
    batch_max_part_cut,
    batch_part_cuts,
    batch_part_loads,
    boundary_nodes,
    cut_edges_mask,
    cut_size,
    load_imbalance,
    max_part_cut,
    part_cuts,
    part_loads,
)


@pytest.fixture
def path8_half():
    """Path of 8 nodes cut exactly in the middle."""
    g = path_graph(8)
    a = np.array([0, 0, 0, 0, 1, 1, 1, 1])
    return g, a


class TestScalarMetrics:
    def test_cut_size_path(self, path8_half):
        g, a = path8_half
        assert cut_size(g, a) == 1.0

    def test_cut_size_alternating(self):
        g = path_graph(6)
        a = np.array([0, 1, 0, 1, 0, 1])
        assert cut_size(g, a) == 5.0

    def test_cut_size_single_part(self, grid4x4):
        assert cut_size(grid4x4, np.zeros(16, dtype=np.int64)) == 0.0

    def test_part_cuts_sum_equals_twice_cut(self, mesh60, rng):
        a = rng.integers(0, 4, size=60)
        cuts = part_cuts(mesh60, a, 4)
        assert np.isclose(cuts.sum(), 2 * cut_size(mesh60, a))

    def test_part_cuts_path(self, path8_half):
        g, a = path8_half
        assert part_cuts(g, a, 2).tolist() == [1.0, 1.0]

    def test_max_part_cut(self):
        # star: center in part 0, leaves split between 1 and 2
        g = CSRGraph(5, [0, 0, 0, 0], [1, 2, 3, 4])
        a = np.array([0, 1, 1, 2, 2])
        cuts = part_cuts(g, a, 3)
        assert cuts.tolist() == [4.0, 2.0, 2.0]
        assert max_part_cut(g, a, 3) == 4.0

    def test_weighted_cut(self, weighted_triangle):
        a = np.array([0, 0, 1])
        # edges (1,2) w=2 and (0,2) w=4 are cut
        assert cut_size(weighted_triangle, a) == 6.0

    def test_part_loads_weighted(self, weighted_triangle):
        loads = part_loads(weighted_triangle, np.array([0, 1, 1]), 2)
        assert loads.tolist() == [1.0, 5.0]

    def test_load_imbalance_balanced_is_zero(self, path8_half):
        g, a = path8_half
        assert load_imbalance(g, a, 2) == 0.0

    def test_load_imbalance_quadratic(self):
        g = path_graph(4)
        a = np.array([0, 0, 0, 1])  # loads 3, 1; avg 2 -> (1)^2 + (1)^2
        assert load_imbalance(g, a, 2) == 2.0

    def test_balance_ratio(self):
        g = path_graph(4)
        a = np.array([0, 0, 0, 1])
        assert balance_ratio(g, a, 2) == 1.5

    def test_boundary_nodes_path(self, path8_half):
        g, a = path8_half
        assert boundary_nodes(g, a).tolist() == [3, 4]

    def test_boundary_nodes_uncut(self, grid4x4):
        assert boundary_nodes(grid4x4, np.zeros(16, dtype=np.int64)).size == 0

    def test_empty_part_allowed(self, path6):
        a = np.zeros(6, dtype=np.int64)
        cuts = part_cuts(path6, a, 3)
        assert cuts.tolist() == [0.0, 0.0, 0.0]


class TestValidation:
    def test_wrong_length_rejected(self, path6):
        with pytest.raises(PartitionError):
            cut_size(path6, np.zeros(5, dtype=np.int64))
        with pytest.raises(PartitionError):
            part_loads(path6, np.zeros(7, dtype=np.int64), 2)

    def test_float_assignment_rejected(self, path6):
        with pytest.raises(PartitionError):
            part_cuts(path6, np.zeros(6), 2)

    def test_label_out_of_range_rejected(self, path6):
        with pytest.raises(PartitionError):
            part_loads(path6, np.full(6, 3, dtype=np.int64), 2)
        with pytest.raises(PartitionError):
            part_loads(path6, np.full(6, -1, dtype=np.int64), 2)


class TestBatchMetrics:
    def test_batch_matches_scalar(self, mesh60, rng):
        pop = rng.integers(0, 4, size=(10, 60))
        cuts = batch_cut_size(mesh60, pop)
        imb = batch_load_imbalance(mesh60, pop, 4)
        pcuts = batch_part_cuts(mesh60, pop, 4)
        mx = batch_max_part_cut(mesh60, pop, 4)
        for r in range(10):
            assert np.isclose(cuts[r], cut_size(mesh60, pop[r]))
            assert np.isclose(imb[r], load_imbalance(mesh60, pop[r], 4))
            assert np.allclose(pcuts[r], part_cuts(mesh60, pop[r], 4))
            assert np.isclose(mx[r], max_part_cut(mesh60, pop[r], 4))

    def test_batch_loads(self, weighted_triangle):
        pop = np.array([[0, 1, 1], [0, 0, 0]])
        loads = batch_part_loads(weighted_triangle, pop, 2)
        assert loads[0].tolist() == [1.0, 5.0]
        assert loads[1].tolist() == [6.0, 0.0]

    def test_batch_edgeless_graph(self):
        g = CSRGraph(4, [], [])
        pop = np.zeros((3, 4), dtype=np.int64)
        assert batch_cut_size(g, pop).tolist() == [0.0, 0.0, 0.0]
        assert batch_max_part_cut(g, pop, 2).tolist() == [0.0, 0.0, 0.0]

    def test_batch_shape_validation(self, path6):
        with pytest.raises(PartitionError):
            batch_cut_size(path6, np.zeros((2, 5), dtype=np.int64))
        with pytest.raises(PartitionError):
            batch_part_loads(path6, np.zeros(6, dtype=np.int64), 2)

    def test_batch_label_validation(self, path6):
        with pytest.raises(PartitionError):
            batch_part_cuts(path6, np.full((2, 6), 9, dtype=np.int64), 4)

    def test_single_row_batch(self, grid4x4):
        a = np.arange(16, dtype=np.int64) % 4
        batch = batch_cut_size(grid4x4, a[None, :])
        assert batch.shape == (1,)
        assert np.isclose(batch[0], cut_size(grid4x4, a))


class TestChunkInvariance:
    """Chunk height is a pure perf knob: every batch metric — including
    the BLAS-backed ``batch_cut_size`` — returns the identical floats
    for every chunk height (PR 4 closed the ROADMAP item; fractional
    weights take a per-row pairwise reduction)."""

    HEIGHTS = (1, 2, 3, 7, 64)

    def test_cut_size_chunk_invariant_integer_weights(self, mesh60, rng):
        pop = rng.integers(0, 4, size=(23, 60))
        ref = batch_cut_size(mesh60, pop)
        for h in self.HEIGHTS:
            assert np.array_equal(batch_cut_size(mesh60, pop, chunk_rows=h), ref)

    def test_cut_size_chunk_invariant_fractional_weights(self, mesh60, rng):
        w = rng.random(mesh60.n_edges) * 0.9 + 0.05  # genuinely fractional
        g = mesh60.with_weights(edge_weights=w)
        assert not g.has_integer_edge_weights()
        pop = rng.integers(0, 4, size=(23, 60))
        ref = batch_cut_size(g, pop)
        for h in self.HEIGHTS:
            assert np.array_equal(batch_cut_size(g, pop, chunk_rows=h), ref)
        for r in range(0, 23, 7):  # still the cut weight
            assert np.isclose(ref[r], cut_size(g, pop[r]))

    def test_cut_size_chunk_invariant_huge_integer_weights(self, mesh60, rng):
        """Integer weights too large for exact float accumulation
        (row sums past 2**53) must not take the order-free BLAS path —
        they fall back to the order-fixed reduction, keeping the
        chunk-invariance contract."""
        w = rng.integers(1, 5, mesh60.n_edges).astype(float) * 2.0**52
        g = mesh60.with_weights(edge_weights=w)
        assert g.has_integer_edge_weights()
        pop = rng.integers(0, 4, size=(23, 60))
        ref = batch_cut_size(g, pop)
        for h in self.HEIGHTS:
            assert np.array_equal(batch_cut_size(g, pop, chunk_rows=h), ref)

    def test_part_cuts_chunk_invariant_fractional_weights(self, mesh60, rng):
        w = rng.random(mesh60.n_edges) * 0.9 + 0.05
        g = mesh60.with_weights(edge_weights=w)
        pop = rng.integers(0, 4, size=(23, 60))
        ref = batch_part_cuts(g, pop, 4)
        for h in self.HEIGHTS:
            assert np.array_equal(batch_part_cuts(g, pop, 4, chunk_rows=h), ref)


class TestGraphCachesAndFastPaths:
    """PR 2: memoized per-graph quantities and the unit-weight cut path."""

    def test_node_strengths_memoized_and_correct(self, mesh60):
        s1 = mesh60.node_strengths()
        s2 = mesh60.node_strengths()
        assert s1 is s2  # cached object, not recomputed
        assert not s1.flags.writeable
        ref = np.bincount(
            mesh60.edges_u, weights=mesh60.edge_weights, minlength=60
        ) + np.bincount(
            mesh60.edges_v, weights=mesh60.edge_weights, minlength=60
        )
        assert np.array_equal(s1, ref)

    def test_unit_weight_flags_cached(self, mesh60, weighted_triangle):
        assert mesh60.has_unit_edge_weights()
        assert mesh60.has_unit_node_weights()
        assert not weighted_triangle.has_unit_edge_weights()
        assert not weighted_triangle.has_unit_node_weights()
        g = CSRGraph(3, [0, 1], [1, 2], edge_weights=[2.0, 1.0])
        assert not g.has_unit_edge_weights()

    @pytest.mark.parametrize("near_converged", [False, True])
    def test_unit_edge_fast_path_matches_scatter_add(
        self, mesh60, rng, near_converged
    ):
        """The unit-weight path (both the gathered and the dense branch)
        must agree exactly with the classical np.add.at form."""
        k = 4 if near_converged else 8
        if near_converged:
            # mostly one part -> most edges internal (uncut) -> dense branch
            pop = np.zeros((8, 60), dtype=np.int64)
            pop[:, :4] = rng.integers(0, 4, size=(8, 4))
        else:
            # 8 random parts -> ~1/8 uncut -> gathered-index branch
            pop = rng.integers(0, 8, size=(8, 60))
        got = batch_part_cuts(mesh60, pop, k)
        ref = np.zeros((8, k))
        pu, pv = pop[:, mesh60.edges_u], pop[:, mesh60.edges_v]
        cut = pu != pv
        w = np.where(cut, mesh60.edge_weights, 0.0)
        rows = np.broadcast_to(np.arange(8)[:, None], pu.shape)
        np.add.at(ref, (rows, pu), w)
        np.add.at(ref, (rows, pv), w)
        assert np.array_equal(got, ref)

    def test_strength_cache_not_shared_across_derived_graphs(self, mesh60):
        mesh60.node_strengths()
        heavier = mesh60.with_weights(
            edge_weights=np.full(mesh60.n_edges, 3.0)
        )
        assert not heavier.has_unit_edge_weights()
        assert np.array_equal(
            heavier.node_strengths(), 3.0 * mesh60.node_strengths()
        )
