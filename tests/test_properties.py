"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.graphs import CSRGraph, check_graph
from repro.ga import Fitness1, Fitness2, HillClimber, neighbor_part_counts
from repro.ga.knux import knux_bias
from repro.indexing import (
    deinterleave_bits,
    interleave_bits,
    shuffled_row_major_matrix,
)
from repro.partition import (
    Partition,
    batch_cut_size,
    batch_max_part_cut,
    batch_part_cuts,
    check_partition,
    cut_size,
    part_cuts,
)


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

@st.composite
def graphs(draw, max_nodes=24, max_edges=60):
    """Random small graphs with occasional weights."""
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    m = draw(st.integers(min_value=0, max_value=min(max_edges, n * (n - 1) // 2)))
    pairs = draw(
        st.lists(
            st.tuples(
                st.integers(0, n - 1), st.integers(0, n - 1)
            ).filter(lambda p: p[0] != p[1]),
            min_size=m,
            max_size=m,
        )
    )
    us = [min(p) for p in pairs]
    vs = [max(p) for p in pairs]
    weighted = draw(st.booleans())
    ew = None
    if weighted and pairs:
        ew = draw(
            st.lists(
                st.floats(0.0, 10.0, allow_nan=False),
                min_size=len(pairs),
                max_size=len(pairs),
            )
        )
    return CSRGraph(n, us, vs, ew)


@st.composite
def graph_and_assignment(draw, max_parts=5):
    g = draw(graphs())
    k = draw(st.integers(1, max_parts))
    a = draw(
        arrays(np.int64, g.n_nodes, elements=st.integers(0, k - 1))
    )
    return g, a, k


# ----------------------------------------------------------------------
# Graph invariants
# ----------------------------------------------------------------------

class TestGraphProperties:
    @given(graphs())
    @settings(max_examples=60, deadline=None)
    def test_constructed_graph_is_internally_consistent(self, g):
        check_graph(g)

    @given(graphs())
    @settings(max_examples=40, deadline=None)
    def test_handshake_lemma(self, g):
        assert g.degree().sum() == 2 * g.n_edges

    @given(graphs())
    @settings(max_examples=40, deadline=None)
    def test_neighbor_symmetry(self, g):
        for u in range(g.n_nodes):
            for v in g.neighbors(u):
                assert u in g.neighbors(int(v))


# ----------------------------------------------------------------------
# Metric invariants
# ----------------------------------------------------------------------

class TestMetricProperties:
    @given(graph_and_assignment())
    @settings(max_examples=60, deadline=None)
    def test_part_cuts_sum_is_twice_cut(self, gak):
        g, a, k = gak
        assert np.isclose(part_cuts(g, a, k).sum(), 2 * cut_size(g, a))

    @given(graph_and_assignment())
    @settings(max_examples=60, deadline=None)
    def test_cut_bounded_by_total_weight(self, gak):
        g, a, k = gak
        assert 0 <= cut_size(g, a) <= g.total_edge_weight() + 1e-9

    @given(graph_and_assignment())
    @settings(max_examples=40, deadline=None)
    def test_label_permutation_invariance(self, gak):
        """Fitness and cut metrics are invariant under part relabeling."""
        g, a, k = gak
        perm = np.random.default_rng(0).permutation(k)
        b = perm[a]
        assert np.isclose(cut_size(g, a), cut_size(g, b))
        assert np.isclose(
            Fitness1(g, k).evaluate(a), Fitness1(g, k).evaluate(b)
        )
        assert np.isclose(
            Fitness2(g, k).evaluate(a), Fitness2(g, k).evaluate(b)
        )

    @given(graph_and_assignment())
    @settings(max_examples=40, deadline=None)
    def test_batch_consistency(self, gak):
        g, a, k = gak
        pop = a[None, :]
        assert np.isclose(batch_cut_size(g, pop)[0], cut_size(g, a))
        assert np.allclose(batch_part_cuts(g, pop, k)[0], part_cuts(g, a, k))

    @given(graph_and_assignment())
    @settings(max_examples=40, deadline=None)
    def test_partition_object_consistent(self, gak):
        g, a, k = gak
        check_partition(Partition(g, a, k))

    @given(graph_and_assignment())
    @settings(max_examples=30, deadline=None)
    def test_fitness2_at_least_fitness1_value(self, gak):
        """max C(q) <= sum C(q), so Fitness2 >= Fitness1 pointwise."""
        g, a, k = gak
        f1 = Fitness1(g, k).evaluate(a)
        f2 = Fitness2(g, k).evaluate(a)
        assert f2 >= f1 - 1e-9


# ----------------------------------------------------------------------
# KNUX invariants
# ----------------------------------------------------------------------

class TestKnuxProperties:
    @given(graph_and_assignment(max_parts=4))
    @settings(max_examples=40, deadline=None)
    def test_neighbor_counts_row_sums(self, gak):
        g, est, k = gak
        counts = neighbor_part_counts(g, est, k)
        weighted_degree = np.zeros(g.n_nodes)
        np.add.at(weighted_degree, g.edges_u, g.edge_weights)
        np.add.at(weighted_degree, g.edges_v, g.edge_weights)
        assert np.allclose(counts.sum(axis=1), weighted_degree)

    @given(graph_and_assignment(max_parts=4), st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_bias_symmetry(self, gak, seed):
        """Swapping the parents complements the bias: p(a,b) = 1 - p(b,a)
        wherever the parents disagree."""
        g, est, k = gak
        counts = neighbor_part_counts(g, est, k)
        rng = np.random.default_rng(seed)
        a = rng.integers(0, k, (3, g.n_nodes))
        b = rng.integers(0, k, (3, g.n_nodes))
        p_ab = knux_bias(counts, a, b)
        p_ba = knux_bias(counts, b, a)
        disagree = a != b
        assert np.allclose(p_ab[disagree] + p_ba[disagree], 1.0)


# ----------------------------------------------------------------------
# Hill-climbing invariants
# ----------------------------------------------------------------------

class TestHillClimbProperties:
    @given(graph_and_assignment(max_parts=4), st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_monotone_and_consistent(self, gak, seed):
        g, a, k = gak
        for cls in (Fitness1, Fitness2):
            fit = cls(g, k)
            hc = HillClimber(g, fit)
            improved, value = hc.improve(a, max_passes=2)
            assert value >= fit.evaluate(a) - 1e-9
            assert np.isclose(value, fit.evaluate(improved))


# ----------------------------------------------------------------------
# Indexing invariants
# ----------------------------------------------------------------------

class TestIndexingProperties:
    @given(
        st.lists(st.integers(1, 6), min_size=1, max_size=4).flatmap(
            lambda widths: st.tuples(
                st.just(widths),
                st.tuples(*[st.integers(0, (1 << w) - 1) for w in widths]),
            )
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_interleave_roundtrip(self, widths_values):
        widths, values = widths_values
        idx = interleave_bits(list(values), widths)
        assert deinterleave_bits(idx, widths) == tuple(values)
        assert 0 <= idx < (1 << sum(widths))

    @given(st.integers(1, 5), st.integers(1, 5))
    @settings(max_examples=25, deadline=None)
    def test_shuffled_matrix_bijective(self, rbits, cbits):
        rows, cols = 1 << rbits, 1 << cbits
        m = shuffled_row_major_matrix(rows, cols)
        assert sorted(m.ravel().tolist()) == list(range(rows * cols))
