"""Tests for KNUX — the paper's knowledge-based crossover."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.ga import KNUX, knux_bias, neighbor_part_counts
from repro.graphs import CSRGraph, grid2d, path_graph


class TestNeighborPartCounts:
    def test_path_counts(self, path6):
        # estimate: 000111
        est = np.array([0, 0, 0, 1, 1, 1])
        counts = neighbor_part_counts(path6, est, 2)
        # node 0: one neighbor (1) in part 0
        assert counts[0].tolist() == [1.0, 0.0]
        # node 3: neighbors 2 (part 0) and 4 (part 1)
        assert counts[3].tolist() == [1.0, 1.0]

    def test_row_sums_equal_degree(self, mesh60, rng):
        est = rng.integers(0, 4, 60)
        counts = neighbor_part_counts(mesh60, est, 4)
        assert np.allclose(counts.sum(axis=1), mesh60.degree())

    def test_weighted_counts(self, weighted_triangle):
        est = np.array([0, 1, 1])
        counts = neighbor_part_counts(weighted_triangle, est, 2)
        # node 0 has neighbor 1 (w=1, part 1) and neighbor 2 (w=4, part 1)
        assert counts[0].tolist() == [0.0, 5.0]

    def test_bad_estimate_length(self, path6):
        with pytest.raises(ConfigError):
            neighbor_part_counts(path6, np.zeros(5, dtype=np.int64), 2)

    def test_bad_estimate_labels(self, path6):
        with pytest.raises(ConfigError):
            neighbor_part_counts(path6, np.full(6, 7, dtype=np.int64), 2)


class TestBias:
    def test_paper_formula(self, path6):
        """p_i = #(i,a,I) / (#(i,a,I) + #(i,b,I)), 0.5 on 0/0."""
        est = np.array([0, 0, 0, 1, 1, 1])
        counts = neighbor_part_counts(path6, est, 2)
        a = np.array([[0, 0, 0, 0, 0, 0]])
        b = np.array([[1, 1, 1, 1, 1, 1]])
        p = knux_bias(counts, a, b)
        # node 0: #(0,a)=counts[0,0]=1, #(0,b)=counts[0,1]=0 -> p=1
        assert p[0, 0] == 1.0
        # node 3: counts[3] = [1,1]; a_3=0, b_3=1 -> p=0.5
        assert p[0, 3] == 0.5
        # node 5: neighbor 4 in part 1 -> #(5,a=0)=0, #(5,b=1)=1 -> p=0
        assert p[0, 5] == 0.0

    def test_zero_zero_case(self):
        """Isolated node: both counts 0 -> p = 0.5 exactly."""
        g = CSRGraph(3, [0], [1])  # node 2 isolated
        est = np.array([0, 0, 1])
        counts = neighbor_part_counts(g, est, 2)
        p = knux_bias(counts, np.array([[0, 0, 0]]), np.array([[1, 1, 1]]))
        assert p[0, 2] == 0.5

    def test_bias_in_unit_interval(self, mesh60, rng):
        est = rng.integers(0, 4, 60)
        counts = neighbor_part_counts(mesh60, est, 4)
        a = rng.integers(0, 4, size=(20, 60))
        b = rng.integers(0, 4, size=(20, 60))
        p = knux_bias(counts, a, b)
        assert np.all(p >= 0.0) and np.all(p <= 1.0)


class TestKNUXOperator:
    def test_agreement_inherited(self, mesh60, rng):
        est = rng.integers(0, 4, 60)
        op = KNUX(mesh60, est, 4)
        a = rng.integers(0, 4, size=(10, 60))
        b = a.copy()
        b[:, ::2] = (b[:, ::2] + 1) % 4  # disagree on even genes
        c1, c2 = op.cross(a, b, rng)
        assert np.array_equal(c1[:, 1::2], a[:, 1::2])
        assert np.array_equal(c2[:, 1::2], a[:, 1::2])

    def test_children_from_parents(self, mesh60, rng):
        est = rng.integers(0, 4, 60)
        op = KNUX(mesh60, est, 4)
        a = rng.integers(0, 4, size=(10, 60))
        b = rng.integers(0, 4, size=(10, 60))
        c1, c2 = op.cross(a, b, rng)
        assert np.all((c1 == a) | (c1 == b))
        assert np.all((c2 == a) | (c2 == b))

    def test_deterministic_bias_pull(self, rng):
        """With estimate = parent a's perfect partition, every bias where
        a's label matches the estimate's local majority is 1, so children
        equal parent a wherever a agrees with the estimate structure."""
        g = grid2d(4, 4)
        est = (np.arange(16) // 8).astype(np.int64)  # top half / bottom half
        op = KNUX(g, est, 2)
        a = np.tile(est, (20, 1))
        b = 1 - a  # complete disagreement
        c1, _ = op.cross(a, b, rng)
        # interior nodes have all neighbors agreeing with est -> bias 1
        # (boundary rows have mixed neighborhoods, so allow those to vary)
        interior = [0, 1, 2, 3, 12, 13, 14, 15]
        assert np.array_equal(c1[:, interior], a[:, interior])

    def test_estimate_property_copies(self, mesh60, rng):
        est = rng.integers(0, 4, 60)
        op = KNUX(mesh60, est, 4)
        got = op.estimate
        got[0] = 99
        assert op.estimate[0] != 99

    def test_set_estimate_rebuilds_table(self, path6, rng):
        op = KNUX(path6, np.array([0, 0, 0, 1, 1, 1]), 2)
        before = op.bias(
            np.array([[0, 0, 0, 0, 0, 0]]), np.array([[1, 1, 1, 1, 1, 1]])
        ).copy()
        op.set_estimate(np.array([1, 1, 1, 0, 0, 0]))
        after = op.bias(
            np.array([[0, 0, 0, 0, 0, 0]]), np.array([[1, 1, 1, 1, 1, 1]])
        )
        assert not np.array_equal(before, after)

    def test_uniform_special_case(self, rng):
        """On an edgeless graph every bias is 0.5 — KNUX degenerates to UX."""
        g = CSRGraph(40, [], [])
        op = KNUX(g, np.zeros(40, dtype=np.int64), 2)
        a = np.zeros((300, 40), dtype=np.int64)
        b = np.ones((300, 40), dtype=np.int64)
        c1, _ = op.cross(a, b, rng)
        assert 0.45 < c1.mean() < 0.55

    def test_repr(self, mesh60):
        op = KNUX(mesh60, np.zeros(60, dtype=np.int64), 4)
        assert "KNUX" in repr(op)
