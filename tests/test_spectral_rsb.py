"""Tests for the Fiedler solver and recursive spectral bisection."""

import numpy as np
import pytest

from repro.baselines import fiedler_value, fiedler_vector, rsb_partition, split_by_scores
from repro.errors import GraphError, PartitionError
from repro.graphs import CSRGraph, caveman_graph, grid2d, mesh_graph, path_graph
from repro.partition import check_partition, require_all_parts_nonempty


class TestFiedler:
    def test_path_fiedler_is_monotone(self):
        """The Fiedler vector of a path is a discrete cosine — strictly
        monotone along the path."""
        g = path_graph(10)
        vec = fiedler_vector(g)
        diffs = np.diff(vec)
        assert np.all(diffs > 0) or np.all(diffs < 0)

    def test_orthogonal_to_constant(self, mesh60):
        vec = fiedler_vector(mesh60)
        assert abs(vec.sum()) < 1e-8

    def test_eigen_equation(self, mesh60):
        from repro.graphs import laplacian

        vec = fiedler_vector(mesh60)
        val = fiedler_value(mesh60)
        lap = laplacian(mesh60, dense=True)
        assert np.allclose(lap @ vec, val * vec, atol=1e-8)

    def test_value_known_for_path(self):
        """λ₂ of a path of n nodes is 2(1 - cos(π/n))."""
        n = 8
        val = fiedler_value(path_graph(n))
        assert np.isclose(val, 2 * (1 - np.cos(np.pi / n)))

    def test_disconnected_returns_component_indicator(self):
        g = CSRGraph(4, [0, 2], [1, 3])
        vec = fiedler_vector(g)
        assert vec[0] == vec[1]
        assert vec[2] == vec[3]
        assert vec[0] != vec[2]
        assert fiedler_value(g) == 0.0

    def test_sign_convention_deterministic(self, mesh60):
        v1 = fiedler_vector(mesh60)
        v2 = fiedler_vector(mesh60)
        assert np.array_equal(v1, v2)

    def test_sparse_matches_dense(self, mesh120):
        dense = fiedler_vector(mesh120, method="dense")
        sparse = fiedler_vector(mesh120, method="sparse", seed=0)
        # same eigenvector up to sign (sign convention fixes it) & tolerance
        assert np.allclose(np.abs(dense), np.abs(sparse), atol=1e-6)

    def test_too_small(self):
        with pytest.raises(GraphError):
            fiedler_vector(CSRGraph(1, [], []))

    def test_unknown_method(self, mesh60):
        with pytest.raises(GraphError):
            fiedler_vector(mesh60, method="magic")


class TestSplitByScores:
    def test_unit_weights_median_split(self):
        scores = np.array([5.0, 1.0, 3.0, 2.0, 4.0, 6.0])
        mask = split_by_scores(scores, np.ones(6), 0.5)
        assert mask.sum() == 3
        assert set(np.flatnonzero(mask)) == {1, 3, 2}  # three smallest

    def test_weighted_split(self):
        scores = np.arange(4, dtype=float)
        weights = np.array([3.0, 1.0, 1.0, 1.0])
        mask = split_by_scores(scores, weights, 0.5)
        # node 0 alone carries half the weight
        assert mask[0] and mask.sum() == 1

    def test_uneven_fraction(self):
        scores = np.arange(8, dtype=float)
        mask = split_by_scores(scores, np.ones(8), 0.25)
        assert mask.sum() == 2

    def test_both_sides_nonempty(self):
        mask = split_by_scores(np.array([1.0, 1.0]), np.ones(2), 0.5)
        assert mask.sum() == 1

    def test_tie_break_by_id(self):
        scores = np.zeros(4)
        mask = split_by_scores(scores, np.ones(4), 0.5)
        assert np.flatnonzero(mask).tolist() == [0, 1]

    def test_bad_fraction(self):
        with pytest.raises(PartitionError):
            split_by_scores(np.ones(3), np.ones(3), 0.0)


class TestRSB:
    @pytest.mark.parametrize("k", [1, 2, 3, 4, 8])
    def test_valid_balanced_partitions(self, mesh120, k):
        p = rsb_partition(mesh120, k)
        check_partition(p)
        require_all_parts_nonempty(p)
        assert p.part_sizes.max() - p.part_sizes.min() <= 1

    def test_rect_grid_bisection_is_straight_cut(self):
        """RSB cuts a 4x10 grid across the long axis with the minimum
        cut of 4.  (A square grid is avoided: its λ₂ eigenspace is
        two-dimensional, so the Fiedler direction is degenerate.)"""
        g = grid2d(4, 10)
        p = rsb_partition(g, 2)
        assert p.cut_size == 4.0

    def test_caveman_respects_cliques(self):
        g = caveman_graph(4, 5)
        p = rsb_partition(g, 4)
        # optimal: one clique per part, cutting only the 4 ring links
        assert p.cut_size <= 4.0

    def test_beats_random_substantially(self, mesh120):
        from repro.baselines import random_partition

        rsb = rsb_partition(mesh120, 4)
        rand = random_partition(mesh120, 4, seed=0)
        assert rsb.cut_size < 0.5 * rand.cut_size

    def test_deterministic(self, mesh120):
        p1 = rsb_partition(mesh120, 4)
        p2 = rsb_partition(mesh120, 4)
        assert np.array_equal(p1.assignment, p2.assignment)

    def test_k_larger_than_n_rejected(self):
        with pytest.raises(PartitionError):
            rsb_partition(path_graph(3), 5)

    def test_bad_k(self, mesh60):
        with pytest.raises(PartitionError):
            rsb_partition(mesh60, 0)

    def test_empty_graph(self):
        p = rsb_partition(CSRGraph(0, [], []), 3)
        assert p.assignment.size == 0

    def test_deadline_nonbinding_bit_identical(self, mesh120):
        """A deadline that never binds changes nothing (the racing
        portfolio's contract for its iterative baseline legs)."""
        import time

        plain = rsb_partition(mesh120, 4)
        budgeted = rsb_partition(
            mesh120, 4, deadline=time.perf_counter() + 1e6
        )
        assert np.array_equal(plain.assignment, budgeted.assignment)

    def test_deadline_binding_skips_eigensolves(self, mesh120):
        """Once the deadline passes, remaining levels split by index —
        valid, prompt, and with every part non-empty."""
        import time

        t0 = time.perf_counter()
        p = rsb_partition(mesh120, 8, deadline=t0)
        elapsed = time.perf_counter() - t0
        check_partition(p)
        require_all_parts_nonempty(p)
        assert elapsed < 1.0  # no eigensolves ran

    def test_disconnected_graph_handled(self):
        g = CSRGraph(6, [0, 1, 3, 4], [1, 2, 4, 5])  # two triangles paths
        p = rsb_partition(g, 2)
        check_partition(p)
        assert p.part_sizes.tolist() == [3, 3]

    def test_two_node_graph(self):
        g = CSRGraph(2, [0], [1])
        p = rsb_partition(g, 2)
        assert sorted(p.assignment.tolist()) == [0, 1]
