"""Tests for :mod:`repro.analysis` — the invariant-lint layer.

Three tiers:

* **fixtures** — small snippets where each rule fires exactly once,
  clean twins where it must not, and suppression round-trips;
* **lock units** — graph extraction, blocking detection, the compute
  allowlist, condition exemption, and cycle detection on synthetic
  modules;
* **the real repo** — ``src/`` gates clean, the extracted graph
  contains the session compute→state edge, and the runtime witness
  agrees with the static graph on a live overlapped-session workload.
"""

import json
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.analysis import (
    AnalysisConfig,
    LockWitness,
    WitnessViolation,
    default_config,
    extract_lock_graph,
    run_analysis,
)
from repro.analysis.framework import parse_suppressions

SRC = Path(__file__).resolve().parent.parent / "src"


def findings_for(tmp_path, source, rules=None, config=None, name="snippet.py"):
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    report = run_analysis([str(path)], config=config, rules=rules)
    return report


def rule_ids(report):
    return [f.rule for f in report.unsuppressed]


# ----------------------------------------------------------------------
# DET rules
# ----------------------------------------------------------------------

class TestDetGlobalRNG:
    def test_np_global_draw_fires_once(self, tmp_path):
        report = findings_for(
            tmp_path,
            "import numpy as np\n"
            "def f(n):\n"
            "    return np.random.standard_normal(n)\n",
            rules=["DET-GLOBAL-RNG"],
        )
        assert rule_ids(report) == ["DET-GLOBAL-RNG"]

    def test_bare_import_random_fires_once(self, tmp_path):
        report = findings_for(
            tmp_path, "import random\n", rules=["DET-GLOBAL-RNG"]
        )
        assert rule_ids(report) == ["DET-GLOBAL-RNG"]

    def test_stdlib_seed_fires(self, tmp_path):
        report = findings_for(
            tmp_path,
            "def f(rnd):\n    random.seed(0)\n",
            rules=["DET-GLOBAL-RNG"],
        )
        assert rule_ids(report) == ["DET-GLOBAL-RNG"]

    def test_generator_use_is_clean(self, tmp_path):
        report = findings_for(
            tmp_path,
            "import numpy as np\n"
            "def f(n, seed):\n"
            "    rng = np.random.default_rng(seed)\n"
            "    return rng.standard_normal(n)\n",
            rules=["DET-GLOBAL-RNG"],
        )
        assert rule_ids(report) == []


class TestDetWallclock:
    def test_clock_into_result_name_fires_once(self, tmp_path):
        report = findings_for(
            tmp_path,
            "import time\n"
            "def f():\n"
            "    answer = time.time()\n"
            "    return answer\n",
            rules=["DET-WALLCLOCK"],
        )
        # the assignment fires; the tainted return is the same hazard
        assert rule_ids(report).count("DET-WALLCLOCK") >= 1
        assert report.unsuppressed[0].line == 3

    def test_clock_seeding_rng_fires(self, tmp_path):
        report = findings_for(
            tmp_path,
            "import time\n"
            "import numpy as np\n"
            "def f():\n"
            "    return np.random.default_rng(int(time.time()))\n",
            rules=["DET-WALLCLOCK"],
        )
        assert "DET-WALLCLOCK" in rule_ids(report)

    def test_timing_names_are_clean(self, tmp_path):
        report = findings_for(
            tmp_path,
            "import time\n"
            "def f(result):\n"
            "    t0 = time.perf_counter()\n"
            "    work(result)\n"
            "    result.latency_s = time.perf_counter() - t0\n"
            "    deadline = time.monotonic() + 5.0\n"
            "    return result\n",
            rules=["DET-WALLCLOCK"],
        )
        assert rule_ids(report) == []

    def test_metrics_constructor_is_opaque(self, tmp_path):
        report = findings_for(
            tmp_path,
            "import time\n"
            "def run_cell(spec, start):\n"
            "    return Result(value=1.0, runtime_s=time.perf_counter() - start)\n",
            rules=["DET-WALLCLOCK"],
        )
        assert rule_ids(report) == []


class TestDetSetOrder:
    def test_set_iteration_fires_once(self, tmp_path):
        report = findings_for(
            tmp_path,
            "def f(n):\n"
            "    pending = set(range(n))\n"
            "    total = 0\n"
            "    for node in pending:\n"
            "        total = total * 31 + node\n"
            "    return total\n",
            rules=["DET-SET-ORDER"],
        )
        assert rule_ids(report) == ["DET-SET-ORDER"]
        assert report.unsuppressed[0].line == 4

    def test_materializing_a_set_fires(self, tmp_path):
        report = findings_for(
            tmp_path,
            "def f(items):\n"
            "    return list({x.key for x in items})\n",
            rules=["DET-SET-ORDER"],
        )
        assert rule_ids(report) == ["DET-SET-ORDER"]

    def test_sorted_and_membership_are_clean(self, tmp_path):
        report = findings_for(
            tmp_path,
            "def f(n, banned):\n"
            "    pending = set(range(n))\n"
            "    for node in sorted(pending):\n"
            "        if node in banned:\n"
            "            pending.discard(node)\n"
            "    return len(pending)\n",
            rules=["DET-SET-ORDER"],
        )
        assert rule_ids(report) == []


# ----------------------------------------------------------------------
# hygiene + suppressions
# ----------------------------------------------------------------------

class TestBroadExcept:
    def test_fires_once(self, tmp_path):
        report = findings_for(
            tmp_path,
            "def f():\n"
            "    try:\n"
            "        work()\n"
            "    except Exception:\n"
            "        pass\n",
            rules=["BROAD-EXCEPT"],
        )
        assert rule_ids(report) == ["BROAD-EXCEPT"]

    def test_catch_and_convert_is_clean(self, tmp_path):
        report = findings_for(
            tmp_path,
            "def f():\n"
            "    try:\n"
            "        work()\n"
            "    except Exception as exc:\n"
            "        raise ServiceError(str(exc)) from exc\n",
            rules=["BROAD-EXCEPT"],
        )
        assert rule_ids(report) == []

    def test_narrow_handler_is_clean(self, tmp_path):
        report = findings_for(
            tmp_path,
            "def f():\n"
            "    try:\n"
            "        work()\n"
            "    except (OSError, ValueError):\n"
            "        pass\n",
            rules=["BROAD-EXCEPT"],
        )
        assert rule_ids(report) == []


class TestSuppressions:
    SOURCE = (
        "def f():\n"
        "    try:\n"
        "        work()\n"
        "    # repro: allow[BROAD-EXCEPT] — {reason}\n"
        "    except Exception:\n"
        "        pass\n"
    )

    def test_round_trip_with_reason(self, tmp_path):
        report = findings_for(
            tmp_path,
            self.SOURCE.format(reason="work() is allowed to fail here"),
            rules=["BROAD-EXCEPT"],
        )
        assert rule_ids(report) == []
        assert len(report.suppressed) == 1
        assert report.suppressed[0].reason == "work() is allowed to fail here"

    def test_reason_is_mandatory(self, tmp_path):
        source = (
            "def f():\n"
            "    try:\n"
            "        work()\n"
            "    # repro: allow[BROAD-EXCEPT]\n"
            "    except Exception:\n"
            "        pass\n"
        )
        report = findings_for(tmp_path, source, rules=["BROAD-EXCEPT"])
        ids = rule_ids(report)
        # without a reason the finding survives AND the suppression is
        # itself flagged
        assert "BROAD-EXCEPT" in ids
        assert "SUPPRESS-NO-REASON" in ids

    def test_same_line_suppression(self, tmp_path):
        source = (
            "def f():\n"
            "    try:\n"
            "        work()\n"
            "    except Exception:  # repro: allow[BROAD-EXCEPT] — boundary\n"
            "        pass\n"
        )
        report = findings_for(tmp_path, source, rules=["BROAD-EXCEPT"])
        assert rule_ids(report) == []
        assert report.suppressed[0].reason == "boundary"

    def test_multiline_reason_folds(self):
        source = (
            "# repro: allow[LOCK-HELD-BLOCKING] — first part of the\n"
            "# reason continues here\n"
            "x = 1\n"
        )
        sups = parse_suppressions(source)
        assert sups[1].reason == "first part of the reason continues here"

    def test_wrong_rule_does_not_suppress(self, tmp_path):
        report = findings_for(
            tmp_path,
            self.SOURCE.format(reason="justified").replace(
                "BROAD-EXCEPT]", "DET-WALLCLOCK]"
            ),
            rules=["BROAD-EXCEPT"],
        )
        assert "BROAD-EXCEPT" in rule_ids(report)


# ----------------------------------------------------------------------
# WIRE rules
# ----------------------------------------------------------------------

class TestWire:
    def test_pickle_in_wire_module_fires_once(self, tmp_path):
        report = findings_for(
            tmp_path,
            "import pickle\n",
            rules=["WIRE-PICKLE"],
            name="service/models.py",
        )
        assert rule_ids(report) == ["WIRE-PICKLE"]

    def test_pickle_allowed_in_persistence(self, tmp_path):
        report = findings_for(
            tmp_path,
            "import pickle\n",
            rules=["WIRE-PICKLE"],
            name="service/persistence.py",
        )
        assert rule_ids(report) == []

    def test_unregistered_error_fires_once(self, tmp_path):
        report = findings_for(
            tmp_path,
            "def f():\n"
            "    raise FrobnicationError('nope')\n",
            rules=["WIRE-ERROR"],
            name="service/widgets.py",
        )
        assert rule_ids(report) == ["WIRE-ERROR"]

    def test_registered_and_builtin_errors_clean(self, tmp_path):
        report = findings_for(
            tmp_path,
            "def f(flag):\n"
            "    if flag:\n"
            "        raise ServiceError('known')\n"
            "    raise ValueError('builtin')\n",
            rules=["WIRE-ERROR"],
            name="service/widgets.py",
        )
        assert rule_ids(report) == []

    def test_module_local_error_clean(self, tmp_path):
        report = findings_for(
            tmp_path,
            "class _LocalError(Exception):\n"
            "    pass\n"
            "def f():\n"
            "    raise _LocalError()\n",
            rules=["WIRE-ERROR"],
            name="service/widgets.py",
        )
        assert rule_ids(report) == []

    def test_front_side_files_excluded(self, tmp_path):
        report = findings_for(
            tmp_path,
            "def f():\n    raise FrobnicationError('nope')\n",
            rules=["WIRE-ERROR"],
            name="service/http.py",
        )
        assert rule_ids(report) == []


# ----------------------------------------------------------------------
# LOCK rules
# ----------------------------------------------------------------------

LOCK_FIXTURE = """\
import threading

class Engine:
    def run(self, pop):
        return pop

class Worker:
    def __init__(self):
        self.state_lock = threading.Lock()
        self.engine = Engine()

    def bad(self, pop):
        with self.state_lock:
            return self.engine.run(pop)

    def good(self, pop):
        with self.state_lock:
            staged = list(pop)
        return self.engine.run(staged)
"""

CYCLE_FIXTURE = """\
import threading

class A:
    def __init__(self):
        self.first = threading.Lock()
        self.second = threading.Lock()

    def fwd(self):
        with self.first:
            with self.second:
                return 1

    def rev(self):
        with self.second:
            with self.first:
                return 2
"""

COND_FIXTURE = """\
import threading

class Fleet:
    def __init__(self):
        self.fleet_lock = threading.Lock()
        self.fleet_cond = threading.Condition(self.fleet_lock)

    def park(self):
        with self.fleet_lock:
            self.fleet_cond.wait(1.0)
"""


class TestLockRules:
    def test_held_across_blocking_fires_once(self, tmp_path):
        report = findings_for(
            tmp_path, LOCK_FIXTURE, rules=["LOCK-HELD-BLOCKING"]
        )
        assert rule_ids(report) == ["LOCK-HELD-BLOCKING"]
        (finding,) = report.unsuppressed
        assert "Worker.bad" in finding.message
        assert "state_lock" in finding.message

    def test_lock_graph_edges_and_nodes(self, tmp_path):
        path = tmp_path / "cyc.py"
        path.write_text(CYCLE_FIXTURE)
        graph = extract_lock_graph([str(path)])
        assert set(graph.nodes) == {"A.first", "A.second"}
        assert graph.has_edge("A.first", "A.second")
        assert graph.has_edge("A.second", "A.first")

    def test_cycle_detected(self, tmp_path):
        report = findings_for(tmp_path, CYCLE_FIXTURE, name="cyc.py")
        cycle_findings = [
            f for f in report.findings if f.rule == "LOCK-ORDER-CYCLE"
        ]
        assert len(cycle_findings) == 1
        assert report.lock_graph.cycles == [["A.first", "A.second"]]

    def test_condition_wait_exempt_for_its_own_lock(self, tmp_path):
        report = findings_for(
            tmp_path, COND_FIXTURE, rules=["LOCK-HELD-BLOCKING"]
        )
        assert rule_ids(report) == []

    def test_compute_lock_allowlist(self, tmp_path):
        source = LOCK_FIXTURE.replace("state_lock", "compute_lock")
        config = AnalysisConfig(compute_locks=frozenset({"Worker.compute_lock"}))
        report = findings_for(
            tmp_path, source, rules=["LOCK-HELD-BLOCKING"], config=config
        )
        assert rule_ids(report) == []

    def test_blocking_propagates_through_call_summaries(self, tmp_path):
        source = LOCK_FIXTURE + (
            "\n"
            "class Outer:\n"
            "    def __init__(self):\n"
            "        self.outer_lock = threading.Lock()\n"
            "        self.worker = Worker()\n"
            "\n"
            "    def indirect(self, pop):\n"
            "        with self.outer_lock:\n"
            "            return self.worker.good(pop)\n"
        )
        report = findings_for(
            tmp_path, source, rules=["LOCK-HELD-BLOCKING"]
        )
        lines = sorted(f.line for f in report.unsuppressed)
        # Worker.bad fires as before; Outer.indirect fires because
        # Worker.good's summary blocks (engine.run), even though good
        # itself holds no lock across it
        assert len(lines) == 2

    def test_lock_suppression_round_trip(self, tmp_path):
        source = LOCK_FIXTURE.replace(
            "            return self.engine.run(pop)",
            "            # repro: allow[LOCK-HELD-BLOCKING] — fixture says so\n"
            "            return self.engine.run(pop)",
        )
        report = findings_for(
            tmp_path, source, rules=["LOCK-HELD-BLOCKING"]
        )
        assert rule_ids(report) == []
        assert len(report.suppressed) == 1


# ----------------------------------------------------------------------
# the real repository
# ----------------------------------------------------------------------

class TestRealRepo:
    @pytest.fixture(scope="class")
    def report(self):
        return run_analysis([str(SRC)], config=default_config())

    def test_gate_is_clean(self, report):
        assert report.unsuppressed == [], [
            f"{f.path}:{f.line} {f.rule} {f.message}"
            for f in report.unsuppressed
        ]

    def test_every_suppression_has_a_reason(self, report):
        assert report.suppressed, "expected deliberate suppressions in src/"
        for f in report.suppressed:
            assert f.reason.strip(), f"{f.path}:{f.line} has no reason"

    def test_lock_graph_has_session_edges(self, report):
        graph = report.lock_graph
        # the acceptance-criteria edge: the session compute lock is
        # taken outside the state lock on every update path
        assert graph.has_edge("Session.compute_lock", "Session.lock")
        assert graph.has_edge("Session.lock", "SessionManager._lock")
        assert not graph.has_edge("Session.lock", "Session.compute_lock")
        assert graph.cycles == []

    def test_lock_graph_sees_property_acquisitions(self, report):
        # handle.alive is a @property acquiring the pending lock under
        # the fleet lock — invisible to naive call analysis
        assert report.lock_graph.has_edge(
            "ShardedPartitionService._fleet_lock",
            "_ShardHandle._pending_lock",
        )

    def test_node_definition_sites_resolve(self, report):
        graph = report.lock_graph
        node = graph.nodes["Session.lock"]
        assert node.path.endswith("sessions.py")
        assert graph.node_at(node.path, node.line).name == "Session.lock"


# ----------------------------------------------------------------------
# runtime witness
# ----------------------------------------------------------------------

WITNESS_FIXTURE = """\
import threading

class Pair:
    def __init__(self):
        self.outer = threading.Lock()
        self.inner = threading.Lock()

    def nested(self):
        with self.outer:
            with self.inner:
                return 1

    def reversed_nesting(self):
        with self.inner:
            with self.outer:
                return 2
"""


class TestLockWitness:
    def _load(self, tmp_path, name="witmod"):
        path = tmp_path / f"{name}.py"
        path.write_text(WITNESS_FIXTURE)
        import importlib.util

        spec = importlib.util.spec_from_file_location(name, path)
        module = importlib.util.module_from_spec(spec)
        return path, spec, module

    def test_observed_subgraph_passes(self, tmp_path):
        path, spec, module = self._load(tmp_path, "witmod_ok")
        with LockWitness(source_prefixes=[str(tmp_path)]) as w:
            spec.loader.exec_module(module)
            module.Pair().nested()
        graph = extract_lock_graph([str(path)])
        mapped = w.assert_subgraph_of(graph)
        assert ("Pair.outer", "Pair.inner") in mapped

    def test_contradicting_order_fails(self, tmp_path):
        path, spec, module = self._load(tmp_path, "witmod_bad")
        with LockWitness(source_prefixes=[str(tmp_path)]) as w:
            spec.loader.exec_module(module)
            module.Pair().reversed_nesting()
        # static graph built from a copy whose reversed_nesting is
        # removed: the observed inner->outer edge has no static twin
        trimmed = tmp_path / "trimmed.py"
        trimmed.write_text(
            WITNESS_FIXTURE[: WITNESS_FIXTURE.index("    def reversed")]
        )
        graph = extract_lock_graph([str(trimmed)])
        # node_at keys by (file, line): creation lines match the fixture
        with pytest.raises(WitnessViolation):
            w.assert_subgraph_of(
                _rehome_graph(graph, str(trimmed), str(path))
            )

    def test_probe_records_held_locks(self, tmp_path):
        path, spec, module = self._load(tmp_path, "witmod_probe")
        with LockWitness(source_prefixes=[str(tmp_path)]) as w:
            spec.loader.exec_module(module)
            w.probe(module.Pair, "nested")
            pair = module.Pair()
            with pair.inner:
                pass
            pair.nested()
        graph = extract_lock_graph([str(path)])
        # nested() itself ran with nothing held
        assert w.probe_runs("nested") == [()]
        assert w.assert_never_held_during(graph, "Pair.inner", "nested") == 1

    def test_factories_restored_on_exit(self, tmp_path):
        real = threading.Lock
        with LockWitness(source_prefixes=[str(tmp_path)]):
            assert threading.Lock is not real
        assert threading.Lock is real


def _rehome_graph(graph, old_path, new_path):
    """Point a static graph's node definition sites at another file
    (the witness keys by creation site)."""
    from repro.analysis import LockGraph, LockNode

    out = LockGraph()
    for node in graph.nodes.values():
        out.add_node(
            LockNode(node.name, node.kind, new_path, node.line)
        )
    for (a, b), sites in graph.edges.items():
        for p, l in sites:
            out.add_edge(a, b, p, l)
    return out


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

class TestCLI:
    def _main(self, *argv):
        from repro.analysis.__main__ import main

        return main(list(argv))

    def test_gate_exit_codes(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import random\n")
        assert self._main(str(dirty), "--gate", "--quiet") == 1
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        assert self._main(str(clean), "--gate", "--quiet") == 0

    def test_json_report(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import random\n")
        out = tmp_path / "report.json"
        assert self._main(str(dirty), "--json", str(out), "--quiet") == 0
        payload = json.loads(out.read_text())
        assert payload["summary"]["unsuppressed"] == 1
        (finding,) = payload["findings"]
        assert finding["rule"] == "DET-GLOBAL-RNG"
        assert finding["fingerprint"]

    def test_baseline_round_trip(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import random\n")
        baseline = tmp_path / "baseline.json"
        assert (
            self._main(
                str(dirty), "--write-baseline", str(baseline), "--quiet"
            )
            == 0
        )
        # tolerated by the baseline…
        assert (
            self._main(
                str(dirty), "--gate", "--baseline", str(baseline), "--quiet"
            )
            == 0
        )
        # …but a new finding still gates
        dirty.write_text("import random\nimport random as r2\n")
        assert (
            self._main(
                str(dirty), "--gate", "--baseline", str(baseline), "--quiet"
            )
            == 1
        )

    def test_module_entrypoint_runs(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis", str(SRC), "--gate",
             "--quiet"],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0, proc.stderr

    def test_parse_error_exits_2(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        assert self._main(str(bad), "--quiet") == 2
