"""Tests for balance construction/repair (the paper's seeding primitive)."""

import numpy as np
import pytest

from repro.errors import PartitionError
from repro.graphs import grid2d, mesh_graph, path_graph
from repro.partition import (
    Partition,
    assign_balanced,
    random_balanced_assignment,
    rebalance,
)


class TestRandomBalanced:
    def test_sizes_within_one(self):
        a = random_balanced_assignment(10, 3, seed=1)
        sizes = np.bincount(a, minlength=3)
        assert sizes.max() - sizes.min() <= 1
        assert sizes.sum() == 10

    def test_exact_division(self):
        a = random_balanced_assignment(12, 4, seed=2)
        assert np.bincount(a).tolist() == [3, 3, 3, 3]

    def test_deterministic(self):
        assert np.array_equal(
            random_balanced_assignment(20, 4, seed=5),
            random_balanced_assignment(20, 4, seed=5),
        )

    def test_zero_nodes(self):
        assert random_balanced_assignment(0, 3, seed=1).size == 0

    def test_bad_parts(self):
        with pytest.raises(PartitionError):
            random_balanced_assignment(5, 0)


class TestAssignBalanced:
    def test_fixed_preserved(self, path6):
        fixed = np.array([0, 0, 1, 1, 0, 0])
        free = np.array([4, 5])
        out = assign_balanced(path6, fixed, free, 2, seed=3)
        assert out[:4].tolist() == [0, 0, 1, 1]
        # kept loads are tied 2-2, so the free nodes split one per part
        assert sorted(out[4:].tolist()) == [0, 1]

    def test_balance_maintained(self, mesh60):
        fixed = np.zeros(60, dtype=np.int64)
        fixed[:30] = np.arange(30) % 4
        free = np.arange(30, 60)
        out = assign_balanced(mesh60, fixed, free, 4, seed=7)
        sizes = np.bincount(out, minlength=4)
        assert sizes.max() - sizes.min() <= 1

    def test_all_free(self, path6):
        out = assign_balanced(
            path6, np.zeros(6, dtype=np.int64), np.arange(6), 3, seed=1
        )
        assert np.bincount(out, minlength=3).tolist() == [2, 2, 2]

    def test_no_free(self, path6):
        fixed = np.array([0, 1, 0, 1, 0, 1])
        out = assign_balanced(path6, fixed, np.array([], dtype=np.int64), 2)
        assert np.array_equal(out, fixed)

    def test_bad_fixed_label(self, path6):
        fixed = np.array([0, 9, 0, 0, 0, 0])
        with pytest.raises(PartitionError):
            assign_balanced(path6, fixed, np.array([5]), 2)

    def test_bad_free_id(self, path6):
        with pytest.raises(PartitionError):
            assign_balanced(
                path6, np.zeros(6, dtype=np.int64), np.array([99]), 2
            )

    def test_weighted_balance(self):
        g = path_graph(4).with_weights(node_weights=np.array([1.0, 1.0, 5.0, 1.0]))
        fixed = np.array([0, 1, 0, 0])
        out = assign_balanced(g, fixed, np.array([3]), 2, seed=0)
        # part 0 already has weight 6 (nodes 0, 2); node 3 must join part 1
        assert out[3] == 1


class TestRebalance:
    def test_repairs_gross_imbalance(self, mesh60):
        a = np.zeros(60, dtype=np.int64)  # everything in part 0
        p = Partition(mesh60, a, 4)
        fixed = rebalance(p, max_ratio=1.10, seed=2)
        assert fixed.balance_ratio <= 1.25  # close to target
        assert fixed.part_sizes.sum() == 60

    def test_already_balanced_untouched(self, grid4x4):
        a = np.arange(16) % 4
        p = Partition(grid4x4, a, 4)
        fixed = rebalance(p, max_ratio=1.5, seed=1)
        assert np.array_equal(fixed.assignment, a)

    def test_bad_ratio(self, grid4x4):
        p = Partition(grid4x4, np.zeros(16, dtype=np.int64), 2)
        with pytest.raises(PartitionError):
            rebalance(p, max_ratio=0.9)

    def test_prefers_low_cut_moves(self):
        # two cliques of 4 joined by one edge, all nodes in part 0
        from repro.graphs import caveman_graph

        g = caveman_graph(2, 4)
        p = Partition(g, np.zeros(8, dtype=np.int64), 2)
        fixed = rebalance(p, max_ratio=1.05, seed=3)
        # perfect repair: one clique per part
        assert fixed.part_sizes.tolist() == [4, 4]
        assert fixed.cut_size <= 4.0
