"""Tests for the Partition value object."""

import numpy as np
import pytest

from repro.errors import PartitionError
from repro.graphs import grid2d, path_graph
from repro.partition import (
    Partition,
    check_partition,
    require_all_parts_nonempty,
    require_balance,
)


class TestConstruction:
    def test_basic(self, grid4x4):
        p = Partition(grid4x4, np.arange(16) % 4, 4)
        assert p.n_parts == 4
        assert p.part_sizes.tolist() == [4, 4, 4, 4]

    def test_infer_n_parts(self, path6):
        p = Partition(path6, np.array([0, 0, 1, 1, 2, 2]))
        assert p.n_parts == 3

    def test_explicit_parts_allow_empty(self, path6):
        p = Partition(path6, np.zeros(6, dtype=np.int64), 4)
        assert p.part_sizes.tolist() == [6, 0, 0, 0]

    def test_float_labels_rejected(self, path6):
        with pytest.raises(PartitionError):
            Partition(path6, np.array([0.5] * 6))

    def test_integral_floats_accepted(self, path6):
        p = Partition(path6, np.array([0.0, 1.0, 0.0, 1.0, 0.0, 1.0]))
        assert p.assignment.dtype == np.int64

    def test_length_mismatch_rejected(self, path6):
        with pytest.raises(PartitionError):
            Partition(path6, np.zeros(5, dtype=np.int64))

    def test_out_of_range_rejected(self, path6):
        with pytest.raises(PartitionError):
            Partition(path6, np.array([0, 1, 2, 0, 1, 2]), 2)
        with pytest.raises(PartitionError):
            Partition(path6, np.array([0, -1, 0, 0, 0, 0]))

    def test_bad_n_parts(self, path6):
        with pytest.raises(PartitionError):
            Partition(path6, np.zeros(6, dtype=np.int64), 0)


class TestImmutability:
    def test_setattr_blocked(self, path6):
        p = Partition(path6, np.zeros(6, dtype=np.int64), 2)
        with pytest.raises(AttributeError):
            p.n_parts = 3

    def test_assignment_readonly(self, path6):
        p = Partition(path6, np.zeros(6, dtype=np.int64), 2)
        with pytest.raises(ValueError):
            p.assignment[0] = 1

    def test_input_array_not_aliased(self, path6):
        a = np.zeros(6, dtype=np.int64)
        p = Partition(path6, a, 2)
        a[0] = 1
        assert p.assignment[0] == 0

    def test_unhashable(self, path6):
        with pytest.raises(TypeError):
            hash(Partition(path6, np.zeros(6, dtype=np.int64), 2))


class TestMetricsProperties:
    def test_metric_values(self):
        g = path_graph(8)
        p = Partition(g, np.array([0, 0, 0, 0, 1, 1, 1, 1]), 2)
        assert p.cut_size == 1.0
        assert p.part_cuts.tolist() == [1.0, 1.0]
        assert p.max_part_cut == 1.0
        assert p.load_imbalance == 0.0
        assert p.balance_ratio == 1.0
        assert p.part_loads.tolist() == [4.0, 4.0]

    def test_boundary_and_members(self):
        g = path_graph(8)
        p = Partition(g, np.array([0, 0, 0, 0, 1, 1, 1, 1]), 2)
        assert p.boundary_nodes().tolist() == [3, 4]
        assert p.part_members(1).tolist() == [4, 5, 6, 7]

    def test_part_members_out_of_range(self, path6):
        p = Partition(path6, np.zeros(6, dtype=np.int64), 2)
        with pytest.raises(PartitionError):
            p.part_members(5)

    def test_metrics_cached(self, grid4x4, rng):
        p = Partition(grid4x4, rng.integers(0, 4, 16), 4)
        first = p.part_cuts
        assert p.part_cuts is first  # same object from cache


class TestDerivation:
    def test_with_assignment(self, path6):
        p = Partition(path6, np.zeros(6, dtype=np.int64), 2)
        q = p.with_assignment(np.array([1, 1, 1, 0, 0, 0]))
        assert q.n_parts == 2
        assert q.cut_size == 1.0

    def test_relabeled_canonical(self, path6):
        p = Partition(path6, np.array([2, 2, 0, 0, 1, 1]), 3)
        q = p.relabeled()
        assert q.assignment.tolist() == [0, 0, 1, 1, 2, 2]
        assert q.cut_size == p.cut_size

    def test_relabel_idempotent(self, path6):
        p = Partition(path6, np.array([1, 0, 1, 0, 1, 0]), 2)
        assert p.relabeled().relabeled() == p.relabeled()

    def test_equality(self, path6):
        a = Partition(path6, np.zeros(6, dtype=np.int64), 2)
        b = Partition(path6, np.zeros(6, dtype=np.int64), 2)
        c = Partition(path6, np.ones(6, dtype=np.int64), 2)
        assert a == b
        assert a != c
        assert a.__eq__("x") is NotImplemented

    def test_repr_contains_metrics(self, path6):
        p = Partition(path6, np.array([0, 0, 0, 1, 1, 1]), 2)
        r = repr(p)
        assert "cut=1" in r and "n_parts=2" in r


class TestValidators:
    def test_check_partition_ok(self, mesh60, rng):
        p = Partition(mesh60, rng.integers(0, 4, 60), 4)
        check_partition(p)  # should not raise

    def test_nonempty_validator(self, path6):
        p = Partition(path6, np.zeros(6, dtype=np.int64), 2)
        with pytest.raises(PartitionError, match="empty"):
            require_all_parts_nonempty(p)
        q = Partition(path6, np.array([0, 0, 0, 1, 1, 1]), 2)
        require_all_parts_nonempty(q)

    def test_balance_validator(self, path6):
        p = Partition(path6, np.array([0, 0, 0, 0, 0, 1]), 2)
        with pytest.raises(PartitionError, match="balance"):
            require_balance(p, 1.1)
        require_balance(p, 2.0)
