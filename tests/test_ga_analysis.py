"""Tests for GA convergence analysis utilities."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.ga import (
    DKNUX,
    Fitness1,
    GAConfig,
    GAEngine,
    GAHistory,
    aggregate_histories,
    generations_to_reach,
    normalized_auc,
    repeat_runs,
)
from repro.graphs import mesh_graph


def _history(values):
    h = GAHistory()
    for v in values:
        h.record(np.array([v]), best_cut=1, best_worst_cut=1, evaluations=1)
    return h


class TestAggregate:
    def test_mean_min_max(self):
        summary = aggregate_histories(
            [_history([-4, -2]), _history([-2, -1])]
        )
        assert summary.mean.tolist() == [-3.0, -1.5]
        assert summary.min.tolist() == [-4.0, -2.0]
        assert summary.max.tolist() == [-2.0, -1.0]
        assert summary.n_runs == 2
        assert summary.final_best == -1.0

    def test_ragged_truncated_to_common_prefix(self):
        summary = aggregate_histories(
            [_history([-3, -2, -1]), _history([-4, -3])]
        )
        assert summary.n_generations == 2

    def test_std_zero_for_identical_runs(self):
        summary = aggregate_histories([_history([-2, -1])] * 3)
        assert np.all(summary.std == 0.0)

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            aggregate_histories([])
        with pytest.raises(ConfigError):
            aggregate_histories([GAHistory()])


class TestSpeedMetrics:
    def test_generations_to_reach(self):
        h = _history([-10, -5, -2, -2, -1])
        assert generations_to_reach(h, -5) == 1
        assert generations_to_reach(h, -1) == 4
        assert generations_to_reach(h, 0) is None

    def test_normalized_auc_monotone_comparison(self):
        fast = _history([-10, -1, -1, -1])
        slow = _history([-10, -9, -8, -1])
        assert normalized_auc(fast) > normalized_auc(slow)

    def test_normalized_auc_flat_curve(self):
        assert normalized_auc(_history([-3, -3, -3])) == 1.0

    def test_normalized_auc_range(self):
        h = _history([-10, -7, -4, -1])
        assert 0.0 <= normalized_auc(h) <= 1.0

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            normalized_auc(GAHistory())


class TestRepeatRuns:
    def test_runs_and_aggregates(self):
        g = mesh_graph(30, seed=61)
        fit = Fitness1(g, 2)

        def factory(seed):
            return GAEngine(
                g,
                fit,
                DKNUX(g, 2),
                GAConfig(population_size=12, max_generations=8),
                seed=seed,
            )

        results, summary = repeat_runs(factory, 3, base_seed=5)
        assert len(results) == 3
        assert summary.n_runs == 3
        assert summary.n_generations == 9  # initial + 8

    def test_bad_count(self):
        with pytest.raises(ConfigError):
            repeat_runs(lambda s: None, 0)

    def test_dknux_auc_beats_two_point(self):
        """Quantified version of the paper's speed claim."""
        from repro.ga import TwoPointCrossover

        g = mesh_graph(60, seed=62)
        fit = Fitness1(g, 4)
        cfg = GAConfig(population_size=24, max_generations=25)

        def dknux_factory(seed):
            return GAEngine(g, fit, DKNUX(g, 4), cfg, seed=seed)

        def twopt_factory(seed):
            return GAEngine(g, fit, TwoPointCrossover(), cfg, seed=seed)

        d_results, _ = repeat_runs(dknux_factory, 2, base_seed=1)
        t_results, _ = repeat_runs(twopt_factory, 2, base_seed=1)
        d_final = np.mean([r.best_fitness for r in d_results])
        t_final = np.mean([r.best_fitness for r in t_results])
        assert d_final > t_final
