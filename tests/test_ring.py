"""Tests for the consistent-hash ring (PR 10).

Covers: determinism of the point function and owner mapping, the
remap-minimality property (the reason the ring exists — a resize moves
~1/(N+1) of the keyspace, an eject only the dead slot's share, a
modulus layout moves almost everything), frozen epoch-0 expectations
documenting the one-time migration off the PR-4 ``% N`` layout,
describe/from_description round-trips, and the mutation semantics
(epoch advance, idempotence, ejected-stays-ejected, empty-ring
refusal).
"""

import hashlib

import pytest

from repro.errors import ServiceError
from repro.service import (
    DEFAULT_RING_REPLICAS,
    RING_PROTOCOL_VERSION,
    HashRing,
    RingVersion,
    shard_for_digest,
)
from repro.service.ring import ring_point


def _digests(count: int) -> list[str]:
    """Deterministic corpus of content-digest-shaped keys."""
    return [
        hashlib.blake2b(f"key-{i}".encode(), digest_size=8).hexdigest()
        for i in range(count)
    ]


# ---------------------------------------------------------------------------
# determinism


def test_ring_point_is_pure():
    assert ring_point("ring-slot-0-vnode-0") == ring_point("ring-slot-0-vnode-0")
    assert 0 <= ring_point("anything") < (1 << 64)


def test_owner_is_deterministic_and_in_members():
    ring = RingVersion(0, 5, members=[0, 2, 4])
    for digest in _digests(200):
        owner = ring.owner(digest)
        assert owner == ring.owner(digest)
        assert owner in (0, 2, 4)


# ---------------------------------------------------------------------------
# remap minimality — the property the ring exists for


def test_resize_remap_is_minimal():
    digests = _digests(2000)
    for n in (2, 4, 8):
        before = RingVersion(0, n)
        after = RingVersion(1, n + 1)
        moved = sum(1 for d in digests if before.owner(d) != after.owner(d))
        expected = len(digests) / (n + 1)
        # some keys must move (the new slot owns its share)...
        assert moved > 0
        # ...but only about 1/(N+1) of them — generous 1.5x slack for
        # virtual-node variance at DEFAULT_RING_REPLICAS
        assert moved <= 1.5 * expected, (
            f"resize {n}->{n + 1} moved {moved} of {len(digests)} keys "
            f"(expected ~{expected:.0f})"
        )


def test_identical_topology_moves_nothing():
    digests = _digests(500)
    a = RingVersion(0, 4)
    b = RingVersion(7, 4)  # epoch differs, topology identical
    assert all(a.owner(d) == b.owner(d) for d in digests)


def test_eject_moves_only_the_ejected_share():
    digests = _digests(2000)
    full = RingVersion(0, 4)
    degraded = RingVersion(1, 4, members=[0, 1, 3])
    for d in digests:
        before, after = full.owner(d), degraded.owner(d)
        if before != 2:
            # keys the dead slot never owned must not move at all
            assert after == before
        else:
            assert after in (0, 1, 3)


def test_modulus_layout_would_remap_nearly_everything():
    # the counter-property motivating the migration: % N moves ~N/(N+1)
    # of all keys on a resize, the ring only ~1/(N+1)
    digests = _digests(2000)
    moved = sum(
        1
        for d in digests
        if shard_for_digest(d, 4) != shard_for_digest(d, 5)
    )
    assert moved > 0.6 * len(digests)


def test_shares_sum_to_one_and_stay_balanced():
    ring = RingVersion(0, 4)
    shares = ring.shares()
    assert set(shares) == {0, 1, 2, 3}
    assert sum(shares.values()) == pytest.approx(1.0)
    for share in shares.values():
        # 64 vnodes/slot keeps each share within a factor ~2 of 1/N
        assert 0.5 / 4 < share < 2.0 / 4


# ---------------------------------------------------------------------------
# frozen expectations — the one-time migration off the PR-4 layout


def test_frozen_epoch0_layout():
    """Epoch-0 ring routing is frozen: these literals must never change
    (persisted write-behind journals and warm-seed filters depend on
    stable ownership across restarts).

    They deliberately differ from the PR-4 modulus layout — e.g.
    ``shard_for_digest("deadbeef", 4) == 1`` while the ring owner is 3.
    That one-time migration is a cold-cache event only: routing picks
    which process computes, never what is computed, and
    ``shard_for_digest`` stays exported (and frozen in
    test_sharding.py) as the pre-ring reference.
    """
    assert HashRing(4).owner("deadbeef") == 3
    assert HashRing(2).owner("deadbeef") == 0
    # the old layout, for contrast (frozen since PR 4):
    assert shard_for_digest("deadbeef", 4) == 1
    assert shard_for_digest("deadbeef", 2) == 1


# ---------------------------------------------------------------------------
# describe / from_description


def test_describe_round_trip():
    ring = HashRing(4)
    ring.eject(2)
    desc = ring.describe()
    assert desc["epoch"] == 1
    assert desc["members"] == [0, 1, 3]
    assert desc["protocol"] == RING_PROTOCOL_VERSION
    assert desc["replicas"] == DEFAULT_RING_REPLICAS
    rebuilt = RingVersion.from_description(desc)
    assert rebuilt.epoch == 1
    assert rebuilt.members == (0, 1, 3)
    for digest in _digests(300):
        assert rebuilt.owner(digest) == ring.owner(digest)


def test_from_description_rejects_garbage():
    with pytest.raises(ServiceError):
        RingVersion.from_description({"epoch": 0})
    with pytest.raises(ServiceError):
        RingVersion.from_description({"epoch": "x", "n_slots": 2})


# ---------------------------------------------------------------------------
# mutation semantics


def test_mutations_advance_epoch_and_are_idempotent():
    ring = HashRing(3)
    assert ring.epoch == 0
    v1 = ring.eject(1)
    assert v1.epoch == 1 and ring.members == (0, 2)
    # idempotent: ejecting again returns the current version unchanged
    assert ring.eject(1).epoch == 1
    v2 = ring.readmit(1)
    assert v2.epoch == 2 and ring.members == (0, 1, 2)
    assert ring.readmit(1).epoch == 2
    # identical-topology resize is a no-op too
    assert ring.resize(3).epoch == 2


def test_resize_does_not_resurrect_ejected_slots():
    ring = HashRing(3)
    ring.eject(1)
    version = ring.resize(5)
    assert version.members == (0, 2, 3, 4)
    ring.readmit(1)
    assert ring.members == (0, 1, 2, 3, 4)


def test_ring_refuses_to_empty():
    ring = HashRing(1)
    with pytest.raises(ServiceError):
        ring.eject(0)
    two = HashRing(2)
    two.eject(0)
    with pytest.raises(ServiceError):
        two.eject(1)
    with pytest.raises(ServiceError):
        RingVersion(0, 2, members=[])


def test_ring_validates_inputs():
    with pytest.raises(ServiceError):
        RingVersion(0, 0)
    with pytest.raises(ServiceError):
        RingVersion(-1, 2)
    with pytest.raises(ServiceError):
        RingVersion(0, 2, members=[5])
    ring = HashRing(2)
    with pytest.raises(ServiceError):
        ring.eject(9)
    with pytest.raises(ServiceError):
        ring.readmit(-1)
