"""Tests for the paper's two fitness functions."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.ga import Fitness1, Fitness2, make_fitness
from repro.graphs import CSRGraph, path_graph
from repro.partition import (
    batch_load_imbalance,
    cut_size,
    load_imbalance,
    max_part_cut,
)


class TestFitness1:
    def test_value_decomposition(self, mesh60, rng):
        fit = Fitness1(mesh60, 4)
        a = rng.integers(0, 4, 60)
        expected = -(load_imbalance(mesh60, a, 4) + 2 * cut_size(mesh60, a))
        assert np.isclose(fit.evaluate(a), expected)

    def test_alpha_scales_communication(self, mesh60, rng):
        a = rng.integers(0, 4, 60)
        f1 = Fitness1(mesh60, 4, alpha=1.0)
        f2 = Fitness1(mesh60, 4, alpha=2.0)
        comm = 2 * cut_size(mesh60, a)
        assert np.isclose(f1.evaluate(a) - f2.evaluate(a), comm)

    def test_paper_ordering_example(self):
        """Section 3.1: on a path graph, 11100001 > 11100011 > 10101011."""
        g = path_graph(8)
        fit = Fitness1(g, 2)
        balanced = np.array([1, 1, 1, 1, 0, 0, 0, 1])  # 11110001-like
        # use the paper's exact strings
        s1 = np.array([1, 1, 1, 0, 0, 0, 0, 1])  # 11100001
        s2 = np.array([1, 1, 1, 0, 0, 0, 1, 1])  # 11100011
        s3 = np.array([1, 0, 1, 0, 1, 0, 1, 1])  # 10101011
        assert fit.evaluate(s1) > fit.evaluate(s2) > fit.evaluate(s3)

    def test_batch_matches_scalar(self, mesh60, rng):
        fit = Fitness1(mesh60, 4)
        pop = rng.integers(0, 4, size=(12, 60))
        batch = fit.evaluate_batch(pop)
        for r in range(12):
            assert np.isclose(batch[r], fit.evaluate(pop[r]))

    def test_perfect_partition_fitness_zero_minus_cut(self):
        g = path_graph(8)
        fit = Fitness1(g, 2)
        a = np.array([0, 0, 0, 0, 1, 1, 1, 1])
        assert fit.evaluate(a) == -(0 + 2 * 1)


class TestFitness2:
    def test_value_decomposition(self, mesh60, rng):
        fit = Fitness2(mesh60, 4)
        a = rng.integers(0, 4, 60)
        expected = -(load_imbalance(mesh60, a, 4) + max_part_cut(mesh60, a, 4))
        assert np.isclose(fit.evaluate(a), expected)

    def test_prefers_even_communication(self):
        """Fitness2 distinguishes partitions with equal total cut but
        different worst-part cut; Fitness1 does not."""
        g = CSRGraph(6, [0, 1, 2, 3, 4], [1, 2, 3, 4, 5])  # path of 6
        f1 = Fitness1(g, 3)
        f2 = Fitness2(g, 3)
        even = np.array([0, 0, 1, 1, 2, 2])  # C = [1,2,1]
        a2 = np.array([0, 1, 0, 1, 2, 2])  # C = [3,4,1], same balance
        assert f2.evaluate(even) > f2.evaluate(a2)
        assert f1.evaluate(even) > f1.evaluate(a2)  # total differs here
        # construct equal-total pair: alternating has total 2*5
        assert f2.evaluate(even) == -(0 + 2)

    def test_batch_matches_scalar(self, mesh60, rng):
        fit = Fitness2(mesh60, 4)
        pop = rng.integers(0, 4, size=(8, 60))
        batch = fit.evaluate_batch(pop)
        for r in range(8):
            assert np.isclose(batch[r], fit.evaluate(pop[r]))


class TestCommon:
    def test_imbalance_component(self, mesh60, rng):
        fit = Fitness1(mesh60, 4)
        pop = rng.integers(0, 4, size=(5, 60))
        assert np.allclose(
            fit.imbalance_batch(pop), batch_load_imbalance(mesh60, pop, 4)
        )

    def test_factory(self, mesh60):
        assert isinstance(make_fitness("fitness1", mesh60, 4), Fitness1)
        assert isinstance(make_fitness("FITNESS2", mesh60, 4), Fitness2)

    def test_factory_unknown(self, mesh60):
        with pytest.raises(ConfigError):
            make_fitness("fitness3", mesh60, 4)

    def test_bad_n_parts(self, mesh60):
        with pytest.raises(ConfigError):
            Fitness1(mesh60, 0)

    def test_bad_alpha(self, mesh60):
        with pytest.raises(ConfigError):
            Fitness2(mesh60, 2, alpha=-1.0)

    def test_repr(self, mesh60):
        assert "n_parts=4" in repr(Fitness1(mesh60, 4))

    def test_higher_is_better_orientation(self, mesh60):
        """A strictly worse partition (more cut, same balance) must have
        strictly lower fitness."""
        fit = Fitness1(mesh60, 2)
        half = np.zeros(60, dtype=np.int64)
        half[30:] = 1
        worse = half.copy()
        # swap two nodes across the cut to (almost surely) raise the cut
        worse[0], worse[59] = 1, 0
        if cut_size(mesh60, worse) > cut_size(mesh60, half):
            assert fit.evaluate(worse) < fit.evaluate(half)
