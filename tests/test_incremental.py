"""Tests for incremental graph partitioning."""

import numpy as np
import pytest

from repro.baselines import rsb_partition
from repro.errors import GraphError, PartitionError
from repro.ga import GAConfig
from repro.graphs import check_graph, is_connected, mesh_graph, paper_mesh
from repro.incremental import (
    IncrementalGAPartitioner,
    extend_assignment,
    insert_local_nodes,
    naive_incremental_partition,
    seed_population_from_previous,
)
from repro.partition import check_partition


@pytest.fixture(scope="module")
def base_and_update():
    g = mesh_graph(80, seed=31)
    upd = insert_local_nodes(g, 15, seed=4)
    return g, upd


class TestInsertLocalNodes:
    def test_node_count_and_ids(self, base_and_update):
        g, upd = base_and_update
        assert upd.graph.n_nodes == 95
        assert upd.n_old == 80
        assert upd.new_nodes.tolist() == list(range(80, 95))
        assert 0 <= upd.center < 80
        check_graph(upd.graph)

    def test_old_coordinates_preserved(self, base_and_update):
        g, upd = base_and_update
        assert np.allclose(upd.graph.coords[:80], g.coords)

    def test_new_nodes_are_local(self, base_and_update):
        g, upd = base_and_update
        center = g.coords[upd.center]
        new_pts = upd.graph.coords[80:]
        d = np.linalg.norm(new_pts - center, axis=1)
        # all inserted points within the (generous) default radius
        assert d.max() < 0.6

    def test_still_connected(self, base_and_update):
        _, upd = base_and_update
        assert is_connected(upd.graph)

    def test_deterministic(self):
        g = mesh_graph(50, seed=1)
        a = insert_local_nodes(g, 10, seed=2)
        b = insert_local_nodes(g, 10, seed=2)
        assert a.graph == b.graph
        assert a.center == b.center

    def test_node_weights_extended(self):
        g = mesh_graph(30, seed=1).with_weights(node_weights=np.full(30, 2.0))
        upd = insert_local_nodes(g, 5, seed=3)
        assert np.all(upd.graph.node_weights[:30] == 2.0)
        assert np.all(upd.graph.node_weights[30:] == 1.0)

    def test_validation(self):
        g = mesh_graph(30, seed=1)
        with pytest.raises(GraphError):
            insert_local_nodes(g, 0)
        with pytest.raises(GraphError):
            insert_local_nodes(g, 5, radius=-1.0)
        from repro.graphs import CSRGraph

        with pytest.raises(GraphError):
            insert_local_nodes(CSRGraph(4, [0], [1]), 2)


class TestExtendAssignment:
    def test_old_labels_preserved(self, base_and_update):
        g, upd = base_and_update
        old = rsb_partition(g, 4).assignment
        full = extend_assignment(upd.graph, old, 4, seed=5)
        assert np.array_equal(full[:80], old)

    def test_balance_maintained(self, base_and_update):
        g, upd = base_and_update
        old = rsb_partition(g, 4).assignment
        full = extend_assignment(upd.graph, old, 4, seed=6)
        sizes = np.bincount(full, minlength=4)
        old_spread = np.ptp(np.bincount(old, minlength=4))
        assert sizes.max() - sizes.min() <= old_spread + 1

    def test_validation(self, base_and_update):
        g, upd = base_and_update
        with pytest.raises(PartitionError):
            extend_assignment(upd.graph, np.zeros(200, dtype=np.int64), 4)
        with pytest.raises(PartitionError):
            extend_assignment(upd.graph, np.full(80, 9, dtype=np.int64), 4)


class TestSeedPopulation:
    def test_shape_and_rows(self, base_and_update):
        g, upd = base_and_update
        old = rsb_partition(g, 4).assignment
        pop = seed_population_from_previous(upd.graph, old, 4, 10, seed=7)
        assert pop.shape == (10, 95)
        # row 0 is a faithful extension
        assert np.array_equal(pop[0, :80], old)

    def test_rows_differ_in_new_region(self, base_and_update):
        g, upd = base_and_update
        old = rsb_partition(g, 4).assignment
        pop = seed_population_from_previous(
            upd.graph, old, 4, 8, seed=8, perturb_rate=0.0
        )
        tails = {tuple(row[80:]) for row in pop}
        assert len(tails) > 1

    def test_zero_perturb_keeps_all_old_genes(self, base_and_update):
        g, upd = base_and_update
        old = rsb_partition(g, 4).assignment
        pop = seed_population_from_previous(
            upd.graph, old, 4, 6, seed=9, perturb_rate=0.0
        )
        for row in pop:
            assert np.array_equal(row[:80], old)

    def test_validation(self, base_and_update):
        g, upd = base_and_update
        old = rsb_partition(g, 4).assignment
        with pytest.raises(PartitionError):
            seed_population_from_previous(upd.graph, old, 4, 0)
        with pytest.raises(PartitionError):
            seed_population_from_previous(upd.graph, old, 4, 5, perturb_rate=3.0)


class TestNaiveBaseline:
    def test_old_labels_untouched(self, base_and_update):
        g, upd = base_and_update
        old = rsb_partition(g, 4).assignment
        p = naive_incremental_partition(upd.graph, old, 4)
        assert np.array_equal(p.assignment[:80], old)
        check_partition(p)

    def test_majority_rule(self):
        """A new node whose labelled neighbors are all in part q joins q."""
        g = mesh_graph(40, seed=2)
        upd = insert_local_nodes(g, 1, seed=3)
        old = np.zeros(40, dtype=np.int64)  # everything in part 0
        p = naive_incremental_partition(upd.graph, old, 2)
        assert p.assignment[40] == 0

    def test_processes_most_connected_first(self, base_and_update):
        g, upd = base_and_update
        old = rsb_partition(g, 2).assignment
        p = naive_incremental_partition(upd.graph, old, 2)
        # every new node ends with a label
        assert p.assignment.min() >= 0

    def test_validation(self, base_and_update):
        _, upd = base_and_update
        with pytest.raises(PartitionError):
            naive_incremental_partition(
                upd.graph, np.zeros(200, dtype=np.int64), 4
            )
        with pytest.raises(PartitionError):
            naive_incremental_partition(
                upd.graph, np.full(80, -1, dtype=np.int64), 4
            )


class TestIncrementalGAPartitioner:
    @pytest.fixture
    def quick_config(self):
        return GAConfig(
            population_size=24,
            max_generations=25,
            patience=8,
            hill_climb="all",
            hill_climb_passes=1,
        )

    def test_full_cycle(self, quick_config):
        g = mesh_graph(60, seed=41)
        part = IncrementalGAPartitioner(g, 4, config=quick_config, seed=1)
        p0 = part.partition_initial()
        check_partition(p0)
        upd = insert_local_nodes(g, 12, seed=5)
        p1 = part.update(upd.graph)
        check_partition(p1)
        assert part.n_updates == 1
        assert part.graph is upd.graph

    def test_update_without_initial_partitions_from_scratch(self, quick_config):
        g = mesh_graph(60, seed=42)
        part = IncrementalGAPartitioner(g, 2, config=quick_config, seed=2)
        p = part.update(g)  # no partition yet -> behaves like initial
        check_partition(p)

    def test_initial_assignment_seed(self, quick_config):
        g = mesh_graph(60, seed=43)
        rsb = rsb_partition(g, 4)
        part = IncrementalGAPartitioner(
            g, 4, config=quick_config, seed=3, initial_assignment=rsb.assignment
        )
        p = part.partition_initial()
        # refinement never loses to the seed
        from repro.ga import Fitness1

        fit = Fitness1(g, 4)
        assert fit.evaluate(p.assignment) >= fit.evaluate(rsb.assignment)

    def test_shrinking_graph_rejected(self, quick_config):
        g = mesh_graph(60, seed=44)
        part = IncrementalGAPartitioner(g, 2, config=quick_config, seed=4)
        part.partition_initial()
        smaller = mesh_graph(50, seed=45)
        with pytest.raises(PartitionError):
            part.update(smaller)

    def test_split_kernels_match_update(self, quick_config):
        """begin_update → run_pending → commit_update is exactly what
        update() composes (the overlapped session path relies on it)."""
        g = mesh_graph(60, seed=46)
        upd = insert_local_nodes(g, 10, seed=8)
        monolithic = IncrementalGAPartitioner(g, 4, config=quick_config, seed=5)
        monolithic.partition_initial()
        split = IncrementalGAPartitioner(g, 4, config=quick_config, seed=5)
        split.partition_initial()

        expected = monolithic.update(upd.graph)
        pending = split.begin_update(upd.graph)
        split.run_pending(pending)
        got = split.commit_update(pending)
        assert np.array_equal(expected.assignment, got.assignment)
        assert split.n_updates == 1

    def test_stale_commit_rebases(self, quick_config):
        """A pending update that lost the commit race raises
        StaleUpdateError; re-running it seeds from the newly committed
        partition (the rebase) and then commits cleanly."""
        from repro.incremental import StaleUpdateError

        g = mesh_graph(60, seed=47)
        part = IncrementalGAPartitioner(g, 4, config=quick_config, seed=6)
        part.partition_initial()
        upd_a = insert_local_nodes(g, 8, seed=9)
        upd_b = insert_local_nodes(g, 8, seed=10)

        pending = part.begin_update(upd_a.graph)
        part.run_pending(pending)
        part.update(upd_b.graph)  # a competing update commits first
        with pytest.raises(StaleUpdateError):
            part.commit_update(pending)
        # rebase: upd_a must now grow on top of upd_b's node count? no —
        # it is an alternative update of the same base; re-running seeds
        # from the *current* (upd_b) partition's prefix
        part.run_pending(pending)
        committed = part.commit_update(pending)
        check_partition(committed)
        assert part.graph is upd_a.graph
        assert part.n_updates == 2

    def test_rebase_conflict_when_session_moved_past_pending(self, quick_config):
        """If a competing update committed a *larger* graph, the pending
        update cannot rebase (node removal is outside the model) —
        run_pending surfaces StaleUpdateError with a clear message, not
        a shape error from deep inside the seeding."""
        from repro.incremental import StaleUpdateError

        g = mesh_graph(60, seed=51)
        part = IncrementalGAPartitioner(g, 4, config=quick_config, seed=10)
        part.partition_initial()
        small = insert_local_nodes(g, 5, seed=13)
        big = insert_local_nodes(g, 9, seed=14)
        pending = part.begin_update(small.graph)
        part.run_pending(pending)
        part.update(big.graph)  # session moves to 69 nodes
        with pytest.raises(StaleUpdateError, match="moved past"):
            part.run_pending(pending)

    def test_commit_requires_run(self, quick_config):
        g = mesh_graph(60, seed=48)
        part = IncrementalGAPartitioner(g, 2, config=quick_config, seed=7)
        part.partition_initial()
        upd = insert_local_nodes(g, 5, seed=11)
        pending = part.begin_update(upd.graph)
        with pytest.raises(PartitionError, match="not been run"):
            part.commit_update(pending)

    def test_engine_reused_on_same_graph(self, quick_config):
        """The engine (and its evaluator memo) survives repeated runs on
        an unchanged graph instead of being rebuilt (warm-carry item)."""
        g = mesh_graph(60, seed=49)
        part = IncrementalGAPartitioner(g, 4, config=quick_config, seed=8)
        part.partition_initial()
        engine = part._engine
        assert engine is not None
        part.partition_initial()  # re-optimize the same graph
        assert part._engine is engine

    def test_dknux_estimate_carried_across_updates(self, quick_config):
        """After an update, the fresh engine's DKNUX starts from the
        carried previous-best estimate (with its re-evaluated fitness),
        not from scratch — and carry can be disabled."""
        from repro.ga.dknux import DKNUX

        g = mesh_graph(60, seed=50)
        upd = insert_local_nodes(g, 10, seed=12)
        carried = IncrementalGAPartitioner(g, 4, config=quick_config, seed=9)
        carried.partition_initial()
        carried.update(upd.graph)
        cross = carried._engine.crossover
        assert isinstance(cross, DKNUX)
        # the estimate survived the graph change: by the time the run
        # ended its best-seen fitness can only have improved on the
        # carried seed value, and an estimate exists from generation 0
        assert cross.best_fitness_seen > -np.inf

        plain = IncrementalGAPartitioner(
            g, 4, config=quick_config, seed=9, carry_estimate=False
        )
        plain.partition_initial()
        p = plain.update(upd.graph)
        check_partition(p)  # the opt-out path still works end to end

    def test_incremental_beats_naive_on_balance(self, quick_config):
        """The paper's Section 5 claim: the naive assign-to-majority rule
        cannot match GA incremental results (it sacrifices balance)."""
        base = paper_mesh(78)
        part = IncrementalGAPartitioner(base, 4, config=quick_config, seed=6)
        p0 = part.partition_initial()
        upd = insert_local_nodes(base, 20, seed=7)
        ga = part.update(upd.graph)
        naive = naive_incremental_partition(upd.graph, p0.assignment, 4)
        from repro.ga import Fitness1

        fit = Fitness1(upd.graph, 4)
        assert fit.evaluate(ga.assignment) > fit.evaluate(naive.assignment)

    def test_repr(self, quick_config):
        g = mesh_graph(60, seed=46)
        part = IncrementalGAPartitioner(g, 2, config=quick_config)
        assert "unpartitioned" in repr(part)
