"""Tests for the GA engine loop."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.ga import (
    DKNUX,
    Fitness1,
    Fitness2,
    GAConfig,
    GAEngine,
    TwoPointCrossover,
    UniformCrossover,
)
from repro.graphs import grid2d, mesh_graph
from repro.partition import check_partition


@pytest.fixture
def small_setup():
    g = mesh_graph(40, seed=11)
    fit = Fitness1(g, 3)
    return g, fit


class TestRunBasics:
    def test_result_fields(self, small_setup):
        g, fit = small_setup
        cfg = GAConfig(population_size=16, max_generations=10)
        res = GAEngine(g, fit, UniformCrossover(), cfg, seed=1).run()
        assert res.generations == 10
        assert res.stopped_by == "max_generations"
        assert res.best.n_parts == 3
        check_partition(res.best)
        assert np.isclose(res.best_fitness, fit.evaluate(res.best.assignment))

    def test_history_length(self, small_setup):
        g, fit = small_setup
        cfg = GAConfig(population_size=16, max_generations=7)
        res = GAEngine(g, fit, UniformCrossover(), cfg, seed=2).run()
        # initial evaluation + one record per generation
        assert res.history.n_generations == 8

    def test_best_fitness_monotone_under_plus(self, small_setup):
        g, fit = small_setup
        cfg = GAConfig(population_size=16, max_generations=30, replacement="plus")
        res = GAEngine(g, fit, TwoPointCrossover(), cfg, seed=3).run()
        best = np.asarray(res.history.best_fitness)
        assert np.all(np.diff(best) >= 0)

    def test_deterministic_given_seed(self, small_setup):
        g, fit = small_setup
        cfg = GAConfig(population_size=16, max_generations=15)
        r1 = GAEngine(g, fit, DKNUX(g, 3), cfg, seed=42).run()
        r2 = GAEngine(g, fit, DKNUX(g, 3), cfg, seed=42).run()
        assert r1.best_fitness == r2.best_fitness
        assert np.array_equal(r1.best.assignment, r2.best.assignment)

    def test_different_seeds_explore_differently(self, small_setup):
        g, fit = small_setup
        cfg = GAConfig(population_size=16, max_generations=5)
        r1 = GAEngine(g, fit, UniformCrossover(), cfg, seed=1).run()
        r2 = GAEngine(g, fit, UniformCrossover(), cfg, seed=2).run()
        assert not np.array_equal(r1.best.assignment, r2.best.assignment)

    def test_zero_generations_returns_initial_best(self, small_setup):
        g, fit = small_setup
        cfg = GAConfig(population_size=16, max_generations=0)
        res = GAEngine(g, fit, UniformCrossover(), cfg, seed=4).run()
        assert res.generations == 0

    def test_wrong_graph_fitness_pairing(self, small_setup):
        g, fit = small_setup
        other = mesh_graph(40, seed=99)
        with pytest.raises(ConfigError):
            GAEngine(other, fit, UniformCrossover())


class TestInitialPopulation:
    def test_explicit_population_used(self, small_setup):
        g, fit = small_setup
        cfg = GAConfig(population_size=8, max_generations=0)
        seed_row = np.zeros(40, dtype=np.int64)
        pop = np.tile(seed_row, (8, 1))
        res = GAEngine(g, fit, UniformCrossover(), cfg, seed=5).run(pop)
        assert np.array_equal(res.best.assignment, seed_row)

    def test_undersized_population_padded(self, small_setup):
        g, fit = small_setup
        cfg = GAConfig(population_size=10, max_generations=1)
        pop = np.zeros((2, 40), dtype=np.int64)
        res = GAEngine(g, fit, UniformCrossover(), cfg, seed=6).run(pop)
        assert res.history.n_generations == 2  # ran fine

    def test_oversized_population_truncated(self, small_setup):
        g, fit = small_setup
        cfg = GAConfig(population_size=4, max_generations=1)
        pop = np.zeros((10, 40), dtype=np.int64)
        GAEngine(g, fit, UniformCrossover(), cfg, seed=7).run(pop)

    def test_bad_population_shape(self, small_setup):
        g, fit = small_setup
        cfg = GAConfig(population_size=4, max_generations=1)
        with pytest.raises(ConfigError):
            GAEngine(g, fit, UniformCrossover(), cfg, seed=8).run(
                np.zeros((4, 39), dtype=np.int64)
            )

    def test_bad_population_labels(self, small_setup):
        g, fit = small_setup
        cfg = GAConfig(population_size=4, max_generations=1)
        with pytest.raises(ConfigError):
            GAEngine(g, fit, UniformCrossover(), cfg, seed=9).run(
                np.full((4, 40), 7, dtype=np.int64)
            )


class TestStopping:
    def test_patience_stops_early(self, small_setup):
        g, fit = small_setup
        cfg = GAConfig(
            population_size=16,
            max_generations=500,
            patience=5,
            crossover_rate=0.0,
            mutation_rate=0.0,
        )
        res = GAEngine(g, fit, UniformCrossover(), cfg, seed=10).run()
        assert res.stopped_by == "patience"
        assert res.generations < 500

    def test_target_fitness_stops(self, small_setup):
        g, fit = small_setup
        cfg = GAConfig(
            population_size=16, max_generations=500, target_fitness=-1e9
        )
        res = GAEngine(g, fit, UniformCrossover(), cfg, seed=11).run()
        assert res.stopped_by == "target_fitness"
        assert res.generations <= 1


class TestHillClimbModes:
    @pytest.mark.parametrize("mode", ["best", "all", "final"])
    def test_modes_run_and_dont_regress(self, small_setup, mode):
        g, fit = small_setup
        base = GAConfig(population_size=16, max_generations=8)
        cfg = base.with_updates(hill_climb=mode)
        res_off = GAEngine(g, fit, DKNUX(g, 3), base, seed=12).run()
        res_on = GAEngine(g, fit, DKNUX(g, 3), cfg, seed=12).run()
        check_partition(res_on.best)
        # hill climbing may alter the trajectory but 'all' mode should help
        if mode == "all":
            assert res_on.best_fitness >= res_off.best_fitness

    def test_fitness2_with_hill_climb(self):
        g = grid2d(6, 6)
        fit = Fitness2(g, 4)
        cfg = GAConfig(
            population_size=16, max_generations=10, hill_climb="all"
        )
        res = GAEngine(g, fit, DKNUX(g, 4), cfg, seed=13).run()
        check_partition(res.best)


class TestReplacementAndCrossoverRate:
    def test_generational_replacement_runs(self, small_setup):
        g, fit = small_setup
        cfg = GAConfig(
            population_size=16,
            max_generations=10,
            replacement="generational",
            elite=2,
        )
        res = GAEngine(g, fit, UniformCrossover(), cfg, seed=14).run()
        check_partition(res.best)

    def test_zero_crossover_rate_copies_parents(self, small_setup):
        g, fit = small_setup
        cfg = GAConfig(
            population_size=8,
            max_generations=3,
            crossover_rate=0.0,
            mutation_rate=0.0,
        )
        pop = np.tile(np.zeros(40, dtype=np.int64), (8, 1))
        res = GAEngine(g, fit, UniformCrossover(), cfg, seed=15).run(pop)
        # population can never leave the all-zeros state
        assert np.array_equal(res.best.assignment, np.zeros(40, dtype=np.int64))

    def test_odd_population_size(self, small_setup):
        g, fit = small_setup
        cfg = GAConfig(population_size=7, max_generations=5)
        res = GAEngine(g, fit, UniformCrossover(), cfg, seed=16).run()
        check_partition(res.best)
