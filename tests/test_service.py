"""Tests for the partition service subsystem (``repro.service``).

Covers the tentpole's contracts: the JSON request/response model,
content-addressed caching (hit/miss/eviction, graph interning, warm
seeds), request coalescing (in-flight join and batched refine, both
bit-identical to serial submission), streaming incremental sessions
(including concurrent ones), the method portfolio, and an end-to-end
HTTP smoke test replaying a workloads-derived mixed trace.
"""

import json
import threading
from pathlib import Path

import numpy as np
import pytest

from repro import partition_graph
from repro.analysis import LockWitness, WitnessViolation, extract_lock_graph
from repro.errors import GraphFormatError, ServiceError
from repro.ga.config import GAConfig
from repro.graphs import mesh_graph
from repro.incremental.partitioner import IncrementalGAPartitioner
from repro.incremental.updates import insert_local_nodes
from repro.service import (
    DEFAULT_GA_OVERRIDES,
    HTTPServiceClient,
    JobResult,
    LRUBytesCache,
    PartitionRequest,
    PartitionService,
    RefineRequest,
    ServiceClient,
    UpdateRequest,
    graph_digest,
    graph_from_wire,
    graph_to_wire,
    request_key,
    serve,
)

#: tiny GA budget — these tests exercise the serving layer, not search
#: quality
GA = dict(population_size=12, max_generations=6, patience=3)


@pytest.fixture
def graph():
    return mesh_graph(48, seed=3)


@pytest.fixture(scope="module")
def lock_graph():
    """The statically extracted lock graph for the repro package — the
    claim the runtime witness checks observed behavior against."""
    import repro

    src = Path(repro.__file__).resolve().parent
    return extract_lock_graph([str(src)])


@pytest.fixture
def service():
    with PartitionService(n_workers=2) as svc:
        yield svc


# ----------------------------------------------------------------------
# models: JSON roundtrips and validation
# ----------------------------------------------------------------------

class TestModels:
    def test_partition_request_roundtrip(self, graph):
        req = PartitionRequest(graph, 4, fitness_kind="fitness2", seed=7,
                               method="greedy", ga=GA)
        back = PartitionRequest.from_payload(
            json.loads(json.dumps(req.to_payload()))
        )
        assert back.graph == graph
        assert (back.n_parts, back.fitness_kind, back.method, back.seed) == (
            4, "fitness2", "greedy", 7)
        assert back.ga == GA

    def test_refine_request_roundtrip(self, graph, rng):
        a = rng.integers(0, 3, graph.n_nodes)
        req = RefineRequest(graph, 3, a, passes=4)
        back = RefineRequest.from_payload(
            json.loads(json.dumps(req.to_payload()))
        )
        assert np.array_equal(back.assignment, a)
        assert back.passes == 4

    def test_update_request_roundtrip(self, graph):
        req = UpdateRequest("s1-abc", graph)
        back = UpdateRequest.from_payload(
            json.loads(json.dumps(req.to_payload()))
        )
        assert back.session_id == "s1-abc"
        assert back.graph == graph

    def test_job_result_roundtrip(self, graph, rng):
        a = rng.integers(0, 4, graph.n_nodes)
        res = JobResult(
            assignment=a, n_parts=4, cut_size=10.0, max_part_cut=6.0,
            balance_ratio=1.1, part_sizes=[12, 12, 12, 12], method="dknux",
            fitness=-12.5, cache_hit=True, latency_s=0.01,
        )
        back = JobResult.from_payload(json.loads(json.dumps(res.to_payload())))
        assert np.array_equal(back.assignment, a)
        assert back.cache_hit and back.method == "dknux"

    def test_metis_text_accepted_on_the_wire(self, graph):
        from repro.graphs.io import write_metis

        # a graph can travel as METIS text instead of the JSON payload
        import io as _io
        from pathlib import Path
        import tempfile

        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "g.graph"
            write_metis(graph, path)
            back = graph_from_wire(path.read_text())
        assert back.n_nodes == graph.n_nodes
        assert back.n_edges == graph.n_edges

    def test_bad_requests_rejected(self, graph, rng):
        with pytest.raises(ServiceError):
            PartitionRequest(graph, 0)
        with pytest.raises(ServiceError):
            PartitionRequest(graph, 2, fitness_kind="fitness9")
        with pytest.raises(ServiceError):
            PartitionRequest(graph, 2, method="metis")
        with pytest.raises(ServiceError):
            PartitionRequest(graph, 2, time_budget=-1.0)
        with pytest.raises(ServiceError):
            PartitionRequest(graph, 2, time_budget="fast")
        with pytest.raises(ServiceError):
            PartitionRequest(graph, 2, seed="two")
        with pytest.raises(ServiceError):
            PartitionRequest(graph, 2, seed=-1)  # numpy rngs reject these
        with pytest.raises(GraphFormatError, match="finite"):
            graph_from_wire({
                "n_nodes": 2, "edges_u": [0], "edges_v": [1],
                "edge_weights": [float("nan")], "node_weights": [1, 1],
                "coords": None,
            })

    def test_job_result_copies_are_independent(self, rng):
        base = JobResult(
            assignment=rng.integers(0, 2, 6), n_parts=2, cut_size=1.0,
            max_part_cut=1.0, balance_ratio=1.0, part_sizes=[3, 3],
            method="x", portfolio=[{"method": "kl", "cut_size": 1.0}],
        )
        copy = base.replace(cache_hit=True)
        copy.part_sizes.append(99)
        copy.portfolio[0]["method"] = "tampered"
        copy.assignment[0] = 99
        assert base.part_sizes == [3, 3]
        assert base.portfolio[0]["method"] == "kl"
        assert base.assignment[0] != 99

    def test_bad_refine_and_update_requests_rejected(self, graph, rng):
        with pytest.raises(ServiceError):
            RefineRequest(graph, 2, rng.integers(0, 2, 5))  # wrong length
        with pytest.raises(ServiceError):
            RefineRequest(graph, 2, np.full(graph.n_nodes, 9))  # bad labels
        with pytest.raises(ServiceError):
            UpdateRequest("", graph)
        with pytest.raises(GraphFormatError):
            graph_from_wire({"n_nodes": 3})  # missing keys


# ----------------------------------------------------------------------
# content-addressed caching
# ----------------------------------------------------------------------

class TestCache:
    def test_lru_hit_miss_eviction(self):
        cache = LRUBytesCache(100)
        assert cache.get("a") is None
        cache.put("a", "A", 40)
        cache.put("b", "B", 40)
        assert cache.get("a") == "A"  # refreshes a
        cache.put("c", "C", 40)  # evicts b (LRU)
        assert cache.get("b") is None
        assert cache.get("a") == "A"
        assert cache.get("c") == "C"
        stats = cache.stats()
        assert stats["evictions"] == 1
        assert stats["hits"] == 3 and stats["misses"] == 2
        assert stats["bytes"] <= 100

    def test_lru_oversized_entry_not_stored(self):
        cache = LRUBytesCache(10)
        cache.put("big", "X", 1000)
        assert cache.get("big") is None

    def test_cli_method_list_matches_service(self):
        """The CLI submit choices mirror what the endpoint validates
        (cli.py keeps its own tuple to avoid importing the service at
        parser-build time)."""
        from repro.cli import SERVICE_CLI_METHODS
        from repro.service.models import SERVICE_METHODS

        assert set(SERVICE_CLI_METHODS) == set(SERVICE_METHODS)

    def test_store_seed_if_better_is_monotonic(self, graph, rng):
        from repro.service import GraphStore

        store = GraphStore(1 << 20)
        a = rng.integers(0, 2, graph.n_nodes)
        b = rng.integers(0, 2, graph.n_nodes)
        assert store.store_seed_if_better("d", 2, "fitness1", a, -10.0)
        # a worse publish must not replace the stored seed
        assert not store.store_seed_if_better("d", 2, "fitness1", b, -20.0)
        assert np.array_equal(store.warm_seed("d", 2, "fitness1"), a)
        assert store.seed_fitness("d", 2, "fitness1") == -10.0
        assert store.store_seed_if_better("d", 2, "fitness1", b, -5.0)
        assert np.array_equal(store.warm_seed("d", 2, "fitness1"), b)

    def test_graph_digest_is_content_identity(self, graph):
        twin = mesh_graph(48, seed=3)
        other = mesh_graph(48, seed=4)
        assert graph_digest(graph) == graph_digest(twin)
        assert graph_digest(graph) != graph_digest(other)

    def test_request_key_distinguishes_parameters(self, graph):
        k0 = request_key(PartitionRequest(graph, 4, seed=0))
        k1 = request_key(PartitionRequest(graph, 4, seed=1))
        k2 = request_key(PartitionRequest(graph, 8, seed=0))
        assert len({k0, k1, k2}) == 3

    def test_graph_interning_reuses_instance(self, service, graph):
        twin = mesh_graph(48, seed=3)
        d1, g1 = service.store.graphs.intern(graph)
        d2, g2 = service.store.graphs.intern(twin)
        assert d1 == d2
        assert g2 is g1  # the resident CSR build is shared

    def test_repeat_request_hits_cache(self, service, graph):
        r1 = service.submit(PartitionRequest(graph, 4, seed=0, ga=GA))
        r2 = service.submit(PartitionRequest(graph, 4, seed=0, ga=GA))
        assert not r1.cache_hit and r2.cache_hit
        assert np.array_equal(r1.assignment, r2.assignment)
        assert service.scheduler.jobs_executed == 1
        assert service.store.results.hits == 1

    def test_cache_eviction_under_tiny_budget(self, graph):
        with PartitionService(n_workers=1, cache_bytes=2048) as svc:
            for seed in range(4):
                svc.submit(PartitionRequest(graph, 4, seed=seed,
                                            method="greedy"))
            # budget (1024 bytes of results) holds ~2 of the 4 results
            assert svc.store.results.stats()["evictions"] >= 1

    def test_cold_bit_identity(self, service, graph):
        """The service's dknux answer equals a cold library run with the
        same seed and the same effective config."""
        result = service.submit(PartitionRequest(graph, 4, seed=5, ga=GA))
        config = GAConfig(**{**DEFAULT_GA_OVERRIDES, **GA})
        cold = partition_graph(graph, 4, config=config, seed=5)
        assert np.array_equal(result.assignment, cold.assignment)


# ----------------------------------------------------------------------
# coalescing
# ----------------------------------------------------------------------

class TestCoalescing:
    def test_batched_refine_bit_identical_to_serial(self, graph, rng):
        rows = [rng.integers(0, 4, graph.n_nodes) for _ in range(5)]
        serial = []
        with PartitionService(n_workers=1) as svc:
            for row in rows:
                serial.append(svc.submit(RefineRequest(graph, 4, row)))
        with PartitionService(n_workers=1) as svc:
            batch = svc.submit_many(
                [RefineRequest(graph, 4, row) for row in rows]
            )
            assert svc.scheduler.groups_executed == 1
            assert svc.scheduler.group_members == 5
        for one, many in zip(serial, batch):
            assert np.array_equal(one.assignment, many.assignment)
            assert one.cut_size == many.cut_size
        assert sum(r.coalesced for r in batch) == 4  # all but the leader

    def test_submit_many_mixed_kinds_and_cache(self, graph, rng):
        row = rng.integers(0, 4, graph.n_nodes)
        with PartitionService(n_workers=2) as svc:
            first = svc.submit(PartitionRequest(graph, 4, method="greedy"))
            out = svc.submit_many([
                PartitionRequest(graph, 4, method="greedy"),  # cache hit
                RefineRequest(graph, 4, row),
                PartitionRequest(graph, 4, method="random", seed=1),
            ])
        assert out[0].cache_hit
        assert np.array_equal(out[0].assignment, first.assignment)
        assert out[1].method == "refine"
        assert out[2].method == "random"

    def test_inflight_join_deterministic(self):
        """Followers submitting while a key is in flight join the
        leader's execution instead of re-running it (scheduler-level,
        with the leader held open so joining is guaranteed)."""
        from repro.service import CoalescingScheduler

        scheduler = CoalescingScheduler(n_workers=2)
        release = threading.Event()
        template = JobResult(
            assignment=np.zeros(4, dtype=np.int64), n_parts=2, cut_size=1.0,
            max_part_cut=1.0, balance_ratio=1.0, part_sizes=[4, 0],
            method="test",
        )

        def slow_job():
            release.wait(timeout=30)
            return template

        results = []

        def leader():
            results.append(scheduler.run("K", "pin", slow_job))

        def follower():
            results.append(scheduler.run("K", "pin", slow_job))

        lead = threading.Thread(target=leader)
        lead.start()
        while "K" not in scheduler._inflight:  # leader definitely running
            pass
        followers = [threading.Thread(target=follower) for _ in range(3)]
        for t in followers:
            t.start()
        # followers only need to take a lock and check a dict to reach
        # the join wait; the leader stays held open far longer than that
        import time as _time

        _time.sleep(0.2)
        release.set()
        lead.join()
        for t in followers:
            t.join()
        scheduler.shutdown()
        assert scheduler.jobs_executed == 1
        assert scheduler.jobs_joined == 3
        assert len(results) == 4
        assert sum(r.coalesced for r in results) == 3

    def test_concurrent_identical_requests_identical_answers(self, graph):
        """Racing identical requests never duplicates much work and
        always answers identically (join or cache, by arrival time)."""
        with PartitionService(n_workers=2) as svc:
            results = [None] * 4
            barrier = threading.Barrier(4)

            def hit(i):
                barrier.wait()
                results[i] = svc.submit(
                    PartitionRequest(graph, 4, seed=0, ga=GA)
                )

            threads = [
                threading.Thread(target=hit, args=(i,)) for i in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            joined = svc.scheduler.jobs_joined
            hits = svc.store.results.hits
            executed = svc.scheduler.jobs_executed
            assert executed + joined + hits == 4
            assert executed <= 2  # the join/cache window race, at worst
        base = results[0].assignment
        for r in results[1:]:
            assert np.array_equal(r.assignment, base)

    def test_refine_single_matches_hillclimber(self, graph, rng):
        """The refine path is the deterministic lockstep climb."""
        from repro.ga import Fitness1, HillClimber

        row = rng.integers(0, 4, graph.n_nodes)
        with PartitionService(n_workers=1) as svc:
            result = svc.submit(RefineRequest(graph, 4, row, passes=2))
        climber = HillClimber(graph, Fitness1(graph, 4))
        expected, fit = climber.improve(row, max_passes=2, rng=None)
        assert np.array_equal(result.assignment, expected)
        assert result.fitness == pytest.approx(fit)


# ----------------------------------------------------------------------
# sessions
# ----------------------------------------------------------------------

class TestSessions:
    def test_session_lifecycle(self, service, graph):
        opened = service.open_session(graph, 4, seed=0, ga=GA)
        assert opened.session_id
        update = insert_local_nodes(graph, 6, seed=11)
        result = service.update_session(
            UpdateRequest(opened.session_id, update.graph)
        )
        assert result.session_id == opened.session_id
        assert result.assignment.shape == (update.graph.n_nodes,)
        summary = service.close_session(opened.session_id)
        assert summary["n_updates"] == 1
        with pytest.raises(ServiceError):
            service.close_session(opened.session_id)

    def test_update_unknown_session(self, service, graph):
        with pytest.raises(ServiceError, match="unknown session"):
            service.update_session(UpdateRequest("nope", graph))

    def test_open_session_validates_parameters(self, service, graph):
        """Malformed open parameters raise ServiceError (the HTTP layer
        maps that to 400, never a 500 with a leaked traceback)."""
        with pytest.raises(ServiceError):
            service.open_session(graph, "two")
        with pytest.raises(ServiceError):
            service.open_session(graph, 4, seed="x")
        with pytest.raises(ServiceError):
            service.open_session(graph, 4, fitness_kind="fitness9")
        with pytest.raises(ServiceError, match="ga overrides"):
            service.open_session(graph, 4, ga={"bogus_field": 1})
        with pytest.raises(ServiceError):
            service.open_session(graph, 0)
        # a failed open never leaks a registered session
        assert service.sessions.stats()["open"] == 0

    def test_update_seeds_from_previous_assignment(self, service, graph):
        """Old nodes mostly keep their parts across an update — the
        population was seeded from the previous partition."""
        opened = service.open_session(graph, 4, seed=0, ga=GA)
        update = insert_local_nodes(graph, 5, seed=2)
        result = service.update_session(
            UpdateRequest(opened.session_id, update.graph)
        )
        old = opened.assignment
        new = result.assignment[: old.shape[0]]
        agreement = float(np.mean(old == new))
        assert agreement > 0.5

    def test_overlapped_updates_match_serial_lock_path(self, graph, lock_graph):
        """The PR-4 acceptance contract: the overlapped update path
        (short state lock, GA outside it) produces bit-identical
        assignments to the serial-lock path on the same update trace.

        Both drives run under the lock-order witness: every observed
        acquisition order must appear in the static lock graph, the
        overlapped path must never hold the session state lock across a
        GA run, and the serial path must (the positive control that the
        witness actually sees through ``run_pending``)."""
        updates = []
        current = graph
        for step in range(3):
            current = insert_local_nodes(current, 5, seed=50 + step).graph
            updates.append(current)

        def drive(overlap: bool):
            outs = []
            with LockWitness() as witness:
                witness.probe(IncrementalGAPartitioner, "run_pending")
                with PartitionService(
                    n_workers=1, overlap_updates=overlap
                ) as svc:
                    opened = svc.open_session(graph, 4, seed=0, ga=GA)
                    outs.append(opened.assignment)
                    for g in updates:
                        result = svc.update_session(
                            UpdateRequest(opened.session_id, g)
                        )
                        outs.append(result.assignment)
                    svc.close_session(opened.session_id)
            return outs, witness

        serial, w_serial = drive(overlap=False)
        overlapped, w_over = drive(overlap=True)
        for a, b in zip(serial, overlapped):
            assert np.array_equal(a, b)

        # observed acquisition order ⊆ statically extracted lock graph
        w_serial.assert_subgraph_of(lock_graph)
        w_over.assert_subgraph_of(lock_graph)
        # overlapped: the state lock is never held across a GA run
        checked = w_over.assert_never_held_during(
            lock_graph, "Session.lock", "run_pending"
        )
        assert checked == len(updates)
        # serial positive control: the same probe *does* see the state
        # lock held there, so a silent witness is a broken witness
        with pytest.raises(WitnessViolation):
            w_serial.assert_never_held_during(
                lock_graph, "Session.lock", "run_pending"
            )

    def test_overlapped_manager_paths_are_equivalent(self, graph, lock_graph):
        """SessionManager.update vs update_overlapped, driven directly,
        each under the lock-order witness: the overlapped path runs the
        GA with the state lock free, the serial path with it held."""
        from repro.service import SessionManager

        update = insert_local_nodes(graph, 6, seed=9)
        results = {}
        for name in ("serial", "overlapped"):
            with LockWitness() as witness:
                witness.probe(IncrementalGAPartitioner, "run_pending")
                manager = SessionManager()
                session = manager.open(graph, 4, seed=3, ga=GA)
                session.partition_initial()
                if name == "serial":
                    _, part = manager.update(session.id, update.graph)
                else:
                    _, part = manager.update_overlapped(
                        session.id, update.graph
                    )
            results[name] = part.assignment
            assert session.n_updates == 1
            witness.assert_subgraph_of(lock_graph)
            if name == "serial":
                with pytest.raises(WitnessViolation):
                    witness.assert_never_held_during(
                        lock_graph, "Session.lock", "run_pending"
                    )
            else:
                assert witness.assert_never_held_during(
                    lock_graph, "Session.lock", "run_pending"
                ) == 1
        assert np.array_equal(results["serial"], results["overlapped"])

    def test_close_wins_over_inflight_overlapped_update(self, graph):
        """A close racing an overlapped update's GA run returns
        immediately; the update then fails its commit instead of
        committing to a closed session."""
        from repro.service import SessionManager

        manager = SessionManager()
        session = manager.open(graph, 4, seed=0, ga=GA)
        session.partition_initial()
        update = insert_local_nodes(graph, 6, seed=9)
        started = threading.Event()
        outcome = {}

        original_run = session.partitioner.run_pending

        def slow_run(pending):
            started.set()
            result = original_run(pending)
            release.wait(timeout=30)
            return result

        release = threading.Event()
        session.partitioner.run_pending = slow_run

        def updater():
            try:
                manager.update_overlapped(session.id, update.graph)
                outcome["update"] = "committed"
            except ServiceError:
                outcome["update"] = "rejected"

        thread = threading.Thread(target=updater)
        thread.start()
        assert started.wait(timeout=30)
        summary = manager.close(session.id)  # must not block on the GA
        assert summary["session_id"] == session.id
        release.set()
        thread.join(timeout=30)
        assert outcome["update"] == "rejected"
        assert manager.stats()["open"] == 0

    def test_concurrent_sessions_are_isolated(self, graph):
        other = mesh_graph(56, seed=9)
        with PartitionService(n_workers=2) as svc:
            outcomes = {}
            errors = []

            def drive(name, g, seed):
                try:
                    opened = svc.open_session(g, 4, seed=seed, ga=GA)
                    current = g
                    for step in range(2):
                        current = insert_local_nodes(
                            current, 4, seed=100 * seed + step
                        ).graph
                        result = svc.update_session(
                            UpdateRequest(opened.session_id, current)
                        )
                        assert result.session_id == opened.session_id
                    outcomes[name] = svc.close_session(opened.session_id)
                except Exception as exc:  # pragma: no cover - surfaced below
                    errors.append((name, exc))

            threads = [
                threading.Thread(target=drive, args=("a", graph, 1)),
                threading.Thread(target=drive, args=("b", other, 2)),
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors
            assert outcomes["a"]["n_updates"] == 2
            assert outcomes["b"]["n_updates"] == 2
            assert outcomes["a"]["session_id"] != outcomes["b"]["session_id"]
            assert svc.sessions.stats() == {
                "open": 0, "opened": 2, "closed": 2, "restored": 0,
                "released": 0, "updates": 4,
            }


# ----------------------------------------------------------------------
# portfolio
# ----------------------------------------------------------------------

class TestPortfolio:
    def test_portfolio_returns_best_leg(self, service, graph):
        result = service.submit(
            PartitionRequest(graph, 4, method="portfolio", ga=GA)
        )
        assert result.method.startswith("portfolio:")
        assert result.portfolio
        ran = [leg for leg in result.portfolio if "fitness" in leg]
        assert ran, "no portfolio leg ran"
        assert result.fitness == pytest.approx(
            max(leg["fitness"] for leg in ran)
        )
        methods = [leg["method"] for leg in result.portfolio]
        assert "dknux" in methods

    def test_engine_deadline_stops_between_generations(self, graph):
        import time

        from repro.ga import Fitness1, GAEngine, UniformCrossover

        fit = Fitness1(graph, 3)
        engine = GAEngine(
            graph, fit, UniformCrossover(),
            config=GAConfig(population_size=10, max_generations=500),
            seed=0,
        )
        expired = engine.run(deadline=time.perf_counter())  # already past
        assert expired.stopped_by == "deadline"
        assert expired.generations == 0
        # a non-binding deadline changes nothing vs no deadline
        engine2 = GAEngine(
            graph, fit, UniformCrossover(),
            config=GAConfig(population_size=10, max_generations=10),
            seed=0,
        )
        free = engine2.run(deadline=time.perf_counter() + 1e6)
        engine3 = GAEngine(
            graph, fit, UniformCrossover(),
            config=GAConfig(population_size=10, max_generations=10),
            seed=0,
        )
        plain = engine3.run()
        assert free.best_fitness == plain.best_fitness
        assert np.array_equal(free.best.assignment, plain.best.assignment)

    def test_budget_bounds_dknux_generations(self, graph):
        """A binding budget stops the GA leg early instead of running
        the full generation schedule past the client's cap."""
        from repro.service import run_portfolio

        _, _, _, table = run_portfolio(
            graph, 4, time_budget=1e6, ga=dict(GA, max_generations=50)
        )
        unbudgeted = [l for l in table if l["method"] == "dknux"][0]
        # patience (3) binds long before 50 generations
        assert 0 < unbudgeted["generations"] < 50

    def test_racing_matches_serial_winner(self, graph):
        """With a non-binding budget, the racing portfolio returns the
        identical winner, partition, and fitness as the serial one (the
        acceptance contract for PR 4's racing mode)."""
        from repro.service import run_portfolio

        for budget in (None, 1e6):
            serial = run_portfolio(
                graph, 4, seed=0, time_budget=budget, ga=GA, racing=False
            )
            raced = run_portfolio(
                graph, 4, seed=0, time_budget=budget, ga=GA, racing=True
            )
            assert raced[1] == serial[1]  # same winning method
            assert np.array_equal(raced[0].assignment, serial[0].assignment)
            assert raced[2] == serial[2]  # same fitness
            # leg tables line up row-for-row in the fixed leg order
            assert [r["method"] for r in raced[3]] == [
                r["method"] for r in serial[3]
            ]

    def test_racing_service_answers_match_serial_service(self, graph):
        req = dict(method="portfolio", seed=0, ga=GA)
        with PartitionService(n_workers=1) as svc:
            serial = svc.submit(PartitionRequest(graph, 4, **req))
        with PartitionService(n_workers=1, racing_portfolio=True) as svc:
            raced = svc.submit(PartitionRequest(graph, 4, **req))
        assert raced.method == serial.method
        assert np.array_equal(raced.assignment, serial.assignment)
        assert raced.fitness == serial.fitness

    def test_racing_with_binding_budget_still_answers(self, graph):
        from repro.service import run_portfolio

        best, method, fitness, table = run_portfolio(
            graph, 4, seed=0, time_budget=1e-9, ga=GA, racing=True
        )
        assert best.assignment.shape == (graph.n_nodes,)
        assert method  # some leg (or the fallback) won

    def test_binding_budget_cancels_iterative_legs_midrun(self, graph):
        """PR 5 satellite: a tight budget no longer lets the monolithic
        KL/RSB legs overshoot — their per-sweep deadline checks cut
        them, so the whole serial portfolio lands near the budget."""
        import time

        from repro.service import run_portfolio

        t0 = time.perf_counter()
        best, method, _, table = run_portfolio(
            graph, 8, seed=0, time_budget=0.05, ga=GA, racing=False
        )
        elapsed = time.perf_counter() - t0
        assert best.assignment.shape == (graph.n_nodes,)
        # generous cap: without mid-leg cancellation a single KL/RSB
        # leg at k=8 can run far past a 50 ms budget on its own
        assert elapsed < 5.0
        assert [row["method"] for row in table]  # the table still reports

    def test_engine_abort_callback(self, graph):
        """abort=True stops the run immediately with stopped_by="aborted";
        an abort that never fires changes nothing."""
        from repro.ga import Fitness1, GAEngine, UniformCrossover

        fit = Fitness1(graph, 3)
        cfg = GAConfig(population_size=10, max_generations=10)
        seen = []

        def never(best):
            seen.append(best)
            return False

        aborted = GAEngine(
            graph, fit, UniformCrossover(), config=cfg, seed=0
        ).run(abort=lambda best: True)
        assert aborted.stopped_by == "aborted"
        assert aborted.generations == 0
        free = GAEngine(
            graph, fit, UniformCrossover(), config=cfg, seed=0
        ).run(abort=never)
        plain = GAEngine(
            graph, fit, UniformCrossover(), config=cfg, seed=0
        ).run()
        assert len(seen) == 10  # called once per generation
        assert free.best_fitness == plain.best_fitness
        assert np.array_equal(free.best.assignment, plain.best.assignment)

    def test_tiny_budget_skips_expensive_legs(self, service, graph):
        result = service.submit(
            PartitionRequest(
                graph, 4, method="portfolio", time_budget=1e-9, ga=GA
            )
        )
        # the budget was exhausted before dknux; the answer still exists
        dknux = [
            leg for leg in result.portfolio if leg["method"] == "dknux"
        ][0]
        assert "skipped" in dknux
        assert result.assignment.shape == (graph.n_nodes,)


# ----------------------------------------------------------------------
# warm start + lifecycle
# ----------------------------------------------------------------------

class TestServiceLifecycle:
    def test_warm_start_uses_cached_seed(self, service, graph):
        cold = service.submit(PartitionRequest(graph, 4, seed=0, ga=GA))
        warm = service.submit(
            PartitionRequest(graph, 4, seed=1, warm_start=True, ga=GA)
        )
        assert not warm.cache_hit  # different key: it is a new answer
        # warm start can only improve on the seed partition's fitness
        assert warm.fitness >= cold.fitness - 1e-9

    def test_closed_service_rejects_requests(self, graph):
        svc = PartitionService(n_workers=1)
        svc.close()
        with pytest.raises(ServiceError, match="closed"):
            svc.submit(PartitionRequest(graph, 2, method="random"))

    def test_submit_does_not_mutate_caller_request(self, service, graph):
        """Interning swaps the graph on a *copy* of the request; the
        caller's frozen dataclass keeps its own instance."""
        twin = mesh_graph(48, seed=3)  # same content, different object
        service.submit(PartitionRequest(graph, 4, method="greedy"))
        request = PartitionRequest(twin, 4, method="greedy")
        service.submit(request)
        assert request.graph is twin

    def test_stats_shape(self, service, graph):
        service.submit(PartitionRequest(graph, 4, method="greedy"))
        stats = service.stats()
        assert {"cache", "scheduler", "sessions", "latency",
                "session_latency"} <= set(stats)
        assert stats["latency"]["count"] == 1
        assert "p50_ms" in stats["latency"]


# ----------------------------------------------------------------------
# HTTP end-to-end
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def http_client():
    server = serve(port=0, background=True, n_workers=2)
    host, port = server.server_address
    yield HTTPServiceClient(f"http://{host}:{port}", timeout=120.0)
    server.service.close()
    server.shutdown()
    server.server_close()


class TestHTTP:
    def test_healthz(self, http_client):
        assert http_client.healthy()

    def test_partition_roundtrip_and_cache(self, http_client, graph):
        r1 = http_client.partition(graph, 4, seed=0, ga=GA)
        r2 = http_client.partition(graph, 4, seed=0, ga=GA)
        assert np.array_equal(r1.assignment, r2.assignment)
        assert r2.cache_hit and not r1.cache_hit
        assert r1.latency_s > 0

    def test_error_codes(self, http_client, graph):
        with pytest.raises(ServiceError, match="HTTP 404"):
            http_client.update_session("missing", graph)
        with pytest.raises(ServiceError, match="HTTP 400"):
            http_client._call("/v1/partition", {"n_parts": 2})  # no graph
        with pytest.raises(ServiceError, match="HTTP 404"):
            http_client._call("/v1/nope", {})

    def test_bad_content_length_is_400(self, http_client):
        import urllib.error
        import urllib.request

        request = urllib.request.Request(
            f"{http_client.base_url}/v1/partition",
            data=b"{}",
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        request.add_unredirected_header("Content-Length", "abc")
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(request, timeout=30)
        assert exc.value.code == 400

    def test_trace_replay_smoke(self, http_client):
        """End-to-end: a workloads-derived mixed trace (one-shot,
        repeated, and incremental-session requests) over real HTTP."""
        from repro.experiments import replay_trace, service_trace

        trace = service_trace(n_requests=12, seed=1, n_parts=4, ga=GA)
        ops = {op["op"] for op in trace}
        assert "partition" in ops and "open" in ops  # genuinely mixed
        results = replay_trace(http_client, trace)
        assert len(results) == len(trace)
        for op, result in results:
            if op["op"] in ("partition", "open", "update"):
                assert result is not None and result.n_parts == 4
        stats = http_client.stats()
        assert stats["latency"]["count"] >= 1
        assert stats["cache"]["results"]["hits"] >= 1
        assert stats["sessions"]["updates"] >= 1
