"""Tests for the distributed-population GA."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.ga import (
    DKNUX,
    DPGA,
    DPGAConfig,
    Fitness1,
    GAConfig,
    UniformCrossover,
    hypercube_topology,
    ring_topology,
)
from repro.graphs import mesh_graph
from repro.partition import check_partition


@pytest.fixture
def setup():
    g = mesh_graph(50, seed=17)
    fit = Fitness1(g, 4)
    return g, fit


def make_dpga(g, fit, **overrides):
    defaults = dict(
        total_population=32,
        n_islands=4,
        migration_interval=2,
        migration_size=1,
        max_generations=10,
    )
    defaults.update(overrides)
    return DPGA(
        g,
        fit,
        crossover_factory=lambda: DKNUX(g, 4),
        ga_config=GAConfig(population_size=8, max_generations=0),
        dpga_config=DPGAConfig(**defaults),
        seed=3,
    )


class TestConfig:
    def test_island_population(self):
        cfg = DPGAConfig(total_population=320, n_islands=16)
        assert cfg.island_population == 20

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_islands": 0},
            {"total_population": 4, "n_islands": 4},
            {"migration_interval": 0},
            {"migration_size": 0},
            {"max_generations": -1},
            {"patience": 0},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigError):
            DPGAConfig(**kwargs)

    def test_paper_defaults(self):
        cfg = DPGAConfig()
        assert cfg.total_population == 320
        assert cfg.n_islands == 16


class TestRun:
    def test_basic_run(self, setup):
        g, fit = setup
        res = make_dpga(g, fit).run()
        check_partition(res.best)
        assert res.generations == 10
        assert len(res.island_histories) == 4
        assert np.isclose(res.best_fitness, fit.evaluate(res.best.assignment))

    def test_deterministic(self, setup):
        g, fit = setup
        r1 = make_dpga(g, fit).run()
        r2 = make_dpga(g, fit).run()
        assert r1.best_fitness == r2.best_fitness
        assert np.array_equal(r1.best.assignment, r2.best.assignment)

    def test_global_best_monotone(self, setup):
        g, fit = setup
        res = make_dpga(g, fit).run()
        best = np.asarray(res.history.best_fitness)
        assert np.all(np.diff(best) >= 0)  # plus-replacement islands

    def test_default_topology_paper_hypercube(self, setup):
        g, fit = setup
        dpga = DPGA(
            g,
            fit,
            crossover_factory=lambda: UniformCrossover(),
            dpga_config=DPGAConfig(
                total_population=32, n_islands=16, max_generations=1
            ),
            seed=1,
        )
        assert dpga.topology.name == "hypercube4"

    def test_default_topology_ring_otherwise(self, setup):
        g, fit = setup
        dpga = DPGA(
            g,
            fit,
            crossover_factory=lambda: UniformCrossover(),
            dpga_config=DPGAConfig(
                total_population=30, n_islands=5, max_generations=1
            ),
            seed=1,
        )
        assert dpga.topology.name == "ring"

    def test_topology_mismatch_rejected(self, setup):
        g, fit = setup
        with pytest.raises(ConfigError):
            DPGA(
                g,
                fit,
                crossover_factory=lambda: UniformCrossover(),
                dpga_config=DPGAConfig(total_population=32, n_islands=4),
                topology=ring_topology(5),
            )

    def test_initial_population_dealt_to_islands(self, setup):
        g, fit = setup
        from repro.baselines import rsb_partition

        seed_row = rsb_partition(g, 4).assignment
        init = np.tile(seed_row, (8, 1))
        dpga = make_dpga(g, fit, max_generations=0)
        res = dpga.run(init)
        # the RSB seed dominates every random individual, so the global
        # best at generation 0 is the seed itself
        assert res.best_fitness == fit.evaluate(seed_row)

    def test_patience(self, setup):
        g, fit = setup
        dpga = DPGA(
            g,
            fit,
            crossover_factory=lambda: UniformCrossover(),
            ga_config=GAConfig(
                population_size=8, crossover_rate=0.0, mutation_rate=0.0
            ),
            dpga_config=DPGAConfig(
                total_population=32,
                n_islands=4,
                max_generations=500,
                patience=3,
            ),
            seed=5,
        )
        res = dpga.run()
        assert res.stopped_by == "patience"
        assert res.generations < 500


class TestMigration:
    def test_migration_spreads_best(self, setup):
        """A super-individual placed on island 0 must reach all islands
        through hypercube links within diameter * interval generations."""
        g, fit = setup
        from repro.baselines import rsb_partition

        dpga = DPGA(
            g,
            fit,
            crossover_factory=lambda: UniformCrossover(),
            ga_config=GAConfig(
                population_size=8, crossover_rate=0.0, mutation_rate=0.0
            ),
            dpga_config=DPGAConfig(
                total_population=32,
                n_islands=4,
                migration_interval=1,
                max_generations=6,
            ),
            topology=hypercube_topology(2),
            seed=7,
        )
        # a dominant individual on island 0 only
        init = rsb_partition(g, 4).assignment[None, :]
        res = dpga.run(init)
        seed_fitness = fit.evaluate(init[0])
        # with crossover/mutation off nothing better can appear, and the
        # hypercube diameter is 2, so every island ends holding a copy
        for hist in res.island_histories:
            assert hist.best_fitness[-1] == seed_fitness
