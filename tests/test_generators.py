"""Tests for the synthetic graph generators."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graphs import (
    binary_tree,
    caveman_graph,
    check_graph,
    complete_graph,
    connected_components,
    cycle_graph,
    delaunay_mesh,
    grid2d,
    grid3d,
    hypercube_graph,
    is_connected,
    path_graph,
    random_geometric,
    random_regular,
    star_graph,
    torus2d,
)


class TestPathCycleStar:
    def test_path_structure(self):
        g = path_graph(5)
        assert g.n_edges == 4
        assert g.degree(0) == 1
        assert g.degree(2) == 2
        check_graph(g)

    def test_path_zero_and_one(self):
        assert path_graph(0).n_nodes == 0
        assert path_graph(1).n_edges == 0

    def test_path_negative_rejected(self):
        with pytest.raises(GraphError):
            path_graph(-1)

    def test_cycle_structure(self):
        g = cycle_graph(6)
        assert g.n_edges == 6
        assert np.all(g.degree() == 2)
        check_graph(g)

    def test_cycle_too_small(self):
        with pytest.raises(GraphError):
            cycle_graph(2)

    def test_star(self):
        g = star_graph(7)
        assert g.n_nodes == 8
        assert g.degree(0) == 7
        assert g.degree(3) == 1

    def test_complete(self):
        g = complete_graph(5)
        assert g.n_edges == 10
        assert np.all(g.degree() == 4)

    def test_complete_trivial(self):
        assert complete_graph(1).n_edges == 0


class TestGrids:
    def test_grid2d_counts(self):
        g = grid2d(3, 4)
        assert g.n_nodes == 12
        assert g.n_edges == 3 * 3 + 2 * 4  # horizontal + vertical
        check_graph(g)

    def test_grid2d_coords_match_ids(self):
        g = grid2d(3, 4)
        # node (r=1, c=2) has id 6 and coordinate (x=2, y=1)
        assert g.coords[6].tolist() == [2.0, 1.0]

    def test_grid2d_bad_dims(self):
        with pytest.raises(GraphError):
            grid2d(0, 4)

    def test_grid3d_counts(self):
        g = grid3d(2, 3, 4)
        n = 2 * 3 * 4
        assert g.n_nodes == n
        expected = 1 * 3 * 4 + 2 * 2 * 4 + 2 * 3 * 3
        assert g.n_edges == expected
        check_graph(g)

    def test_torus_regular(self):
        g = torus2d(4, 5)
        assert np.all(g.degree() == 4)
        assert g.n_edges == 2 * 20
        check_graph(g)

    def test_torus_too_small(self):
        with pytest.raises(GraphError):
            torus2d(2, 5)


class TestHypercube:
    @pytest.mark.parametrize("dim", [0, 1, 2, 3, 4])
    def test_counts(self, dim):
        g = hypercube_graph(dim)
        assert g.n_nodes == 2**dim
        assert g.n_edges == dim * 2 ** (dim - 1) if dim else g.n_edges == 0

    def test_neighbors_differ_by_one_bit(self):
        g = hypercube_graph(4)
        for u, v, _ in g.iter_edges():
            assert bin(u ^ v).count("1") == 1

    def test_connected(self):
        assert is_connected(hypercube_graph(5))


class TestGeometric:
    def test_random_geometric_deterministic(self):
        a = random_geometric(50, 0.2, seed=3)
        b = random_geometric(50, 0.2, seed=3)
        assert a == b

    def test_random_geometric_radius_zero(self):
        g = random_geometric(10, 0.0, seed=1)
        assert g.n_edges == 0

    def test_random_geometric_full_radius(self):
        g = random_geometric(10, 2.0, seed=1)
        assert g.n_edges == 45  # complete

    def test_delaunay_mesh_planar_bounds(self):
        pts = np.random.default_rng(5).random((40, 2))
        g = delaunay_mesh(pts)
        check_graph(g)
        # planar graph: m <= 3n - 6
        assert g.n_edges <= 3 * g.n_nodes - 6
        assert is_connected(g)

    def test_delaunay_needs_3_points(self):
        with pytest.raises(GraphError):
            delaunay_mesh(np.zeros((2, 2)))

    def test_delaunay_rejects_3d(self):
        with pytest.raises(GraphError):
            delaunay_mesh(np.zeros((5, 3)))


class TestCaveman:
    def test_structure(self):
        g = caveman_graph(4, 5)
        assert g.n_nodes == 20
        # 4 cliques of C(5,2)=10 edges plus 4 ring links
        assert g.n_edges == 44
        assert is_connected(g)

    def test_two_cliques_single_bridge(self):
        g = caveman_graph(2, 3)
        assert g.n_edges == 2 * 3 + 1

    def test_single_clique(self):
        g = caveman_graph(1, 4)
        assert g.n_edges == 6

    def test_bad_args(self):
        with pytest.raises(GraphError):
            caveman_graph(0, 5)
        with pytest.raises(GraphError):
            caveman_graph(3, 1)


class TestMisc:
    def test_random_regular(self):
        g = random_regular(20, 3, seed=9)
        assert np.all(g.degree() == 3)

    def test_random_regular_parity(self):
        with pytest.raises(GraphError):
            random_regular(5, 3)

    def test_binary_tree(self):
        g = binary_tree(3)
        assert g.n_nodes == 15
        assert g.n_edges == 14
        assert g.degree(0) == 2
        assert connected_components(g).max() == 0

    def test_binary_tree_depth0(self):
        g = binary_tree(0)
        assert g.n_nodes == 1
