"""Tests for the process-parallel DPGA runner."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.ga import CROSSOVER_KINDS, DPGAConfig, GAConfig, ParallelDPGA
from repro.graphs import mesh_graph
from repro.partition import check_partition


@pytest.fixture(scope="module")
def graph():
    return mesh_graph(40, seed=23)


class TestValidation:
    def test_unknown_crossover(self, graph):
        with pytest.raises(ConfigError):
            ParallelDPGA(graph, "fitness1", 4, crossover_kind="3-point")

    def test_bad_workers(self, graph):
        with pytest.raises(ConfigError):
            ParallelDPGA(graph, "fitness1", 4, n_workers=0)

    def test_kinds_registry(self):
        assert "dknux" in CROSSOVER_KINDS
        assert "2-point" in CROSSOVER_KINDS

    def test_bad_pool_mode(self, graph):
        with pytest.raises(ConfigError):
            ParallelDPGA(graph, "fitness1", 4, pool_mode="remote")


class TestRun:
    def test_parallel_run_produces_valid_partition(self, graph):
        runner = ParallelDPGA(
            graph,
            "fitness1",
            4,
            crossover_kind="dknux",
            ga_config=GAConfig(population_size=8),
            dpga_config=DPGAConfig(
                total_population=16,
                n_islands=2,
                migration_interval=2,
                max_generations=6,
            ),
            n_workers=2,
            seed=5,
        )
        res = runner.run()
        check_partition(res.best)
        assert res.generations == 6
        assert res.best_fitness <= 0.0

    def test_quality_reasonable(self, graph):
        """Parallel DKNUX should comfortably beat a random partition."""
        from repro.baselines import random_partition
        from repro.ga import Fitness1

        runner = ParallelDPGA(
            graph,
            "fitness1",
            2,
            crossover_kind="dknux",
            ga_config=GAConfig(population_size=10),
            dpga_config=DPGAConfig(
                total_population=20,
                n_islands=2,
                migration_interval=3,
                max_generations=15,
            ),
            n_workers=2,
            seed=9,
        )
        res = runner.run()
        fit = Fitness1(graph, 2)
        rand = random_partition(graph, 2, seed=0)
        assert res.best_fitness > fit.evaluate(rand.assignment)

    def test_shared_pool_matches_pinned(self, graph):
        """The PR-4 fan-out satellite: one shared pool with explicit
        state shipping produces bit-identical search results to the
        per-island pinned executors, for any worker count."""
        kwargs = dict(
            fitness_kind="fitness1",
            n_parts=4,
            crossover_kind="dknux",
            ga_config=GAConfig(
                population_size=8, hill_climb="all", hill_climb_passes=1
            ),
            dpga_config=DPGAConfig(
                total_population=16,
                n_islands=4,
                migration_interval=2,
                max_generations=4,
                migration_size=2,
            ),
            seed=11,
        )
        pinned = ParallelDPGA(
            graph, n_workers=2, pool_mode="pinned", **kwargs
        ).run()
        shared = ParallelDPGA(
            graph, n_workers=2, pool_mode="shared", **kwargs
        ).run()
        shared3 = ParallelDPGA(
            graph, n_workers=3, pool_mode="shared", **kwargs
        ).run()
        assert np.array_equal(pinned.best.assignment, shared.best.assignment)
        assert pinned.best_fitness == shared.best_fitness
        # shared mode is itself n_workers-invariant
        assert np.array_equal(shared.best.assignment, shared3.best.assignment)
        # per-epoch harvested cut metrics agree too
        assert np.array_equal(
            pinned.history.as_arrays()["best_cut"],
            shared.history.as_arrays()["best_cut"],
        )

    def test_auto_mode_picks_pinned_at_small_widths(self, graph):
        from repro.ga.parallel import SHARED_POOL_CUTOFF

        assert SHARED_POOL_CUTOFF == 16  # the measured default
        runner = ParallelDPGA(graph, "fitness1", 4, n_workers=2)
        assert runner.pool_mode == "auto"

    def test_initial_population_respected(self, graph):
        from repro.baselines import rsb_partition
        from repro.ga import Fitness1

        seed_assign = rsb_partition(graph, 4).assignment
        runner = ParallelDPGA(
            graph,
            "fitness1",
            4,
            crossover_kind="uniform",
            ga_config=GAConfig(
                population_size=8, crossover_rate=0.0, mutation_rate=0.0
            ),
            dpga_config=DPGAConfig(
                total_population=16,
                n_islands=2,
                migration_interval=2,
                max_generations=2,
            ),
            n_workers=2,
            seed=1,
        )
        res = runner.run(seed_assign[None, :])
        assert res.best_fitness >= Fitness1(graph, 4).evaluate(seed_assign)
