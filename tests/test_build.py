"""Tests for graph constructors/converters."""

import networkx as nx
import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import GraphError
from repro.graphs import (
    CSRGraph,
    check_graph,
    from_adjacency_dict,
    from_edge_list,
    from_networkx,
    from_scipy_sparse,
    to_networkx,
    to_scipy_sparse,
)


class TestFromEdgeList:
    def test_basic(self):
        g = from_edge_list(4, [(0, 1), (1, 2), (2, 3)])
        assert g.n_edges == 3
        check_graph(g)

    def test_empty_edges(self):
        g = from_edge_list(3, [])
        assert g.n_edges == 0

    def test_numpy_input(self):
        g = from_edge_list(3, np.array([[0, 1], [1, 2]]))
        assert g.n_edges == 2

    def test_bad_shape_rejected(self):
        with pytest.raises(GraphError):
            from_edge_list(3, np.array([[0, 1, 2]]))


class TestFromAdjacencyDict:
    def test_basic(self):
        g = from_adjacency_dict({0: [1, 2], 1: [0], 2: []})
        assert g.n_nodes == 3
        assert g.n_edges == 2
        check_graph(g)

    def test_empty(self):
        g = from_adjacency_dict({})
        assert g.n_nodes == 0

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError):
            from_adjacency_dict({0: [0]})

    def test_one_sided_listing(self):
        g = from_adjacency_dict({0: [1], 1: [], 2: [1]})
        assert g.has_edge(0, 1)
        assert g.has_edge(1, 2)


class TestNetworkxBridge:
    def test_roundtrip_structure(self):
        nxg = nx.petersen_graph()
        g = from_networkx(nxg)
        assert g.n_nodes == 10
        assert g.n_edges == 15
        back = to_networkx(g)
        assert nx.is_isomorphic(nxg, back)

    def test_edge_weights_carried(self):
        nxg = nx.Graph()
        nxg.add_edge("a", "b", weight=3.5)
        g = from_networkx(nxg)
        assert g.edge_weights[0] == 3.5

    def test_node_weights_and_pos_carried(self):
        nxg = nx.Graph()
        nxg.add_node(0, weight=2.0, pos=(0.0, 0.0))
        nxg.add_node(1, weight=5.0, pos=(1.0, 0.5))
        nxg.add_edge(0, 1)
        g = from_networkx(nxg)
        assert g.node_weights.tolist() == [2.0, 5.0]
        assert g.coords is not None
        assert g.coords[1].tolist() == [1.0, 0.5]

    def test_directed_rejected(self):
        with pytest.raises(GraphError):
            from_networkx(nx.DiGraph([(0, 1)]))

    def test_self_loops_dropped(self):
        nxg = nx.Graph()
        nxg.add_edge(0, 0)
        nxg.add_edge(0, 1)
        g = from_networkx(nxg)
        assert g.n_edges == 1

    def test_to_networkx_weights(self, weighted_triangle):
        nxg = to_networkx(weighted_triangle)
        assert nxg[0][2]["weight"] == 4.0
        assert nxg.nodes[2]["weight"] == 3.0


class TestScipyBridge:
    def test_roundtrip(self, grid4x4):
        mat = to_scipy_sparse(grid4x4)
        assert (mat != mat.T).nnz == 0  # symmetric
        g = from_scipy_sparse(mat)
        assert g == grid4x4.with_coords(np.zeros((16, 2))) or g.n_edges == grid4x4.n_edges
        assert np.array_equal(g.edges_u, grid4x4.edges_u)
        assert np.array_equal(g.edges_v, grid4x4.edges_v)

    def test_weights_survive(self, weighted_triangle):
        mat = to_scipy_sparse(weighted_triangle)
        g = from_scipy_sparse(mat)
        assert g.edge_weights.tolist() == weighted_triangle.edge_weights.tolist()

    def test_non_square_rejected(self):
        with pytest.raises(GraphError):
            from_scipy_sparse(sp.csr_matrix(np.ones((2, 3))))

    def test_coords_passthrough(self):
        mat = sp.csr_matrix(np.array([[0, 1], [1, 0]], dtype=float))
        coords = np.array([[0.0, 0.0], [1.0, 1.0]])
        g = from_scipy_sparse(mat, coords=coords)
        assert np.array_equal(g.coords, coords)
