"""Tests for Index-Based Partitioning (paper appendix)."""

import numpy as np
import pytest

from repro.baselines import ibp_partition, quantize_coords, split_sorted
from repro.errors import ConfigError, GraphError, PartitionError
from repro.graphs import CSRGraph, grid2d, mesh_graph
from repro.partition import check_partition, require_all_parts_nonempty


class TestQuantize:
    def test_range(self):
        pts = np.random.default_rng(0).random((50, 2)) * 100 - 50
        q = quantize_coords(pts, bits=8)
        assert q.min() >= 0 and q.max() <= 255

    def test_extremes_hit_bounds(self):
        pts = np.array([[0.0, 0.0], [1.0, 1.0], [0.5, 0.5]])
        q = quantize_coords(pts, bits=4)
        assert q[0].tolist() == [0, 0]
        assert q[1].tolist() == [15, 15]

    def test_degenerate_dimension(self):
        pts = np.array([[0.0, 5.0], [1.0, 5.0]])
        q = quantize_coords(pts, bits=4)
        assert q[:, 1].tolist() == [0, 0]

    def test_per_dimension_scaling(self):
        pts = np.array([[0.0, 0.0], [100.0, 1.0]])
        q = quantize_coords(pts, bits=4)
        assert q[1].tolist() == [15, 15]

    def test_bad_bits(self):
        with pytest.raises(ConfigError):
            quantize_coords(np.zeros((2, 2)), bits=0)

    def test_bad_shape(self):
        with pytest.raises(ConfigError):
            quantize_coords(np.zeros(5))


class TestSplitSorted:
    def test_equal_counts_unit_weights(self):
        order = np.arange(12)
        labels = split_sorted(order, np.ones(12), 3)
        assert np.bincount(labels).tolist() == [4, 4, 4]
        # contiguity in sorted order
        assert labels.tolist() == sorted(labels.tolist())

    def test_weighted_boundaries(self):
        order = np.arange(4)
        weights = np.array([3.0, 1.0, 1.0, 3.0])
        labels = split_sorted(order, weights, 2)
        # total 8, target 4: first part = {0, 1} (weight 4)
        assert labels.tolist() == [0, 0, 1, 1]

    def test_respects_permutation(self):
        order = np.array([3, 1, 0, 2])
        labels = split_sorted(order, np.ones(4), 2)
        assert labels[3] == 0 and labels[1] == 0
        assert labels[0] == 1 and labels[2] == 1

    def test_zero_weights_fall_back_to_counts(self):
        labels = split_sorted(np.arange(6), np.zeros(6), 3)
        assert np.bincount(labels, minlength=3).tolist() == [2, 2, 2]

    def test_bad_parts(self):
        with pytest.raises(PartitionError):
            split_sorted(np.arange(3), np.ones(3), 0)


class TestIBP:
    @pytest.mark.parametrize("scheme", ["row_major", "shuffled", "hilbert"])
    @pytest.mark.parametrize("k", [2, 4, 8])
    def test_valid_balanced(self, mesh120, scheme, k):
        p = ibp_partition(mesh120, k, scheme=scheme)
        check_partition(p)
        require_all_parts_nonempty(p)
        assert p.part_sizes.max() - p.part_sizes.min() <= 1

    def test_requires_coordinates(self):
        g = CSRGraph(5, [0, 1], [1, 2])
        with pytest.raises(GraphError):
            ibp_partition(g, 2)

    def test_unknown_scheme(self, mesh60):
        with pytest.raises(ConfigError):
            ibp_partition(mesh60, 2, scheme="zigzag")

    def test_hilbert_needs_2d(self):
        g = CSRGraph(
            4, [0, 1, 2], [1, 2, 3], coords=np.random.default_rng(0).random((4, 3))
        )
        with pytest.raises(ConfigError):
            ibp_partition(g, 2, scheme="hilbert")

    def test_spatial_locality_beats_random(self, mesh120):
        from repro.baselines import random_partition

        ibp = ibp_partition(mesh120, 4, scheme="shuffled")
        rand = random_partition(mesh120, 4, seed=0)
        assert ibp.cut_size < 0.6 * rand.cut_size

    def test_hilbert_at_least_as_good_typically(self, mesh120):
        """Hilbert indexing preserves locality at least as well as
        row-major on mesh workloads (a soft ablation check)."""
        row = ibp_partition(mesh120, 8, scheme="row_major")
        hil = ibp_partition(mesh120, 8, scheme="hilbert")
        assert hil.cut_size <= row.cut_size * 1.3

    def test_deterministic(self, mesh60):
        a = ibp_partition(mesh60, 4)
        b = ibp_partition(mesh60, 4)
        assert np.array_equal(a.assignment, b.assignment)

    def test_grid_row_major_gives_stripes(self):
        g = grid2d(8, 8)
        p = ibp_partition(g, 4, scheme="row_major", bits=3)
        # row-major over a grid: parts are horizontal bands, cut = 3 rows
        assert p.cut_size == 24.0

    def test_too_many_parts(self, mesh60):
        with pytest.raises(PartitionError):
            ibp_partition(mesh60, 61)

    def test_weighted_nodes_balance_by_weight(self):
        g = grid2d(4, 4).with_weights(
            node_weights=np.concatenate([np.full(8, 3.0), np.ones(8)])
        )
        p = ibp_partition(g, 2, scheme="row_major")
        loads = p.part_loads
        assert abs(loads[0] - loads[1]) <= 3.0  # one node weight
