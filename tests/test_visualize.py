"""Tests for the ASCII partition renderer."""

import numpy as np
import pytest

from repro.baselines import rsb_partition
from repro.errors import GraphError
from repro.graphs import CSRGraph, grid2d, mesh_graph
from repro.partition import Partition, ascii_render, part_summary


class TestAsciiRender:
    def test_dimensions(self, mesh60):
        p = rsb_partition(mesh60, 4)
        art = ascii_render(p, width=40, height=12)
        lines = art.splitlines()
        assert len(lines) == 12
        assert all(len(line) == 40 for line in lines)

    def test_all_parts_appear(self, mesh120):
        p = rsb_partition(mesh120, 4)
        art = ascii_render(p, width=50, height=20).lower()
        for q in "0123":
            assert q in art

    def test_uniform_partition_single_glyph(self, grid4x4):
        p = Partition(grid4x4, np.zeros(16, dtype=np.int64), 1)
        art = ascii_render(p, width=10, height=5)
        assert set(art.replace("\n", "")) == {"0"}

    def test_spatially_coherent_partition_renders_blocks(self):
        """A left/right split must put 0s on one side and 1s on the other."""
        g = grid2d(8, 8)
        a = (np.arange(64) % 8 >= 4).astype(np.int64)  # right half = 1
        p = Partition(g, a, 2)
        art = ascii_render(p, width=16, height=8)
        for line in art.splitlines():
            # left-to-right scan never goes 1 -> 0
            assert "10" not in line.replace("1", "1").replace("0", "0") or True
            stripped = line
            first_one = stripped.find("1")
            if first_one >= 0:
                assert "0" not in stripped[first_one:]

    def test_needs_coords(self):
        g = CSRGraph(4, [0, 1], [1, 2])
        p = Partition(g, np.zeros(4, dtype=np.int64), 2)
        with pytest.raises(GraphError):
            ascii_render(p)

    def test_bad_raster(self, mesh60):
        p = rsb_partition(mesh60, 2)
        with pytest.raises(GraphError):
            ascii_render(p, width=1)

    def test_too_many_parts(self, mesh60):
        p = Partition(mesh60, np.arange(60, dtype=np.int64) % 36, 36)
        art = ascii_render(p)  # 36 parts exactly fills the glyph table
        assert art
        p2 = Partition(mesh60, np.zeros(60, dtype=np.int64), 60)
        with pytest.raises(GraphError):
            ascii_render(p2)


class TestPartSummary:
    def test_contains_all_parts_and_totals(self, mesh60):
        p = rsb_partition(mesh60, 4)
        text = part_summary(p)
        for q in range(4):
            assert f"\n{q:>5} " in "\n" + text
        assert "total cut" in text
        assert "balance" in text

    def test_values_match_partition(self, mesh60):
        p = rsb_partition(mesh60, 2)
        text = part_summary(p)
        assert f"{p.cut_size:g}" in text
