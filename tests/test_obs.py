"""Tests for the observability layer (``repro.obs``, PR 6).

Covers: the explicit-context tracer (ring, JSONL sink, sampling,
null-span fast path, span trees), the unified metrics registry
(snapshot schema, cross-shard merge, percentiles, Prometheus
rendering), structured JSON logs, the GA progress hooks, and — the
tentpole contracts — trace propagation across every execution lane
(thread, process pool, pipe shards, socket shards), bit-identical
answers with tracing on vs off, byte-identical wire frames and
payloads for untraced traffic, ``/v1/metrics`` over HTTP, and the
lock-discipline claims (obs locks are leaves; never held across GA
work).
"""

import json
import logging
from pathlib import Path

import numpy as np
import pytest

from repro import partition_graph
from repro.analysis import LockWitness, extract_lock_graph
from repro.errors import ShardDiedError
from repro.ga import Fitness1, GAConfig, GAEngine, UniformCrossover
from repro.graphs import mesh_graph
from repro.incremental.updates import insert_local_nodes
from repro.obs import (
    NULL_SPAN,
    ExecRecorder,
    JsonLogFormatter,
    MetricsRegistry,
    Tracer,
    histogram_percentile,
    merge_snapshots,
    recording,
    render_prometheus,
    span_tree,
)
from repro.service import (
    HTTPServiceClient,
    PartitionRequest,
    PartitionService,
    ShardServer,
    ShardedPartitionService,
    UpdateRequest,
    serve,
)
from repro.service.transport import decode_message, encode_message

#: tiny GA budget — these tests exercise instrumentation, not search
GA = dict(population_size=12, max_generations=6, patience=3)

#: a fixed remote-style wire context (what an upstream would send)
CTX = {"trace_id": "ab" * 8, "span_id": "cd" * 4}


@pytest.fixture
def graph():
    return mesh_graph(48, seed=3)


@pytest.fixture(scope="module")
def lock_graph():
    import repro

    src = Path(repro.__file__).resolve().parent
    return extract_lock_graph([str(src)])


def _metric(snapshot: dict, kind: str, name: str, **labels):
    """The value of one series in a registry snapshot, or None."""
    for entry in snapshot.get(kind, []):
        if entry["name"] == name and entry.get("labels", {}) == labels:
            return entry["value"]
    return None


def _names(records) -> list:
    return [r["name"] for r in records]


# ----------------------------------------------------------------------
# tracer units
# ----------------------------------------------------------------------

class TestTracer:
    def test_span_record_shape_and_ring(self):
        tracer = Tracer(enabled=True, ring_size=8)
        with tracer.start("outer", attrs={"endpoint": "partition"}) as outer:
            with outer.child("inner"):
                pass
        records = tracer.records()
        assert _names(records) == ["inner", "outer"]  # close order
        inner, outer_rec = records
        assert inner["trace_id"] == outer_rec["trace_id"]
        assert inner["parent_id"] == outer_rec["span_id"]
        assert outer_rec["parent_id"] is None
        assert outer_rec["attrs"]["endpoint"] == "partition"
        assert inner["duration_s"] >= 0.0
        roots = span_tree(records)
        assert len(roots) == 1 and roots[0]["name"] == "outer"
        assert _names(roots[0]["children"]) == ["inner"]

    def test_ring_is_bounded(self):
        tracer = Tracer(enabled=True, ring_size=4)
        for i in range(10):
            tracer.start(f"s{i}").close()
        assert len(tracer.records()) == 4
        assert tracer.counters()["spans_recorded"] == 10

    def test_disabled_tracer_originates_nothing(self):
        tracer = Tracer(enabled=False)
        span = tracer.start("root")
        assert span is NULL_SPAN and not span
        # every null-span verb is a cheap no-op
        span.set(a=1).fail("x").close()
        assert span.child("c") is NULL_SPAN
        assert span.collected() == [] and span.context() is None
        assert tracer.records() == []

    def test_remote_context_always_recorded_and_collected(self):
        """Continuation of a wire context ignores `enabled`: the origin
        already made the sampling decision; the subtree is collected so
        it can ride back in the reply."""
        tracer = Tracer(enabled=False)
        span = tracer.start("worker", parent=CTX)
        child = span.child("step")
        child.close()
        span.close()
        collected = span.collected()
        assert _names(collected) == ["step", "worker"]
        assert all(r["trace_id"] == CTX["trace_id"] for r in collected)
        assert collected[1]["parent_id"] == CTX["span_id"]

    def test_sampling_is_deterministic_by_trace_id(self):
        always = Tracer(enabled=True, sample_rate=1.0)
        never = Tracer(enabled=True, sample_rate=0.0)
        assert isinstance(always.start("s").span_id, str)
        assert never.start("s") is NULL_SPAN
        # no RNG draw: the decision is a pure function of the id
        half = Tracer(enabled=True, sample_rate=0.5)
        assert half._sampled("00" * 8) and not half._sampled("ff" * 8)

    def test_jsonl_sink(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        tracer = Tracer(enabled=True, jsonl_path=str(path))
        with tracer.start("a", attrs={"k": 1}):
            pass
        tracer.ingest([{"trace_id": "x", "span_id": "y", "name": "far"}])
        tracer.close()
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert _names(lines) == ["a", "far"]
        assert set(lines[0]) >= {
            "name", "trace_id", "span_id", "parent_id",
            "wall_s", "duration_s", "attrs",
        }

    def test_ingest_and_adopt_filter_junk(self):
        tracer = Tracer(enabled=True)
        kept = tracer.ingest(
            [{"trace_id": "t", "span_id": "s"}, {"no": "id"}, "junk", None]
        )
        assert kept == 1
        assert tracer.counters()["spans_ingested"] == 1
        span = tracer.start("root", parent=CTX)
        span.adopt([{"trace_id": "t", "name": "w"}, "junk"])
        span.close()
        assert _names(span.collected()) == ["w", "root"]

    def test_exception_marks_span_failed(self):
        tracer = Tracer(enabled=True)
        with pytest.raises(ValueError):
            with tracer.start("boom"):
                raise ValueError("nope")
        (record,) = tracer.records()
        assert record["attrs"]["error"] == "ValueError: nope"


# ----------------------------------------------------------------------
# metrics registry units
# ----------------------------------------------------------------------

class TestMetricsRegistry:
    def test_snapshot_schema(self):
        reg = MetricsRegistry()
        reg.inc("repro_requests_total", endpoint="partition")
        reg.inc("repro_requests_total", 2, endpoint="partition")
        reg.set_gauge("repro_shard_up", 1.0, shard="0")
        reg.observe("repro_request_latency_ms", 3.0, endpoint="partition")
        reg.counter_fn(
            "repro_cache_hits_total", lambda: [({"cache": "results"}, 7)]
        )
        snap = reg.snapshot()
        assert snap["schema"] == "repro.obs/v1"
        assert _metric(snap, "counters", "repro_requests_total",
                       endpoint="partition") == 3
        assert _metric(snap, "counters", "repro_cache_hits_total",
                       cache="results") == 7
        assert _metric(snap, "gauges", "repro_shard_up", shard="0") == 1.0
        (hist,) = snap["histograms"]
        assert hist["name"] == "repro_request_latency_ms"
        assert hist["count"] == 1 and hist["sum"] == 3.0
        assert len(hist["counts"]) == len(hist["le"]) + 1  # +Inf bucket

    def test_merge_and_percentiles(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for reg, n in ((a, 3), (b, 5)):
            reg.inc("repro_requests_total", n, endpoint="partition")
            for _ in range(n):
                reg.observe(
                    "repro_request_latency_ms", 10.0, endpoint="partition"
                )
        merged = merge_snapshots([a.snapshot(), b.snapshot(), {"extra": 1}])
        assert _metric(merged, "counters", "repro_requests_total",
                       endpoint="partition") == 8
        (hist,) = merged["histograms"]
        assert hist["count"] == 8
        p50 = histogram_percentile(hist, 0.5)
        assert p50 is not None and 0 < p50 <= 20.0
        empty = MetricsRegistry()
        empty.observe("h", 1.0)
        empty_hist = [
            dict(h, counts=[0] * len(h["counts"]), count=0, sum=0.0)
            for h in empty.snapshot()["histograms"]
        ][0]
        assert histogram_percentile(empty_hist, 0.5) is None

    def test_provider_errors_do_not_poison_snapshot(self):
        reg = MetricsRegistry()

        def broken():
            raise RuntimeError("backend gone")

        reg.counter_fn("repro_cache_hits_total", broken)
        reg.inc("live_total")
        snap = reg.snapshot()
        assert _metric(snap, "counters", "live_total") == 1
        assert _metric(snap, "counters", "repro_cache_hits_total") is None

    def test_prometheus_rendering(self):
        reg = MetricsRegistry()
        reg.inc("repro_requests_total", 4, endpoint="partition")
        reg.set_gauge("repro_shard_up", 1.0, shard="0")
        reg.observe("repro_request_latency_ms", 3.0, endpoint="partition")
        text = render_prometheus(reg.snapshot())
        assert "# TYPE repro_requests_total counter" in text
        assert 'repro_requests_total{endpoint="partition"} 4' in text
        assert "# TYPE repro_shard_up gauge" in text
        assert "# TYPE repro_request_latency_ms histogram" in text
        assert 'le="+Inf"' in text
        assert "repro_request_latency_ms_sum" in text
        assert "repro_request_latency_ms_count" in text
        # cumulative buckets: the +Inf bucket equals _count
        inf_line = next(
            line for line in text.splitlines() if 'le="+Inf"' in line
        )
        assert inf_line.endswith(" 1")


# ----------------------------------------------------------------------
# structured logs
# ----------------------------------------------------------------------

class TestStructuredLogs:
    def test_formatter_renders_extras_as_fields(self):
        record = logging.LogRecord(
            "repro.service.sharding", logging.WARNING, __file__, 1,
            "shard died", None, None,
        )
        record.shard = 1
        record.trace_id = "abc"
        payload = json.loads(JsonLogFormatter().format(record))
        assert payload["event"] == "shard died"
        assert payload["level"] == "WARNING"
        assert payload["logger"] == "repro.service.sharding"
        assert payload["shard"] == 1 and payload["trace_id"] == "abc"
        assert isinstance(payload["ts"], float)

    def test_snapshot_restore_failure_emits_event(self, tmp_path, caplog):
        from repro.service import SessionManager, SessionPersistence
        from repro.service.persistence import SNAPSHOT_SUFFIX, SnapshotStore

        store = SnapshotStore(tmp_path)
        (tmp_path / f"corrupt{SNAPSHOT_SUFFIX}").write_bytes(b"not a pickle")
        with caplog.at_level(logging.WARNING, logger="repro"):
            persistence = SessionPersistence(store, SessionManager())
            assert persistence.restore_all() == 0
        persistence.close()
        assert persistence.restore_failures == 1
        (record,) = [
            r for r in caplog.records
            if r.getMessage() == "snapshot restore failed"
        ]
        assert record.event == "snapshot_restore_failed"
        assert record.session_id == "corrupt"

    def test_shard_death_emits_event(self, graph, caplog):
        with caplog.at_level(logging.WARNING, logger="repro"):
            with ShardedPartitionService(
                n_shards=2, n_workers=1, auto_restart=False
            ) as svc:
                target = svc.shard_of(graph)
                svc._slots[target].handle.process.kill()
                with pytest.raises(ShardDiedError):
                    svc.submit(PartitionRequest(graph, 4, seed=0, ga=GA))
        events = [getattr(r, "event", None) for r in caplog.records]
        assert "shard_died" in events


# ----------------------------------------------------------------------
# GA progress hooks
# ----------------------------------------------------------------------

class TestGAHooks:
    def test_engine_on_generation_callback(self, graph):
        seen = []
        cfg = GAConfig(**GA)
        result = GAEngine(
            graph, Fitness1(graph, 4), UniformCrossover(), cfg, seed=1
        ).run(on_generation=lambda **kw: seen.append(kw))
        # generation 0 (initial evaluation) + one per recorded generation
        assert len(seen) == result.history.n_generations
        assert seen[0]["generation"] == 0
        assert [e["generation"] for e in seen] == list(range(len(seen)))
        assert all(
            set(e) == {"generation", "best_cut", "best_worst_cut",
                       "evaluations"}
            for e in seen
        )
        # observational-only: history already carries the same values
        assert seen[-1]["best_cut"] == result.history.best_cut[-1]

    def test_recording_captures_generations_and_kernels(self, graph):
        tracer = Tracer(enabled=True)
        registry = MetricsRegistry()
        parent = tracer.start("execute")
        with recording(ExecRecorder(tracer, parent, registry)):
            partition_graph(graph, 4, config=GAConfig(**GA), seed=0)
        parent.close()
        generations = [
            r for r in tracer.records() if r["name"] == "ga.generation"
        ]
        assert generations
        assert generations[0]["parent_id"] == parent.span_id
        assert {"generation", "best_cut", "evaluations"} <= set(
            generations[0]["attrs"]
        )
        snap = registry.snapshot()
        assert _metric(snap, "counters", "repro_ga_generations_total") == len(
            generations
        )
        kernels = {
            h["labels"]["kernel"]
            for h in snap["histograms"]
            if h["name"] == "repro_kernel_ms"
        }
        assert "climb_batch" in kernels or "batch_cut_size" in kernels

    def test_no_recorder_means_no_effect(self, graph):
        from repro.obs.hooks import active_recorder, emit_generation

        assert active_recorder() is None
        emit_generation(0, 1.0, 1.0, 1)  # must be a silent no-op
        a = partition_graph(graph, 4, config=GAConfig(**GA), seed=0)
        tracer = Tracer(enabled=True)
        with recording(ExecRecorder(tracer, tracer.start("x"))):
            b = partition_graph(graph, 4, config=GAConfig(**GA), seed=0)
        assert np.array_equal(a.assignment, b.assignment)


# ----------------------------------------------------------------------
# service-level tracing
# ----------------------------------------------------------------------

class TestServiceTracing:
    def test_propagated_context_returns_stitched_spans(self, graph):
        """A request carrying a wire context gets its worker-side
        subtree back in ``result.spans`` even with origination off."""
        with PartitionService(n_workers=1) as svc:
            result = svc.submit(
                PartitionRequest(graph, 4, seed=0, ga=GA, trace=CTX)
            )
        assert result.spans
        assert all(r["trace_id"] == CTX["trace_id"] for r in result.spans)
        names = _names(result.spans)
        assert "service.submit" in names
        assert "service.execute" in names
        assert "ga.generation" in names
        (root,) = span_tree(result.spans)
        assert root["name"] == "service.submit"
        assert root["parent_id"] == CTX["span_id"]
        assert root["attrs"]["endpoint"] == "partition"
        (execute,) = [
            c for c in root["children"] if c["name"] == "service.execute"
        ]
        assert execute["attrs"]["lane"] == "thread"
        assert any(
            c["name"] == "ga.generation" for c in execute["children"]
        )

    def test_untraced_request_returns_no_spans(self, graph):
        with PartitionService(n_workers=1) as svc:
            result = svc.submit(PartitionRequest(graph, 4, seed=0, ga=GA))
            repeat = svc.submit(PartitionRequest(graph, 4, seed=0, ga=GA))
        assert result.spans is None and repeat.spans is None

    def test_answers_bit_identical_with_tracing_on(self, graph):
        results = {}
        for key, kwargs in (
            ("off", {}),
            ("on", dict(trace_enabled=True)),
        ):
            with PartitionService(n_workers=1, **kwargs) as svc:
                results[key] = svc.submit(
                    PartitionRequest(graph, 4, seed=0, ga=GA, trace=CTX)
                )
        assert np.array_equal(
            results["off"].assignment, results["on"].assignment
        )
        assert results["off"].cut_size == results["on"].cut_size

    def test_process_lane_ships_spans_back(self, graph):
        with PartitionService(
            n_workers=1, process_workers=1, process_threshold=0
        ) as svc:
            result = svc.submit(
                PartitionRequest(graph, 4, seed=0, ga=GA, trace=CTX)
            )
            untraced = svc.submit(
                PartitionRequest(graph, 4, seed=1, ga=GA)
            )
        assert result.executed_in == "process"
        names = _names(result.spans)
        assert "procexec.run" in names and "ga.generation" in names
        (root,) = span_tree(result.spans)
        (execute,) = [
            c for c in root["children"] if c["name"] == "service.execute"
        ]
        assert execute["attrs"]["lane"] == "process"
        assert any(
            c["name"] == "procexec.run" for c in execute["children"]
        )
        assert untraced.spans is None

    def test_session_verbs_are_traced(self, graph):
        with PartitionService(n_workers=1) as svc:
            opened = svc.open_session(graph, 4, seed=0, ga=GA, trace=CTX)
            assert "session.initial" in _names(opened.spans)
            update = insert_local_nodes(graph, 5, seed=9).graph
            result = svc.update_session(
                UpdateRequest(opened.session_id, update, trace=CTX)
            )
            names = _names(result.spans)
            assert "service.update_session" in names
            assert "session.update" in names
            (step,) = [
                r for r in result.spans if r["name"] == "session.update"
            ]
            assert step["attrs"]["epoch"] == 1
            snap = svc.metrics()
            assert _metric(
                snap, "gauges", "repro_session_epoch_max"
            ) == 1
            svc.close_session(opened.session_id)

    def test_metrics_snapshot_and_latency_digest(self, graph):
        with PartitionService(n_workers=1) as svc:
            svc.submit(PartitionRequest(graph, 4, seed=0, ga=GA))
            svc.submit(PartitionRequest(graph, 4, seed=0, ga=GA))
            snap = svc.metrics()
        assert snap["schema"] == "repro.obs/v1"
        assert _metric(snap, "counters", "repro_requests_total",
                       endpoint="partition") == 2
        assert _metric(snap, "counters", "repro_cache_hits_total",
                       cache="results") == 1
        digest = snap["latency_ms"]["partition"]
        assert digest["count"] == 2
        assert digest["p50_ms"] is not None
        assert digest["p50_ms"] <= digest["p99_ms"]


# ----------------------------------------------------------------------
# wire neutrality: tracing off leaves payloads and frames byte-identical
# ----------------------------------------------------------------------

class TestWireNeutrality:
    def test_request_payload_key_only_when_traced(self, graph):
        plain = PartitionRequest(graph, 4, seed=0, ga=GA).to_payload()
        traced = PartitionRequest(
            graph, 4, seed=0, ga=GA, trace=CTX
        ).to_payload()
        assert "trace" not in plain
        assert traced.pop("trace") == CTX
        assert json.dumps(plain, sort_keys=True) == json.dumps(
            traced, sort_keys=True
        )

    def test_result_payload_key_only_when_spans(self, graph):
        with PartitionService(n_workers=1) as svc:
            plain = svc.submit(PartitionRequest(graph, 4, seed=0, ga=GA))
        payload = plain.to_payload()
        assert "spans" not in payload

    def test_frames_byte_identical_without_context(self):
        message = (7, "submit", ({"n_parts": 4},))
        data = encode_message(message)
        assert decode_message(data) == message  # still a 3-tuple
        assert b'"tc"' not in data
        traced = message + (CTX,)
        round_tripped = decode_message(encode_message(traced))
        assert round_tripped == traced
        # an empty context dict costs nothing on the wire either
        assert encode_message(message) == data


# ----------------------------------------------------------------------
# sharded fleet: cross-process stitching
# ----------------------------------------------------------------------

class TestShardedTracing:
    def _assert_stitched(self, records, n_shards=None):
        names = _names(records)
        for needed in ("front.submit", "shard.call", "service.submit",
                       "service.execute", "ga.generation"):
            assert needed in names, f"missing {needed} in {sorted(set(names))}"
        (root,) = span_tree(records)
        assert root["name"] == "front.submit"
        (hop,) = [c for c in root["children"] if c["name"] == "shard.call"]
        (submit,) = [
            c for c in hop["children"] if c["name"] == "service.submit"
        ]
        (execute,) = [
            c for c in submit["children"] if c["name"] == "service.execute"
        ]
        assert any(c["name"] == "ga.generation" for c in execute["children"])
        return root

    def test_pipe_shards_stitch_one_tree(self, graph):
        with ShardedPartitionService(n_shards=2, n_workers=1) as svc:
            result = svc.submit(
                PartitionRequest(graph, 4, seed=0, ga=GA, trace=CTX)
            )
            records = svc.tracer.records(CTX["trace_id"])
        assert result.cut_size >= 0
        root = self._assert_stitched(records)
        assert root["parent_id"] == CTX["span_id"]

    def test_socket_fleet_http_partition_yields_one_tree(self, graph):
        """The acceptance scenario: one /v1/partition against a 2-shard
        front over socket-attached workers produces a single stitched
        span tree — front dispatch, transport hop, worker execute, GA
        generations — and /v1/metrics serves both formats."""
        servers = [ShardServer(n_workers=1).start() for _ in range(2)]
        server = None
        try:
            front = ShardedPartitionService(
                attach=[s.address for s in servers], trace_enabled=True
            )
            server = serve(port=0, background=True, service=front)
            host, port = server.server_address[:2]
            client = HTTPServiceClient(f"http://{host}:{port}")
            result = client.partition(graph, 4, seed=0, ga=GA)
            assert result.cut_size >= 0
            (trace_id,) = front.tracer.trace_ids()
            self._assert_stitched(front.tracer.records(trace_id))
            snap = client.metrics()
            assert snap["n_shards"] == 2
            assert snap["shards_reporting"] == 2
            assert _metric(snap, "counters", "repro_requests_total",
                           endpoint="partition") == 1
            assert "# TYPE repro_requests_total counter" in (
                client.metrics_text()
            )
        finally:
            if server is not None:
                server.service.close()
                server.shutdown()
                server.server_close()
            for s in servers:
                s.close()

    def test_trace_survives_shard_death_and_restart(self, graph):
        """A request caught by a shard death records a failed hop span;
        the retry (same trace context) lands as a sibling under the
        same trace after the same-slot restart."""
        import time

        with ShardedPartitionService(n_shards=2, n_workers=1) as svc:
            target = svc.shard_of(graph)
            svc._slots[target].handle.process.kill()
            request = PartitionRequest(graph, 4, seed=0, ga=GA, trace=CTX)
            result = None
            failures = 0
            for _ in range(50):
                try:
                    result = svc.submit(request)
                    break
                except ShardDiedError:
                    failures += 1
                    time.sleep(0.2)
            assert result is not None, "request lost after restart"
            assert svc.shard_health()[target]["restarts"] >= 1
            records = svc.tracer.records(CTX["trace_id"])
            hops = [r for r in records if r["name"] == "shard.call"]
            # the successful attempt is stitched end-to-end...
            assert any("error" not in h["attrs"] for h in hops)
            assert "service.execute" in _names(records)
            # ...and any fail-fast attempt left an error-marked hop in
            # the same trace (the kill can race the first submit, so a
            # clean first try is legal — but failures must match spans)
            failed = [h for h in hops if "error" in h["attrs"]]
            assert len(failed) == failures

    def test_fleet_metrics_merge_and_stats_totals(self, graph):
        other = mesh_graph(60, seed=5)
        with ShardedPartitionService(n_shards=2, n_workers=1) as svc:
            for g in (graph, other):
                svc.submit(PartitionRequest(g, 4, seed=0, ga=GA))
            snap = svc.metrics()
            stats = svc.stats()
            health = svc.shard_health()
        assert snap["schema"] == "repro.obs/v1"
        assert snap["n_shards"] == 2 and snap["shards_reporting"] == 2
        assert _metric(snap, "counters", "repro_requests_total",
                       endpoint="partition") == 2
        for index in range(2):
            assert _metric(snap, "gauges", "repro_shard_up",
                           shard=str(index)) == 1.0
        assert "partition" in snap["latency_ms"]
        # stats() keeps the legacy per-shard rows and adds the merge
        totals = stats["totals"]
        assert totals["shards_reporting"] == 2
        assert totals["scheduler"]["jobs_executed"] == 2
        assert totals["sessions"]["open"] == 0
        assert health[0]["state"] == "up"

    def test_deaths_and_restarts_are_counted(self, graph):
        import time

        with ShardedPartitionService(n_shards=2, n_workers=1) as svc:
            target = svc.shard_of(graph)
            svc._slots[target].handle.process.kill()
            deadline = time.time() + 60.0
            while time.time() < deadline:
                health = svc.shard_health()[target]
                if health["state"] == "up" and health["restarts"] >= 1:
                    break
                time.sleep(0.05)
            snap = svc.metrics()
        assert _metric(snap, "counters", "repro_shard_deaths_total",
                       shard=str(target)) == 1
        assert _metric(snap, "counters", "repro_shard_restarts_total",
                       shard=str(target)) == 1


# ----------------------------------------------------------------------
# HTTP endpoint
# ----------------------------------------------------------------------

class TestMetricsEndpoint:
    def test_json_and_prometheus_formats(self, graph):
        server = serve(port=0, background=True, n_workers=1)
        try:
            host, port = server.server_address[:2]
            client = HTTPServiceClient(f"http://{host}:{port}")
            client.partition(graph, 4, seed=0, ga=GA)
            snap = client.metrics()
            assert snap["schema"] == "repro.obs/v1"
            assert _metric(snap, "counters", "repro_requests_total",
                           endpoint="partition") == 1
            assert snap["latency_ms"]["partition"]["count"] == 1
            text = client.metrics_text()
            assert text.startswith("# ") and "repro_requests_total" in text
        finally:
            server.service.close()
            server.shutdown()
            server.server_close()


# ----------------------------------------------------------------------
# lock discipline
# ----------------------------------------------------------------------

class TestObsLockDiscipline:
    def test_obs_locks_are_leaves_in_static_graph(self, lock_graph):
        """No lock is ever acquired while an obs lock is held — the
        registry/tracer locks cannot participate in an order cycle."""
        obs_locks = {
            "MetricsRegistry._lock", "Tracer._lock", "Tracer._sink_lock",
            "hooks:_ACTIVE_LOCK",
        }
        assert obs_locks <= set(lock_graph.nodes)
        for (outer, _inner) in lock_graph.edges:
            assert outer not in obs_locks
        assert lock_graph.find_cycles() == []

    def test_witness_obs_locks_never_held_across_ga_work(
        self, graph, lock_graph
    ):
        """Runtime cross-check of the static claim: during a traced
        request, neither the registry lock nor the tracer lock is held
        while a GA generation is being recorded."""
        with LockWitness() as witness:
            witness.probe(ExecRecorder, "generation")
            with PartitionService(n_workers=1, trace_enabled=True) as svc:
                svc.submit(
                    PartitionRequest(graph, 4, seed=0, ga=GA, trace=CTX)
                )
                svc.metrics()
        witness.assert_subgraph_of(lock_graph)
        for lock_name in ("MetricsRegistry._lock", "Tracer._lock",
                          "Tracer._sink_lock"):
            checked = witness.assert_never_held_during(
                lock_graph, lock_name, "generation"
            )
            assert checked > 0
