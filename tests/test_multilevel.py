"""Tests for graph contraction and the multilevel GA."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.ga import GAConfig
from repro.graphs import CSRGraph, grid2d, mesh_graph
from repro.multilevel import (
    coarsen,
    coarsen_to,
    heavy_edge_matching,
    multilevel_ga_partition,
    uncoarsen,
)
from repro.partition import check_partition, require_all_parts_nonempty


class TestMatching:
    def test_symmetric_involution(self, mesh120):
        match = heavy_edge_matching(mesh120, seed=1)
        assert np.array_equal(match[match], np.arange(120))

    def test_matched_pairs_are_edges(self, mesh120):
        match = heavy_edge_matching(mesh120, seed=2)
        for u in range(120):
            v = match[u]
            if v != u:
                assert mesh120.has_edge(u, int(v))

    def test_prefers_heavy_edges(self):
        # triangle with one heavy edge: the heavy edge must be matched
        g = CSRGraph(3, [0, 1, 0], [1, 2, 2], edge_weights=[1.0, 10.0, 1.0])
        match = heavy_edge_matching(g, seed=3)
        assert match[1] == 2 and match[2] == 1

    def test_edgeless_graph(self):
        g = CSRGraph(5, [], [])
        match = heavy_edge_matching(g, seed=4)
        assert np.array_equal(match, np.arange(5))

    def test_matches_most_of_a_mesh(self, mesh120):
        match = heavy_edge_matching(mesh120, seed=5)
        unmatched = (match == np.arange(120)).sum()
        assert unmatched < 24  # >80% matched on a bounded-degree mesh


class TestCoarsen:
    def test_node_weight_conserved(self, mesh120):
        level = coarsen(mesh120, seed=1)
        assert np.isclose(
            level.coarse.total_node_weight(), mesh120.total_node_weight()
        )

    def test_size_roughly_halves(self, mesh120):
        level = coarsen(mesh120, seed=2)
        assert 0.4 * 120 <= level.coarse.n_nodes <= 0.65 * 120

    def test_projection_shape(self, mesh120):
        level = coarsen(mesh120, seed=3)
        ca = np.zeros(level.coarse.n_nodes, dtype=np.int64)
        fa = level.project_up(ca)
        assert fa.shape == (120,)

    def test_cut_preserved_under_projection(self, mesh120):
        """A coarse partition's cut equals the projected fine cut: edges
        inside merged pairs can never be cut."""
        from repro.partition import cut_size

        level = coarsen(mesh120, seed=4)
        rng = np.random.default_rng(0)
        ca = rng.integers(0, 3, level.coarse.n_nodes)
        coarse_cut = cut_size(level.coarse, ca)
        fine_cut = cut_size(mesh120, level.project_up(ca))
        assert np.isclose(coarse_cut, fine_cut)

    def test_coords_averaged(self, mesh120):
        level = coarsen(mesh120, seed=5)
        assert level.coarse.coords is not None
        assert level.coarse.coords.shape == (level.coarse.n_nodes, 2)
        # averaged coords stay in the unit square
        assert level.coarse.coords.min() >= 0.0
        assert level.coarse.coords.max() <= 1.0

    def test_coarsen_to_target(self):
        g = mesh_graph(400, seed=6, candidates=5)
        levels = coarsen_to(g, 100, seed=7)
        assert levels
        assert levels[-1].coarse.n_nodes <= 100
        # hierarchy chains correctly
        for a, b in zip(levels, levels[1:]):
            assert b.fine is a.coarse

    def test_coarsen_to_noop_when_small(self, mesh60):
        assert coarsen_to(mesh60, 100, seed=1) == []


class TestUncoarsen:
    def test_refinement_never_worse(self):
        from repro.ga import Fitness1

        g = mesh_graph(200, seed=8, candidates=5)
        levels = coarsen_to(g, 60, seed=9)
        coarsest = levels[-1].coarse
        rng = np.random.default_rng(1)
        ca = rng.integers(0, 4, coarsest.n_nodes)
        fine = uncoarsen(levels, ca, 4, seed=2)
        fit = Fitness1(g, 4)
        # compare against pure projection without refinement
        proj = ca
        for level in reversed(levels):
            proj = level.project_up(proj)
        assert fit.evaluate(fine) >= fit.evaluate(proj)

    def test_empty_hierarchy_identity_plus_refine(self, mesh60):
        rng = np.random.default_rng(3)
        a = rng.integers(0, 2, 60)
        out = uncoarsen([], a, 2)
        assert np.array_equal(out, a)


class TestMultilevelGA:
    def test_partition_validity(self):
        g = mesh_graph(500, seed=10, candidates=5)
        p = multilevel_ga_partition(
            g,
            4,
            coarse_nodes=120,
            config=GAConfig(
                population_size=24, max_generations=20, patience=8,
                hill_climb="all",
            ),
            seed=11,
        )
        check_partition(p)
        require_all_parts_nonempty(p)
        assert p.balance_ratio < 1.3

    def test_beats_random_clearly(self):
        from repro.baselines import random_partition

        g = mesh_graph(400, seed=12, candidates=5)
        p = multilevel_ga_partition(
            g,
            4,
            coarse_nodes=100,
            config=GAConfig(population_size=24, max_generations=15, patience=6,
                            hill_climb="all"),
            seed=13,
        )
        r = random_partition(g, 4, seed=0)
        assert p.cut_size < 0.5 * r.cut_size

    def test_small_graph_skips_coarsening(self, mesh60):
        p = multilevel_ga_partition(
            g := mesh60,
            2,
            coarse_nodes=100,
            config=GAConfig(population_size=16, max_generations=10),
            seed=14,
        )
        check_partition(p)

    def test_validation(self, mesh60):
        with pytest.raises(ConfigError):
            multilevel_ga_partition(mesh60, 0)
        with pytest.raises(ConfigError):
            multilevel_ga_partition(mesh60, 4, coarse_nodes=4)
