"""Tests for DKNUX — dynamic estimate tracking."""

import numpy as np
import pytest

from repro.ga import DKNUX, Fitness1, GAConfig, GAEngine, TwoPointCrossover
from repro.graphs import grid2d, mesh_graph


class TestEstimateTracking:
    def test_unset_until_prepare(self, mesh60, rng):
        op = DKNUX(mesh60, 4)
        with pytest.raises(RuntimeError, match="no estimate"):
            op.cross(
                rng.integers(0, 4, (2, 60)), rng.integers(0, 4, (2, 60)), rng
            )

    def test_prepare_adopts_best(self, mesh60, rng):
        op = DKNUX(mesh60, 4)
        pop = rng.integers(0, 4, (5, 60))
        fit = np.array([-10.0, -3.0, -50.0, -7.0, -20.0])
        op.prepare(pop, fit)
        assert np.array_equal(op.estimate, pop[1])
        assert op.best_fitness_seen == -3.0

    def test_prepare_keeps_better_estimate(self, mesh60, rng):
        op = DKNUX(mesh60, 4)
        pop1 = rng.integers(0, 4, (3, 60))
        op.prepare(pop1, np.array([-5.0, -1.0, -9.0]))
        best = op.estimate
        pop2 = rng.integers(0, 4, (3, 60))
        op.prepare(pop2, np.array([-4.0, -2.0, -3.0]))  # all worse than -1
        assert np.array_equal(op.estimate, best)

    def test_prepare_updates_on_improvement(self, mesh60, rng):
        op = DKNUX(mesh60, 4)
        op.prepare(rng.integers(0, 4, (2, 60)), np.array([-5.0, -8.0]))
        better = rng.integers(0, 4, (2, 60))
        op.prepare(better, np.array([-1.0, -9.0]))
        assert np.array_equal(op.estimate, better[0])

    def test_carried_estimate_resists_worse_populations(self, mesh60, rng):
        """set_carried_estimate seeds estimate *and* fitness, so a
        worse generation-0 population cannot displace the carried
        knowledge (the incremental warm-carry mechanism, PR 4)."""
        op = DKNUX(mesh60, 4)
        carried = rng.integers(0, 4, 60)
        op.set_carried_estimate(carried, -2.0)
        assert np.array_equal(op.estimate, carried)
        assert op.best_fitness_seen == -2.0
        # a population whose best is worse does not replace it …
        op.prepare(rng.integers(0, 4, (3, 60)), np.array([-5.0, -3.0, -9.0]))
        assert np.array_equal(op.estimate, carried)
        assert op.best_fitness_seen == -2.0
        # … but a genuine improvement does
        better = rng.integers(0, 4, (2, 60))
        op.prepare(better, np.array([-1.5, -4.0]))
        assert np.array_equal(op.estimate, better[0])
        assert op.best_fitness_seen == -1.5

    def test_initial_estimate_accepted(self, mesh60, rng):
        est = rng.integers(0, 4, 60)
        op = DKNUX(mesh60, 4, initial_estimate=est)
        # usable immediately, without prepare
        a = rng.integers(0, 4, (3, 60))
        b = rng.integers(0, 4, (3, 60))
        c1, _ = op.cross(a, b, rng)
        assert c1.shape == (3, 60)

    def test_empty_population_ignored(self, mesh60):
        op = DKNUX(mesh60, 4)
        op.prepare(np.zeros((0, 60), dtype=np.int64), np.zeros(0))
        assert op._estimate is None

    def test_repr_states(self, mesh60, rng):
        op = DKNUX(mesh60, 4)
        assert "unset" in repr(op)
        op.prepare(rng.integers(0, 4, (2, 60)), np.array([-3.0, -6.0]))
        assert "best=-3" in repr(op)


class TestSearchQuality:
    def test_dknux_beats_two_point(self):
        """The paper's headline claim: KNUX-family operators dominate
        traditional crossover at equal budget."""
        g = mesh_graph(100, seed=3)
        fit = Fitness1(g, 4)
        cfg = GAConfig(population_size=48, max_generations=60)
        res_d = GAEngine(g, fit, DKNUX(g, 4), cfg, seed=5).run()
        res_2 = GAEngine(g, fit, TwoPointCrossover(), cfg, seed=5).run()
        assert res_d.best_fitness > res_2.best_fitness
        assert res_d.best_cut < res_2.best_cut

    def test_dknux_converges_faster(self):
        """At any common generation, DKNUX's best fitness should already
        dominate 2-point's (checked at the midpoint)."""
        g = mesh_graph(80, seed=9)
        fit = Fitness1(g, 2)
        cfg = GAConfig(population_size=40, max_generations=40)
        res_d = GAEngine(g, fit, DKNUX(g, 2), cfg, seed=1).run()
        res_2 = GAEngine(g, fit, TwoPointCrossover(), cfg, seed=1).run()
        mid = 20
        assert res_d.history.best_fitness[mid] >= res_2.history.best_fitness[mid]

    def test_quadrant_optimum_found_on_grid(self):
        """On an 8x8 grid with k=4 the quadrant partition (cut 16) is
        optimal; memetic DKNUX should find it.

        Seed-sensitive: ~7/10 seeds reach <= 18 (measured for both the
        per-row and the lockstep batch climber — the distributions
        match).  The seed was re-picked when the batch climber changed
        the hill-climb RNG stream (shared per-pass scan permutations
        instead of per-row shuffles).
        """
        g = grid2d(8, 8)
        fit = Fitness1(g, 4)
        cfg = GAConfig(
            population_size=48,
            max_generations=40,
            hill_climb="all",
            hill_climb_passes=2,
            patience=10,
        )
        res = GAEngine(g, fit, DKNUX(g, 4), cfg, seed=0).run()
        assert res.best.cut_size <= 18.0  # quadrants=16; allow near-optimal
        assert res.best.part_sizes.tolist() == [16, 16, 16, 16]
