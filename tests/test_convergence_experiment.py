"""Tests for the convergence-figure experiment."""

import pytest

from repro.errors import ExperimentError
from repro.experiments import format_convergence, run_convergence


@pytest.fixture(scope="module")
def result():
    return run_convergence(
        size=78,
        n_parts=4,
        n_runs=2,
        generations=25,
        population_size=24,
        seed=3,
    )


class TestRunConvergence:
    def test_all_operators_present(self, result):
        assert set(result.curves) == {"2-point", "uniform", "knux", "dknux"}

    def test_curve_lengths(self, result):
        for curve in result.curves.values():
            assert curve.summary.n_generations == 26  # initial + 25
            assert curve.summary.n_runs == 2

    def test_knowledge_operators_dominate(self, result):
        """The paper's figure shape at the end of the budget."""
        final = {n: c.summary.mean[-1] for n, c in result.curves.items()}
        assert final["knux"] > final["2-point"]
        assert final["dknux"] > final["2-point"]
        assert final["knux"] > final["uniform"]

    def test_auc_ordering(self, result):
        """Knowledge-based operators converge faster (higher AUC)."""
        assert result.curves["knux"].auc > result.curves["2-point"].auc

    def test_speedup_generation_meaningful(self, result):
        """KNUX passes 2-point's final level well before the budget ends —
        the quantified form of the 'orders of magnitude speed' claim."""
        gen = result.curves["knux"].speedup_generation
        assert gen is not None
        assert gen < result.generations // 2

    def test_bad_runs(self):
        with pytest.raises(ExperimentError):
            run_convergence(n_runs=0)


class TestFormat:
    def test_contains_operators_and_metrics(self, result):
        text = format_convergence(result)
        for name in ("2-point", "uniform", "knux", "dknux"):
            assert name in text
        assert "normalized AUC" in text
        assert "generation" in text
