"""Weighted nodes and edges through every pipeline.

The paper's experiments use unit weights, but its formulation (Section 2)
is fully weighted ("weighted edges and nodes can also be handled
easily"); these tests verify that claim holds across the whole stack.
"""

import numpy as np
import pytest

from repro.baselines import ibp_partition, rcb_partition, rsb_partition
from repro.ga import DKNUX, Fitness1, Fitness2, GAConfig, GAEngine, HillClimber
from repro.graphs import CSRGraph, grid2d, mesh_graph
from repro.partition import Partition, check_partition


@pytest.fixture(scope="module")
def weighted_mesh():
    """Mesh with a 'hot spot': nodes near the center cost 4x, the edges
    around them carry 3x communication."""
    g = mesh_graph(80, seed=91)
    center = np.array([0.5, 0.5])
    d = np.linalg.norm(g.coords - center, axis=1)
    node_w = np.where(d < 0.25, 4.0, 1.0)
    mid = (g.coords[g.edges_u] + g.coords[g.edges_v]) / 2
    edge_w = np.where(np.linalg.norm(mid - center, axis=1) < 0.25, 3.0, 1.0)
    return g.with_weights(node_weights=node_w, edge_weights=edge_w)


class TestWeightedMetrics:
    def test_loads_follow_node_weights(self, weighted_mesh):
        p = rsb_partition(weighted_mesh, 4)
        assert np.isclose(
            p.part_loads.sum(), weighted_mesh.total_node_weight()
        )

    def test_rsb_balances_weight_not_count(self, weighted_mesh):
        p = rsb_partition(weighted_mesh, 4)
        # weighted loads are near-equal...
        assert p.balance_ratio < 1.3
        # ...which forces *count* imbalance because of the hot spot
        sizes = p.part_sizes
        assert sizes.max() - sizes.min() >= 2

    def test_ibp_balances_weight(self, weighted_mesh):
        p = ibp_partition(weighted_mesh, 4)
        assert p.balance_ratio < 1.4

    def test_rcb_balances_weight(self, weighted_mesh):
        p = rcb_partition(weighted_mesh, 4)
        assert p.balance_ratio < 1.4


class TestWeightedGA:
    def test_engine_runs_and_balances_weight(self, weighted_mesh):
        fit = Fitness1(weighted_mesh, 4)
        cfg = GAConfig(
            population_size=24,
            max_generations=25,
            hill_climb="all",
            patience=8,
        )
        res = GAEngine(
            weighted_mesh, fit, DKNUX(weighted_mesh, 4), cfg, seed=1
        ).run()
        check_partition(res.best)
        assert res.best.balance_ratio < 1.35

    def test_fitness_counts_edge_weights(self, weighted_mesh):
        fit = Fitness1(weighted_mesh, 2)
        a = rsb_partition(weighted_mesh, 2).assignment
        from repro.partition import cut_size, load_imbalance

        expected = -(
            load_imbalance(weighted_mesh, a, 2)
            + 2 * cut_size(weighted_mesh, a)
        )
        assert np.isclose(fit.evaluate(a), expected)

    def test_knux_bias_uses_edge_weights(self):
        """A single heavy edge dominates the neighbor counts."""
        from repro.ga import neighbor_part_counts

        g = CSRGraph(3, [0, 0], [1, 2], edge_weights=[10.0, 1.0])
        est = np.array([0, 0, 1])
        counts = neighbor_part_counts(g, est, 2)
        assert counts[0].tolist() == [10.0, 1.0]

    def test_hillclimb_weighted_consistency(self, weighted_mesh):
        for cls in (Fitness1, Fitness2):
            fit = cls(weighted_mesh, 3)
            hc = HillClimber(weighted_mesh, fit)
            a = rsb_partition(weighted_mesh, 3).assignment
            improved, value = hc.improve(a, max_passes=3)
            assert np.isclose(value, fit.evaluate(improved))
            assert value >= fit.evaluate(a) - 1e-9

    def test_heavy_edges_avoid_the_cut(self):
        """The optimizer should route the cut around 3x-weight edges: a
        grid with a heavy column of edges gets cut elsewhere."""
        g = grid2d(6, 6)
        # make vertical edges in column 2-3 heavy
        ew = np.ones(g.n_edges)
        for i, (u, v) in enumerate(zip(g.edges_u, g.edges_v)):
            cu, cv = u % 6, v % 6
            if {cu, cv} == {2, 3}:
                ew[i] = 5.0
        heavy = g.with_weights(edge_weights=ew)
        fit = Fitness1(heavy, 2)
        cfg = GAConfig(
            population_size=32, max_generations=30, hill_climb="all",
            patience=10,
        )
        res = GAEngine(heavy, fit, DKNUX(heavy, 2), cfg, seed=2).run()
        cut_cols = set()
        a = res.best.assignment
        for u, v, w in heavy.iter_edges():
            if a[u] != a[v] and w > 1.0:
                cut_cols.add((u % 6, v % 6))
        assert not cut_cols  # no heavy edge is cut
