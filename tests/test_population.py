"""Tests for population initialization."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.ga import random_population, seeded_population
from repro.graphs import mesh_graph


class TestRandomPopulation:
    def test_shape_and_range(self):
        pop = random_population(30, 4, 20, seed=1)
        assert pop.shape == (20, 30)
        assert pop.min() >= 0 and pop.max() < 4

    def test_balanced_rows(self):
        pop = random_population(24, 4, 15, seed=2)
        for row in pop:
            sizes = np.bincount(row, minlength=4)
            assert sizes.max() - sizes.min() <= 1

    def test_unbalanced_mode(self):
        pop = random_population(200, 4, 5, seed=3, balanced=False)
        # extremely unlikely to be balanced in every row
        ranges = [np.ptp(np.bincount(r, minlength=4)) for r in pop]
        assert max(ranges) > 1

    def test_rows_differ(self):
        pop = random_population(50, 2, 10, seed=4)
        assert not all(np.array_equal(pop[0], pop[i]) for i in range(1, 10))

    def test_deterministic(self):
        assert np.array_equal(
            random_population(20, 3, 6, seed=5),
            random_population(20, 3, 6, seed=5),
        )

    def test_bad_args(self):
        with pytest.raises(ConfigError):
            random_population(10, 2, 0)
        with pytest.raises(ConfigError):
            random_population(10, 0, 5)


class TestSeededPopulation:
    @pytest.fixture
    def setup(self):
        g = mesh_graph(50, seed=6)
        seed_assign = (np.arange(50) % 4).astype(np.int64)
        return g, seed_assign

    def test_contains_exact_copy(self, setup):
        g, sa = setup
        pop = seeded_population(g, 4, 12, sa, seed=1, exact_copies=2)
        matches = sum(np.array_equal(row, sa) for row in pop)
        assert matches >= 2

    def test_perturbed_rows_close_to_seed(self, setup):
        g, sa = setup
        pop = seeded_population(
            g, 4, 10, sa, seed=2, exact_copies=1, perturb_rate=0.05,
            random_fraction=0.0,
        )
        for row in pop[1:]:
            hamming = (row != sa).mean()
            assert hamming < 0.25  # jitter, not noise

    def test_perturbations_use_neighbor_labels(self, setup):
        g, sa = setup
        pop = seeded_population(
            g, 4, 8, sa, seed=3, exact_copies=1, perturb_rate=0.2,
            random_fraction=0.0,
        )
        for row in pop:
            for i in np.flatnonzero(row != sa):
                assert row[i] in sa[g.neighbors(i)]

    def test_random_fraction(self, setup):
        g, sa = setup
        pop = seeded_population(
            g, 4, 20, sa, seed=4, random_fraction=0.5, perturb_rate=0.0
        )
        # with zero perturb rate, non-random rows equal the seed exactly
        matches = sum(np.array_equal(row, sa) for row in pop)
        assert 8 <= matches <= 12

    def test_shape(self, setup):
        g, sa = setup
        pop = seeded_population(g, 4, 17, sa, seed=5)
        assert pop.shape == (17, 50)
        assert pop.min() >= 0 and pop.max() < 4

    def test_validation(self, setup):
        g, sa = setup
        with pytest.raises(ConfigError):
            seeded_population(g, 4, 0, sa)
        with pytest.raises(ConfigError):
            seeded_population(g, 4, 5, sa, exact_copies=6)
        with pytest.raises(ConfigError):
            seeded_population(g, 4, 5, sa, perturb_rate=2.0)
        with pytest.raises(ConfigError):
            seeded_population(g, 4, 5, sa, random_fraction=-0.5)
        with pytest.raises(ConfigError):
            seeded_population(g, 4, 5, sa[:10])
        with pytest.raises(ConfigError):
            seeded_population(g, 2, 5, sa)  # labels up to 3 but k=2
