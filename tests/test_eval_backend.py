"""Tests for the fast evaluation backend and evaluation bookkeeping.

Covers the fused-bincount batch metrics (equivalence with the seed's
scatter-add forms on random weighted graphs, chunking invariance, the
scalar/batch bit-identity), the caching :class:`BatchEvaluator`, and
the engine-level bookkeeping fixes: best-ever tracking under
generational replacement with ``elite=0`` and exact evaluation
counting across all hill-climb modes.
"""

import numpy as np
import pytest

from repro.errors import PartitionError
from repro.ga import (
    BatchEvaluator,
    Fitness1,
    Fitness2,
    GAConfig,
    GAEngine,
    HillClimber,
    UniformCrossover,
)
from repro.graphs import CSRGraph, mesh_graph
from repro.partition import metrics
from repro.partition.metrics import (
    batch_cut_size,
    batch_load_imbalance,
    batch_part_cuts,
    batch_part_loads,
    part_cuts,
    part_loads,
)


# ----------------------------------------------------------------------
# Reference implementations: the seed's np.add.at scatter-add forms
# ----------------------------------------------------------------------

def ref_batch_part_loads(graph, pop, n_parts):
    p = pop.shape[0]
    loads = np.zeros((p, n_parts))
    rows = np.broadcast_to(np.arange(p)[:, None], pop.shape)
    np.add.at(loads, (rows, pop), graph.node_weights[None, :])
    return loads


def ref_batch_part_cuts(graph, pop, n_parts):
    p = pop.shape[0]
    cuts = np.zeros((p, n_parts))
    if graph.n_edges == 0:
        return cuts
    pu = pop[:, graph.edges_u]
    pv = pop[:, graph.edges_v]
    w = np.where(pu != pv, graph.edge_weights[None, :], 0.0)
    rows = np.broadcast_to(np.arange(p)[:, None], pu.shape)
    np.add.at(cuts, (rows, pu), w)
    np.add.at(cuts, (rows, pv), w)
    return cuts


def random_weighted_graph(seed, n=57, m=240, unit_weights=False):
    rng = np.random.default_rng(seed)
    eu = rng.integers(0, n, size=m)
    ev = rng.integers(0, n, size=m)
    keep = eu != ev
    eu, ev = eu[keep], ev[keep]
    if unit_weights:
        ew, nw = None, None
    else:
        ew = rng.uniform(0.25, 8.0, size=eu.size)
        nw = rng.uniform(0.5, 4.0, size=n)
    return CSRGraph(n, eu, ev, edge_weights=ew, node_weights=nw)


class TestMetricEquivalence:
    @pytest.mark.parametrize("seed,k", [(0, 2), (1, 4), (2, 7), (3, 11)])
    def test_weighted_graphs_match_reference(self, seed, k):
        g = random_weighted_graph(seed)
        rng = np.random.default_rng(seed + 100)
        pop = rng.integers(0, k, size=(33, g.n_nodes))
        np.testing.assert_allclose(
            batch_part_loads(g, pop, k), ref_batch_part_loads(g, pop, k),
            rtol=0, atol=1e-9,
        )
        np.testing.assert_allclose(
            batch_part_cuts(g, pop, k), ref_batch_part_cuts(g, pop, k),
            rtol=0, atol=1e-9,
        )

    def test_unit_weight_graphs_match_exactly(self):
        g = mesh_graph(80, seed=5)
        rng = np.random.default_rng(7)
        pop = rng.integers(0, 5, size=(40, 80))
        assert np.array_equal(
            batch_part_loads(g, pop, 5), ref_batch_part_loads(g, pop, 5)
        )
        assert np.array_equal(
            batch_part_cuts(g, pop, 5), ref_batch_part_cuts(g, pop, 5)
        )

    def test_loads_bitwise_identical_to_reference_weighted(self):
        # the loads kernel accumulates nodes in the same order as the
        # scatter-add form, so even float weights agree bitwise
        g = random_weighted_graph(9)
        rng = np.random.default_rng(8)
        pop = rng.integers(0, 6, size=(21, g.n_nodes))
        assert np.array_equal(
            batch_part_loads(g, pop, 6), ref_batch_part_loads(g, pop, 6)
        )

    @pytest.mark.parametrize("unit", [True, False])
    def test_scalar_forms_bitwise_match_batch(self, unit):
        g = random_weighted_graph(11, unit_weights=unit)
        rng = np.random.default_rng(12)
        for k in (2, 5):
            a = rng.integers(0, k, size=g.n_nodes)
            assert np.array_equal(
                part_loads(g, a, k), batch_part_loads(g, a[None, :], k)[0]
            )
            assert np.array_equal(
                part_cuts(g, a, k), batch_part_cuts(g, a[None, :], k)[0]
            )

    def test_fractional_weights_keep_exact_zeros(self):
        """Uncut parts must report exactly 0.0 even with large
        fractional weights (the incident-minus-internal identity would
        cancel two huge sums into noise; those graphs take the direct
        path)."""
        rng = np.random.default_rng(31)
        n = 64
        eu = rng.integers(0, n, 300)
        ev = rng.integers(0, n, 300)
        keep = eu != ev
        g = CSRGraph(
            n, eu[keep], ev[keep],
            edge_weights=rng.uniform(1e6, 1e7, size=int(keep.sum())),
        )
        pop = np.zeros((4, n), dtype=np.int64)  # everything internal
        assert np.all(batch_part_cuts(g, pop, 3) == 0.0)

    def test_fractional_weights_bitwise_match_reference(self):
        """The direct path accumulates endpoints in the same order as
        the scatter-add form, so positive float weights agree bitwise."""
        g = random_weighted_graph(33)
        rng = np.random.default_rng(34)
        pop = rng.integers(0, 4, size=(17, g.n_nodes))
        assert np.array_equal(
            batch_part_cuts(g, pop, 4), ref_batch_part_cuts(g, pop, 4)
        )

    def test_near_converged_population_dense_path(self):
        # mostly-uncut rows exercise the dense internal-edge branch
        g = random_weighted_graph(13)
        pop = np.zeros((30, g.n_nodes), dtype=np.int64)
        pop[:, :3] = 1  # a few boundary nodes only
        np.testing.assert_allclose(
            batch_part_cuts(g, pop, 3), ref_batch_part_cuts(g, pop, 3),
            rtol=0, atol=1e-9,
        )

    def test_edgeless_and_empty(self):
        g = CSRGraph(4, [], [])
        pop = np.zeros((3, 4), dtype=np.int64)
        assert batch_part_cuts(g, pop, 2).tolist() == [[0, 0]] * 3
        empty = np.zeros((0, 4), dtype=np.int64)
        assert batch_part_cuts(g, empty, 2).shape == (0, 2)
        assert batch_part_loads(g, empty, 2).shape == (0, 2)


class TestChunking:
    @pytest.mark.parametrize("chunk_rows", [1, 3, 7, 1000])
    def test_chunked_results_bit_identical(self, chunk_rows):
        g = random_weighted_graph(21)
        rng = np.random.default_rng(22)
        pop = rng.integers(0, 4, size=(25, g.n_nodes))
        full_loads = batch_part_loads(g, pop, 4)
        full_cuts = batch_part_cuts(g, pop, 4)
        full_sizes = batch_cut_size(g, pop)
        assert np.array_equal(
            full_loads, batch_part_loads(g, pop, 4, chunk_rows=chunk_rows)
        )
        assert np.array_equal(
            full_cuts, batch_part_cuts(g, pop, 4, chunk_rows=chunk_rows)
        )
        # cut_size's BLAS row reduction may move the last ulp between
        # chunk heights; the bincount metrics above are bit-invariant
        np.testing.assert_allclose(
            full_sizes, batch_cut_size(g, pop, chunk_rows=chunk_rows),
            rtol=0, atol=1e-9,
        )

    def test_auto_chunking_kicks_in_under_small_budget(self, monkeypatch):
        g = random_weighted_graph(23)
        rng = np.random.default_rng(24)
        pop = rng.integers(0, 3, size=(19, g.n_nodes))
        expected_loads = batch_part_loads(g, pop, 3)
        expected_cuts = batch_part_cuts(g, pop, 3)
        monkeypatch.setattr(metrics, "_CHUNK_ELEMS", 64)
        assert np.array_equal(expected_loads, batch_part_loads(g, pop, 3))
        assert np.array_equal(expected_cuts, batch_part_cuts(g, pop, 3))

    def test_invalid_chunk_rows_rejected(self):
        g = mesh_graph(30, seed=1)
        pop = np.zeros((2, 30), dtype=np.int64)
        with pytest.raises(PartitionError):
            batch_part_loads(g, pop, 2, chunk_rows=0)

    def test_validation_still_enforced_by_default(self):
        g = mesh_graph(30, seed=1)
        with pytest.raises(PartitionError):
            batch_part_cuts(g, np.full((2, 30), 9, dtype=np.int64), 4)
        f = Fitness1(g, 3)
        with pytest.raises(PartitionError):
            f.evaluate_batch(np.full((2, 30), 9, dtype=np.int64))


# ----------------------------------------------------------------------
# The caching evaluator
# ----------------------------------------------------------------------

class SpyFitness(Fitness1):
    """Records every row that actually flows through evaluate_batch."""

    def __init__(self, graph, n_parts, alpha=1.0):
        super().__init__(graph, n_parts, alpha=alpha)
        self.rows_evaluated = 0
        self.best_seen = -np.inf

    def evaluate_batch(self, population):
        out = super().evaluate_batch(population)
        self.rows_evaluated += out.shape[0]
        if out.size:
            self.best_seen = max(self.best_seen, float(out.max()))
        return out


class TestBatchEvaluator:
    def setup_method(self):
        self.graph = mesh_graph(50, seed=3)
        self.k = 4
        rng = np.random.default_rng(0)
        self.pop = rng.integers(0, self.k, size=(24, 50))

    def test_cached_rows_not_reevaluated(self):
        spy = SpyFitness(self.graph, self.k)
        full = spy.evaluate_batch(self.pop)
        spy.rows_evaluated = 0
        ev = BatchEvaluator(spy)
        mask = np.zeros(24, dtype=bool)
        mask[::2] = True  # even rows "known"
        values, n_new = ev.evaluate(
            self.pop, known_fitness=full, known_mask=mask
        )
        assert np.array_equal(values, full)
        assert n_new == 12
        assert spy.rows_evaluated == 12
        assert ev.n_evaluations == 12

    def test_all_known_evaluates_nothing(self):
        fit = Fitness1(self.graph, self.k)
        full = fit.evaluate_batch(self.pop)
        ev = BatchEvaluator(fit)
        values, n_new = ev.evaluate(
            self.pop, known_fitness=full, known_mask=np.ones(24, dtype=bool)
        )
        assert n_new == 0
        assert np.array_equal(values, full)

    def test_best_survives_worse_batches(self):
        fit = Fitness1(self.graph, self.k)
        ev = BatchEvaluator(fit)
        first, _ = ev.evaluate(self.pop)
        best_idx = int(np.argmax(first))
        best_row = self.pop[best_idx].copy()
        worse = np.asarray(ev.best_assignment is not None)
        assert worse
        # feed a strictly worse batch: best tracker must not move
        keep_f, keep_a = ev.best_fitness, ev.best_assignment.copy()
        bad = np.tile(self.pop[int(np.argmin(first))], (4, 1))
        ev.evaluate(bad)
        assert ev.best_fitness == keep_f
        assert np.array_equal(ev.best_assignment, keep_a)
        assert np.array_equal(ev.best_assignment, best_row)
        assert ev.best_fitness == float(first[best_idx])

    def test_known_mask_requires_known_fitness(self):
        from repro.errors import ConfigError

        ev = BatchEvaluator(Fitness1(self.graph, self.k))
        with pytest.raises(ConfigError):
            ev.evaluate(self.pop, known_mask=np.ones(24, dtype=bool))

    def test_reset_clears_state(self):
        fit = Fitness1(self.graph, self.k)
        ev = BatchEvaluator(fit)
        ev.evaluate(self.pop)
        ev.reset()
        assert ev.n_evaluations == 0
        assert ev.best_assignment is None
        assert ev.best_fitness == -np.inf


# ----------------------------------------------------------------------
# Engine bookkeeping regressions
# ----------------------------------------------------------------------

class TestEngineBookkeeping:
    def _setup(self, seed=0):
        g = mesh_graph(40, seed=11)
        spy = SpyFitness(g, 3)
        return g, spy

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_best_ever_with_generational_elite0(self, seed):
        """Regression: with elite=0 the best offspring can be dropped at
        replacement; the result must still report it."""
        g, spy = self._setup()
        cfg = GAConfig(
            population_size=12,
            max_generations=25,
            replacement="generational",
            elite=0,
            mutation_rate=0.05,
        )
        res = GAEngine(g, spy, UniformCrossover(), cfg, seed=seed).run()
        assert res.best_fitness == spy.best_seen
        assert res.best_fitness == pytest.approx(
            spy.evaluate(res.best.assignment)
        )

    @pytest.mark.parametrize(
        "mode", ["off", "best", "all", "final"]
    )
    def test_evaluations_count_every_row_exactly_once(self, mode):
        """GAHistory.evaluations == rows actually passed through the
        fitness function, across every hill-climb mode."""
        g, spy = self._setup()
        cfg = GAConfig(
            population_size=10,
            max_generations=6,
            hill_climb=mode,
            hill_climb_passes=1,
        )
        res = GAEngine(g, spy, UniformCrossover(), cfg, seed=5).run()
        assert res.history.n_evaluations == spy.rows_evaluated

    def test_clones_are_not_reevaluated(self):
        """With crossover and mutation off, every offspring is a clone:
        only the initial population is ever evaluated."""
        g, spy = self._setup()
        cfg = GAConfig(
            population_size=10,
            max_generations=5,
            crossover_rate=0.0,
            mutation_rate=0.0,
        )
        res = GAEngine(g, spy, UniformCrossover(), cfg, seed=6).run()
        assert spy.rows_evaluated == 10
        assert res.history.n_evaluations == 10

    def test_cached_run_matches_uncached_fitness_values(self):
        """Caching must not change the search: every recorded fitness
        equals a fresh evaluation of the corresponding individual."""
        g = mesh_graph(40, seed=11)
        fit = Fitness1(g, 3)
        cfg = GAConfig(population_size=8, max_generations=10)
        res = GAEngine(g, fit, UniformCrossover(), cfg, seed=7).run()
        assert res.best_fitness == fit.evaluate(res.best.assignment)

    def test_hillclimb_all_uses_climber_fitness(self):
        g = mesh_graph(40, seed=11)
        spy = SpyFitness(g, 3)
        cfg = GAConfig(population_size=8, max_generations=3, hill_climb="all")
        engine = GAEngine(g, spy, UniformCrossover(), cfg, seed=8)
        res = engine.run()
        # rows: initial 8 + per gen (evaluated offspring + 8 climbed);
        # exact total is checked via the spy
        assert res.history.n_evaluations == spy.rows_evaluated

    def test_engine_evaluator_exposed_and_reset_per_run(self):
        g = mesh_graph(40, seed=11)
        fit = Fitness1(g, 3)
        cfg = GAConfig(population_size=8, max_generations=2)
        engine = GAEngine(g, fit, UniformCrossover(), cfg, seed=9)
        engine.run()
        first_count = engine.evaluator.n_evaluations
        engine.run()
        assert engine.evaluator.n_evaluations <= first_count * 2
        assert engine.evaluator.best_assignment is not None


class TestCrossGenerationMemo:
    """The row-hash memo: exact reuse across calls, bounded capacity,
    DPGA migrant coverage."""

    def setup_method(self):
        self.graph = mesh_graph(50, seed=3)
        self.k = 4
        rng = np.random.default_rng(0)
        self.pop = rng.integers(0, self.k, size=(20, 50))

    def test_repeated_rows_not_reevaluated_across_calls(self):
        spy = SpyFitness(self.graph, self.k)
        ev = BatchEvaluator(spy, memo_capacity=1024)
        first, n1 = ev.evaluate(self.pop)
        assert n1 == 20 and spy.rows_evaluated == 20
        again, n2 = ev.evaluate(self.pop)
        assert n2 == 0
        assert spy.rows_evaluated == 20  # nothing flowed through again
        assert np.array_equal(again, first)
        assert ev.memo_hits == 20

    def test_intra_batch_duplicates_evaluated_once(self):
        spy = SpyFitness(self.graph, self.k)
        ev = BatchEvaluator(spy, memo_capacity=1024)
        batch = np.vstack([self.pop[:3]] * 4)  # 3 unique rows, 12 total
        values, n = ev.evaluate(batch)
        assert n == 3 and spy.rows_evaluated == 3
        expected = Fitness1(self.graph, self.k).evaluate_batch(self.pop[:3])
        assert np.array_equal(values, np.tile(expected, 4))

    def test_memo_values_are_exact(self):
        fit = Fitness1(self.graph, self.k)
        ev = BatchEvaluator(fit, memo_capacity=1024)
        ev.evaluate(self.pop)
        cached, _ = ev.evaluate(self.pop)
        assert np.array_equal(cached, fit.evaluate_batch(self.pop))

    def test_capacity_bounds_memo(self):
        fit = Fitness1(self.graph, self.k)
        ev = BatchEvaluator(fit, memo_capacity=8)
        ev.evaluate(self.pop)  # 20 rows through an 8-entry memo
        assert len(ev._memo) <= 8
        # the freshest rows survived (LRU insertion order)
        _, n = ev.evaluate(self.pop[-8:])
        assert n == 0

    def test_memoize_external_rows(self):
        """Migrant-style insertion: rows whose fitness arrived from
        elsewhere are never re-evaluated."""
        spy = SpyFitness(self.graph, self.k)
        ev = BatchEvaluator(spy, memo_capacity=64)
        values = Fitness1(self.graph, self.k).evaluate_batch(self.pop[:4])
        ev.memoize(self.pop[:4], values)
        out, n = ev.evaluate(self.pop[:4])
        assert n == 0 and spy.rows_evaluated == 0
        assert np.array_equal(out, values)

    def test_memo_disabled_by_default_for_bare_evaluator(self):
        ev = BatchEvaluator(Fitness1(self.graph, self.k))
        ev.evaluate(self.pop)
        _, n = ev.evaluate(self.pop)
        assert n == 20  # no memo: every row evaluated again

    def test_memo_survives_reset(self):
        fit = Fitness1(self.graph, self.k)
        ev = BatchEvaluator(fit, memo_capacity=64)
        ev.evaluate(self.pop)
        ev.reset()
        assert ev.n_evaluations == 0
        _, n = ev.evaluate(self.pop)
        assert n == 0  # cached fitness is still exact after reset

    def test_engine_trajectory_identical_with_and_without_memo(self):
        """The memo changes evaluation counts, never the search."""
        g = mesh_graph(40, seed=11)
        runs = {}
        for memo in (0, 4096):
            fit = Fitness1(g, 3)
            cfg = GAConfig(
                population_size=10, max_generations=12, eval_memo=memo
            )
            runs[memo] = GAEngine(
                g, fit, UniformCrossover(), cfg, seed=13
            ).run()
        assert runs[0].best_fitness == runs[4096].best_fitness
        assert np.array_equal(
            runs[0].best.assignment, runs[4096].best.assignment
        )
        assert runs[0].history.best_fitness == runs[4096].history.best_fitness
        assert runs[0].history.mean_fitness == runs[4096].history.mean_fitness
        # and the memo genuinely saved evaluations
        assert runs[4096].history.n_evaluations <= runs[0].history.n_evaluations

    def test_dpga_migrants_are_memoized(self):
        """After a migration round, the destination island's evaluator
        answers migrant rows from its memo."""
        from repro.ga import DPGA, DPGAConfig

        g = mesh_graph(40, seed=11)
        fit = Fitness1(g, 3)
        dpga = DPGA(
            g,
            fit,
            UniformCrossover,
            ga_config=GAConfig(population_size=8),
            dpga_config=DPGAConfig(
                total_population=16, n_islands=2, migration_interval=1,
                migration_size=2, max_generations=0,
            ),
            seed=5,
        )
        rng = np.random.default_rng(2)
        populations = [rng.integers(0, 3, size=(8, 40)) for _ in range(2)]
        fitnesses = [fit.evaluate_batch(p) for p in populations]
        received = dpga._migrate(populations, fitnesses)
        for island, arrived in enumerate(received):
            assert arrived is not None
            dpga.engines[island].evaluator.memoize(*arrived)
            rows, values = arrived
            out, n = dpga.engines[island].evaluator.evaluate(rows)
            assert n == 0  # served entirely from the memo
            assert np.array_equal(out, values)

    def test_invalid_memo_capacity_rejected(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            BatchEvaluator(Fitness1(self.graph, self.k), memo_capacity=-1)
        with pytest.raises(ConfigError):
            GAConfig(eval_memo=-5)


class TestHillClimberFitnessReuse:
    def test_improve_batch_fitness_vector_exact(self):
        g = mesh_graph(40, seed=11)
        fit = Fitness2(g, 3)
        hc = HillClimber(g, fit)
        rng = np.random.default_rng(1)
        pop = rng.integers(0, 3, size=(5, 40))
        out, values = hc.improve_batch(pop, max_passes=2)
        assert values.shape == (5,)
        assert np.array_equal(values, fit.evaluate_batch(out))
