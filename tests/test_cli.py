"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.graphs import grid2d, write_metis


@pytest.fixture
def graph_file(tmp_path):
    path = tmp_path / "grid.graph"
    write_metis(grid2d(6, 6), path)
    return str(path)


@pytest.fixture
def json_graph_file(tmp_path):
    from repro.graphs import write_json

    path = tmp_path / "grid.json"
    write_json(grid2d(6, 6), path)
    return str(path)


class TestParser:
    def test_partition_args(self):
        args = build_parser().parse_args(
            ["partition", "g.graph", "-k", "4", "--method", "rsb"]
        )
        assert args.command == "partition"
        assert args.parts == 4
        assert args.method == "rsb"

    def test_experiment_args(self):
        args = build_parser().parse_args(["experiment", "table1", "--mode", "full"])
        assert args.table == "table1"
        assert args.mode == "full"

    def test_unknown_method_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["partition", "g.graph", "-k", "2", "--method", "magic"]
            )

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestPartitionCommand:
    @pytest.mark.parametrize("method", ["rsb", "rgb", "kl", "greedy", "random"])
    def test_baseline_methods(self, graph_file, method, capsys):
        rc = main(["partition", graph_file, "-k", "4", "--method", method])
        assert rc == 0
        out = capsys.readouterr().out
        assert f"method={method}" in out
        assert "cut=" in out

    @pytest.mark.parametrize("method", ["ibp", "rcb"])
    def test_coordinate_methods_on_json(self, json_graph_file, method, capsys):
        rc = main(["partition", json_graph_file, "-k", "4", "--method", method])
        assert rc == 0
        assert f"method={method}" in capsys.readouterr().out

    @pytest.mark.parametrize("method", ["ibp", "rcb"])
    def test_coordinate_methods_need_coords(self, graph_file, method, capsys):
        rc = main(["partition", graph_file, "-k", "4", "--method", method])
        assert rc == 1
        assert "coordinates" in capsys.readouterr().err

    def test_dknux_method(self, graph_file, capsys):
        rc = main(
            ["partition", graph_file, "-k", "2", "--method", "dknux", "--seed", "1"]
        )
        assert rc == 0
        assert "method=dknux" in capsys.readouterr().out

    def test_output_file(self, graph_file, tmp_path, capsys):
        out_file = tmp_path / "assign.txt"
        rc = main(
            [
                "partition",
                graph_file,
                "-k",
                "2",
                "--method",
                "rsb",
                "--output",
                str(out_file),
            ]
        )
        assert rc == 0
        labels = np.loadtxt(out_file, dtype=int)
        assert labels.shape == (36,)
        assert set(labels.tolist()) == {0, 1}


class TestInfoCommand:
    def test_info(self, graph_file, capsys):
        rc = main(["info", graph_file])
        assert rc == 0
        out = capsys.readouterr().out
        assert "nodes      : 36" in out
        assert "components : 1" in out


class TestWorkloadsCommand:
    def test_lists_all(self, capsys):
        rc = main(["workloads"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "78" in out
        assert "183+60" in out


class TestExperimentCommand:
    def test_runs_small_table(self, capsys, monkeypatch):
        """Run table1 through the CLI with a tiny budget via monkeypatched
        quick settings."""
        from repro.experiments.runner import RunnerSettings
        from repro.ga import GAConfig

        tiny = RunnerSettings(
            n_runs=1,
            ga_config=GAConfig(population_size=16, max_generations=5),
        )
        monkeypatch.setattr(
            RunnerSettings, "quick", classmethod(lambda cls: tiny)
        )
        rc = main(["experiment", "table1", "--seed", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "TABLE1" in out
        assert "paper-DKNUX" in out
