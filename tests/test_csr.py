"""Unit tests for the CSR graph substrate."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graphs import CSRGraph, check_graph


class TestConstruction:
    def test_empty_graph(self):
        g = CSRGraph(0, [], [])
        assert g.n_nodes == 0
        assert g.n_edges == 0
        check_graph(g)

    def test_nodes_without_edges(self):
        g = CSRGraph(5, [], [])
        assert g.n_nodes == 5
        assert g.n_edges == 0
        assert g.degree(3) == 0
        check_graph(g)

    def test_single_edge(self):
        g = CSRGraph(2, [0], [1])
        assert g.n_edges == 1
        assert g.has_edge(0, 1)
        assert g.has_edge(1, 0)
        check_graph(g)

    def test_canonical_orientation(self):
        g = CSRGraph(3, [2, 1], [0, 0])
        assert np.all(g.edges_u < g.edges_v)
        assert g.has_edge(0, 2)
        assert g.has_edge(0, 1)

    def test_duplicate_edges_merge_weights(self):
        g = CSRGraph(2, [0, 1, 0], [1, 0, 1], edge_weights=[1.0, 2.0, 3.0])
        assert g.n_edges == 1
        assert g.edge_weights[0] == 6.0
        check_graph(g)

    def test_default_weights_are_unit(self):
        g = CSRGraph(3, [0, 1], [1, 2])
        assert np.all(g.edge_weights == 1.0)
        assert np.all(g.node_weights == 1.0)

    def test_negative_n_nodes_rejected(self):
        with pytest.raises(GraphError):
            CSRGraph(-1, [], [])

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError, match="self-loop"):
            CSRGraph(3, [1], [1])

    def test_endpoint_out_of_range_rejected(self):
        with pytest.raises(GraphError):
            CSRGraph(3, [0], [3])
        with pytest.raises(GraphError):
            CSRGraph(3, [-1], [1])

    def test_mismatched_endpoint_lengths_rejected(self):
        with pytest.raises(GraphError, match="differ in length"):
            CSRGraph(3, [0, 1], [1])

    def test_bad_edge_weight_length_rejected(self):
        with pytest.raises(GraphError):
            CSRGraph(3, [0], [1], edge_weights=[1.0, 2.0])

    def test_negative_edge_weight_rejected(self):
        with pytest.raises(GraphError):
            CSRGraph(3, [0], [1], edge_weights=[-1.0])

    def test_bad_node_weight_length_rejected(self):
        with pytest.raises(GraphError):
            CSRGraph(3, [0], [1], node_weights=[1.0])

    def test_negative_node_weight_rejected(self):
        with pytest.raises(GraphError):
            CSRGraph(2, [0], [1], node_weights=[1.0, -2.0])

    def test_coords_row_mismatch_rejected(self):
        with pytest.raises(GraphError):
            CSRGraph(3, [0], [1], coords=np.zeros((2, 2)))

    def test_1d_coords_promoted_to_column(self):
        g = CSRGraph(3, [0], [1], coords=np.array([0.0, 1.0, 2.0]))
        assert g.coords.shape == (3, 1)


class TestAdjacency:
    def test_neighbors_of_path(self, path6):
        assert path6.neighbors(0).tolist() == [1]
        assert sorted(path6.neighbors(3).tolist()) == [2, 4]
        assert path6.neighbors(5).tolist() == [4]

    def test_neighbor_weights_aligned(self, weighted_triangle):
        g = weighted_triangle
        nbrs = g.neighbors(0)
        wts = g.neighbor_weights(0)
        lookup = dict(zip(nbrs.tolist(), wts.tolist()))
        assert lookup == {1: 1.0, 2: 4.0}

    def test_degree_array_and_scalar(self, grid4x4):
        degrees = grid4x4.degree()
        assert degrees.sum() == 2 * grid4x4.n_edges
        assert grid4x4.degree(0) == 2  # corner
        assert grid4x4.degree(5) == 4  # interior

    def test_neighbors_out_of_range(self, path6):
        with pytest.raises(GraphError):
            path6.neighbors(6)
        with pytest.raises(GraphError):
            path6.neighbor_weights(-1)
        with pytest.raises(GraphError):
            path6.degree(17)

    def test_has_edge_negative_cases(self, path6):
        assert not path6.has_edge(0, 2)
        assert not path6.has_edge(0, 0)
        assert not path6.has_edge(0, 99)

    def test_edge_list_shape(self, grid4x4):
        el = grid4x4.edge_list()
        assert el.shape == (grid4x4.n_edges, 2)
        assert np.all(el[:, 0] < el[:, 1])

    def test_iter_edges_matches_arrays(self, weighted_triangle):
        edges = list(weighted_triangle.iter_edges())
        assert edges == [(0, 1, 1.0), (0, 2, 4.0), (1, 2, 2.0)]

    def test_totals(self, weighted_triangle):
        assert weighted_triangle.total_node_weight() == 6.0
        assert weighted_triangle.total_edge_weight() == 7.0


class TestImmutability:
    def test_arrays_are_readonly(self, grid4x4):
        with pytest.raises(ValueError):
            grid4x4.edges_u[0] = 5
        with pytest.raises(ValueError):
            grid4x4.node_weights[0] = 2.0
        with pytest.raises(ValueError):
            grid4x4.indices[0] = 3
        with pytest.raises(ValueError):
            grid4x4.coords[0, 0] = 9.0

    def test_unhashable(self, path6):
        with pytest.raises(TypeError):
            hash(path6)


class TestEqualityAndDerivation:
    def test_equality(self):
        a = CSRGraph(3, [0, 1], [1, 2])
        b = CSRGraph(3, [1, 0], [2, 1])
        assert a == b

    def test_inequality_different_weights(self):
        a = CSRGraph(3, [0], [1], edge_weights=[1.0])
        b = CSRGraph(3, [0], [1], edge_weights=[2.0])
        assert a != b

    def test_inequality_non_graph(self, path6):
        assert path6.__eq__(42) is NotImplemented

    def test_with_coords(self, path6):
        coords = np.random.default_rng(0).random((6, 3))
        g = path6.with_coords(coords)
        assert g.coords.shape == (6, 3)
        assert g == path6 or g.n_edges == path6.n_edges  # edges preserved
        assert np.array_equal(g.edges_u, path6.edges_u)

    def test_with_weights(self, path6):
        g = path6.with_weights(node_weights=np.arange(6, dtype=float))
        assert g.node_weights.tolist() == [0, 1, 2, 3, 4, 5]
        assert np.array_equal(g.edge_weights, path6.edge_weights)

    def test_repr(self, grid4x4):
        assert "n_nodes=16" in repr(grid4x4)
        assert "coords=2d" in repr(grid4x4)


class TestLen:
    def test_len_is_node_count(self, grid4x4):
        assert len(grid4x4) == 16
