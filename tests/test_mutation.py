"""Tests for mutation operators."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.ga import BoundaryMutation, PointMutation
from repro.graphs import CSRGraph, grid2d, path_graph


class TestPointMutation:
    def test_rate_zero_identity(self, rng):
        op = PointMutation(4)
        x = rng.integers(0, 4, (10, 20))
        out = op.mutate(x, 0.0, rng)
        assert np.array_equal(out, x)
        assert out is not x  # copy, not alias

    def test_rate_one_all_random(self, rng):
        op = PointMutation(4)
        x = np.zeros((50, 50), dtype=np.int64)
        out = op.mutate(x, 1.0, rng)
        # all labels valid; roughly uniform over parts
        assert out.min() >= 0 and out.max() < 4
        frac_zero = (out == 0).mean()
        assert 0.15 < frac_zero < 0.35

    def test_expected_mutation_count(self, rng):
        op = PointMutation(8)
        x = np.zeros((100, 100), dtype=np.int64)
        out = op.mutate(x, 0.01, rng)
        changed = (out != x).mean()
        # p_m * (k-1)/k expected visible change rate
        assert 0.002 < changed < 0.02

    def test_labels_stay_in_range(self, rng):
        op = PointMutation(3)
        x = rng.integers(0, 3, (20, 30))
        out = op.mutate(x, 0.5, rng)
        assert out.min() >= 0 and out.max() < 3

    def test_bad_rate(self, rng):
        op = PointMutation(2)
        with pytest.raises(ConfigError):
            op.mutate(np.zeros((2, 2), dtype=np.int64), 1.5, rng)

    def test_bad_parts(self):
        with pytest.raises(ConfigError):
            PointMutation(0)

    def test_empty_batch(self, rng):
        op = PointMutation(2)
        out = op.mutate(np.zeros((0, 5), dtype=np.int64), 0.5, rng)
        assert out.shape == (0, 5)

    def test_input_not_mutated_in_place(self, rng):
        op = PointMutation(4)
        x = rng.integers(0, 4, (10, 20))
        x0 = x.copy()
        op.mutate(x, 0.9, rng)
        assert np.array_equal(x, x0)


class TestBoundaryMutation:
    def test_new_label_is_some_neighbors_label(self, rng):
        g = grid2d(5, 5)
        op = BoundaryMutation(g)
        x = rng.integers(0, 3, (30, 25))
        out = op.mutate(x, 1.0, rng)
        changed = np.nonzero(out != x)
        for r, i in zip(*changed):
            nbr_labels = x[r, g.neighbors(i)]
            assert out[r, i] in nbr_labels

    def test_interior_nodes_effectively_immutable(self, rng):
        """If all neighbors share the node's part, mutation cannot
        change it."""
        g = grid2d(4, 4)
        op = BoundaryMutation(g)
        x = np.zeros((20, 16), dtype=np.int64)  # uniform partition
        out = op.mutate(x, 1.0, rng)
        assert np.array_equal(out, x)

    def test_rate_zero_identity(self, rng):
        g = path_graph(10)
        op = BoundaryMutation(g)
        x = rng.integers(0, 2, (5, 10))
        assert np.array_equal(op.mutate(x, 0.0, rng), x)

    def test_isolated_nodes_never_mutate(self, rng):
        g = CSRGraph(5, [0], [1])  # nodes 2..4 isolated
        op = BoundaryMutation(g)
        x = rng.integers(0, 2, (20, 5))
        out = op.mutate(x, 1.0, rng)
        assert np.array_equal(out[:, 2:], x[:, 2:])

    def test_bad_rate(self, rng):
        op = BoundaryMutation(path_graph(4))
        with pytest.raises(ConfigError):
            op.mutate(np.zeros((1, 4), dtype=np.int64), -0.1, rng)

    def test_cut_locality(self, rng):
        """Boundary mutation never increases the number of distinct labels."""
        g = grid2d(6, 6)
        op = BoundaryMutation(g)
        x = np.zeros((10, 36), dtype=np.int64)
        x[:, 18:] = 1
        out = op.mutate(x, 0.3, rng)
        assert set(np.unique(out)) <= {0, 1}
