"""Tests for the selectors event-loop HTTP front (PR 9).

Covers: HTTP/1.1 keep-alive and pipelined in-flight requests over a
raw socket, malformed/oversized-input rejection, front parity with the
thread-per-connection fallback, the persistent keep-alive
:class:`HTTPServiceClient` (connection reuse and automatic reconnect),
and the acceptance stress: ≥256 simultaneous clients with mixed
traffic, every response matched to its request with zero cross-talk,
under a :class:`LockWitness` asserting the connection-state lock graph
is cycle-free and the loop mutex is never held across a socket send.
"""

import json
import socket
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.analysis import LockWitness, extract_lock_graph
from repro.errors import ServiceError
from repro.graphs import mesh_graph
from repro.service import HTTPServiceClient, make_server, serve
from repro.service.eventloop import (
    MAX_HEADER_BYTES,
    EventLoopHTTPServer,
)
from repro.service.models import graph_to_wire

#: tiny GA budget — these tests exercise the front, not search
GA = dict(population_size=12, max_generations=6, patience=3)


@pytest.fixture
def graph():
    return mesh_graph(48, seed=3)


@pytest.fixture(scope="module")
def lock_graph():
    import repro

    src = Path(repro.__file__).resolve().parent
    return extract_lock_graph([str(src)])


def _start(front="eventloop", **kwargs):
    server = serve(port=0, background=True, front=front, n_workers=2, **kwargs)
    return server


def _stop(server):
    server.shutdown()
    server.service.close()
    server.server_close()


def _http_get(sock_file, sock, path, keep_alive=True):
    conn = "keep-alive" if keep_alive else "close"
    sock.sendall(
        f"GET {path} HTTP/1.1\r\nHost: x\r\nConnection: {conn}\r\n\r\n".encode()
    )
    return _read_response(sock_file)


def _read_response(f):
    """One HTTP response off a buffered socket file: (status, body)."""
    status_line = f.readline()
    if not status_line:
        return None, b""
    status = int(status_line.split()[1])
    length = 0
    while True:
        line = f.readline()
        if line in (b"\r\n", b""):
            break
        name, _, value = line.decode().partition(":")
        if name.strip().lower() == "content-length":
            length = int(value.strip())
    return status, f.read(length)


class TestEventLoopFront:
    def test_pipelined_requests_answered_in_order(self, graph):
        """N requests written back-to-back before reading anything come
        back in request order on the same connection."""
        server = _start()
        try:
            host, port = server.server_address[:2]
            payload = json.dumps(
                {"graph": graph_to_wire(graph), "n_parts": 4, "seed": 0,
                 "ga": GA}
            ).encode()
            req = (
                b"POST /v1/partition HTTP/1.1\r\nHost: x\r\n"
                b"Content-Type: application/json\r\n"
                b"Content-Length: " + str(len(payload)).encode() +
                b"\r\n\r\n" + payload
            )
            with socket.create_connection((host, port), timeout=30) as sock:
                sock.sendall(req * 4)  # pipelined: no read between writes
                f = sock.makefile("rb")
                bodies = []
                for _ in range(4):
                    status, body = _read_response(f)
                    assert status == 200
                    bodies.append(json.loads(body))
                # identical request → identical answer, and the
                # connection stays usable afterwards
                assert all(b["assignment"] == bodies[0]["assignment"]
                           for b in bodies)
                status, body = _http_get(f, sock, "/v1/healthz")
                assert status == 200 and json.loads(body)["ok"]
        finally:
            _stop(server)

    def test_malformed_request_line_answers_400_and_closes(self):
        server = _start()
        try:
            host, port = server.server_address[:2]
            with socket.create_connection((host, port), timeout=10) as sock:
                sock.sendall(b"NOT A REQUEST\r\n\r\n")
                f = sock.makefile("rb")
                status, _ = _read_response(f)
                assert status == 400
                assert f.read() == b""  # server closed cleanly
        finally:
            _stop(server)

    def test_oversized_head_answers_431(self):
        server = _start()
        try:
            host, port = server.server_address[:2]
            with socket.create_connection((host, port), timeout=10) as sock:
                sock.sendall(b"GET /v1/healthz HTTP/1.1\r\nX-Pad: ")
                sock.sendall(b"a" * (MAX_HEADER_BYTES + 1024))
                f = sock.makefile("rb")
                status, _ = _read_response(f)
                assert status == 431
        finally:
            _stop(server)

    def test_chunked_upload_answers_501(self):
        server = _start()
        try:
            host, port = server.server_address[:2]
            with socket.create_connection((host, port), timeout=10) as sock:
                sock.sendall(
                    b"POST /v1/partition HTTP/1.1\r\nHost: x\r\n"
                    b"Transfer-Encoding: chunked\r\n\r\n"
                )
                f = sock.makefile("rb")
                status, _ = _read_response(f)
                assert status == 501
        finally:
            _stop(server)

    def test_front_parity_with_thread_server(self, graph):
        """Both fronts run the identical dispatch table: same answers,
        same error shapes."""
        results = {}
        for front in ("eventloop", "thread"):
            server = _start(front=front)
            try:
                host, port = server.server_address[:2]
                client = HTTPServiceClient(f"http://{host}:{port}")
                results[front] = client.partition(graph, 4, seed=0, ga=GA)
                with pytest.raises(ServiceError, match="HTTP 404"):
                    client._call("/v1/nope")
                with pytest.raises(ServiceError, match="HTTP 400"):
                    client._call("/v1/partition", {"n_parts": 4})
            finally:
                _stop(server)
        assert np.array_equal(
            results["eventloop"].assignment, results["thread"].assignment
        )
        assert results["eventloop"].cut_size == results["thread"].cut_size

    def test_front_metrics_exported(self, graph):
        server = _start()
        try:
            host, port = server.server_address[:2]
            client = HTTPServiceClient(f"http://{host}:{port}")
            client.partition(graph, 4, seed=0, ga=GA)
            snap = client.metrics()
            counters = {
                (m["name"]): m for m in snap["counters"]
            }
            assert "repro_http_connections_total" in counters
        finally:
            _stop(server)


class TestKeepAliveClient:
    def test_connection_reused_across_requests(self, graph):
        server = _start()
        try:
            host, port = server.server_address[:2]
            client = HTTPServiceClient(f"http://{host}:{port}")
            client.partition(graph, 4, seed=0, ga=GA)
            first = client._local.conn
            for _ in range(5):
                client.stats()
                client.metrics()
            assert client._local.conn is first  # one socket, many verbs
        finally:
            _stop(server)

    def test_reconnects_after_server_restart(self, graph):
        """The keep-alive race: a request on a connection the server
        already closed is retried once on a fresh connection; the
        caller never sees the stale socket."""
        server = _start()
        host, port = server.server_address[:2]
        client = HTTPServiceClient(f"http://{host}:{port}")
        ref = client.partition(graph, 4, seed=0, ga=GA)
        _stop(server)
        server = serve(port=port, background=True, n_workers=2)
        try:
            got = client.partition(graph, 4, seed=0, ga=GA)
            assert np.array_equal(got.assignment, ref.assignment)
        finally:
            _stop(server)

    def test_fresh_connection_failure_is_not_retried(self):
        """A request failing on a *fresh* connection surfaces
        immediately (the service may have seen it — replay must be the
        caller's decision)."""
        client = HTTPServiceClient("http://127.0.0.1:1", timeout=2.0)
        with pytest.raises(ServiceError, match="cannot reach service"):
            client.stats()

    def test_close_is_idempotent_and_recoverable(self, graph):
        server = _start()
        try:
            host, port = server.server_address[:2]
            client = HTTPServiceClient(f"http://{host}:{port}")
            assert client.healthy()
            client.close()
            client.close()
            assert client.healthy()  # next request reconnects
        finally:
            _stop(server)


class TestConcurrencyStress:
    N_CLIENTS = 256

    def test_256_simultaneous_clients_no_crosstalk(self, graph, lock_graph):
        """The acceptance stress: ≥256 simultaneous keep-alive
        connections with mixed traffic (healthz, stats, partition,
        session open/update/close), every response matched to its
        request, zero cross-talk — under the runtime lock witness.

        The witness wraps every ``repro`` lock created while active, so
        the server is built inside it: the loop's ``_mutex`` (the only
        lock shared with worker threads) must stay a leaf of the static
        lock graph — cycle-free — and must never be held while
        ``_on_writable`` runs a socket send.
        """
        assert "EventLoopHTTPServer._mutex" in lock_graph.nodes
        # statically a leaf: no lock is ever taken under the loop mutex
        assert not [
            e for e in lock_graph.edges
            if "EventLoopHTTPServer._mutex" in e
        ]
        assert lock_graph.find_cycles() == []

        with LockWitness() as witness:
            witness.probe(EventLoopHTTPServer, "_on_writable")
            server = make_server("127.0.0.1", 0, n_workers=2)
            loop = threading.Thread(target=server.serve_forever, daemon=True)
            loop.start()
            try:
                self._hammer(server, graph)
            finally:
                _stop(server)
                loop.join(timeout=10)
        witness.assert_subgraph_of(lock_graph)
        sends = witness.assert_never_held_during(
            lock_graph, "EventLoopHTTPServer._mutex", "_on_writable"
        )
        assert sends >= self.N_CLIENTS  # every client's replies probed

    def _hammer(self, server, graph):
        host, port = server.server_address[:2]
        wire = graph_to_wire(graph)
        failures: list = []
        barrier = threading.Barrier(self.N_CLIENTS, timeout=120)

        def worker(idx: int) -> None:
            try:
                with socket.create_connection(
                    (host, port), timeout=90
                ) as sock:
                    f = sock.makefile("rb")
                    barrier.wait()  # all clients connected before traffic
                    for step in range(3):
                        status, body = _http_get(f, sock, "/v1/healthz")
                        assert status == 200, (idx, step, status)
                        assert json.loads(body)["ok"] is True
                    # a request whose answer must echo *this* client's
                    # input: cross-talk would mismatch n_parts/seed
                    n_parts = 2 + (idx % 3)
                    payload = json.dumps(
                        {"graph": wire, "n_parts": n_parts,
                         "seed": idx % 5, "method": "greedy"}
                    ).encode()
                    sock.sendall(
                        b"POST /v1/partition HTTP/1.1\r\nHost: x\r\n"
                        b"Content-Type: application/json\r\n"
                        b"Content-Length: " + str(len(payload)).encode()
                        + b"\r\n\r\n" + payload
                    )
                    status, body = _read_response(f)
                    assert status == 200, (idx, status, body[:120])
                    answer = json.loads(body)
                    got_parts = len(set(answer["assignment"]))
                    assert got_parts == n_parts, (idx, got_parts, n_parts)
                    status, body = _http_get(
                        f, sock, "/v1/stats", keep_alive=False
                    )
                    assert status == 200
            except Exception as exc:  # noqa: BLE001 - recorded for assert
                failures.append((idx, repr(exc)))

        threads = [
            threading.Thread(target=worker, args=(i,), daemon=True)
            for i in range(self.N_CLIENTS)
        ]
        for t in threads:
            t.start()
        deadline = time.time() + 180
        for t in threads:
            t.join(timeout=max(0.1, deadline - time.time()))
        alive = [t for t in threads if t.is_alive()]
        assert not alive, f"{len(alive)} clients hung"
        assert not failures, failures[:10]
