"""Single-threaded event-loop HTTP front (``front="eventloop"``).

One :mod:`selectors` loop multiplexes every client connection of the
partition service: the loop thread owns all connection state (parse
buffers, pipelining windows, write queues) and never blocks on request
execution — complete requests are handed to a small worker pool that
runs the shared route table (:func:`repro.service.http.
dispatch_request`, the same one the threaded front uses, so responses
are byte-identical between fronts) and posts finished responses back
through a completion queue plus a wake socket.

Protocol surface:

* **HTTP/1.1 keep-alive** — connections persist across requests
  (HTTP/1.0 closes unless the client asks to keep alive), so a client
  pays connection setup once, not per request.
* **Pipelining** — up to :data:`MAX_PIPELINE_DEPTH` requests per
  connection may be in flight at once; responses are written strictly
  in request order (each request gets a per-connection sequence number,
  out-of-order completions park in a reorder window).  Above the cap
  the connection's read interest is dropped — TCP backpressure, not
  unbounded buffering.
* **Bounded inputs** — request heads over :data:`MAX_HEADER_BYTES`
  answer ``431``, bodies over :data:`~repro.service.http.
  MAX_BODY_BYTES` answer ``413``, chunked uploads answer ``501``; all
  three then close cleanly.  Malformed request lines answer ``400``.

Threading contract (asserted by the LockWitness stress test): the only
lock is the completion-queue mutex, a leaf held for a deque append/pop
only — never across a socket send, never while another lock is held.
The wake-socket write happens *outside* it.  Everything else is
loop-thread-owned and needs no lock at all.
"""

from __future__ import annotations

import json
import selectors
import socket
import threading
from collections import deque
from concurrent.futures import ThreadPoolExecutor

from .http import MAX_BODY_BYTES, dispatch_request

__all__ = [
    "EventLoopHTTPServer",
    "MAX_HEADER_BYTES",
    "MAX_PIPELINE_DEPTH",
]

#: request-head ceiling (request line + headers); a head that exceeds
#: it answers 431 and closes
MAX_HEADER_BYTES = 64 << 10

#: per-connection cap on pipelined in-flight requests; beyond it the
#: connection's read interest is dropped until responses drain
MAX_PIPELINE_DEPTH = 32

#: bytes pulled off a readable socket per loop iteration
_READ_CHUNK = 256 << 10

#: pipeline-depth histogram bounds (requests in flight per connection)
_DEPTH_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0)

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    413: "Payload Too Large",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
}


def _response_bytes(
    status: int, content_type: str, body: bytes, close: bool
) -> bytes:
    reason = _REASONS.get(status, "Unknown")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {'close' if close else 'keep-alive'}\r\n"
        "\r\n"
    ).encode("latin-1")
    return head + body


def _error_bytes(status: int, message: str, close: bool = True) -> bytes:
    body = json.dumps({"error": message}).encode()
    return _response_bytes(status, "application/json", body, close)


class _Connection:
    """Loop-owned state machine of one client connection.

    States are implicit in the fields: reading heads/bodies from
    ``inbuf``, dispatching parsed requests (``in_flight`` > 0), parking
    out-of-order completions in ``ready``, draining ``outbuf``, and
    closing (``closing`` set: no further reads, the connection dies
    once every queued byte is written).  Every field is touched by the
    loop thread only — connection state carries **no lock**.
    """

    __slots__ = (
        "sock", "events", "inbuf", "outbuf", "out_off",
        "next_seq", "next_send", "ready", "in_flight",
        "closing", "paused",
    )

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self.events = 0           # currently registered selector mask
        self.inbuf = bytearray()
        self.outbuf: deque = deque()  # queued response byte blocks
        self.out_off = 0          # progress into outbuf[0]
        self.next_seq = 0         # sequence assigned to the next request
        self.next_send = 0        # sequence the next written response has
        self.ready: dict = {}     # seq -> (response bytes, close_after)
        self.in_flight = 0        # dispatched, response not yet queued
        self.closing = False      # stop reading; close once drained
        self.paused = False       # read interest dropped (backpressure)


class EventLoopHTTPServer:
    """Selectors event-loop front over one service.

    Exposes the surface the threaded ``PartitionHTTPServer`` does —
    ``server_address``, ``service``, :meth:`serve_forever`,
    :meth:`shutdown`, :meth:`server_close` — so every existing caller
    (CLI, benchmarks, tests) can switch fronts with one argument.
    """

    def __init__(
        self,
        address: tuple,
        service,
        max_pipeline: int = MAX_PIPELINE_DEPTH,
        workers: int = 16,
    ) -> None:
        self.service = service
        self.max_pipeline = int(max_pipeline)
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind(address)
        self._listener.listen(1024)
        self._listener.setblocking(False)
        self.server_address = self._listener.getsockname()
        self._sel = selectors.DefaultSelector()
        # wake pipe: workers poke one byte to pull the loop out of select
        self._wake_recv_sock, self._wake_send_sock = socket.socketpair()
        self._wake_recv_sock.setblocking(False)
        self._wake_send_sock.setblocking(False)
        #: completion-queue mutex — a leaf lock: held for deque ops only,
        #: never across any socket call (see module docstring)
        self._mutex = threading.Lock()
        self._completions: deque = deque()
        self._pool = ThreadPoolExecutor(
            max_workers=int(workers), thread_name_prefix="http-worker"
        )
        self._conns: dict = {}     # fd -> _Connection
        self._shut = threading.Event()
        self._stopped = threading.Event()
        self._stopped.set()        # not running yet
        self._registry = getattr(service, "registry", None)
        self._connections_total = 0
        self._in_flight_total = 0

    # -- lifecycle -----------------------------------------------------

    def serve_forever(self, poll_interval: float = 0.5) -> None:
        """Run the loop until :meth:`shutdown` (``poll_interval`` kept
        for signature parity; the wake socket makes polling needless)."""
        self._shut.clear()
        self._stopped.clear()
        self._sel.register(self._listener, selectors.EVENT_READ, "accept")
        self._sel.register(self._wake_recv_sock, selectors.EVENT_READ, "wake")
        try:
            while not self._shut.is_set():
                for key, events in self._sel.select():
                    if key.data == "accept":
                        self._accept()
                    elif key.data == "wake":
                        self._drained_wake()
                    else:
                        conn = key.data
                        if events & selectors.EVENT_WRITE:
                            self._on_writable(conn)
                        if (
                            events & selectors.EVENT_READ
                            and conn.sock.fileno() >= 0
                        ):
                            self._on_readable(conn)
                self._drain_completions()
        finally:
            for conn in list(self._conns.values()):
                self._close(conn)
            for sock in (self._listener, self._wake_recv_sock):
                try:
                    self._sel.unregister(sock)
                except (KeyError, ValueError):
                    pass
            self._stopped.set()

    def shutdown(self) -> None:
        """Stop :meth:`serve_forever` and wait for the loop to exit."""
        self._shut.set()
        self._wake()
        self._stopped.wait()

    def server_close(self) -> None:
        """Release sockets and the worker pool (call after shutdown)."""
        self._shut.set()
        for sock in (
            self._listener, self._wake_recv_sock, self._wake_send_sock
        ):
            try:
                sock.close()
            except OSError:  # pragma: no cover - double close
                pass
        self._sel.close()
        self._pool.shutdown(wait=True, cancel_futures=True)

    # -- loop internals ------------------------------------------------

    def _wake(self) -> None:
        try:
            self._wake_send_sock.send(b"\x00")
        except (BlockingIOError, InterruptedError):
            pass  # a wake byte is already pending — good enough
        except OSError:
            pass  # shutdown race: loop already gone

    def _drained_wake(self) -> None:
        try:
            while self._wake_recv_sock.recv(4096):
                pass
        except (BlockingIOError, InterruptedError):
            pass
        except OSError:  # pragma: no cover - shutdown race
            pass

    def _accept(self) -> None:
        while True:
            try:
                sock, _ = self._listener.accept()
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                return  # listener closed mid-accept (shutdown)
            sock.setblocking(False)
            try:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:  # pragma: no cover - non-TCP sockets
                pass
            conn = _Connection(sock)
            self._conns[sock.fileno()] = conn
            self._set_events(conn, selectors.EVENT_READ)
            self._connections_total += 1
            if self._registry is not None:
                self._registry.inc("repro_http_connections_total")
                self._registry.set_gauge(
                    "repro_http_connections_open", len(self._conns)
                )

    def _set_events(self, conn: _Connection, events: int) -> None:
        if events == conn.events:
            return
        if conn.events == 0:
            self._sel.register(conn.sock, events, conn)
        elif events == 0:
            self._sel.unregister(conn.sock)
        else:
            self._sel.modify(conn.sock, events, conn)
        conn.events = events

    def _close(self, conn: _Connection) -> None:
        fd = conn.sock.fileno()
        if fd < 0:
            return
        if conn.events:
            try:
                self._sel.unregister(conn.sock)
            except (KeyError, ValueError):  # pragma: no cover - raced
                pass
            conn.events = 0
        self._conns.pop(fd, None)
        try:
            conn.sock.close()
        except OSError:  # pragma: no cover - double close
            pass
        # late completions for this connection are dropped by the
        # fileno() guard in _drain_completions
        self._in_flight_total -= conn.in_flight
        conn.in_flight = 0
        conn.ready.clear()
        conn.outbuf.clear()
        if self._registry is not None:
            self._registry.set_gauge(
                "repro_http_connections_open", len(self._conns)
            )
            self._registry.set_gauge(
                "repro_http_inflight_requests", self._in_flight_total
            )

    # -- reading & parsing ---------------------------------------------

    def _on_readable(self, conn: _Connection) -> None:
        try:
            data = conn.sock.recv(_READ_CHUNK)
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            self._close(conn)
            return
        if not data:
            # peer finished sending; anything mid-parse is abandoned,
            # but queued and in-flight responses still drain
            conn.closing = True
            if conn.in_flight == 0 and not conn.outbuf and not conn.ready:
                self._close(conn)
            else:
                self._set_events(
                    conn, conn.events & ~selectors.EVENT_READ
                )
            return
        conn.inbuf += data
        self._parse(conn)

    def _parse(self, conn: _Connection) -> None:
        """Dispatch every complete pipelined request in ``inbuf``."""
        while not conn.closing:
            if conn.in_flight >= self.max_pipeline:
                conn.paused = True
                self._set_events(conn, conn.events & ~selectors.EVENT_READ)
                return
            head_end = conn.inbuf.find(b"\r\n\r\n")
            if head_end < 0:
                if len(conn.inbuf) > MAX_HEADER_BYTES:
                    self._reject(
                        conn, 431,
                        f"request head over {MAX_HEADER_BYTES} bytes",
                    )
                return
            try:
                method, target, accept, keep_alive, length, chunked = (
                    self._parse_head(bytes(conn.inbuf[:head_end]))
                )
            except ValueError as exc:
                self._reject(conn, 400, str(exc))
                return
            if chunked:
                self._reject(
                    conn, 501, "chunked request bodies are not supported"
                )
                return
            if length > MAX_BODY_BYTES:
                self._reject(
                    conn, 413, f"request body over {MAX_BODY_BYTES} bytes"
                )
                return
            total = head_end + 4 + length
            if len(conn.inbuf) < total:
                return  # body still in flight
            body = bytes(conn.inbuf[head_end + 4:total])
            del conn.inbuf[:total]
            self._dispatch(conn, method, target, body, accept, keep_alive)

    @staticmethod
    def _parse_head(head: bytes) -> tuple[str, str, str, bool, int, bool]:
        """``(method, target, accept, keep_alive, content_length,
        chunked)`` of one request head; :class:`ValueError` = 400."""
        try:
            text = head.decode("latin-1")
        except UnicodeDecodeError as exc:  # pragma: no cover - latin-1 total
            raise ValueError(f"undecodable request head: {exc}") from exc
        lines = text.split("\r\n")
        parts = lines[0].split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise ValueError(f"malformed request line: {lines[0]!r}")
        method, target, version = parts
        connection = ""
        accept = ""
        length = 0
        chunked = False
        for line in lines[1:]:
            name, sep, value = line.partition(":")
            if not sep:
                raise ValueError(f"malformed header line: {line!r}")
            name = name.strip().lower()
            value = value.strip()
            if name == "content-length":
                try:
                    length = int(value)
                except ValueError:
                    raise ValueError(
                        f"bad Content-Length header: {value!r}"
                    ) from None
                if length < 0:
                    raise ValueError(f"bad Content-Length header: {length}")
            elif name == "connection":
                connection = value.lower()
            elif name == "transfer-encoding":
                chunked = "chunked" in value.lower()
            elif name == "accept":
                accept = value
        keep_alive = (
            connection != "close"
            if version == "HTTP/1.1"
            else connection == "keep-alive"
        )
        return method, target, accept, keep_alive, length, chunked

    def _reject(self, conn: _Connection, status: int, message: str) -> None:
        """Protocol-level failure: answer in sequence, then close."""
        seq = conn.next_seq
        conn.next_seq += 1
        conn.in_flight += 1
        self._in_flight_total += 1
        conn.closing = True  # stop parsing; drain and die
        self._set_events(conn, conn.events & ~selectors.EVENT_READ)
        self._finish(conn, seq, _error_bytes(status, message), True)

    def _dispatch(
        self,
        conn: _Connection,
        method: str,
        target: str,
        body: bytes,
        accept: str,
        keep_alive: bool,
    ) -> None:
        seq = conn.next_seq
        conn.next_seq += 1
        conn.in_flight += 1
        self._in_flight_total += 1
        if not keep_alive:
            # no pipelining past an explicit close: stop reading now
            conn.closing = True
            self._set_events(conn, conn.events & ~selectors.EVENT_READ)
        if self._registry is not None:
            self._registry.observe(
                "repro_http_pipeline_depth",
                conn.in_flight,
                buckets=_DEPTH_BUCKETS,
            )
            self._registry.set_gauge(
                "repro_http_inflight_requests", self._in_flight_total
            )
        self._pool.submit(
            self._run, conn, seq, method, target, body, accept,
            not keep_alive,
        )

    # -- execution (worker threads) ------------------------------------

    def _run(
        self,
        conn: _Connection,
        seq: int,
        method: str,
        target: str,
        body: bytes,
        accept: str,
        close_after: bool,
    ) -> None:
        try:
            status, ctype, out = dispatch_request(
                self.service, method, target, body, accept
            )
        # repro: allow[BROAD-EXCEPT] — dispatch_request already maps every
        # error; this is the can't-happen boundary keeping seq accounting
        # intact (a lost completion would stall the connection forever)
        except Exception as exc:  # pragma: no cover - defensive boundary
            status, ctype, out = (
                500,
                "application/json",
                json.dumps({"error": f"internal error: {exc}"}).encode(),
            )
        self._finish(
            conn, seq, _response_bytes(status, ctype, out, close_after),
            close_after,
        )

    def _finish(
        self, conn: _Connection, seq: int, response: bytes, close_after: bool
    ) -> None:
        """Post one finished response to the loop (any thread)."""
        with self._mutex:
            self._completions.append((conn, seq, response, close_after))
        # wake OUTSIDE the mutex: the mutex must never be held across a
        # socket call (it is the only lock shared with the loop thread)
        self._wake()

    # -- completion & writing (loop thread) ----------------------------

    def _drain_completions(self) -> None:
        while True:
            with self._mutex:
                if not self._completions:
                    return
                conn, seq, response, close_after = self._completions.popleft()
            if conn.sock.fileno() < 0:
                continue  # connection died while the request ran
            conn.ready[seq] = (response, close_after)
            while conn.next_send in conn.ready:
                resp, close = conn.ready.pop(conn.next_send)
                conn.next_send += 1
                conn.in_flight -= 1
                self._in_flight_total -= 1
                conn.outbuf.append(resp)
                if close:
                    conn.closing = True
            if conn.outbuf:
                self._on_writable(conn)
            if (
                conn.paused
                and not conn.closing
                and conn.in_flight < self.max_pipeline
                and conn.sock.fileno() >= 0
            ):
                conn.paused = False
                self._set_events(conn, conn.events | selectors.EVENT_READ)
                self._parse(conn)  # buffered pipelined requests, if any
            if self._registry is not None:
                self._registry.set_gauge(
                    "repro_http_inflight_requests",
                    max(self._in_flight_total, 0),
                )

    def _on_writable(self, conn: _Connection) -> None:
        try:
            while conn.outbuf:
                block = conn.outbuf[0]
                sent = conn.sock.send(memoryview(block)[conn.out_off:])
                conn.out_off += sent
                if conn.out_off >= len(block):
                    conn.outbuf.popleft()
                    conn.out_off = 0
        except (BlockingIOError, InterruptedError):
            self._set_events(conn, conn.events | selectors.EVENT_WRITE)
            return
        except OSError:
            self._close(conn)
            return
        # fully drained
        self._set_events(conn, conn.events & ~selectors.EVENT_WRITE)
        if conn.closing and conn.in_flight == 0 and not conn.ready:
            self._close(conn)

    def __repr__(self) -> str:
        host, port = self.server_address[:2]
        return (
            f"EventLoopHTTPServer(address={host}:{port}, "
            f"connections={len(self._conns)})"
        )
