"""Service-level configuration.

:class:`ServiceConfig` is the single knob surface of the serving tier:
one frozen, picklable object that a :class:`~repro.service.core.
PartitionService` is built from, that ``serve --shards N`` ships to
every shard worker process, and that benchmarks record alongside their
numbers.  Everything that changes *how* the service executes — worker
counts, cache budgets, the process-pool cost model, racing portfolios,
overlapped session updates — lives here; everything that changes *what*
a request answers lives in the request itself.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from ..errors import ServiceError

__all__ = [
    "ServiceConfig",
    "DEFAULT_PROCESS_THRESHOLD",
    "OBSERVABILITY_FIELDS",
]

#: Default floor of the process-routing cost model, in cost units of
#: ``n_nodes × population_size × max_generations``.  Measured on the
#: paper-scale workloads: shipping a graph to a process slot plus the
#: per-job pickle round-trip costs ~5–20 ms, while a trace-scale GA
#: run (~3e4 units) takes ~80 ms and a full serving-budget run (≥1e6
#: units: pop 64 × 100 generations on a 150+-node graph) runs for
#: seconds — so below the floor the IPC tax is a double-digit
#: percentage and above it well under 1%.  Routing is perf-only:
#: either lane returns bit-identical answers.
DEFAULT_PROCESS_THRESHOLD = 1.0e6


@dataclass(frozen=True)
class ServiceConfig:
    """Configuration of one :class:`PartitionService` (or shard).

    Attributes
    ----------
    n_workers:
        Pinned worker *threads* executing jobs (numpy kernels release
        the GIL, so threads overlap; Python-level GA bookkeeping does
        not — that is what ``process_workers`` is for).
    cache_bytes:
        Byte budget of the content-addressed caches (half results,
        half interned graphs).
    max_sessions:
        Open incremental-session limit.
    process_workers:
        Pinned worker *process* slots for long GA runs; ``0`` (default)
        disables process execution entirely.  Jobs are pinned to slots
        by graph digest, and each slot's worker interns shipped graphs
        so a pinned graph crosses the process boundary once, not once
        per request.
    process_threshold:
        Cost-model floor, in ``n_nodes × population_size ×
        max_generations`` units, above which a dknux request routes to
        a process slot instead of a worker thread (when
        ``process_workers > 0``).  Results are bit-identical either
        way; the threshold only decides where the identical computation
        runs.
    racing_portfolio:
        Run portfolio legs concurrently, cancelling the GA leg once it
        can no longer beat the incumbent under the remaining budget
        (see :mod:`repro.service.portfolio`).  The reported winner is
        identical to the serial portfolio whenever the time budget does
        not bind.
    overlap_updates:
        Use the overlapped session-update path: update ingestion and
        result commit hold the session state lock only briefly while
        the GA runs outside it (see :mod:`repro.service.sessions`).
        Final assignments are identical to the serial-lock path.
    snapshot_dir:
        Directory for session failover snapshots (see
        :mod:`repro.service.persistence`).  When set, the service
        snapshots each session's resumable state on every commit,
        restores all readable snapshots at construction, and a
        restarted shard therefore resumes its sessions bit-identically
        at the last committed epoch.  ``None`` (default) disables
        persistence for a bare :class:`PartitionService`; the sharded
        front always provisions per-shard directories (a private
        temporary one unless this is set).
    snapshot_interval_s:
        ``> 0`` adds a periodic snapshot pass at this cadence on top of
        the on-commit writes (sessions mid-update are skipped — only
        committed, quiescent state ever reaches the store).
    trace_enabled:
        Originate request trace spans (:mod:`repro.obs.trace`).
        Observability settings never change answers — requests carrying
        a remote trace context are stitched regardless of this flag.
    trace_sample:
        Fraction of *originated* traces recorded (deterministic,
        hash-of-trace-id based; ``1.0`` traces everything).
    trace_ring:
        Size of the in-memory span ring buffer.
    trace_jsonl:
        Optional path appended with one JSON span record per line.
    binary_frames:
        Negotiate the zero-copy shard data plane (binary socket frames
        / shared-memory pipe segments — see :mod:`repro.service.
        transport`).  Purely a transport encoding: answers are
        bit-identical with it on or off, and peers that don't speak it
        fall back to JSON frames regardless of this flag.  ``False``
        pins every shard channel to the JSON/pickle lanes.
    probe_interval_s:
        ``> 0`` makes a sharded front probe every shard at this cadence
        (see :mod:`repro.service.sharding`): a shard that stops
        answering is ejected from the consistent-hash ring (degraded
        serving at N−1 under a new ring epoch) and re-admitted when a
        probe sees it answer again — an attached remote shard is
        reconnected by the probe instead of lazily on the next call.
        ``0`` (default) disables probing; membership then changes only
        through the admin endpoint.  Front-local: like the tracing
        flags, it never ships to shard workers' execution paths and is
        allowed in attach mode.
    """

    n_workers: int = 2
    cache_bytes: int = 64 << 20
    max_sessions: int = 1024
    process_workers: int = 0
    process_threshold: float = DEFAULT_PROCESS_THRESHOLD
    racing_portfolio: bool = False
    overlap_updates: bool = True
    snapshot_dir: Optional[str] = None
    snapshot_interval_s: float = 0.0
    trace_enabled: bool = False
    trace_sample: float = 1.0
    trace_ring: int = 2048
    trace_jsonl: Optional[str] = None
    binary_frames: bool = True
    probe_interval_s: float = 0.0

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise ServiceError(f"n_workers must be >= 1, got {self.n_workers}")
        if self.cache_bytes < 0:
            raise ServiceError(
                f"cache_bytes must be >= 0, got {self.cache_bytes}"
            )
        if self.max_sessions < 1:
            raise ServiceError(
                f"max_sessions must be >= 1, got {self.max_sessions}"
            )
        if self.process_workers < 0:
            raise ServiceError(
                f"process_workers must be >= 0, got {self.process_workers}"
            )
        if self.process_threshold < 0:
            raise ServiceError(
                f"process_threshold must be >= 0, got {self.process_threshold}"
            )
        if self.snapshot_interval_s < 0:
            raise ServiceError(
                f"snapshot_interval_s must be >= 0, got "
                f"{self.snapshot_interval_s}"
            )
        if not 0.0 <= self.trace_sample <= 1.0:
            raise ServiceError(
                f"trace_sample must be in [0, 1], got {self.trace_sample}"
            )
        if self.trace_ring < 1:
            raise ServiceError(
                f"trace_ring must be >= 1, got {self.trace_ring}"
            )
        if self.probe_interval_s < 0:
            raise ServiceError(
                f"probe_interval_s must be >= 0, got {self.probe_interval_s}"
            )

    def with_updates(self, **kwargs) -> "ServiceConfig":
        """Functional update (the dataclass is frozen)."""
        return replace(self, **kwargs)

    def without_observability(self) -> "ServiceConfig":
        """Copy with the front-local fields at their defaults.  Tracing
        and health probing configure the *front* (never a shard worker's
        execution) and never change answers, so equality checks that
        guard *execution* settings (e.g. attach-mode validation) compare
        through this."""
        return replace(
            self,
            **{name: getattr(_DEFAULTS, name) for name in OBSERVABILITY_FIELDS},
        )


#: the ServiceConfig fields that only affect the front's observability
#: and supervision, never a shard's execution (attach mode allows them)
OBSERVABILITY_FIELDS = (
    "trace_enabled", "trace_sample", "trace_ring", "trace_jsonl",
    "probe_interval_s",
)

_DEFAULTS = ServiceConfig()
