"""Stdlib HTTP frontend for the partition service.

A thin JSON layer over :class:`~repro.service.core.PartitionService`.
Two interchangeable fronts speak the identical endpoint schema:

* ``front="eventloop"`` (default) — :class:`~repro.service.eventloop.
  EventLoopHTTPServer`, a single-threaded :mod:`selectors` loop
  multiplexing thousands of keep-alive connections with pipelined
  in-flight requests (see :mod:`repro.service.eventloop`);
* ``front="thread"`` — ``http.server.ThreadingHTTPServer``, one thread
  per connection (the original front, kept as the simple fallback).

Both route through :func:`dispatch_request`, so responses are
byte-identical between fronts.  The endpoint schema:

====================  ======  =========================================
path                  method  body / response
====================  ======  =========================================
``/v1/partition``     POST    :class:`PartitionRequest` payload → result
``/v1/refine``        POST    :class:`RefineRequest` payload → result
``/v1/session/open``  POST    ``{graph, n_parts, fitness_kind, seed,
                              ga}`` → result with ``session_id``
``/v1/session/update``  POST  :class:`UpdateRequest` payload → result
``/v1/session/close`` POST    ``{session_id}`` → session summary
``/v1/stats``         GET     service counters (cache, scheduler,
                              sessions, latency percentiles)
``/v1/metrics``       GET     unified :mod:`repro.obs` snapshot — JSON
                              by default; Prometheus text exposition
                              with ``?format=prometheus`` (or an
                              ``Accept: text/plain`` header)
``/v1/healthz``       GET     ``{"ok": true}``
``/v1/admin/ring``    GET     ring descriptor + per-shard health (the
                              probe verdicts); sharded services only
``/v1/admin/ring``    POST    ``{action, n_shards?, shard?}`` — actions
                              ``status`` / ``resize`` / ``add_shard`` /
                              ``remove_shard`` / ``eject`` / ``readmit``
                              (see :meth:`~repro.service.sharding.
                              ShardedPartitionService.ring_admin`)
====================  ======  =========================================

Malformed payloads (bad JSON, bad graph bytes, invalid parameters)
answer ``400`` with ``{"error": ...}``; unknown paths ``404``; unknown
sessions ``404``; oversized bodies ``413``.  Library errors never leak
tracebacks to the wire.  ``/v1/admin/ring`` against an unsharded
service answers ``404`` — a bare :class:`PartitionService` has no ring.

Admin example — grow a local fleet from 2 to 4 shards, live::

    curl -s -X POST localhost:8080/v1/admin/ring \\
         -d '{"action": "resize", "n_shards": 4}'
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Sequence

from ..errors import ReproError, ServiceError, ShardDiedError
from .core import PartitionService
from .models import (
    PartitionRequest,
    RefineRequest,
    UpdateRequest,
    graph_from_wire,
)

__all__ = [
    "PartitionHTTPServer",
    "dispatch_request",
    "make_server",
    "serve",
]

#: request-body ceiling — paper-scale graphs are ~KBs; 64 MiB leaves
#: ample slack for large meshes while bounding a hostile payload
MAX_BODY_BYTES = 64 << 20


# ----------------------------------------------------------------------
# shared route dispatch (both fronts)
# ----------------------------------------------------------------------

def _json_response(status: int, payload: dict) -> tuple[int, str, bytes]:
    return status, "application/json", json.dumps(payload).encode()


def _parse_json_body(raw: bytes) -> dict:
    try:
        payload = json.loads(raw.decode() or "{}")
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise _HTTPError(400, f"bad JSON body: {exc}") from exc
    if not isinstance(payload, dict):
        raise _HTTPError(400, "request body must be a JSON object")
    return payload


def dispatch_request(
    service, method: str, target: str, body: bytes = b"", accept: str = ""
) -> tuple[int, str, bytes]:
    """Route one HTTP request → ``(status, content type, body bytes)``.

    The single routing table behind both fronts: ``target`` is the raw
    request target (path plus optional query), ``body`` the already-read
    request body, ``accept`` the Accept header (the ``/v1/metrics``
    content negotiation).  Every error — malformed payload, library
    error, handler bug — is mapped to a JSON error response here, so
    callers never see an exception and the two fronts answer
    byte-identically.
    """
    from urllib.parse import parse_qs, urlsplit

    parts = urlsplit(target)
    path = parts.path
    try:
        if method == "GET":
            if path == "/v1/healthz":
                return _json_response(200, {"ok": True})
            if path == "/v1/stats":
                return _json_response(200, service.stats())
            if path == "/v1/metrics":
                from ..obs.metrics import render_prometheus

                want_text = (
                    parse_qs(parts.query).get("format", [""])[0]
                    == "prometheus"
                    or (
                        "text/plain" in accept
                        and "application/json" not in accept
                    )
                )
                snapshot = service.metrics()
                if not want_text:
                    return _json_response(200, snapshot)
                return (
                    200,
                    "text/plain; version=0.0.4; charset=utf-8",
                    render_prometheus(snapshot).encode(),
                )
            if path == "/v1/admin/ring":
                if not hasattr(service, "ring_admin"):
                    return _json_response(
                        404,
                        {"error": "ring admin needs a sharded service "
                                  "(serve --shards/--attach-shard)"},
                    )
                return _json_response(200, service.ring_admin("status"))
            return _json_response(404, {"error": f"unknown path {target}"})
        if method != "POST":
            return _json_response(
                501, {"error": f"unsupported method {method!r}"}
            )
        payload = _parse_json_body(body)
        if path == "/v1/partition":
            result = service.submit(PartitionRequest.from_payload(payload))
            return _json_response(200, result.to_payload())
        if path == "/v1/refine":
            result = service.submit(RefineRequest.from_payload(payload))
            return _json_response(200, result.to_payload())
        if path == "/v1/session/open":
            # parameter validation (types, ranges, ga overrides)
            # lives in SessionManager.open and answers 400
            result = service.open_session(
                graph_from_wire(_field(payload, "graph")),
                n_parts=_field(payload, "n_parts"),
                fitness_kind=payload.get("fitness_kind", "fitness1"),
                seed=payload.get("seed", 0),
                ga=payload.get("ga"),
            )
            return _json_response(200, result.to_payload())
        if path == "/v1/session/update":
            result = service.update_session(UpdateRequest.from_payload(payload))
            return _json_response(200, result.to_payload())
        if path == "/v1/session/close":
            summary = service.close_session(_field(payload, "session_id"))
            return _json_response(200, summary)
        if path == "/v1/admin/ring":
            # elastic-fleet admin (PR 10): body {"action": ..., "n_shards":
            # ..., "shard": ...} — see ShardedPartitionService.ring_admin.
            # Validation (unknown action, missing operand, attach-mode
            # resize) lives there and answers 400.
            if not hasattr(service, "ring_admin"):
                return _json_response(
                    404,
                    {"error": "ring admin needs a sharded service "
                              "(serve --shards/--attach-shard)"},
                )
            out = service.ring_admin(
                _field(payload, "action"),
                n_shards=payload.get("n_shards"),
                shard=payload.get("shard"),
            )
            return _json_response(200, out)
        return _json_response(404, {"error": f"unknown path {target}"})
    except _HTTPError as exc:
        return _json_response(exc.status, {"error": exc.message})
    except ShardDiedError as exc:
        # a shard crash is the service's fault, not the request's:
        # answer 503 (retryable) so HTTP clients can distinguish
        # "retry me once the shard restarts" from a bad request
        return _json_response(503, {"error": str(exc)})
    except ServiceError as exc:
        status = 404 if "unknown session" in str(exc) else 400
        return _json_response(status, {"error": str(exc)})
    except ReproError as exc:
        return _json_response(400, {"error": str(exc)})
    # repro: allow[BROAD-EXCEPT] — the 500 boundary: a handler bug must
    # answer JSON, not kill the client's connection
    except Exception as exc:  # pragma: no cover - defensive boundary
        return _json_response(500, {"error": f"internal error: {exc}"})


class PartitionHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that owns a service.

    ``service`` is anything exposing the shared service verbs — a
    :class:`PartitionService` or a digest-sharded
    :class:`~repro.service.sharding.ShardedPartitionService`.
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, service) -> None:
        super().__init__(address, _Handler)
        self.service = service


class _Handler(BaseHTTPRequestHandler):
    server: PartitionHTTPServer
    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # request logging is the service counters' job, not stderr's

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode()
        self._send(status, "application/json", body)

    def _send(self, status: int, content_type: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> bytes:
        raw_length = self.headers.get("Content-Length", 0) or 0
        try:
            length = int(raw_length)
        except (TypeError, ValueError):
            raise _HTTPError(
                400, f"bad Content-Length header: {raw_length!r}"
            ) from None
        if length < 0:
            raise _HTTPError(400, f"bad Content-Length header: {length}")
        if length > MAX_BODY_BYTES:
            raise _HTTPError(413, f"request body over {MAX_BODY_BYTES} bytes")
        return self.rfile.read(length) if length else b""

    # -- routes --------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        try:
            self._send(*dispatch_request(
                self.server.service, "GET", self.path,
                accept=self.headers.get("Accept", "") or "",
            ))
        except BrokenPipeError:  # client went away mid-answer
            pass

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        try:
            try:
                body = self._read_body()
            except _HTTPError as exc:
                self._send_json(exc.status, {"error": exc.message})
                return
            self._send(*dispatch_request(
                self.server.service, "POST", self.path, body,
            ))
        except BrokenPipeError:
            pass


class _HTTPError(Exception):
    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


def _field(payload: dict, key: str):
    try:
        return payload[key]
    except KeyError:
        raise _HTTPError(400, f"request payload missing field {key!r}") from None


def make_server(
    host: str = "127.0.0.1",
    port: int = 8157,
    service: Optional[PartitionService] = None,
    shards: int = 0,
    attach_shards: Optional[Sequence[str]] = None,
    front: str = "eventloop",
    **service_kwargs,
):
    """Build (but do not start) a server; ``port=0`` picks a free port.

    ``shards=N`` (N ≥ 1) serves through a digest-sharded
    :class:`~repro.service.sharding.ShardedPartitionService` of N
    worker processes instead of one in-process service;
    ``attach_shards=["host:port", ...]`` builds the same front over
    *remote* socket shards (running ``serve --shard-listen``) instead
    of spawning local workers.  Responses are bit-identical either way.
    These only apply when the server builds its own service — combining
    them with an explicit ``service`` is rejected rather than silently
    ignored.

    ``front`` picks the connection front: ``"eventloop"`` (default, the
    selectors loop with keep-alive and pipelining) or ``"thread"`` (the
    original thread-per-connection server).  Both expose the same
    surface (``server_address``, ``service``, ``serve_forever`` /
    ``shutdown`` / ``server_close``) and byte-identical responses.
    """
    if front not in ("eventloop", "thread"):
        raise ServiceError(
            f"front must be 'eventloop' or 'thread', got {front!r}"
        )
    if service is not None and (shards or attach_shards):
        raise ServiceError(
            "pass either an explicit service or shards/attach_shards, not "
            "both (wrap the service yourself for a custom sharded front)"
        )
    if shards and attach_shards:
        raise ServiceError(
            "pass either shards=N (local workers) or attach_shards "
            "(remote workers), not both"
        )
    if service is None:
        if attach_shards:
            from .sharding import ShardedPartitionService

            service = ShardedPartitionService(
                attach=list(attach_shards), **service_kwargs
            )
        elif shards:
            from .sharding import ShardedPartitionService

            service = ShardedPartitionService(n_shards=shards, **service_kwargs)
        else:
            service = PartitionService(**service_kwargs)
    if front == "thread":
        return PartitionHTTPServer((host, port), service)
    from .eventloop import EventLoopHTTPServer

    return EventLoopHTTPServer((host, port), service)


def serve(
    host: str = "127.0.0.1",
    port: int = 8157,
    service: Optional[PartitionService] = None,
    background: bool = False,
    shards: int = 0,
    attach_shards: Optional[Sequence[str]] = None,
    front: str = "eventloop",
    **service_kwargs,
):
    """Start serving; ``background=True`` serves from a daemon thread
    and returns immediately (used by tests and the smoke benchmark).
    ``shards=N`` enables digest-sharded multi-process serving;
    ``attach_shards`` fronts remote socket shards instead; ``front``
    picks the connection front (see :func:`make_server`)."""
    server = make_server(
        host, port, service, shards=shards, attach_shards=attach_shards,
        front=front, **service_kwargs,
    )
    if background:
        thread = threading.Thread(
            target=server.serve_forever, name="repro-service", daemon=True
        )
        thread.start()
    else:  # pragma: no cover - exercised by the CLI, not the test suite
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            server.service.close()
            server.server_close()
    return server
