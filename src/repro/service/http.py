"""Stdlib HTTP frontend for the partition service.

A thin JSON layer over :class:`~repro.service.core.PartitionService`
on ``http.server.ThreadingHTTPServer`` — one thread per connection, no
third-party dependencies, good enough to serve the paper-scale graphs
this repo reproduces and to load-test the serving architecture.  The
endpoint schema:

====================  ======  =========================================
path                  method  body / response
====================  ======  =========================================
``/v1/partition``     POST    :class:`PartitionRequest` payload → result
``/v1/refine``        POST    :class:`RefineRequest` payload → result
``/v1/session/open``  POST    ``{graph, n_parts, fitness_kind, seed,
                              ga}`` → result with ``session_id``
``/v1/session/update``  POST  :class:`UpdateRequest` payload → result
``/v1/session/close`` POST    ``{session_id}`` → session summary
``/v1/stats``         GET     service counters (cache, scheduler,
                              sessions, latency percentiles)
``/v1/metrics``       GET     unified :mod:`repro.obs` snapshot — JSON
                              by default; Prometheus text exposition
                              with ``?format=prometheus`` (or an
                              ``Accept: text/plain`` header)
``/v1/healthz``       GET     ``{"ok": true}``
====================  ======  =========================================

Malformed payloads (bad JSON, bad graph bytes, invalid parameters)
answer ``400`` with ``{"error": ...}``; unknown paths ``404``; unknown
sessions ``404``; oversized bodies ``413``.  Library errors never leak
tracebacks to the wire.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Sequence

from ..errors import ReproError, ServiceError, ShardDiedError
from .core import PartitionService
from .models import (
    PartitionRequest,
    RefineRequest,
    UpdateRequest,
    graph_from_wire,
)

__all__ = ["PartitionHTTPServer", "make_server", "serve"]

#: request-body ceiling — paper-scale graphs are ~KBs; 64 MiB leaves
#: ample slack for large meshes while bounding a hostile payload
MAX_BODY_BYTES = 64 << 20


class PartitionHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that owns a service.

    ``service`` is anything exposing the shared service verbs — a
    :class:`PartitionService` or a digest-sharded
    :class:`~repro.service.sharding.ShardedPartitionService`.
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, service) -> None:
        super().__init__(address, _Handler)
        self.service = service


class _Handler(BaseHTTPRequestHandler):
    server: PartitionHTTPServer
    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # request logging is the service counters' job, not stderr's

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> dict:
        raw_length = self.headers.get("Content-Length", 0) or 0
        try:
            length = int(raw_length)
        except (TypeError, ValueError):
            raise _HTTPError(
                400, f"bad Content-Length header: {raw_length!r}"
            ) from None
        if length < 0:
            raise _HTTPError(400, f"bad Content-Length header: {length}")
        if length > MAX_BODY_BYTES:
            raise _HTTPError(413, f"request body over {MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length) if length else b""
        try:
            payload = json.loads(raw.decode() or "{}")
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise _HTTPError(400, f"bad JSON body: {exc}") from exc
        if not isinstance(payload, dict):
            raise _HTTPError(400, "request body must be a JSON object")
        return payload

    def _send_metrics(self, query: str) -> None:
        from urllib.parse import parse_qs

        from ..obs.metrics import render_prometheus

        accept = self.headers.get("Accept", "") or ""
        want_text = (
            parse_qs(query).get("format", [""])[0] == "prometheus"
            or ("text/plain" in accept and "application/json" not in accept)
        )
        snapshot = self.server.service.metrics()
        if not want_text:
            self._send_json(200, snapshot)
            return
        body = render_prometheus(snapshot).encode()
        self.send_response(200)
        self.send_header(
            "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
        )
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    # -- routes --------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        from urllib.parse import urlsplit

        parts = urlsplit(self.path)
        try:
            if parts.path == "/v1/healthz":
                self._send_json(200, {"ok": True})
            elif parts.path == "/v1/stats":
                self._send_json(200, self.server.service.stats())
            elif parts.path == "/v1/metrics":
                self._send_metrics(parts.query)
            else:
                self._send_json(404, {"error": f"unknown path {self.path}"})
        except BrokenPipeError:  # client went away mid-answer
            pass

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        service = self.server.service
        try:
            payload = self._read_body()
            if self.path == "/v1/partition":
                result = service.submit(PartitionRequest.from_payload(payload))
                self._send_json(200, result.to_payload())
            elif self.path == "/v1/refine":
                result = service.submit(RefineRequest.from_payload(payload))
                self._send_json(200, result.to_payload())
            elif self.path == "/v1/session/open":
                # parameter validation (types, ranges, ga overrides)
                # lives in SessionManager.open and answers 400
                result = service.open_session(
                    graph_from_wire(_field(payload, "graph")),
                    n_parts=_field(payload, "n_parts"),
                    fitness_kind=payload.get("fitness_kind", "fitness1"),
                    seed=payload.get("seed", 0),
                    ga=payload.get("ga"),
                )
                self._send_json(200, result.to_payload())
            elif self.path == "/v1/session/update":
                result = service.update_session(
                    UpdateRequest.from_payload(payload)
                )
                self._send_json(200, result.to_payload())
            elif self.path == "/v1/session/close":
                summary = service.close_session(_field(payload, "session_id"))
                self._send_json(200, summary)
            else:
                self._send_json(404, {"error": f"unknown path {self.path}"})
        except _HTTPError as exc:
            self._send_json(exc.status, {"error": exc.message})
        except ShardDiedError as exc:
            # a shard crash is the service's fault, not the request's:
            # answer 503 (retryable) so HTTP clients can distinguish
            # "retry me once the shard restarts" from a bad request
            self._send_json(503, {"error": str(exc)})
        except ServiceError as exc:
            status = 404 if "unknown session" in str(exc) else 400
            self._send_json(status, {"error": str(exc)})
        except ReproError as exc:
            self._send_json(400, {"error": str(exc)})
        except BrokenPipeError:
            pass
        # repro: allow[BROAD-EXCEPT] — the 500 boundary: a handler bug must
        # answer JSON, not kill the client's connection
        except Exception as exc:  # pragma: no cover - defensive boundary
            self._send_json(500, {"error": f"internal error: {exc}"})


class _HTTPError(Exception):
    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


def _field(payload: dict, key: str):
    try:
        return payload[key]
    except KeyError:
        raise _HTTPError(400, f"request payload missing field {key!r}") from None


def make_server(
    host: str = "127.0.0.1",
    port: int = 8157,
    service: Optional[PartitionService] = None,
    shards: int = 0,
    attach_shards: Optional[Sequence[str]] = None,
    **service_kwargs,
) -> PartitionHTTPServer:
    """Build (but do not start) a server; ``port=0`` picks a free port.

    ``shards=N`` (N ≥ 1) serves through a digest-sharded
    :class:`~repro.service.sharding.ShardedPartitionService` of N
    worker processes instead of one in-process service;
    ``attach_shards=["host:port", ...]`` builds the same front over
    *remote* socket shards (running ``serve --shard-listen``) instead
    of spawning local workers.  Responses are bit-identical either way.
    These only apply when the server builds its own service — combining
    them with an explicit ``service`` is rejected rather than silently
    ignored.
    """
    if service is not None and (shards or attach_shards):
        raise ServiceError(
            "pass either an explicit service or shards/attach_shards, not "
            "both (wrap the service yourself for a custom sharded front)"
        )
    if shards and attach_shards:
        raise ServiceError(
            "pass either shards=N (local workers) or attach_shards "
            "(remote workers), not both"
        )
    if service is None:
        if attach_shards:
            from .sharding import ShardedPartitionService

            service = ShardedPartitionService(
                attach=list(attach_shards), **service_kwargs
            )
        elif shards:
            from .sharding import ShardedPartitionService

            service = ShardedPartitionService(n_shards=shards, **service_kwargs)
        else:
            service = PartitionService(**service_kwargs)
    return PartitionHTTPServer((host, port), service)


def serve(
    host: str = "127.0.0.1",
    port: int = 8157,
    service: Optional[PartitionService] = None,
    background: bool = False,
    shards: int = 0,
    attach_shards: Optional[Sequence[str]] = None,
    **service_kwargs,
) -> PartitionHTTPServer:
    """Start serving; ``background=True`` serves from a daemon thread
    and returns immediately (used by tests and the smoke benchmark).
    ``shards=N`` enables digest-sharded multi-process serving;
    ``attach_shards`` fronts remote socket shards instead."""
    server = make_server(
        host, port, service, shards=shards, attach_shards=attach_shards,
        **service_kwargs,
    )
    if background:
        thread = threading.Thread(
            target=server.serve_forever, name="repro-service", daemon=True
        )
        thread.start()
    else:  # pragma: no cover - exercised by the CLI, not the test suite
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            server.service.close()
            server.server_close()
    return server
