"""repro.service — partition-as-a-service over the GA kernels.

The serving subsystem the ROADMAP's production north star builds on:
typed requests with a JSON wire format (:mod:`.models`), one config
surface (:mod:`.config`), content-addressed caching of
graphs/results/warm seeds (:mod:`.cache`), a coalescing scheduler over
pinned thread workers with a process lane for long GA runs
(:mod:`.scheduler`, :mod:`.procexec`), consistent-hash shard
addressing with epoch-numbered ring versions (:mod:`.ring`),
digest-sharded multi-process serving with supervision/auto-restart and
elastic resize (:mod:`.sharding`, ``serve --shards N``,
``repro-partition ring``) over pipe or socket transports (:mod:`.transport`,
``serve --shard-listen`` / ``--attach-shard``), session failover
snapshots (:mod:`.persistence`), streaming incremental sessions with
overlapped updates (:mod:`.sessions`), a method portfolio racer
(:mod:`.portfolio`), and two frontends — a stdlib HTTP endpoint with
interchangeable connection fronts (:mod:`.http` routing, the
:mod:`.eventloop` selectors front with keep-alive and pipelining, and
the thread-per-connection fallback; ``repro-partition serve``) and
programmatic clients (:mod:`.client`).  Observability — distributed
request tracing, the
unified metrics registry behind ``/v1/metrics``, and structured shard
lifecycle logs — lives in :mod:`repro.obs` and is threaded through
every layer here.
"""

from .models import (
    FITNESS_KINDS,
    SERVICE_METHODS,
    JobResult,
    PartitionRequest,
    RefineRequest,
    UpdateRequest,
    graph_from_wire,
    graph_to_wire,
    result_from_partition,
)
from .cache import ContentStore, GraphStore, LRUBytesCache, graph_digest, request_key
from .config import DEFAULT_PROCESS_THRESHOLD, ServiceConfig
from .ring import (
    DEFAULT_RING_REPLICAS,
    RING_PROTOCOL_VERSION,
    HashRing,
    RingVersion,
)
from .scheduler import CoalescingScheduler
from .sessions import SESSION_GA_DEFAULTS, Session, SessionManager
from .persistence import (
    ResultWriteBehind,
    SessionPersistence,
    SnapshotStore,
    iter_result_entries,
)
from .portfolio import PORTFOLIO_GA_DEFAULTS, run_portfolio
from .core import DEFAULT_GA_OVERRIDES, PartitionService
from .transport import (
    PipeTransport,
    ShardListener,
    ShardTransport,
    SocketTransport,
    connect_shard,
    parse_address,
)
from .sharding import ShardServer, ShardedPartitionService, shard_for_digest
from .client import HTTPServiceClient, ServiceClient
from .http import PartitionHTTPServer, dispatch_request, make_server, serve
from .eventloop import EventLoopHTTPServer

__all__ = [
    "DEFAULT_PROCESS_THRESHOLD",
    "ServiceConfig",
    "ShardedPartitionService",
    "ShardServer",
    "shard_for_digest",
    "ShardTransport",
    "PipeTransport",
    "SocketTransport",
    "ShardListener",
    "connect_shard",
    "parse_address",
    "SessionPersistence",
    "SnapshotStore",
    "ResultWriteBehind",
    "iter_result_entries",
    "HashRing",
    "RingVersion",
    "RING_PROTOCOL_VERSION",
    "DEFAULT_RING_REPLICAS",
    "FITNESS_KINDS",
    "SERVICE_METHODS",
    "JobResult",
    "PartitionRequest",
    "RefineRequest",
    "UpdateRequest",
    "graph_from_wire",
    "graph_to_wire",
    "result_from_partition",
    "ContentStore",
    "GraphStore",
    "LRUBytesCache",
    "graph_digest",
    "request_key",
    "CoalescingScheduler",
    "SESSION_GA_DEFAULTS",
    "Session",
    "SessionManager",
    "PORTFOLIO_GA_DEFAULTS",
    "run_portfolio",
    "DEFAULT_GA_OVERRIDES",
    "PartitionService",
    "HTTPServiceClient",
    "ServiceClient",
    "PartitionHTTPServer",
    "EventLoopHTTPServer",
    "dispatch_request",
    "make_server",
    "serve",
]
