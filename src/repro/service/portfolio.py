"""Method-portfolio mode: race DKNUX against the cheap baselines.

The paper compares DKNUX against a suite of classical partitioners
(Section 4); production traffic turns that comparison into a serving
strategy.  Under a time budget the portfolio runs the cheap
deterministic baselines (greedy growth, recursive graph bisection,
recursive KL, plus the coordinate methods when the graph carries
coordinates, and RSB) and the DKNUX GA, and answers with the best
partition seen — so a tight budget degrades gracefully to the best
classical answer instead of timing out, and a loose one recovers full
GA quality.

Every method is scored by the *request's* fitness function (the same
objective the GA optimizes), so "best" means best under the paper's
cost model, not merely smallest edge cut.

Two execution modes share one winner rule:

* **serial** (default) — legs run one after another in fixed order,
  with the budget checked between legs and between DKNUX generations.
  The iterative baseline legs (KL, RSB) additionally check a deadline
  *inside* their own sweeps, so a binding budget cancels them mid-run
  instead of letting one monolithic leg overshoot the whole budget; a
  non-binding budget leaves their results bit-identical.
* **racing** (``racing=True``) — every leg runs concurrently on its
  own thread (the numpy kernels release the GIL, so the legs genuinely
  overlap); wall-clock drops from the *sum* of leg times toward the
  *max*.  The GA leg additionally polls a best-so-far abort callback
  (:meth:`repro.ga.engine.GAEngine.run`) and is cancelled as soon as
  it can no longer beat the incumbent under the remaining budget: a
  GA only improves by completing generations, so once it trails every
  completed leg *and* the remaining budget is smaller than its own
  measured per-generation cost, it cannot win and stops immediately
  instead of burning the rest of the budget.

The winner is picked by scanning the per-leg results in the fixed leg
order (ties keep the earlier leg), never in completion order — so for
a budget that does not bind, racing returns the *identical* winner and
partition as the serial run of the same request (each leg's
computation is seeded identically and runs to its own stopping rule).
A binding budget is timing-dependent in both modes, exactly as before.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Optional

import numpy as np

from ..errors import ReproError
from ..ga.config import GAConfig
from ..ga.fitness import make_fitness
from ..graphs.csr import CSRGraph
from ..partition.partition import Partition

__all__ = ["run_portfolio", "PORTFOLIO_GA_DEFAULTS"]

#: compact GA budget for the portfolio leg (callers override via ``ga``)
PORTFOLIO_GA_DEFAULTS = dict(
    population_size=48,
    max_generations=80,
    hill_climb="all",
    hill_climb_passes=2,
    patience=15,
)


def _run_budgeted_dknux(
    graph: CSRGraph,
    n_parts: int,
    fitness_kind: str,
    config: GAConfig,
    seed: int,
    remaining,
    abort: Optional[Callable[[float], bool]] = None,
) -> tuple[Partition, int, str]:
    """The full DKNUX engine run, clock-bounded via ``run(deadline=)``.

    Identical to :func:`repro.partition_graph` with the same config and
    seed (same engine, RNG stream, hill-climb modes, stopping rules) —
    a binding budget only stops it between generations earlier, and the
    racing portfolio's ``abort`` callback can cut a trailing leg."""
    from ..ga.dknux import DKNUX
    from ..ga.engine import GAEngine

    fitness = make_fitness(fitness_kind, graph, n_parts)
    engine = GAEngine(
        graph, fitness, DKNUX(graph, n_parts), config=config, seed=seed
    )
    budget = remaining()
    deadline = None if budget == float("inf") else time.perf_counter() + budget
    result = engine.run(deadline=deadline, abort=abort)
    return result.best, result.generations, result.stopped_by


def _baseline_legs(
    graph: CSRGraph,
    n_parts: int,
    seed: int,
    remaining: Optional[Callable[[], float]] = None,
) -> list[tuple[str, Callable[[], Partition]]]:
    """Leg list in the fixed order.  The iterative legs (KL, RSB)
    receive a per-call deadline derived from ``remaining`` at the
    moment the leg starts, so a binding budget cancels them *mid-run*
    (per-sweep checks inside each method) instead of letting a
    monolithic leg overshoot the budget; when the budget never binds
    the deadline is ``None`` and the legs are bit-identical to their
    unbudgeted runs."""
    from ..baselines import (
        greedy_partition,
        ibp_partition,
        rcb_partition,
        recursive_kl_partition,
        rgb_partition,
        rsb_partition,
    )

    def leg_deadline() -> Optional[float]:
        if remaining is None:
            return None
        left = remaining()
        return None if left == float("inf") else time.perf_counter() + left

    legs: list[tuple[str, Callable[[], Partition]]] = [
        ("greedy", lambda: greedy_partition(graph, n_parts, seed=seed)),
        ("rgb", lambda: rgb_partition(graph, n_parts)),
        (
            "kl",
            lambda: recursive_kl_partition(
                graph, n_parts, seed=seed, deadline=leg_deadline()
            ),
        ),
    ]
    if graph.coords is not None:
        legs.append(("rcb", lambda: rcb_partition(graph, n_parts)))
        legs.append(("ibp", lambda: ibp_partition(graph, n_parts)))
    legs.append(
        ("rsb", lambda: rsb_partition(graph, n_parts, deadline=leg_deadline()))
    )
    return legs


class _RaceState:
    """Shared scoreboard of a racing portfolio.

    ``incumbent`` is the best fitness among *completed* legs; the GA
    leg's abort callback reads it (and its own per-generation cost
    estimate) to decide whether it can still win.
    """

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.incumbent = -np.inf

    def offer(self, fitness: float) -> None:
        with self.lock:
            if fitness > self.incumbent:
                self.incumbent = float(fitness)

    def read(self) -> float:
        with self.lock:
            return self.incumbent


def run_portfolio(
    graph: CSRGraph,
    n_parts: int,
    fitness_kind: str = "fitness1",
    seed: int = 0,
    time_budget: Optional[float] = None,
    ga: Optional[dict] = None,
    racing: bool = False,
) -> tuple[Partition, str, float, list[dict]]:
    """Race the portfolio; returns ``(best, method, fitness, table)``.

    ``table`` has one row per leg in the fixed leg order — ``{method,
    cut_size, max_part_cut, fitness, seconds}`` for legs that ran,
    ``{method, skipped: reason}`` for legs the budget cut or that
    failed (a leg error never sinks the request; the race just moves
    on).  The winner is the highest-fitness leg, ties resolved by leg
    order, which makes the reported winner identical between serial and
    racing execution whenever the budget does not bind (see the module
    docstring).  ``racing=True`` runs the legs concurrently and cancels
    the GA leg once it can no longer beat the incumbent under the
    remaining budget.
    """
    fitness = make_fitness(fitness_kind, graph, n_parts)
    t_start = time.perf_counter()

    def remaining() -> float:
        if time_budget is None:
            return float("inf")
        return time_budget - (time.perf_counter() - t_start)

    baselines = _baseline_legs(graph, n_parts, seed, remaining)
    overrides = dict(PORTFOLIO_GA_DEFAULTS)
    if ga:
        overrides.update(ga)
    config = GAConfig(**overrides)

    if racing:
        rows = _race_legs(
            graph, n_parts, fitness_kind, fitness, config, seed,
            baselines, remaining,
        )
    else:
        rows = _serial_legs(
            graph, n_parts, fitness_kind, fitness, config, seed,
            baselines, remaining,
        )

    table: list[dict] = []
    best: Optional[Partition] = None
    best_method = ""
    best_fitness = -np.inf
    for method, partition, value, row in rows:
        table.append(row)
        if partition is not None and value > best_fitness:
            best, best_method, best_fitness = partition, method, value

    if best is None:
        # every leg failed or was cut — fall back to a trivial valid answer
        from ..baselines import random_partition

        best = random_partition(graph, n_parts, seed=seed)
        best_method = "random"
        best_fitness = fitness.evaluate(best.assignment)
        table.append({"method": "random", "skipped": "fallback answer"})
    return best, best_method, float(best_fitness), table


# ----------------------------------------------------------------------
# serial execution (the original fixed-order loop)
# ----------------------------------------------------------------------

def _serial_legs(
    graph, n_parts, fitness_kind, fitness, config, seed, baselines, remaining
) -> list[tuple]:
    """``[(method, partition|None, fitness, table_row), ...]`` in leg
    order; baselines first, then the budget-bounded DKNUX leg."""
    rows: list[tuple] = []
    for method, leg in baselines:
        if remaining() <= 0:
            rows.append((method, None, -np.inf,
                         {"method": method, "skipped": "time budget exhausted"}))
            continue
        t0 = time.perf_counter()
        try:
            partition = leg()
        except ReproError as exc:
            rows.append((method, None, -np.inf,
                         {"method": method, "skipped": f"failed: {exc}"}))
            continue
        rows.append(_leg_row(method, partition, fitness,
                             time.perf_counter() - t0))

    # DKNUX leg: spend whatever budget remains — the generation loop
    # checks the clock, so a binding budget stops the GA mid-run and
    # answers with its best-so-far instead of overshooting the cap
    if remaining() > 0:
        t0 = time.perf_counter()
        partition, generations, _ = _run_budgeted_dknux(
            graph, n_parts, fitness_kind, config, seed, remaining
        )
        row = _leg_row("dknux", partition, fitness, time.perf_counter() - t0)
        row[3]["generations"] = generations
        rows.append(row)
    else:
        rows.append(("dknux", None, -np.inf,
                     {"method": "dknux", "skipped": "time budget exhausted"}))
    return rows


# ----------------------------------------------------------------------
# racing execution (one thread per leg, loser cancellation)
# ----------------------------------------------------------------------

def _race_legs(
    graph, n_parts, fitness_kind, fitness, config, seed, baselines, remaining
) -> list[tuple]:
    """Run every leg concurrently; returns rows in the fixed leg order.

    The pool is exactly as wide as the leg list, so no leg waits in a
    queue and a non-binding budget gives every leg its full serial
    computation (determinism of the winner follows from the fixed-order
    scan in :func:`run_portfolio`).
    """
    race = _RaceState()

    def run_baseline(method, leg):
        if remaining() <= 0:
            return (method, None, -np.inf,
                    {"method": method, "skipped": "time budget exhausted"})
        t0 = time.perf_counter()
        try:
            partition = leg()
        except ReproError as exc:
            return (method, None, -np.inf,
                    {"method": method, "skipped": f"failed: {exc}"})
        row = _leg_row(method, partition, fitness, time.perf_counter() - t0)
        race.offer(row[2])
        return row

    def run_dknux():
        if remaining() <= 0:
            return ("dknux", None, -np.inf,
                    {"method": "dknux", "skipped": "time budget exhausted"})
        last_tick: Optional[float] = None
        gen_cost = float("inf")  # fastest full generation observed

        def abort(best_so_far: float) -> bool:
            # A GA improves only by completing generations: once it
            # trails every completed leg AND cannot fit even its
            # *fastest* observed generation in the remaining budget, it
            # cannot win.  The first callback fires after engine setup
            # and the initial-population evaluation, so that interval
            # is discarded (it is not a generation's cost), and the
            # minimum — not the maximum — is kept so measurement noise
            # can only delay cancellation, never cause a premature one.
            nonlocal last_tick, gen_cost
            now = time.perf_counter()
            if last_tick is not None:
                gen_cost = min(gen_cost, now - last_tick)
            last_tick = now
            left = remaining()
            if left == float("inf"):
                return False  # non-binding budget: never abort (determinism)
            return (
                gen_cost != float("inf")
                and best_so_far <= race.read()
                and left < gen_cost
            )

        t0 = time.perf_counter()
        partition, generations, stopped_by = _run_budgeted_dknux(
            graph, n_parts, fitness_kind, config, seed, remaining, abort=abort
        )
        row = _leg_row("dknux", partition, fitness, time.perf_counter() - t0)
        row[3]["generations"] = generations
        if stopped_by == "aborted":
            row[3]["aborted"] = True  # cancelled: could no longer win
        race.offer(row[2])
        return row

    with ThreadPoolExecutor(max_workers=len(baselines) + 1) as pool:
        futures = [
            pool.submit(run_baseline, method, leg) for method, leg in baselines
        ]
        futures.append(pool.submit(run_dknux))
        return [f.result() for f in futures]


def _leg_row(method: str, partition: Partition, fitness, seconds: float):
    value = float(fitness.evaluate(partition.assignment))
    return (
        method,
        partition,
        value,
        {
            "method": method,
            "cut_size": float(partition.cut_size),
            "max_part_cut": float(partition.max_part_cut),
            "fitness": value,
            "seconds": round(seconds, 6),
        },
    )
