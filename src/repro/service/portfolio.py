"""Method-portfolio mode: race DKNUX against the cheap baselines.

The paper compares DKNUX against a suite of classical partitioners
(Section 4); production traffic turns that comparison into a serving
strategy.  Under a time budget the portfolio runs the cheap
deterministic baselines first (greedy growth, recursive graph
bisection, recursive KL, plus the coordinate methods when the graph
carries coordinates, and RSB), then spends whatever budget remains on
the DKNUX GA, and answers with the best partition seen — so a tight
budget degrades gracefully to the best classical answer instead of
timing out, and a loose one recovers full GA quality.

Every method is scored by the *request's* fitness function (the same
objective the GA optimizes), so "best" means best under the paper's
cost model, not merely smallest edge cut.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

import numpy as np

from ..errors import ReproError
from ..ga.config import GAConfig
from ..ga.fitness import make_fitness
from ..graphs.csr import CSRGraph
from ..partition.partition import Partition

__all__ = ["run_portfolio", "PORTFOLIO_GA_DEFAULTS"]

#: compact GA budget for the portfolio leg (callers override via ``ga``)
PORTFOLIO_GA_DEFAULTS = dict(
    population_size=48,
    max_generations=80,
    hill_climb="all",
    hill_climb_passes=2,
    patience=15,
)


def _run_budgeted_dknux(
    graph: CSRGraph,
    n_parts: int,
    fitness_kind: str,
    config: GAConfig,
    seed: int,
    remaining,
) -> tuple[Partition, int]:
    """The full DKNUX engine run, clock-bounded via ``run(deadline=)``.

    Identical to :func:`repro.partition_graph` with the same config and
    seed (same engine, RNG stream, hill-climb modes, stopping rules) —
    a binding budget only stops it between generations earlier."""
    from ..ga.dknux import DKNUX
    from ..ga.engine import GAEngine

    fitness = make_fitness(fitness_kind, graph, n_parts)
    engine = GAEngine(
        graph, fitness, DKNUX(graph, n_parts), config=config, seed=seed
    )
    budget = remaining()
    deadline = None if budget == float("inf") else time.perf_counter() + budget
    result = engine.run(deadline=deadline)
    return result.best, result.generations


def _baseline_legs(
    graph: CSRGraph, n_parts: int, seed: int
) -> list[tuple[str, Callable[[], Partition]]]:
    from ..baselines import (
        greedy_partition,
        ibp_partition,
        rcb_partition,
        recursive_kl_partition,
        rgb_partition,
        rsb_partition,
    )

    legs: list[tuple[str, Callable[[], Partition]]] = [
        ("greedy", lambda: greedy_partition(graph, n_parts, seed=seed)),
        ("rgb", lambda: rgb_partition(graph, n_parts)),
        ("kl", lambda: recursive_kl_partition(graph, n_parts, seed=seed)),
    ]
    if graph.coords is not None:
        legs.append(("rcb", lambda: rcb_partition(graph, n_parts)))
        legs.append(("ibp", lambda: ibp_partition(graph, n_parts)))
    legs.append(("rsb", lambda: rsb_partition(graph, n_parts)))
    return legs


def run_portfolio(
    graph: CSRGraph,
    n_parts: int,
    fitness_kind: str = "fitness1",
    seed: int = 0,
    time_budget: Optional[float] = None,
    ga: Optional[dict] = None,
) -> tuple[Partition, str, float, list[dict]]:
    """Race the portfolio; returns ``(best, method, fitness, table)``.

    ``table`` has one row per leg — ``{method, cut_size, max_part_cut,
    fitness, seconds}`` for legs that ran, ``{method, skipped: reason}``
    for legs the budget cut or that failed (a leg error never sinks the
    request; the race just moves on).  Legs run in fixed order with the
    budget checked between legs and between DKNUX generations, so a
    given (graph, k, fitness, seed, budget-that-does-not-bind) request
    is deterministic.
    """
    fitness = make_fitness(fitness_kind, graph, n_parts)
    t_start = time.perf_counter()

    def remaining() -> float:
        if time_budget is None:
            return float("inf")
        return time_budget - (time.perf_counter() - t_start)

    table: list[dict] = []
    best: Optional[Partition] = None
    best_method = ""
    best_fitness = -np.inf

    def record(method: str, partition: Partition, seconds: float) -> None:
        nonlocal best, best_method, best_fitness
        value = fitness.evaluate(partition.assignment)
        table.append(
            {
                "method": method,
                "cut_size": float(partition.cut_size),
                "max_part_cut": float(partition.max_part_cut),
                "fitness": value,
                "seconds": round(seconds, 6),
            }
        )
        if value > best_fitness:
            best, best_method, best_fitness = partition, method, value

    for method, leg in _baseline_legs(graph, n_parts, seed):
        if remaining() <= 0:
            table.append({"method": method, "skipped": "time budget exhausted"})
            continue
        t0 = time.perf_counter()
        try:
            partition = leg()
        except ReproError as exc:
            table.append({"method": method, "skipped": f"failed: {exc}"})
            continue
        record(method, partition, time.perf_counter() - t0)

    # DKNUX leg: spend whatever budget remains — the generation loop
    # checks the clock, so a binding budget stops the GA mid-run and
    # answers with its best-so-far instead of overshooting the cap
    if remaining() > 0:
        overrides = dict(PORTFOLIO_GA_DEFAULTS)
        if ga:
            overrides.update(ga)
        config = GAConfig(**overrides)
        t0 = time.perf_counter()
        partition, generations = _run_budgeted_dknux(
            graph, n_parts, fitness_kind, config, seed, remaining
        )
        seconds = time.perf_counter() - t0
        record("dknux", partition, seconds)
        table[-1]["generations"] = generations
    else:
        table.append({"method": "dknux", "skipped": "time budget exhausted"})

    if best is None:
        # every leg failed or was cut — fall back to a trivial valid answer
        from ..baselines import random_partition

        best = random_partition(graph, n_parts, seed=seed)
        best_method = "random"
        best_fitness = fitness.evaluate(best.assignment)
        table.append({"method": "random", "skipped": "fallback answer"})
    return best, best_method, float(best_fitness), table
