"""Shard transports: local pipes and remote sockets behind one interface.

The sharded front (:mod:`repro.service.sharding`) multiplexes request
messages ``(req_id, verb, args)`` — with an optional fourth element
carrying a trace context when the front propagates one (see
:mod:`repro.obs.trace`) — and replies ``(req_id, ok, payload)`` over
one duplex channel per shard.  This module abstracts that channel as
:class:`ShardTransport` with two implementations:

* :class:`PipeTransport` — the local fast lane: a
  :func:`multiprocessing.Pipe` connection to a child shard process,
  messages travel pickled (PR 4's original transport, unchanged bytes).
* :class:`SocketTransport` — the remote lane: a TCP socket carrying
  **length-prefixed JSON frames**.  Each frame is one message; every
  value inside it travels in the same lossless JSON payload forms the
  HTTP endpoint speaks (:mod:`repro.service.models` ``to_payload`` /
  ``from_payload``, :func:`~repro.service.models.graph_to_wire`), so a
  socket-attached shard answers bit-identical results to a local one —
  JSON round-trips IEEE doubles and int64 labels exactly.  Errors cross
  as ``{type, message}`` data (:func:`~repro.service.models.
  error_to_wire`), never as pickled objects: attaching a remote shard
  must not give it arbitrary-code-execution over the front.

Framing is a 4-byte big-endian unsigned length followed by the frame
body, capped at :data:`MAX_FRAME_BYTES`.  Two body formats share the
stream, distinguished by the first body byte:

* ``{`` (0x7B) — a UTF-8 **JSON frame**, the PR 5 wire format and the
  negotiated fallback every peer understands;
* 0x00 (:data:`BINARY_MAGIC`) — a **binary frame**: a 4-byte header
  length, a compact JSON header in which ndarrays are replaced by
  ``{"__nd__": [buffer index, dtype code, shape]}`` references plus a
  top-level ``"bufs"`` byte-count table, then the referenced buffers
  back to back as raw little-endian C-order bytes.  CSR edge arrays,
  weights, and assignments cross as one ``memoryview`` gather-write
  instead of a number-by-number JSON encode.

Binary frames are only *sent* after capability negotiation (the
``capabilities`` shard verb — see :mod:`repro.service.sharding`), but
every receiver accepts both formats unconditionally, so old and new
peers interoperate frame by frame.  Since PR 10 the same handshake
also negotiates the *ring protocol*: the front's ``capabilities`` call
carries an optional args dict ``{"ring_protocol": 1, "ring_epoch": E}``
and a ring-aware shard echoes ``ring_protocol``/``ring_epoch`` back in
its reply — all inside an ordinary JSON frame, no new wire format.  An
old peer ignores unknown args and omits the keys, which the front
reads as "speaks no ring verbs"; an old front sends no args dict and a
new shard answers exactly as before, so the epoch exchange costs
nothing when unused and breaks nobody.  Both formats decode through the
same value codec and therefore produce bit-identical messages.  The
pipe lane has an analogous negotiated fast path: array payloads above
:data:`SHM_MIN_BYTES` cross via a :mod:`multiprocessing.shared_memory`
segment (the same binary header + buffer layout) instead of the pipe
buffer.

A peer that disappears surfaces as
:class:`EOFError`/:class:`OSError` from :meth:`recv`, which is exactly
what the front's per-shard reader thread treats as shard death; a
malformed or oversized frame of either format surfaces as
:class:`ServiceError` *after* the full frame is consumed, so the
stream stays in sync and the connection usable.  :class:`ShardListener`
is the accept side used by the standalone shard server
(``repro-partition serve --shard-listen``).
"""

from __future__ import annotations

import json
import socket
import struct
import threading
from typing import Optional, Union

import numpy as np

from ..errors import ServiceError
from ..graphs.csr import CSRGraph
from .models import (
    JobResult,
    PartitionRequest,
    RefineRequest,
    UpdateRequest,
    error_from_wire,
    error_to_wire,
    graph_from_wire,
    graph_to_wire,
)

__all__ = [
    "MAX_FRAME_BYTES",
    "BINARY_MAGIC",
    "SHM_MIN_BYTES",
    "SHUTDOWN",
    "ShardTransport",
    "PipeTransport",
    "SocketTransport",
    "ShardListener",
    "connect_shard",
    "parse_address",
    "encode_message",
    "decode_message",
    "encode_frame_binary",
    "decode_frame_binary",
]

#: one frame = one message; 256 MiB bounds a hostile or corrupt length
#: prefix while leaving ample room for the largest mesh payloads
MAX_FRAME_BYTES = 256 << 20

#: first body byte of a binary frame — JSON bodies always start with
#: ``{`` (0x7B), so 0x00 is unambiguous on a shared stream
BINARY_MAGIC = 0x00

#: pipe messages whose array payloads reach this many bytes cross via a
#: shared-memory segment instead of the pipe buffer (one copy in, one
#: copy out, no kernel pipe transit); below it, plain pickle wins
SHM_MIN_BYTES = 4 << 20

#: marker heading a shared-memory pipe message ``(tag, header, name)``
#: — never collides with protocol tuples, whose first element is an int
_SHM_TAG = "__shm__"

#: dtype whitelist of the binary lane: everything that crosses the
#: shard boundary is int64 labels/indices or float64 weights/coords
_ND_DTYPES = {"i8": "<i8", "f8": "<f8"}

#: control message ending a shard's serving loop (local shards only —
#: a front never shuts a remote shard server down by disconnecting)
SHUTDOWN = "__shutdown__"

_REQUEST_KINDS = {
    PartitionRequest.kind: PartitionRequest,
    RefineRequest.kind: RefineRequest,
    UpdateRequest.kind: UpdateRequest,
}


def parse_address(address: str) -> tuple[str, int]:
    """``"HOST:PORT"`` → ``(host, port)`` with a precise error."""
    host, sep, port = str(address).rpartition(":")
    if not sep or not host:
        raise ServiceError(
            f"shard address must be HOST:PORT, got {address!r}"
        )
    try:
        return host, int(port)
    except ValueError:
        raise ServiceError(
            f"shard address port must be an integer, got {address!r}"
        ) from None


# ----------------------------------------------------------------------
# message codec (socket lane)
# ----------------------------------------------------------------------

def _encode_value(value, arrays=None) -> dict:
    """One message value → its tagged wire form.  ``arrays`` is the
    binary lane's ndarray hook (see :func:`_encode_binary_parts`);
    ``None`` keeps the PR 5 JSON form byte-for-byte."""
    if isinstance(value, (PartitionRequest, RefineRequest, UpdateRequest)):
        return {"t": "req", "v": value.to_payload(arrays=arrays)}
    if isinstance(value, CSRGraph):
        return {"t": "graph", "v": graph_to_wire(value, arrays=arrays)}
    if isinstance(value, JobResult):
        return {"t": "result", "v": value.to_payload(arrays=arrays)}
    if isinstance(value, BaseException):
        return {"t": "error", "v": error_to_wire(value)}
    if isinstance(value, (list, tuple)):
        return {
            "t": "list",
            "v": [_encode_value(item, arrays) for item in value],
        }
    return {"t": "val", "v": value}


def _decode_value(obj):
    try:
        tag, value = obj["t"], obj["v"]
    except (TypeError, KeyError):
        raise ServiceError(f"malformed shard wire value: {obj!r}") from None
    if tag == "req":
        cls = _REQUEST_KINDS.get(value.get("kind") if isinstance(value, dict) else None)
        if cls is None:
            raise ServiceError(
                f"unknown request kind in shard message: {value!r}"
            )
        return cls.from_payload(value)
    if tag == "graph":
        return graph_from_wire(value)
    if tag == "result":
        return JobResult.from_payload(value)
    if tag == "error":
        return error_from_wire(value)
    if tag == "list":
        return [_decode_value(item) for item in value]
    if tag == "val":
        return value
    raise ServiceError(f"unknown shard wire tag {tag!r}")


def _message_to_obj(message, arrays=None) -> dict:
    """One multiplexer message → its JSON-able frame object.

    Accepts the shapes the shard protocol uses: the :data:`SHUTDOWN`
    control string, request tuples ``(req_id, verb, args)`` — optionally
    ``(req_id, verb, args, trace_ctx)`` when the front propagates a
    trace context — and reply tuples ``(req_id, ok, payload)``.  A
    traceless request encodes to the exact same bytes as before the
    trace field existed (the ``"tc"`` key is simply absent).
    """
    if message == SHUTDOWN:
        return {"ctl": "shutdown"}
    if isinstance(message, tuple) and len(message) in (3, 4):
        req_id, second, third = message[0], message[1], message[2]
        if isinstance(second, str):  # request: (req_id, verb, args[, tc])
            obj = {
                "id": int(req_id),
                "verb": second,
                "args": [_encode_value(arg, arrays) for arg in third],
            }
            if len(message) == 4 and message[3]:
                obj["tc"] = dict(message[3])
            return obj
        if len(message) == 3:  # reply: (req_id, ok, payload)
            return {
                "id": int(req_id),
                "ok": bool(second),
                "payload": _encode_value(third, arrays),
            }
    raise ServiceError(f"cannot encode shard message: {message!r}")


def encode_message(message) -> bytes:
    """One multiplexer message → one JSON frame body (see
    :func:`_message_to_obj` for the accepted message shapes)."""
    return json.dumps(_message_to_obj(message), separators=(",", ":")).encode()


def _obj_to_message(obj: dict):
    """A decoded frame object → the multiplexer message it carries."""
    if obj.get("ctl") == "shutdown":
        return SHUTDOWN
    try:
        if "verb" in obj:
            request = (
                int(obj["id"]),
                str(obj["verb"]),
                tuple(_decode_value(arg) for arg in obj.get("args", [])),
            )
            tc = obj.get("tc")
            if isinstance(tc, dict) and tc:
                return request + (tc,)
            return request
        if "ok" in obj:
            return (
                int(obj["id"]),
                bool(obj["ok"]),
                _decode_value(obj["payload"]),
            )
    except (KeyError, TypeError, ValueError) as exc:
        # the contract above: malformed frames surface as ServiceError,
        # never as a bare exception that kills the reader thread
        raise ServiceError(f"malformed shard frame: {exc!r}") from exc
    raise ServiceError(f"unrecognized shard frame: keys={sorted(obj)[:6]!r}")


def decode_message(data: bytes):
    """Inverse of :func:`encode_message` (malformed frames raise
    :class:`ServiceError`, never crash the reader)."""
    try:
        obj = json.loads(data.decode())
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ServiceError(f"malformed shard frame: {exc}") from exc
    if not isinstance(obj, dict):
        raise ServiceError("shard frame must be a JSON object")
    return _obj_to_message(obj)


# ----------------------------------------------------------------------
# binary frames
# ----------------------------------------------------------------------

def _encode_binary_parts(message) -> tuple[bytes, list]:
    """One message → ``(JSON header bytes, [ndarray buffers])``.

    The header is the :func:`_message_to_obj` object with every ndarray
    replaced by a ``{"__nd__": [index, dtype code, shape]}`` reference
    and a top-level ``"bufs"`` byte-count table appended; the buffers
    are contiguous little-endian arrays in reference order.
    """
    bufs: list = []

    def arrays(arr, dtype) -> dict:
        a = np.ascontiguousarray(np.asarray(arr, dtype=dtype))
        code = "i8" if a.dtype.kind == "i" else "f8"
        if a.dtype.byteorder == ">":  # pragma: no cover - big-endian host
            a = a.astype(a.dtype.newbyteorder("<"))
        bufs.append(a)
        return {"__nd__": [len(bufs) - 1, code, list(a.shape)]}

    obj = _message_to_obj(message, arrays)
    obj["bufs"] = [int(a.nbytes) for a in bufs]
    return json.dumps(obj, separators=(",", ":")).encode(), bufs


def encode_frame_binary(message) -> list:
    """One message → binary frame body segments ``[head, buffer, ...]``
    ready for a gather-write (``head`` carries magic byte, header
    length, and header; each buffer is a flat ``memoryview``)."""
    header, bufs = _encode_binary_parts(message)
    head = struct.pack(">BI", BINARY_MAGIC, len(header)) + header
    return [head] + [memoryview(a).cast("B") for a in bufs]


def _resolve_nd(value, materialize):
    """Replace ``{"__nd__": ref}`` dicts in a decoded header value tree
    with the ndarrays they reference."""
    if isinstance(value, dict):
        if len(value) == 1 and "__nd__" in value:
            return materialize(value["__nd__"])
        return {k: _resolve_nd(v, materialize) for k, v in value.items()}
    if isinstance(value, list):
        return [_resolve_nd(v, materialize) for v in value]
    return value


def _decode_binary_segment(header: bytes, data, exact: bool = True):
    """Decode a binary frame from its JSON header and buffer bytes.

    ``exact`` requires the buffer section to match the declared table
    byte-for-byte (the socket lane, where the peer is untrusted); the
    shared-memory lane passes ``False`` because segments are rounded up
    to page size.  Every validation failure raises :class:`ServiceError`
    — the caller has already consumed the whole frame, so the transport
    stream stays in sync.
    """
    try:
        obj = json.loads(bytes(header).decode())
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ServiceError(f"malformed binary shard header: {exc}") from exc
    if not isinstance(obj, dict):
        raise ServiceError("binary shard header must be a JSON object")
    table = obj.pop("bufs", [])
    if not isinstance(table, list) or not all(
        isinstance(n, int) and not isinstance(n, bool) and n >= 0
        for n in table
    ):
        raise ServiceError("binary shard header buffer table is malformed")
    data = memoryview(data).cast("B")
    total = sum(table)
    if total > len(data) or (exact and total != len(data)):
        raise ServiceError(
            f"binary shard frame declares {total} buffer bytes but "
            f"carries {len(data)}"
        )
    offsets, off = [], 0
    for n in table:
        offsets.append(off)
        off += n

    def materialize(ref) -> np.ndarray:
        try:
            idx, code, shape = ref
            idx = int(idx)
            nbytes = table[idx] if idx >= 0 else None
            dtype = np.dtype(_ND_DTYPES[code])
            shape = tuple(int(s) for s in shape)
        except (TypeError, ValueError, KeyError, IndexError):
            raise ServiceError(
                f"malformed ndarray reference in binary shard frame: {ref!r}"
            ) from None
        count = 1
        for s in shape:
            count *= s
        if nbytes is None or any(s < 0 for s in shape) or (
            count * dtype.itemsize != nbytes
        ):
            raise ServiceError(
                f"ndarray reference {ref!r} disagrees with its buffer "
                f"({nbytes} bytes)"
            )
        arr = np.frombuffer(
            data, dtype=dtype, count=count, offset=offsets[idx]
        )
        return arr.reshape(shape)

    return _obj_to_message(
        {k: _resolve_nd(v, materialize) for k, v in obj.items()}
    )


def decode_frame_binary(body):
    """Inverse of :func:`encode_frame_binary` for a whole frame body
    *after* the magic byte: ``u32 BE header length | header | buffers``.
    Decoded arrays are zero-copy views into ``body``."""
    view = memoryview(body)
    if len(view) < 4:
        raise ServiceError(
            "binary shard frame truncated before its header length"
        )
    (hlen,) = struct.unpack_from(">I", view, 0)
    if hlen > len(view) - 4:
        raise ServiceError(
            f"binary shard header of {hlen} bytes overruns the "
            f"{len(view)}-byte frame"
        )
    return _decode_binary_segment(
        bytes(view[4:4 + hlen]), view[4 + hlen:], exact=True
    )


# ----------------------------------------------------------------------
# shared-memory lane (pipe transport)
# ----------------------------------------------------------------------

def _array_nbytes(value) -> int:
    """Total ndarray payload bytes in a message — the shared-memory
    lane's routing estimate (cheap attribute sums, no encoding)."""
    if isinstance(value, (list, tuple)):
        return sum(_array_nbytes(v) for v in value)
    if isinstance(value, CSRGraph):
        n = (
            value.edges_u.nbytes
            + value.edges_v.nbytes
            + value.edge_weights.nbytes
            + value.node_weights.nbytes
        )
        if value.coords is not None:
            n += value.coords.nbytes
        return n
    if isinstance(value, (PartitionRequest, UpdateRequest)):
        return _array_nbytes(value.graph)
    if isinstance(value, RefineRequest):
        return _array_nbytes(value.graph) + value.assignment.nbytes
    if isinstance(value, JobResult):
        return np.asarray(value.assignment).nbytes
    return 0


def _shm_unregister(shm) -> None:
    """Hand segment ownership to the receiver: this process's resource
    tracker must not unlink (or warn about) a segment the *receiver*
    unlinks after copying it out."""
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    # repro: allow[BROAD-EXCEPT] — tracker bookkeeping must never fail a
    # send/recv that already succeeded; worst case is a shutdown warning
    except Exception:  # pragma: no cover - tracker internals vary
        pass


def _recv_shm(message):
    """Decode a ``(_SHM_TAG, header, name)`` pipe message: attach, copy
    the segment out, unlink, then decode from the owned copy."""
    from multiprocessing import shared_memory

    _, header, name = message
    try:
        shm = shared_memory.SharedMemory(name=name)
    except (FileNotFoundError, OSError) as exc:
        raise ServiceError(
            f"shared-memory shard frame {name!r} vanished: {exc}"
        ) from exc
    try:
        data = bytes(shm.buf)
    finally:
        shm.close()
        try:
            shm.unlink()
        except (FileNotFoundError, OSError):  # pragma: no cover - raced
            pass
        _shm_unregister(shm)
    return _decode_binary_segment(header, data, exact=False)


# ----------------------------------------------------------------------
# transports
# ----------------------------------------------------------------------

class ShardTransport:
    """One duplex message channel between the front and a shard.

    ``send``/``recv`` move whole multiplexer messages; :meth:`recv`
    raises :class:`EOFError` or :class:`OSError` when the peer is gone
    (the reader thread's shard-death signal), and :meth:`close` must be
    safe to call from another thread to unblock a parked :meth:`recv`.
    """

    def send(self, message) -> None:
        raise NotImplementedError

    def recv(self):
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError

    def enable_binary(self) -> bool:
        """Switch this channel's sends to their zero-copy fast path
        (binary socket frames / shared-memory pipe segments).  Returns
        whether the transport has one; the base class does not."""
        return False


class PipeTransport(ShardTransport):
    """The local fast lane: a multiprocessing pipe, pickled messages.

    ``send`` is serialized internally — Connection.send is not safe
    under concurrent writers, and the shard worker replies from
    multiple handler threads.  After :meth:`enable_binary`, messages
    whose array payloads reach :data:`SHM_MIN_BYTES` cross via a
    shared-memory segment (binary header + raw buffers) instead of the
    pickled pipe buffer — same decoded values either way."""

    def __init__(self, conn) -> None:
        self.conn = conn
        self._send_lock = threading.Lock()
        self.shm = False
        self.shm_threshold = SHM_MIN_BYTES

    def enable_binary(self) -> bool:
        self.shm = True
        return True

    def send(self, message) -> None:
        if self.shm and _array_nbytes(message) >= self.shm_threshold:
            self._send_shm(message)
            return
        with self._send_lock:
            # repro: allow[LOCK-HELD-BLOCKING] — holding the send lock across
            # the write IS the serialization: whole frames must hit the pipe
            # atomically, and the lock guards nothing else
            self.conn.send(message)

    def _send_shm(self, message) -> None:
        """Large-array lane: copy the binary-frame buffers into a fresh
        shared-memory segment and send only ``(tag, header, name)``."""
        from multiprocessing import shared_memory

        header, bufs = _encode_binary_parts(message)
        nbytes = sum(a.nbytes for a in bufs)
        shm = shared_memory.SharedMemory(create=True, size=max(nbytes, 1))
        try:
            off = 0
            for a in bufs:
                flat = memoryview(a).cast("B")
                shm.buf[off:off + len(flat)] = flat
                off += len(flat)
            with self._send_lock:
                # repro: allow[LOCK-HELD-BLOCKING] — same serialization
                # contract as the plain lane: one whole message per send
                self.conn.send((_SHM_TAG, header, shm.name))
        except BaseException:
            # receiver never saw the name — reclaim the segment here
            shm.close()
            try:
                shm.unlink()
            except (FileNotFoundError, OSError):  # pragma: no cover
                pass
            raise
        # the receiver copies the segment out and unlinks it; drop our
        # tracker registration so this process doesn't double-unlink
        shm.close()
        _shm_unregister(shm)

    def recv(self):
        message = self.conn.recv()
        if (
            isinstance(message, tuple)
            and len(message) == 3
            and message[0] == _SHM_TAG
        ):
            return _recv_shm(message)
        return message

    def close(self) -> None:
        try:
            self.conn.close()
        except OSError:
            pass

    def __repr__(self) -> str:
        return "PipeTransport()"


class SocketTransport(ShardTransport):
    """The remote lane: length-prefixed frames over a socket.

    Sends are JSON frames until :meth:`enable_binary`, then binary
    frames (raw array buffers gather-written after a compact header).
    Receives dispatch on the first body byte, so either peer may
    upgrade independently."""

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self._send_lock = threading.Lock()
        self.binary = False
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:  # pragma: no cover - non-TCP socket pairs
            pass

    def enable_binary(self) -> bool:
        self.binary = True
        return True

    def send(self, message) -> None:
        if self.binary:
            segments = encode_frame_binary(message)
            length = sum(len(s) for s in segments)
            if length > MAX_FRAME_BYTES:
                raise ServiceError(
                    f"shard frame of {length} bytes exceeds "
                    f"MAX_FRAME_BYTES ({MAX_FRAME_BYTES})"
                )
            segments.insert(0, struct.pack(">I", length))
            with self._send_lock:
                # repro: allow[LOCK-HELD-BLOCKING] — holding the send lock
                # across the gather-write IS the serialization: whole frames
                # must hit the socket atomically, the lock guards nothing else
                self._send_segments(segments)
            return
        body = encode_message(message)
        if len(body) > MAX_FRAME_BYTES:
            raise ServiceError(
                f"shard frame of {len(body)} bytes exceeds "
                f"MAX_FRAME_BYTES ({MAX_FRAME_BYTES})"
            )
        frame = struct.pack(">I", len(body)) + body
        with self._send_lock:
            # repro: allow[LOCK-HELD-BLOCKING] — holding the send lock across
            # sendall IS the serialization: whole frames must hit the socket
            # atomically, and the lock guards nothing else
            self.sock.sendall(frame)

    def _send_segments(self, segments: list) -> None:
        """Gather-write without concatenating the array buffers (the
        zero-copy half of the binary lane)."""
        if not hasattr(self.sock, "sendmsg"):  # pragma: no cover - exotic
            self.sock.sendall(b"".join(segments))
            return
        views = [memoryview(s).cast("B") for s in segments]
        while views:
            # cap the iovec count well under any platform's IOV_MAX
            sent = self.sock.sendmsg(views[:512])
            while sent:
                if sent >= len(views[0]):
                    sent -= len(views[0])
                    views.pop(0)
                else:
                    views[0] = views[0][sent:]
                    sent = 0

    def recv(self):
        header = self._recv_exact(4)
        (length,) = struct.unpack(">I", header)
        if length > MAX_FRAME_BYTES:
            raise ServiceError(
                f"incoming shard frame of {length} bytes exceeds "
                f"MAX_FRAME_BYTES ({MAX_FRAME_BYTES})"
            )
        if length == 0:
            return decode_message(b"")
        body = self._recv_into_exact(length)
        if body[0] == BINARY_MAGIC:
            return decode_frame_binary(memoryview(body)[1:])
        return decode_message(bytes(body))

    def _recv_exact(self, n: int) -> bytes:
        chunks = []
        remaining = n
        while remaining:
            chunk = self.sock.recv(min(remaining, 1 << 20))
            if not chunk:
                raise EOFError("shard socket closed")
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def _recv_into_exact(self, n: int) -> bytearray:
        """Read exactly ``n`` body bytes into one buffer (decoded binary
        arrays stay views into it — no reassembly copy)."""
        buf = bytearray(n)
        view = memoryview(buf)
        got = 0
        while got < n:
            read = self.sock.recv_into(view[got:], n - got)
            if not read:
                raise EOFError("shard socket closed mid-frame")
            got += read
        return buf

    def close(self) -> None:
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:  # pragma: no cover - double close
            pass

    def __repr__(self) -> str:
        try:
            peer = self.sock.getpeername()
        except OSError:
            peer = "closed"
        return f"SocketTransport(peer={peer})"


def connect_shard(
    address: Union[str, tuple[str, int]], timeout: Optional[float] = 10.0
) -> SocketTransport:
    """Connect to a listening shard server; returns a ready transport.

    ``address`` is ``"HOST:PORT"`` or a ``(host, port)`` pair.  The
    connect honors ``timeout``; the established socket then blocks
    indefinitely (request latency is the service's business, not the
    transport's).
    """
    host, port = (
        parse_address(address) if isinstance(address, str) else address
    )
    sock = socket.create_connection((host, port), timeout=timeout)
    sock.settimeout(None)
    return SocketTransport(sock)


class ShardListener:
    """Accept side of the socket transport (the shard server's door)."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self.sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self.sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self.sock.bind((host, port))
        self.sock.listen()
        self.host, self.port = self.sock.getsockname()[:2]
        self.address = f"{self.host}:{self.port}"

    def accept(self) -> SocketTransport:
        """Block for one front connection (OSError once closed)."""
        conn, _ = self.sock.accept()
        return SocketTransport(conn)

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:  # pragma: no cover - double close
            pass

    def __repr__(self) -> str:
        return f"ShardListener(address={self.address!r})"
