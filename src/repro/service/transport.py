"""Shard transports: local pipes and remote sockets behind one interface.

The sharded front (:mod:`repro.service.sharding`) multiplexes request
messages ``(req_id, verb, args)`` — with an optional fourth element
carrying a trace context when the front propagates one (see
:mod:`repro.obs.trace`) — and replies ``(req_id, ok, payload)`` over
one duplex channel per shard.  This module abstracts that channel as
:class:`ShardTransport` with two implementations:

* :class:`PipeTransport` — the local fast lane: a
  :func:`multiprocessing.Pipe` connection to a child shard process,
  messages travel pickled (PR 4's original transport, unchanged bytes).
* :class:`SocketTransport` — the remote lane: a TCP socket carrying
  **length-prefixed JSON frames**.  Each frame is one message; every
  value inside it travels in the same lossless JSON payload forms the
  HTTP endpoint speaks (:mod:`repro.service.models` ``to_payload`` /
  ``from_payload``, :func:`~repro.service.models.graph_to_wire`), so a
  socket-attached shard answers bit-identical results to a local one —
  JSON round-trips IEEE doubles and int64 labels exactly.  Errors cross
  as ``{type, message}`` data (:func:`~repro.service.models.
  error_to_wire`), never as pickled objects: attaching a remote shard
  must not give it arbitrary-code-execution over the front.

Framing is a 4-byte big-endian unsigned length followed by the UTF-8
JSON body, capped at :data:`MAX_FRAME_BYTES`; a peer that disappears
surfaces as :class:`EOFError`/:class:`OSError` from :meth:`recv`, which
is exactly what the front's per-shard reader thread treats as shard
death.  :class:`ShardListener` is the accept side used by the
standalone shard server (``repro-partition serve --shard-listen``).
"""

from __future__ import annotations

import json
import socket
import struct
import threading
from typing import Optional, Union

from ..errors import ServiceError
from ..graphs.csr import CSRGraph
from .models import (
    JobResult,
    PartitionRequest,
    RefineRequest,
    UpdateRequest,
    error_from_wire,
    error_to_wire,
    graph_from_wire,
    graph_to_wire,
)

__all__ = [
    "MAX_FRAME_BYTES",
    "SHUTDOWN",
    "ShardTransport",
    "PipeTransport",
    "SocketTransport",
    "ShardListener",
    "connect_shard",
    "parse_address",
    "encode_message",
    "decode_message",
]

#: one frame = one message; 256 MiB bounds a hostile or corrupt length
#: prefix while leaving ample room for the largest mesh payloads
MAX_FRAME_BYTES = 256 << 20

#: control message ending a shard's serving loop (local shards only —
#: a front never shuts a remote shard server down by disconnecting)
SHUTDOWN = "__shutdown__"

_REQUEST_KINDS = {
    PartitionRequest.kind: PartitionRequest,
    RefineRequest.kind: RefineRequest,
    UpdateRequest.kind: UpdateRequest,
}


def parse_address(address: str) -> tuple[str, int]:
    """``"HOST:PORT"`` → ``(host, port)`` with a precise error."""
    host, sep, port = str(address).rpartition(":")
    if not sep or not host:
        raise ServiceError(
            f"shard address must be HOST:PORT, got {address!r}"
        )
    try:
        return host, int(port)
    except ValueError:
        raise ServiceError(
            f"shard address port must be an integer, got {address!r}"
        ) from None


# ----------------------------------------------------------------------
# message codec (socket lane)
# ----------------------------------------------------------------------

def _encode_value(value) -> dict:
    if isinstance(value, (PartitionRequest, RefineRequest, UpdateRequest)):
        return {"t": "req", "v": value.to_payload()}
    if isinstance(value, CSRGraph):
        return {"t": "graph", "v": graph_to_wire(value)}
    if isinstance(value, JobResult):
        return {"t": "result", "v": value.to_payload()}
    if isinstance(value, BaseException):
        return {"t": "error", "v": error_to_wire(value)}
    if isinstance(value, (list, tuple)):
        return {"t": "list", "v": [_encode_value(item) for item in value]}
    return {"t": "val", "v": value}


def _decode_value(obj):
    try:
        tag, value = obj["t"], obj["v"]
    except (TypeError, KeyError):
        raise ServiceError(f"malformed shard wire value: {obj!r}") from None
    if tag == "req":
        cls = _REQUEST_KINDS.get(value.get("kind") if isinstance(value, dict) else None)
        if cls is None:
            raise ServiceError(
                f"unknown request kind in shard message: {value!r}"
            )
        return cls.from_payload(value)
    if tag == "graph":
        return graph_from_wire(value)
    if tag == "result":
        return JobResult.from_payload(value)
    if tag == "error":
        return error_from_wire(value)
    if tag == "list":
        return [_decode_value(item) for item in value]
    if tag == "val":
        return value
    raise ServiceError(f"unknown shard wire tag {tag!r}")


def encode_message(message) -> bytes:
    """One multiplexer message → one JSON frame body.

    Accepts the shapes the shard protocol uses: the :data:`SHUTDOWN`
    control string, request tuples ``(req_id, verb, args)`` — optionally
    ``(req_id, verb, args, trace_ctx)`` when the front propagates a
    trace context — and reply tuples ``(req_id, ok, payload)``.  A
    traceless request encodes to the exact same bytes as before the
    trace field existed (the ``"tc"`` key is simply absent).
    """
    if message == SHUTDOWN:
        obj = {"ctl": "shutdown"}
    elif isinstance(message, tuple) and len(message) in (3, 4):
        req_id, second, third = message[0], message[1], message[2]
        if isinstance(second, str):  # request: (req_id, verb, args[, tc])
            obj = {
                "id": int(req_id),
                "verb": second,
                "args": [_encode_value(arg) for arg in third],
            }
            if len(message) == 4 and message[3]:
                obj["tc"] = dict(message[3])
        elif len(message) == 3:  # reply: (req_id, ok, payload)
            obj = {
                "id": int(req_id),
                "ok": bool(second),
                "payload": _encode_value(third),
            }
        else:
            raise ServiceError(f"cannot encode shard message: {message!r}")
    else:
        raise ServiceError(f"cannot encode shard message: {message!r}")
    return json.dumps(obj, separators=(",", ":")).encode()


def decode_message(data: bytes):
    """Inverse of :func:`encode_message` (malformed frames raise
    :class:`ServiceError`, never crash the reader)."""
    try:
        obj = json.loads(data.decode())
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ServiceError(f"malformed shard frame: {exc}") from exc
    if not isinstance(obj, dict):
        raise ServiceError("shard frame must be a JSON object")
    if obj.get("ctl") == "shutdown":
        return SHUTDOWN
    try:
        if "verb" in obj:
            request = (
                int(obj["id"]),
                str(obj["verb"]),
                tuple(_decode_value(arg) for arg in obj.get("args", [])),
            )
            tc = obj.get("tc")
            if isinstance(tc, dict) and tc:
                return request + (tc,)
            return request
        if "ok" in obj:
            return (
                int(obj["id"]),
                bool(obj["ok"]),
                _decode_value(obj["payload"]),
            )
    except (KeyError, TypeError, ValueError) as exc:
        # the contract above: malformed frames surface as ServiceError,
        # never as a bare exception that kills the reader thread
        raise ServiceError(f"malformed shard frame: {exc!r}") from exc
    raise ServiceError(f"unrecognized shard frame: {data[:80]!r}")


# ----------------------------------------------------------------------
# transports
# ----------------------------------------------------------------------

class ShardTransport:
    """One duplex message channel between the front and a shard.

    ``send``/``recv`` move whole multiplexer messages; :meth:`recv`
    raises :class:`EOFError` or :class:`OSError` when the peer is gone
    (the reader thread's shard-death signal), and :meth:`close` must be
    safe to call from another thread to unblock a parked :meth:`recv`.
    """

    def send(self, message) -> None:
        raise NotImplementedError

    def recv(self):
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError


class PipeTransport(ShardTransport):
    """The local fast lane: a multiprocessing pipe, pickled messages.

    ``send`` is serialized internally — Connection.send is not safe
    under concurrent writers, and the shard worker replies from
    multiple handler threads."""

    def __init__(self, conn) -> None:
        self.conn = conn
        self._send_lock = threading.Lock()

    def send(self, message) -> None:
        with self._send_lock:
            # repro: allow[LOCK-HELD-BLOCKING] — holding the send lock across
            # the write IS the serialization: whole frames must hit the pipe
            # atomically, and the lock guards nothing else
            self.conn.send(message)

    def recv(self):
        return self.conn.recv()

    def close(self) -> None:
        try:
            self.conn.close()
        except OSError:
            pass

    def __repr__(self) -> str:
        return "PipeTransport()"


class SocketTransport(ShardTransport):
    """The remote lane: length-prefixed JSON frames over a socket."""

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self._send_lock = threading.Lock()
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:  # pragma: no cover - non-TCP socket pairs
            pass

    def send(self, message) -> None:
        body = encode_message(message)
        if len(body) > MAX_FRAME_BYTES:
            raise ServiceError(
                f"shard frame of {len(body)} bytes exceeds "
                f"MAX_FRAME_BYTES ({MAX_FRAME_BYTES})"
            )
        frame = struct.pack(">I", len(body)) + body
        with self._send_lock:
            # repro: allow[LOCK-HELD-BLOCKING] — holding the send lock across
            # sendall IS the serialization: whole frames must hit the socket
            # atomically, and the lock guards nothing else
            self.sock.sendall(frame)

    def recv(self):
        header = self._recv_exact(4)
        (length,) = struct.unpack(">I", header)
        if length > MAX_FRAME_BYTES:
            raise ServiceError(
                f"incoming shard frame of {length} bytes exceeds "
                f"MAX_FRAME_BYTES ({MAX_FRAME_BYTES})"
            )
        return decode_message(self._recv_exact(length))

    def _recv_exact(self, n: int) -> bytes:
        chunks = []
        remaining = n
        while remaining:
            chunk = self.sock.recv(min(remaining, 1 << 20))
            if not chunk:
                raise EOFError("shard socket closed")
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def close(self) -> None:
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:  # pragma: no cover - double close
            pass

    def __repr__(self) -> str:
        try:
            peer = self.sock.getpeername()
        except OSError:
            peer = "closed"
        return f"SocketTransport(peer={peer})"


def connect_shard(
    address: Union[str, tuple[str, int]], timeout: Optional[float] = 10.0
) -> SocketTransport:
    """Connect to a listening shard server; returns a ready transport.

    ``address`` is ``"HOST:PORT"`` or a ``(host, port)`` pair.  The
    connect honors ``timeout``; the established socket then blocks
    indefinitely (request latency is the service's business, not the
    transport's).
    """
    host, port = (
        parse_address(address) if isinstance(address, str) else address
    )
    sock = socket.create_connection((host, port), timeout=timeout)
    sock.settimeout(None)
    return SocketTransport(sock)


class ShardListener:
    """Accept side of the socket transport (the shard server's door)."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self.sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self.sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self.sock.bind((host, port))
        self.sock.listen()
        self.host, self.port = self.sock.getsockname()[:2]
        self.address = f"{self.host}:{self.port}"

    def accept(self) -> SocketTransport:
        """Block for one front connection (OSError once closed)."""
        conn, _ = self.sock.accept()
        return SocketTransport(conn)

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:  # pragma: no cover - double close
            pass

    def __repr__(self) -> str:
        return f"ShardListener(address={self.address!r})"
