"""Typed request/response model of the partition service.

Every operation the service performs is described by one of three
request objects — :class:`PartitionRequest` (one-shot partition of a
graph, including the method-portfolio mode), :class:`RefineRequest`
(hill-climb an existing assignment), and :class:`UpdateRequest` (an
incremental step of an open streaming session) — and answered by a
:class:`JobResult`.  All four have a lossless JSON payload form
(``to_payload`` / ``from_payload``), which is simultaneously the HTTP
wire format and what the content-addressed result cache stores, so a
cached answer and a fresh one are literally the same bytes.

Graphs travel either as the JSON payload of
:func:`repro.graphs.io.graph_to_payload` or as a METIS-format string
(parsed by the strict :func:`repro.graphs.io.parse_metis`); both arrive
as untrusted bytes over the endpoint and raise
:class:`~repro.errors.GraphFormatError` with a precise message when
malformed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

import numpy as np

from ..errors import ServiceError
from ..graphs.csr import CSRGraph
from ..graphs.io import graph_from_payload, graph_to_payload, parse_metis
from ..partition.partition import Partition

__all__ = [
    "PartitionRequest",
    "RefineRequest",
    "UpdateRequest",
    "JobResult",
    "FITNESS_KINDS",
    "SERVICE_METHODS",
    "graph_from_wire",
    "graph_to_wire",
    "result_from_partition",
    "error_to_wire",
    "error_from_wire",
]

FITNESS_KINDS = ("fitness1", "fitness2")

#: methods a PartitionRequest may name; "portfolio" races dknux against
#: the cheap baselines under the request's time budget
SERVICE_METHODS = (
    "dknux",
    "greedy",
    "rgb",
    "kl",
    "random",
    "rsb",
    "portfolio",
)


def graph_to_wire(graph: CSRGraph, arrays=None) -> dict:
    """The wire form of a graph (see :func:`graph_to_payload`).

    ``arrays`` is the binary shard lane's ndarray hook (``arrays(arr,
    dtype) -> reference``): when given, array fields carry references to
    raw buffers instead of JSON number lists.  Either form decodes
    through :func:`graph_from_payload` into the same graph, because its
    :class:`CSRGraph` constructor normalizes lists and ndarrays to the
    identical int64/float64 arrays.
    """
    if arrays is None:
        return graph_to_payload(graph)
    return {
        "n_nodes": graph.n_nodes,
        "edges_u": arrays(graph.edges_u, np.int64),
        "edges_v": arrays(graph.edges_v, np.int64),
        "edge_weights": arrays(graph.edge_weights, np.float64),
        "node_weights": arrays(graph.node_weights, np.float64),
        "coords": (
            None if graph.coords is None else arrays(graph.coords, np.float64)
        ),
    }


def graph_from_wire(obj: Union[dict, str]) -> CSRGraph:
    """Decode a wire-format graph: a JSON payload dict or METIS text."""
    if isinstance(obj, str):
        return parse_metis(obj)
    return graph_from_payload(obj)


def error_to_wire(exc: BaseException) -> dict:
    """JSON wire form of a service-side exception (class name + message).

    Exceptions cross the socket shard transport as data, never as
    pickled objects: the front reconstructs the library error class by
    name (see :func:`error_from_wire`), so a hostile or buggy shard can
    at worst produce a :class:`ServiceError` with an odd message."""
    return {"type": type(exc).__name__, "message": str(exc)}


def error_from_wire(obj: dict) -> Exception:
    """Reconstruct a wire-format error as a library exception.

    Known :class:`~repro.errors.ReproError` subclasses come back as
    themselves (they all take a single message argument); anything else
    degrades to :class:`ServiceError` carrying the original type name."""
    from .. import errors

    name = obj.get("type", "ServiceError") if isinstance(obj, dict) else ""
    message = obj.get("message", "") if isinstance(obj, dict) else repr(obj)
    cls = getattr(errors, str(name), None)
    if isinstance(cls, type) and issubclass(cls, errors.ReproError):
        try:
            return cls(message)
        # repro: allow[BROAD-EXCEPT] — an exotic ReproError constructor must
        # degrade to ServiceError below, not crash reply decoding
        except Exception:  # pragma: no cover - exotic constructor
            pass
    if name and name != "ServiceError":
        return ServiceError(f"{name}: {message}")
    return ServiceError(message)


def _require(payload: dict, key: str):
    try:
        return payload[key]
    except (KeyError, TypeError):
        raise ServiceError(f"request payload missing field {key!r}") from None


def _check_int(value, name: str, minimum: int) -> int:
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ServiceError(f"{name} must be an integer, got {value!r}")
    value = int(value)
    if value < minimum:
        raise ServiceError(f"{name} must be >= {minimum}, got {value}")
    return value


def _check_fitness(kind: str) -> str:
    if kind not in FITNESS_KINDS:
        raise ServiceError(
            f"fitness_kind must be one of {FITNESS_KINDS}, got {kind!r}"
        )
    return kind


def _check_ga_overrides(ga: Optional[dict]) -> Optional[dict]:
    if ga is None:
        return None
    if not isinstance(ga, dict) or not all(isinstance(k, str) for k in ga):
        raise ServiceError("ga overrides must be a {str: value} object")
    return dict(ga)


def _check_trace(trace: Optional[dict]) -> Optional[dict]:
    """Validate an optional trace context (``{"trace_id", "span_id"}``).

    Trace context is observational-only: it never reaches the cache key
    (:func:`repro.service.cache.request_key` hashes explicit answer
    fields), the GA seed, or shard routing, and ``to_payload`` omits it
    entirely when absent so tracing-off leaves the wire byte-identical.
    """
    if trace is None:
        return None
    if not isinstance(trace, dict) or not trace.get("trace_id"):
        raise ServiceError(
            "trace must be a {trace_id, span_id} object, got "
            f"{trace!r}"
        )
    return {
        "trace_id": str(trace["trace_id"]),
        "span_id": str(trace.get("span_id") or ""),
    }


@dataclass(frozen=True)
class PartitionRequest:
    """One-shot partition of ``graph`` into ``n_parts``.

    ``method="portfolio"`` races DKNUX against the cheap baselines
    under ``time_budget`` seconds and returns the best result found.
    ``warm_start=True`` opts into seeding the GA from the service's
    cached warm partition for this (graph, k, fitness) — faster on
    near-duplicate traffic, but deliberately *not* the default because
    it makes the answer depend on cache history rather than only on the
    request (cold-run bit-identity is the default contract).
    ``ga`` holds :class:`~repro.ga.config.GAConfig` field overrides.
    """

    graph: CSRGraph
    n_parts: int
    fitness_kind: str = "fitness1"
    method: str = "dknux"
    seed: int = 0
    warm_start: bool = False
    time_budget: Optional[float] = None
    ga: Optional[dict] = None
    #: optional trace context (observational-only; see _check_trace)
    trace: Optional[dict] = None

    kind = "partition"

    def __post_init__(self) -> None:
        _check_int(self.n_parts, "n_parts", 1)
        _check_int(self.seed, "seed", 0)  # numpy rngs reject negatives
        _check_fitness(self.fitness_kind)
        if self.method not in SERVICE_METHODS:
            raise ServiceError(
                f"method must be one of {SERVICE_METHODS}, got {self.method!r}"
            )
        if self.time_budget is not None:
            if isinstance(self.time_budget, bool) or not isinstance(
                self.time_budget, (int, float)
            ):
                raise ServiceError(
                    f"time_budget must be a number, got {self.time_budget!r}"
                )
            if self.time_budget <= 0:
                raise ServiceError(
                    f"time_budget must be positive, got {self.time_budget}"
                )
        _check_ga_overrides(self.ga)
        object.__setattr__(self, "trace", _check_trace(self.trace))

    def to_payload(self, arrays=None) -> dict:
        payload = {
            "kind": self.kind,
            "graph": graph_to_wire(self.graph, arrays=arrays),
            "n_parts": int(self.n_parts),
            "fitness_kind": self.fitness_kind,
            "method": self.method,
            "seed": int(self.seed),
            "warm_start": bool(self.warm_start),
            "time_budget": self.time_budget,
            "ga": self.ga,
        }
        if self.trace is not None:  # absent key keeps wire bytes identical
            payload["trace"] = dict(self.trace)
        return payload

    @classmethod
    def from_payload(cls, payload: dict) -> "PartitionRequest":
        return cls(
            graph=graph_from_wire(_require(payload, "graph")),
            n_parts=_check_int(_require(payload, "n_parts"), "n_parts", 1),
            fitness_kind=payload.get("fitness_kind", "fitness1"),
            method=payload.get("method", "dknux"),
            seed=_check_int(payload.get("seed", 0), "seed", 0),
            warm_start=bool(payload.get("warm_start", False)),
            time_budget=payload.get("time_budget"),
            ga=_check_ga_overrides(payload.get("ga")),
            trace=payload.get("trace"),
        )


@dataclass(frozen=True)
class RefineRequest:
    """Hill-climb an existing ``assignment`` on ``graph``.

    Refinement always runs the deterministic lockstep climb
    (:func:`repro.ga.batch_climb.climb_batch` in ascending scan order),
    which is what lets the scheduler coalesce concurrently queued
    refinements of the same (graph, k, fitness) into one batched climb
    whose per-row results are bit-identical to serial submission.
    """

    graph: CSRGraph
    n_parts: int
    assignment: np.ndarray
    fitness_kind: str = "fitness1"
    passes: int = 2
    #: optional trace context (observational-only; see _check_trace)
    trace: Optional[dict] = None

    kind = "refine"

    def __post_init__(self) -> None:
        _check_int(self.n_parts, "n_parts", 1)
        _check_fitness(self.fitness_kind)
        _check_int(self.passes, "passes", 1)
        arr = np.asarray(self.assignment, dtype=np.int64)
        if arr.ndim != 1 or arr.shape[0] != self.graph.n_nodes:
            raise ServiceError(
                f"assignment must have length {self.graph.n_nodes}, "
                f"got shape {arr.shape}"
            )
        if arr.size and (arr.min() < 0 or arr.max() >= self.n_parts):
            raise ServiceError(
                f"assignment labels out of range [0, {self.n_parts})"
            )
        object.__setattr__(self, "assignment", arr)
        object.__setattr__(self, "trace", _check_trace(self.trace))

    def to_payload(self, arrays=None) -> dict:
        payload = {
            "kind": self.kind,
            "graph": graph_to_wire(self.graph, arrays=arrays),
            "n_parts": int(self.n_parts),
            "assignment": (
                np.asarray(self.assignment).tolist()
                if arrays is None
                else arrays(self.assignment, np.int64)
            ),
            "fitness_kind": self.fitness_kind,
            "passes": int(self.passes),
        }
        if self.trace is not None:  # absent key keeps wire bytes identical
            payload["trace"] = dict(self.trace)
        return payload

    @classmethod
    def from_payload(cls, payload: dict) -> "RefineRequest":
        assignment = _require(payload, "assignment")
        if not isinstance(assignment, (list, tuple, np.ndarray)):
            raise ServiceError("assignment must be a list of part labels")
        return cls(
            graph=graph_from_wire(_require(payload, "graph")),
            n_parts=_check_int(_require(payload, "n_parts"), "n_parts", 1),
            assignment=np.asarray(assignment, dtype=np.int64),
            fitness_kind=payload.get("fitness_kind", "fitness1"),
            passes=_check_int(payload.get("passes", 2), "passes", 1),
            trace=payload.get("trace"),
        )


@dataclass(frozen=True)
class UpdateRequest:
    """One incremental step of an open session: the updated graph
    (old node ids preserved, new ids appended — the paper's adaptive
    refinement model)."""

    session_id: str
    graph: CSRGraph
    #: optional trace context (observational-only; see _check_trace)
    trace: Optional[dict] = None

    kind = "update"

    def __post_init__(self) -> None:
        if not isinstance(self.session_id, str) or not self.session_id:
            raise ServiceError("session_id must be a non-empty string")
        object.__setattr__(self, "trace", _check_trace(self.trace))

    def to_payload(self, arrays=None) -> dict:
        payload = {
            "kind": self.kind,
            "session_id": self.session_id,
            "graph": graph_to_wire(self.graph, arrays=arrays),
        }
        if self.trace is not None:  # absent key keeps wire bytes identical
            payload["trace"] = dict(self.trace)
        return payload

    @classmethod
    def from_payload(cls, payload: dict) -> "UpdateRequest":
        return cls(
            session_id=_require(payload, "session_id"),
            graph=graph_from_wire(_require(payload, "graph")),
            trace=payload.get("trace"),
        )


@dataclass
class JobResult:
    """Answer to any service request.

    ``cache_hit`` marks answers served from the content-addressed
    result cache; ``coalesced`` marks answers produced by a shared
    execution (joined in-flight duplicate or batched refine group);
    ``latency_s`` is the request's wall time inside the service.
    ``portfolio`` carries the per-method race table when the request
    ran in portfolio mode.  ``executed_in`` records the execution lane
    that computed the answer (``""`` = worker thread, ``"process"`` =
    pinned process slot) and ``shard`` the shard index that served it
    (``None`` outside sharded serving) — transport metadata, never part
    of the answer: the assignment and metrics are bit-identical across
    lanes and shard layouts.  ``spans`` carries finished trace-span
    records when the request arrived with a trace context (how a remote
    shard or process worker ships its subtree back to the front) —
    observational-only, stripped before a result enters the cache.
    """

    assignment: np.ndarray
    n_parts: int
    cut_size: float
    max_part_cut: float
    balance_ratio: float
    part_sizes: list[int]
    method: str
    fitness: float = 0.0
    cache_hit: bool = False
    coalesced: bool = False
    latency_s: float = 0.0
    request_key: str = ""
    session_id: Optional[str] = None
    portfolio: Optional[list[dict]] = None
    executed_in: str = ""
    shard: Optional[int] = None
    spans: Optional[list[dict]] = None

    def to_payload(self, arrays=None) -> dict:
        payload = {
            "assignment": (
                np.asarray(self.assignment).tolist()
                if arrays is None
                else arrays(np.asarray(self.assignment), np.int64)
            ),
            "n_parts": int(self.n_parts),
            "cut_size": float(self.cut_size),
            "max_part_cut": float(self.max_part_cut),
            "balance_ratio": float(self.balance_ratio),
            "part_sizes": [int(s) for s in self.part_sizes],
            "method": self.method,
            "fitness": float(self.fitness),
            "cache_hit": bool(self.cache_hit),
            "coalesced": bool(self.coalesced),
            "latency_s": float(self.latency_s),
            "request_key": self.request_key,
            "session_id": self.session_id,
            "portfolio": self.portfolio,
            "executed_in": self.executed_in,
            "shard": self.shard,
        }
        if self.spans:  # absent key keeps wire bytes identical
            payload["spans"] = self.spans
        return payload

    @classmethod
    def from_payload(cls, payload: dict) -> "JobResult":
        return cls(
            assignment=np.asarray(_require(payload, "assignment"), dtype=np.int64),
            n_parts=int(_require(payload, "n_parts")),
            cut_size=float(_require(payload, "cut_size")),
            max_part_cut=float(_require(payload, "max_part_cut")),
            balance_ratio=float(_require(payload, "balance_ratio")),
            part_sizes=[int(s) for s in _require(payload, "part_sizes")],
            method=_require(payload, "method"),
            fitness=float(payload.get("fitness", 0.0)),
            cache_hit=bool(payload.get("cache_hit", False)),
            coalesced=bool(payload.get("coalesced", False)),
            latency_s=float(payload.get("latency_s", 0.0)),
            request_key=payload.get("request_key", ""),
            session_id=payload.get("session_id"),
            portfolio=payload.get("portfolio"),
            executed_in=payload.get("executed_in", ""),
            shard=payload.get("shard"),
            spans=payload.get("spans"),
        )

    def replace(self, **kwargs) -> "JobResult":
        """Copy with fields overridden (cache/coalesce marking).

        Mutable fields are copied too: the result cache hands these
        out to arbitrary callers, and a caller sorting ``part_sizes``
        or editing ``portfolio`` must not corrupt the cached entry."""
        out = JobResult(**{**self.__dict__, **kwargs})
        out.assignment = np.array(self.assignment, dtype=np.int64, copy=True)
        if out.part_sizes is self.part_sizes:
            out.part_sizes = list(self.part_sizes)
        if out.portfolio is not None and out.portfolio is self.portfolio:
            out.portfolio = [dict(leg) for leg in self.portfolio]
        if out.spans is not None and out.spans is self.spans:
            out.spans = [dict(span) for span in self.spans]
        return out


def result_from_partition(
    partition: Partition,
    method: str,
    fitness: float = 0.0,
    **kwargs,
) -> JobResult:
    """Build a :class:`JobResult` from a computed :class:`Partition`."""
    return JobResult(
        assignment=np.asarray(partition.assignment, dtype=np.int64),
        n_parts=partition.n_parts,
        cut_size=float(partition.cut_size),
        max_part_cut=float(partition.max_part_cut),
        balance_ratio=float(partition.balance_ratio),
        part_sizes=[int(s) for s in partition.part_sizes],
        method=method,
        fitness=float(fitness),
        **kwargs,
    )
