"""`repro.service` core — partition-as-a-service over the GA kernels.

:class:`PartitionService` is the long-lived object the CLI ``serve``
command, the HTTP frontend, and the programmatic
:class:`~repro.service.client.ServiceClient` all drive.  One request
flows::

    request → content-addressed result cache ──hit──→ answer
            └─miss→ in-flight join (identical request already running?)
            └─lead→ pinned worker slot (by graph digest / session id)
                     → GA / baseline / portfolio / batched refine
                     → result stored + warm seed updated → answer

Everything the PR-1/2 kernels made fast stays hot across requests: the
graph store interns CSR builds (strength tables, unit-weight flags),
refinement groups share one lockstep :func:`climb_batch` sweep, session
partitioners keep their population near the previous optimum, and the
engine evaluator's row-hash memo (PR 3) never re-evaluates a row the
service has already paid for.

Determinism contract: cached, joined, and group-coalesced answers are
bit-identical to what a cold serial run of the same request (same seed)
would return.  The only opt-out is ``warm_start=True``, which
explicitly trades that property for convergence speed.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from typing import Optional, Sequence, Union

import numpy as np

from ..errors import ConfigError, ServiceError
from ..ga.batch_climb import climb_batch
from ..ga.config import GAConfig
from ..ga.fitness import make_fitness
from ..graphs.csr import CSRGraph
from ..partition.partition import Partition
from .cache import ContentStore, request_key
from .models import (
    JobResult,
    PartitionRequest,
    RefineRequest,
    UpdateRequest,
    result_from_partition,
)
from .portfolio import run_portfolio
from .scheduler import CoalescingScheduler
from .sessions import SessionManager

__all__ = ["PartitionService", "DEFAULT_GA_OVERRIDES"]

Request = Union[PartitionRequest, RefineRequest]

#: serving default for one-shot dknux requests — the library front
#: door's compact budget (requests override any field via ``ga``)
DEFAULT_GA_OVERRIDES = dict(
    population_size=64,
    max_generations=100,
    patience=20,
    hill_climb="all",
    hill_climb_passes=2,
    mutation="boundary",
    mutation_rate=0.02,
)


class _LatencyWindow:
    """Bounded recent-latency sample with percentile readout."""

    def __init__(self, maxlen: int = 4096) -> None:
        self._lock = threading.Lock()
        self._samples: list[float] = []
        self._maxlen = maxlen
        self.count = 0

    def add(self, seconds: float) -> None:
        with self._lock:
            self.count += 1
            self._samples.append(seconds)
            if len(self._samples) > self._maxlen:
                del self._samples[: self._maxlen // 2]

    def percentiles(self) -> dict:
        with self._lock:
            if not self._samples:
                return {"count": self.count}
            arr = np.asarray(self._samples)
        return {
            "count": self.count,
            "p50_ms": round(float(np.percentile(arr, 50)) * 1e3, 3),
            "p95_ms": round(float(np.percentile(arr, 95)) * 1e3, 3),
            "max_ms": round(float(arr.max()) * 1e3, 3),
        }


class PartitionService:
    """The partition-as-a-service engine room (see module docstring)."""

    def __init__(
        self,
        n_workers: int = 2,
        cache_bytes: int = 64 << 20,
        max_sessions: int = 1024,
    ) -> None:
        self.store = ContentStore(cache_bytes)
        self.scheduler = CoalescingScheduler(n_workers)
        self.sessions = SessionManager(max_sessions)
        self.latency = _LatencyWindow()
        self.session_latency = _LatencyWindow()
        self._closed = False

    # ------------------------------------------------------------------
    # one-shot + refine
    # ------------------------------------------------------------------
    def submit(self, request: Request) -> JobResult:
        """Answer one request (cache → join → execute)."""
        self._check_open()
        t0 = time.perf_counter()
        digest, graph = self.store.graphs.intern(request.graph)
        request = _with_graph(request, graph)
        key = request_key(request, digest=digest)
        result = self.store.lookup_result(key)
        if result is None:
            # the leader's job publishes (cache + warm seed) *before*
            # the scheduler drops its in-flight entry, so a same-key
            # request arriving at any moment finds either the flight or
            # the cache — identical work truly runs at most once
            result = self.scheduler.run(
                key,
                digest,
                lambda: self._execute_and_publish(request, digest, key),
            )
        latency = time.perf_counter() - t0
        self.latency.add(latency)
        result.latency_s = latency
        result.request_key = key
        return result

    def submit_many(self, requests: Sequence[Request]) -> list[JobResult]:
        """Answer a batch, coalescing what can be coalesced.

        Cache hits are answered immediately; remaining
        :class:`RefineRequest`\\ s sharing (graph, k, fitness, passes)
        run as *one* lockstep ``climb_batch`` sweep per group (their
        rows stacked), and everything else goes through :meth:`submit`.
        Per-request results are returned in submission order and are
        bit-identical to submitting each request serially.
        """
        self._check_open()
        results: list[Optional[JobResult]] = [None] * len(requests)
        groups: dict[tuple, list[int]] = {}
        prepared: list[Optional[tuple[Request, str, str]]] = [None] * len(requests)
        for i, request in enumerate(requests):
            item_t0 = time.perf_counter()
            digest, graph = self.store.graphs.intern(request.graph)
            request = _with_graph(request, graph)
            key = request_key(request, digest=digest)
            cached = self.store.lookup_result(key)
            if cached is not None:
                cached.latency_s = time.perf_counter() - item_t0
                cached.request_key = key
                self.latency.add(cached.latency_s)
                results[i] = cached
                continue
            prepared[i] = (request, digest, key)
            if isinstance(request, RefineRequest):
                group_id = (
                    digest,
                    request.n_parts,
                    request.fitness_kind,
                    request.passes,
                )
                groups.setdefault(group_id, []).append(i)

        grouped = {i for members in groups.values() for i in members}
        for group_id, members in groups.items():
            digest = group_id[0]
            keys = [prepared[i][2] for i in members]
            batch = [prepared[i][0] for i in members]
            group_t0 = time.perf_counter()

            def run_and_publish(b=batch, ks=keys, d=digest):
                group = self._execute_refine_group(b)
                for req, k, res in zip(b, ks, group):
                    self.store.store_result(k, res)
                    self._store_warm_seed(req, d, res)
                return group

            group_results = self.scheduler.run_group(
                keys, digest, run_and_publish
            )
            # every member's latency is its group's service time — the
            # same per-request semantics submit() reports, so the p50/
            # p95 stats mix batch and single traffic consistently
            group_s = time.perf_counter() - group_t0
            for i, key, result in zip(members, keys, group_results):
                result.latency_s = group_s
                result.request_key = key
                self.latency.add(result.latency_s)
                results[i] = result

        # remaining misses are independent jobs; fan them out so the
        # pinned worker pool overlaps their execution instead of the
        # batch degenerating into a serial loop
        leftovers = [
            i
            for i in range(len(requests))
            if results[i] is None and i not in grouped
        ]
        if len(leftovers) == 1:
            i = leftovers[0]
            results[i] = self.submit(prepared[i][0])
        elif leftovers:
            from concurrent.futures import ThreadPoolExecutor

            fan_out = min(len(leftovers), self.scheduler.pool.n_slots)
            with ThreadPoolExecutor(max_workers=fan_out) as fan:
                futures = {
                    i: fan.submit(self.submit, prepared[i][0])
                    for i in leftovers
                }
                for i, future in futures.items():
                    results[i] = future.result()
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # sessions
    # ------------------------------------------------------------------
    def open_session(
        self,
        graph: CSRGraph,
        n_parts: int,
        fitness_kind: str = "fitness1",
        seed: int = 0,
        ga: Optional[dict] = None,
    ) -> JobResult:
        """Open a streaming session; the result carries ``session_id``."""
        self._check_open()
        t0 = time.perf_counter()
        _, graph = self.store.graphs.intern(graph)
        session = self.sessions.open(
            graph, n_parts, fitness_kind=fitness_kind, seed=seed, ga=ga
        )
        # the initial GA runs on the session's pinned worker slot, like
        # every later update — never on the calling (HTTP) thread, so
        # `n_workers` bounds service CPU even under open bursts
        try:
            future = self.scheduler.pool.submit(
                session.id, session.partition_initial
            )
            partition = future.result()
        except BaseException:
            self.sessions.close(session.id)  # do not leak a broken session
            raise
        latency = time.perf_counter() - t0
        self.session_latency.add(latency)
        return result_from_partition(
            partition,
            "dknux-incremental",
            fitness=_fitness_of(partition, fitness_kind),
            session_id=session.id,
            latency_s=latency,
        )

    def update_session(self, request: UpdateRequest) -> JobResult:
        """One incremental step, pinned to the session's worker slot."""
        self._check_open()
        t0 = time.perf_counter()

        def step() -> JobResult:
            session, partition = self.sessions.update(
                request.session_id, request.graph
            )
            return result_from_partition(
                partition,
                "dknux-incremental",
                fitness=_fitness_of(
                    partition, session.partitioner.fitness_kind
                ),
                session_id=session.id,
            )

        future = self.scheduler.pool.submit(request.session_id, step)
        result = future.result()
        latency = time.perf_counter() - t0
        self.session_latency.add(latency)
        result.latency_s = latency
        return result

    def close_session(self, session_id: str) -> dict:
        self._check_open()
        return self.sessions.close(session_id)

    # ------------------------------------------------------------------
    # stats / lifecycle
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        return {
            "cache": self.store.stats(),
            "scheduler": self.scheduler.stats(),
            "sessions": self.sessions.stats(),
            "latency": self.latency.percentiles(),
            "session_latency": self.session_latency.percentiles(),
        }

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self.scheduler.shutdown()

    def __enter__(self) -> "PartitionService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise ServiceError("service is closed")

    # ------------------------------------------------------------------
    # execution (runs on scheduler workers)
    # ------------------------------------------------------------------
    def _execute_and_publish(
        self, request: Request, digest: str, key: str
    ) -> JobResult:
        result = self._execute(request, digest)
        self.store.store_result(key, result)
        self._store_warm_seed(request, digest, result)
        return result

    def _execute(self, request: Request, digest: str) -> JobResult:
        if isinstance(request, RefineRequest):
            return self._execute_refine_group([request])[0]
        return self._execute_partition(request, digest)

    def _execute_partition(
        self, request: PartitionRequest, digest: str
    ) -> JobResult:
        from .. import partition_graph
        from ..baselines import (
            greedy_partition,
            random_partition,
            recursive_kl_partition,
            rgb_partition,
            rsb_partition,
        )

        graph, k = request.graph, request.n_parts
        if request.method == "portfolio":
            partition, method, fitness, table = run_portfolio(
                graph,
                k,
                fitness_kind=request.fitness_kind,
                seed=request.seed,
                time_budget=request.time_budget,
                ga=request.ga,
            )
            return result_from_partition(
                partition, f"portfolio:{method}", fitness=fitness,
                portfolio=table,
            )
        if request.method == "dknux":
            overrides = dict(DEFAULT_GA_OVERRIDES)
            if request.ga:
                overrides.update(request.ga)
            try:
                config = GAConfig(**overrides)
            except (ConfigError, TypeError) as exc:
                raise ServiceError(f"bad ga overrides: {exc}") from exc
            seed_assignment = None
            if request.warm_start:
                seed_assignment = self.store.graphs.warm_seed(
                    digest, k, request.fitness_kind
                )
            partition = partition_graph(
                graph,
                k,
                fitness_kind=request.fitness_kind,
                config=config,
                seed=request.seed,
                seed_assignment=seed_assignment,
            )
        elif request.method == "greedy":
            partition = greedy_partition(graph, k, seed=request.seed)
        elif request.method == "rgb":
            partition = rgb_partition(graph, k)
        elif request.method == "kl":
            partition = recursive_kl_partition(graph, k, seed=request.seed)
        elif request.method == "rsb":
            partition = rsb_partition(graph, k)
        else:  # "random" — SERVICE_METHODS is validated at request build
            partition = random_partition(graph, k, seed=request.seed)
        return result_from_partition(
            partition,
            request.method,
            fitness=_fitness_of(partition, request.fitness_kind),
        )

    def _execute_refine_group(
        self, batch: list[RefineRequest]
    ) -> list[JobResult]:
        """One lockstep climb over every queued refinement of the same
        (graph, k, fitness, passes).

        ``climb_batch`` treats rows independently (per-row move masks
        over a shared scan), so the stacked sweep is bit-identical to
        climbing each request alone — coalescing changes cost, not
        answers."""
        head = batch[0]
        graph, k = head.graph, head.n_parts
        fitness = make_fitness(head.fitness_kind, graph, k)
        rows = np.vstack([r.assignment for r in batch])
        climbed = climb_batch(graph, fitness, rows, max_passes=head.passes)
        values = fitness.evaluate_batch(climbed)
        out = []
        for i in range(len(batch)):
            partition = Partition(graph, climbed[i], k)
            out.append(
                result_from_partition(
                    partition, "refine", fitness=float(values[i])
                )
            )
        return out

    def _store_warm_seed(
        self, request: Request, digest: str, result: JobResult
    ) -> None:
        """Remember the best assignment per (graph, k, fitness) for
        ``warm_start`` traffic (one atomic compare-and-store — no
        re-evaluation, no lost-update race between workers)."""
        if not isinstance(request, (PartitionRequest, RefineRequest)):
            return
        self.store.graphs.store_seed_if_better(
            digest,
            request.n_parts,
            request.fitness_kind,
            result.assignment,
            result.fitness,
        )


def _with_graph(request: Request, graph: CSRGraph) -> Request:
    """Copy of the request carrying the interned graph instance (same
    content by digest); the caller's request object is left untouched."""
    if request.graph is graph:
        return request
    return dataclasses.replace(request, graph=graph)


def _fitness_of(partition: Partition, fitness_kind: str) -> float:
    fitness = make_fitness(fitness_kind, partition.graph, partition.n_parts)
    return float(fitness.evaluate(partition.assignment))
