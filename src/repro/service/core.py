"""`repro.service` core — partition-as-a-service over the GA kernels.

:class:`PartitionService` is the long-lived object the CLI ``serve``
command, the HTTP frontend, and the programmatic
:class:`~repro.service.client.ServiceClient` all drive.  One request
flows::

    request → content-addressed result cache ──hit──→ answer
            └─miss→ in-flight join (identical request already running?)
            └─lead→ pinned worker slot (by graph digest / session id)
                     → GA / baseline / portfolio / batched refine
                       (long GA runs: process slot, see cost model)
                     → result stored + warm seed updated → answer

Everything the PR-1/2 kernels made fast stays hot across requests: the
graph store interns CSR builds (strength tables, unit-weight flags),
refinement groups share one lockstep :func:`climb_batch` sweep, session
partitioners keep their population near the previous optimum, and the
engine evaluator's row-hash memo (PR 3) never re-evaluates a row the
service has already paid for.

Execution lanes (PR 4): jobs run on pinned worker threads by default;
when :class:`~repro.service.config.ServiceConfig` enables a process
bank, dknux requests whose estimated cost (``n_nodes × population ×
generations``) clears ``process_threshold`` run on a pinned worker
*process* instead — same computation, same bits, but Python-level
generation bookkeeping no longer serializes on the GIL.  Graph payloads
ship to a process slot once per pin and are interned worker-side
(:mod:`repro.service.procexec`).

Determinism contract: cached, joined, group-coalesced, and
process-routed answers are bit-identical to what a cold serial run of
the same request (same seed) would return.  The only opt-out is
``warm_start=True``, which explicitly trades that property for
convergence speed.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from collections import OrderedDict
from typing import Optional, Sequence, Union

import numpy as np

from ..errors import ConfigError, ReproError, ServiceError
from ..ga.batch_climb import climb_batch
from ..ga.config import GAConfig
from ..ga.fitness import make_fitness
from ..graphs.csr import CSRGraph
from ..obs.hooks import ExecRecorder, recording
from ..obs.metrics import MetricsRegistry, histogram_percentile
from ..obs.trace import NULL_SPAN, Tracer
from ..partition.partition import Partition
from .cache import ContentStore, request_key
from .config import ServiceConfig
from .models import (
    JobResult,
    PartitionRequest,
    RefineRequest,
    UpdateRequest,
    result_from_partition,
)
from .portfolio import run_portfolio
from .procexec import NEEDS_GRAPH, graph_to_arrays, run_partition_job
from .scheduler import CoalescingScheduler
from .sessions import SessionManager

__all__ = ["PartitionService", "DEFAULT_GA_OVERRIDES"]

Request = Union[PartitionRequest, RefineRequest]

#: serving default for one-shot dknux requests — the library front
#: door's compact budget (requests override any field via ``ga``)
DEFAULT_GA_OVERRIDES = dict(
    population_size=64,
    max_generations=100,
    patience=20,
    hill_climb="all",
    hill_climb_passes=2,
    mutation="boundary",
    mutation_rate=0.02,
)


class _LatencyWindow:
    """Bounded recent-latency sample with percentile readout."""

    def __init__(self, maxlen: int = 4096) -> None:
        self._lock = threading.Lock()
        self._samples: list[float] = []
        self._maxlen = maxlen
        self.count = 0

    def add(self, seconds: float) -> None:
        with self._lock:
            self.count += 1
            self._samples.append(seconds)
            if len(self._samples) > self._maxlen:
                del self._samples[: self._maxlen // 2]

    def percentiles(self) -> dict:
        with self._lock:
            if not self._samples:
                return {"count": self.count}
            arr = np.asarray(self._samples)
        return {
            "count": self.count,
            "p50_ms": round(float(np.percentile(arr, 50)) * 1e3, 3),
            "p95_ms": round(float(np.percentile(arr, 95)) * 1e3, 3),
            "max_ms": round(float(arr.max()) * 1e3, 3),
        }


class PartitionService:
    """The partition-as-a-service engine room (see module docstring).

    Built from a :class:`~repro.service.config.ServiceConfig`; keyword
    arguments are config field overrides, so ``PartitionService(
    n_workers=4, process_workers=2)`` and ``PartitionService(
    config=ServiceConfig(...))`` are the same thing.
    """

    def __init__(
        self, config: Optional[ServiceConfig] = None, **overrides
    ) -> None:
        if config is None:
            config = ServiceConfig(**overrides)
        elif overrides:
            config = config.with_updates(**overrides)
        self.config = config
        self.store = ContentStore(config.cache_bytes)
        self.scheduler = CoalescingScheduler(
            config.n_workers, process_workers=config.process_workers
        )
        self.sessions = SessionManager(config.max_sessions)
        self.latency = _LatencyWindow()
        self.session_latency = _LatencyWindow()
        # observability plane (repro.obs): spans + the unified metrics
        # registry.  Strictly observational — nothing recorded here may
        # flow into results, seeds, or routing.
        self.tracer = Tracer(
            enabled=config.trace_enabled,
            ring_size=config.trace_ring,
            jsonl_path=config.trace_jsonl,
            sample_rate=config.trace_sample,
        )
        self.registry = MetricsRegistry()
        # digests whose CSR arrays were shipped to each process slot —
        # later jobs for the pin send the digest alone.  Bounded to the
        # worker-side intern LRU's capacity per slot: beyond that the
        # worker has evicted the graph anyway, so remembering it here
        # would be pure memory cost answered by NEEDS_GRAPH resends.
        self._ship_lock = threading.Lock()
        self._shipped: dict[int, "OrderedDict[str, None]"] = {}
        # session failover persistence (see repro.service.persistence):
        # snapshot on every session commit, restore what the store holds
        # before taking traffic — a restarted shard resumes its sessions
        # at the last committed epoch instead of answering "unknown"
        self.persistence = None
        self.write_behind = None
        self._results_warmed = 0
        if config.snapshot_dir:
            from .persistence import (
                ResultWriteBehind,
                SessionPersistence,
                SnapshotStore,
            )

            self.persistence = SessionPersistence(
                SnapshotStore(config.snapshot_dir),
                self.sessions,
                interval_s=config.snapshot_interval_s,
            )
            self.persistence.restore_all()
            # result write-behind (PR 10): replay the journal into the
            # content cache before taking traffic, so a restarted shard
            # re-warms its *results* the way restore_all re-warms its
            # sessions — the hottest keys answer as cache hits instead
            # of being recomputed
            self.write_behind = ResultWriteBehind(config.snapshot_dir)
            self._replay_write_behind()
        self._register_metrics()
        self._closed = False

    def _register_metrics(self) -> None:
        """Register snapshot-time providers mapping the subsystem
        ``stats()`` dicts onto the unified metric families documented in
        :mod:`repro.obs` — one schema over the legacy shapes."""
        reg = self.registry

        def cache_series(field):
            def provide():
                stats = self.store.stats()
                return [
                    ({"cache": name}, float(stats[name][field]))
                    for name in ("results", "graphs")
                ]

            return provide

        for field, metric in (
            ("hits", "repro_cache_hits_total"),
            ("misses", "repro_cache_misses_total"),
            ("evictions", "repro_cache_evictions_total"),
        ):
            reg.counter_fn(metric, cache_series(field))
        for field, metric in (
            ("entries", "repro_cache_entries"),
            ("bytes", "repro_cache_bytes"),
            ("max_bytes", "repro_cache_capacity_bytes"),
        ):
            reg.gauge_fn(metric, cache_series(field))
        reg.gauge_fn(
            "repro_warm_seeds",
            lambda: [({}, float(self.store.stats()["graphs"]["warm_seeds"]))],
        )

        def scalar(stats_fn, field):
            return lambda: [({}, float(stats_fn()[field]))]

        for field, metric in (
            ("jobs_executed", "repro_jobs_executed_total"),
            ("jobs_joined", "repro_jobs_joined_total"),
            ("jobs_process", "repro_jobs_process_total"),
            ("groups_executed", "repro_groups_executed_total"),
            ("group_members", "repro_group_members_total"),
        ):
            reg.counter_fn(metric, scalar(self.scheduler.stats, field))
        reg.gauge_fn(
            "repro_inflight_jobs",
            lambda: [({}, float(self.scheduler.queue_depth()))],
        )
        for field, metric in (
            ("opened", "repro_sessions_opened_total"),
            ("closed", "repro_sessions_closed_total"),
            ("restored", "repro_sessions_restored_total"),
            ("updates", "repro_session_updates_total"),
        ):
            reg.counter_fn(metric, scalar(self.sessions.stats, field))
        reg.gauge_fn(
            "repro_sessions_open", scalar(self.sessions.stats, "open")
        )
        reg.gauge_fn(
            "repro_session_epoch_max",
            lambda: [({}, float(self.sessions.epoch_summary()["max_epoch"]))],
        )
        if self.persistence is not None:
            for field, metric in (
                ("snapshots_written", "repro_snapshots_written_total"),
                ("write_failures", "repro_snapshots_write_failures_total"),
                ("restored", "repro_snapshots_restored_total"),
                ("restore_failures", "repro_snapshots_restore_failures_total"),
            ):
                reg.counter_fn(metric, scalar(self.persistence.stats, field))
        if self.write_behind is not None:
            for field, metric in (
                ("records_written", "repro_writebehind_records_total"),
                ("write_failures", "repro_writebehind_failures_total"),
                ("compactions", "repro_writebehind_compactions_total"),
            ):
                reg.counter_fn(metric, scalar(self.write_behind.stats, field))
            reg.counter_fn(
                "repro_results_warmed_total",
                lambda: [({}, float(self._results_warmed))],
            )
        for field, metric in (
            ("spans_recorded", "repro_trace_spans_total"),
            ("spans_ingested", "repro_trace_spans_ingested_total"),
            ("sink_errors", "repro_trace_sink_errors_total"),
        ):
            reg.counter_fn(metric, scalar(self.tracer.counters, field))

    # ------------------------------------------------------------------
    # one-shot + refine
    # ------------------------------------------------------------------
    def submit(
        self, request: Request, trace: Optional[dict] = None
    ) -> JobResult:
        """Answer one request (cache → join → execute).

        ``trace`` is an optional wire span context (``{"trace_id",
        "span_id"}``) from a shard front; it overrides the request's
        own ``trace`` field and is strictly observational — the cache
        key, routing, and the answer bits never depend on it.
        """
        self._check_open()
        t0 = time.perf_counter()
        ctx = trace if trace is not None else request.trace
        endpoint = (
            "refine" if isinstance(request, RefineRequest) else "partition"
        )
        span = self.tracer.start(
            "service.submit", parent=ctx, attrs={"endpoint": endpoint}
        )
        try:
            digest, graph = self.store.graphs.intern(request.graph)
            request = _with_graph(request, graph)
            key = request_key(request, digest=digest)
            result = self.store.lookup_result(key)
            if result is None:
                # the leader's job publishes (cache + warm seed) *before*
                # the scheduler drops its in-flight entry, so a same-key
                # request arriving at any moment finds either the flight or
                # the cache — identical work truly runs at most once
                process_config = self._process_route(request)
                if process_config is not None:
                    # inline: the calling thread only blocks on IPC; the
                    # actual work runs on the pinned process slot
                    result = self.scheduler.run(
                        key,
                        digest,
                        lambda: self._execute_process_and_publish(
                            request, digest, key, process_config, parent=span
                        ),
                        inline=True,
                    )
                else:
                    result = self.scheduler.run(
                        key,
                        digest,
                        lambda: self._execute_and_publish(
                            request, digest, key, parent=span
                        ),
                    )
        except BaseException as exc:
            span.fail(exc)
            span.close()
            raise
        latency = time.perf_counter() - t0
        self.latency.add(latency)
        result.latency_s = latency
        result.request_key = key
        span.set(
            cache_hit=result.cache_hit,
            coalesced=result.coalesced,
            lane=result.executed_in or "thread",
        )
        span.close()
        self._observe_request(endpoint, latency)
        # remote-rooted spans collect their subtree; ship it back in the
        # reply so the front can stitch one tree.  A coalesced follower
        # may have copied the leader's result (leader's spans) — always
        # overwrite with *this* request's own collection.
        collected = span.collected()
        result.spans = collected if collected else None
        return result

    def submit_many(
        self, requests: Sequence[Request], trace: Optional[dict] = None
    ) -> list[JobResult]:
        """Answer a batch, coalescing what can be coalesced.

        Cache hits are answered immediately; remaining
        :class:`RefineRequest`\\ s sharing (graph, k, fitness, passes)
        run as *one* lockstep ``climb_batch`` sweep per group (their
        rows stacked), and everything else goes through :meth:`submit`.
        Per-request results are returned in submission order and are
        bit-identical to submitting each request serially.

        ``trace`` (a wire span context) parents the spans of items that
        fall through to :meth:`submit`; cache hits and group members
        are counted in the metrics registry but not spanned.
        """
        self._check_open()
        results: list[Optional[JobResult]] = [None] * len(requests)
        groups: dict[tuple, list[int]] = {}
        prepared: list[Optional[tuple[Request, str, str]]] = [None] * len(requests)
        for i, request in enumerate(requests):
            item_t0 = time.perf_counter()
            digest, graph = self.store.graphs.intern(request.graph)
            request = _with_graph(request, graph)
            key = request_key(request, digest=digest)
            cached = self.store.lookup_result(key)
            if cached is not None:
                cached.latency_s = time.perf_counter() - item_t0
                cached.request_key = key
                self.latency.add(cached.latency_s)
                self._observe_request(
                    "refine" if isinstance(request, RefineRequest)
                    else "partition",
                    cached.latency_s,
                )
                results[i] = cached
                continue
            prepared[i] = (request, digest, key)
            if isinstance(request, RefineRequest):
                group_id = (
                    digest,
                    request.n_parts,
                    request.fitness_kind,
                    request.passes,
                )
                groups.setdefault(group_id, []).append(i)

        grouped = {i for members in groups.values() for i in members}
        for group_id, members in groups.items():
            digest = group_id[0]
            keys = [prepared[i][2] for i in members]
            batch = [prepared[i][0] for i in members]
            group_t0 = time.perf_counter()

            def run_and_publish(b=batch, ks=keys, d=digest):
                group = self._execute_refine_group(b)
                for req, k, res in zip(b, ks, group):
                    self.store.store_result(k, res)
                    self._store_warm_seed(req, d, res)
                    self._record_result(k, res)
                return group

            group_results = self.scheduler.run_group(
                keys, digest, run_and_publish
            )
            # every member's latency is its group's service time — the
            # same per-request semantics submit() reports, so the p50/
            # p95 stats mix batch and single traffic consistently
            group_s = time.perf_counter() - group_t0
            for i, key, result in zip(members, keys, group_results):
                result.latency_s = group_s
                result.request_key = key
                self.latency.add(result.latency_s)
                self._observe_request("refine", group_s)
                results[i] = result

        # remaining misses are independent jobs; fan them out so the
        # pinned worker pool overlaps their execution instead of the
        # batch degenerating into a serial loop
        leftovers = [
            i
            for i in range(len(requests))
            if results[i] is None and i not in grouped
        ]
        if len(leftovers) == 1:
            i = leftovers[0]
            results[i] = self.submit(prepared[i][0], trace)
        elif leftovers:
            from concurrent.futures import ThreadPoolExecutor

            fan_out = min(len(leftovers), self.scheduler.pool.n_slots)
            with ThreadPoolExecutor(max_workers=fan_out) as fan:
                futures = {
                    i: fan.submit(self.submit, prepared[i][0], trace)
                    for i in leftovers
                }
                for i, future in futures.items():
                    results[i] = future.result()
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # sessions
    # ------------------------------------------------------------------
    def open_session(
        self,
        graph: CSRGraph,
        n_parts: int,
        fitness_kind: str = "fitness1",
        seed: int = 0,
        ga: Optional[dict] = None,
        trace: Optional[dict] = None,
    ) -> JobResult:
        """Open a streaming session; the result carries ``session_id``."""
        self._check_open()
        t0 = time.perf_counter()
        span = self.tracer.start(
            "service.open_session", parent=trace,
            attrs={"endpoint": "open_session"},
        )
        _, graph = self.store.graphs.intern(graph)
        session = self.sessions.open(
            graph, n_parts, fitness_kind=fitness_kind, seed=seed, ga=ga
        )
        # the initial GA runs on the session's pinned worker slot, like
        # every later update — never on the calling (HTTP) thread, so
        # `n_workers` bounds service CPU even under open bursts

        def initial() -> Partition:
            init_span = self.tracer.start(
                "session.initial", parent=span,
                attrs={"session_id": session.id},
            )
            with init_span:
                partition = self._recorded(
                    init_span, session.partition_initial
                )
            # snapshot on the pinned slot, before this session's first
            # update can run — the stored RNG state is the committed one
            if self.persistence is not None:
                self.persistence.commit(session)
            return partition

        try:
            future = self.scheduler.pool.submit(session.id, initial)
            partition = future.result()
        except BaseException as exc:
            self.sessions.close(session.id)  # do not leak a broken session
            span.fail(exc)
            span.close()
            raise
        latency = time.perf_counter() - t0
        self.session_latency.add(latency)
        span.set(session_id=session.id)
        span.close()
        self._observe_request("open_session", latency)
        result = result_from_partition(
            partition,
            "dknux-incremental",
            fitness=_fitness_of(partition, fitness_kind),
            session_id=session.id,
            latency_s=latency,
        )
        collected = span.collected()
        result.spans = collected if collected else None
        return result

    def update_session(
        self, request: UpdateRequest, trace: Optional[dict] = None
    ) -> JobResult:
        """One incremental step, pinned to the session's worker slot.

        With ``overlap_updates`` (the default) the update runs through
        the overlapped path: the session's state lock is held only for
        ingestion and commit, so ``close_session``/stats never block
        behind a GA run.  Final assignments are identical to the
        serial-lock path (both compose the same
        ``begin_update → run_pending → commit_update`` kernels).
        """
        self._check_open()
        t0 = time.perf_counter()
        ctx = trace if trace is not None else request.trace
        span = self.tracer.start(
            "service.update_session", parent=ctx,
            attrs={"endpoint": "update_session",
                   "session_id": request.session_id},
        )
        # intern the update graph too: replayed updates (and the sharded
        # bit-identity benchmark) then reuse one CSR build + strengths
        _, graph = self.store.graphs.intern(request.graph)
        overlap = self.config.overlap_updates

        def step() -> JobResult:
            step_span = self.tracer.start(
                "session.update", parent=span,
                attrs={"session_id": request.session_id},
            )

            def run_update():
                if overlap:
                    return self.sessions.update_overlapped(
                        request.session_id, graph
                    )
                return self.sessions.update(request.session_id, graph)

            with step_span:
                session, partition = self._recorded(step_span, run_update)
                step_span.set(epoch=session.n_updates)
            # on-commit snapshot: still on the session's pinned slot, so
            # the session's next update cannot have consumed RNG yet
            if self.persistence is not None:
                self.persistence.commit(session)
            return result_from_partition(
                partition,
                "dknux-incremental",
                fitness=_fitness_of(
                    partition, session.partitioner.fitness_kind
                ),
                session_id=session.id,
            )

        try:
            future = self.scheduler.pool.submit(request.session_id, step)
            result = future.result()
        except BaseException as exc:
            span.fail(exc)
            span.close()
            raise
        latency = time.perf_counter() - t0
        self.session_latency.add(latency)
        result.latency_s = latency
        span.close()
        self._observe_request("update_session", latency)
        collected = span.collected()
        result.spans = collected if collected else None
        return result

    def close_session(self, session_id: str) -> dict:
        self._check_open()
        summary = self.sessions.close(session_id)
        if self.persistence is not None:
            self.persistence.forget(session_id)
        return summary

    # ------------------------------------------------------------------
    # ring ownership handoff (PR 10 — the shard side of the elastic
    # fleet; see repro.service.ring and repro.service.sharding)
    # ------------------------------------------------------------------
    def prepare_handoff(self, session_ids=None) -> dict:
        """Flush durable state so another shard can adopt from this
        shard's store directory, and drain the result write-behind.

        With no ``session_ids`` this snapshots every *quiescent* open
        session (a fleet-wide flush before a remap).  With specific ids
        it **drains** those sessions instead — waiting out their
        in-flight update so the stored epoch is the latest committed one
        (see :meth:`~repro.service.persistence.SessionPersistence.
        snapshot_sessions`); the front only asks this after it has
        stopped routing new updates to them.  Returns the open session
        ids and the store directory (``None`` without persistence)."""
        self._check_open()
        if self.persistence is not None:
            if session_ids:
                self.persistence.snapshot_sessions(list(session_ids))
            else:
                self.persistence.snapshot_open_sessions()
        if self.write_behind is not None:
            self.write_behind.flush()
        return {
            "sessions": self.sessions.ids(),
            "snapshot_dir": self.config.snapshot_dir,
        }

    def adopt_sessions(self, src_dir: str, session_ids: Sequence[str]) -> list[str]:
        """Restore ``session_ids`` from a previous owner's snapshot
        directory (after its ``prepare_handoff``) and serve them here;
        the restored sessions resume bit-identically at their last
        committed epoch."""
        self._check_open()
        if self.persistence is None:
            raise ServiceError(
                "session adoption needs a snapshot store (snapshot_dir unset)"
            )
        return self.persistence.adopt_from(src_dir, session_ids)

    def release_sessions(self, session_ids: Sequence[str]) -> list[str]:
        """Stop serving sessions another shard has adopted (drops the
        in-memory session and this shard's snapshot; the new owner holds
        its own committed copy)."""
        self._check_open()
        released = []
        for session_id in session_ids:
            if self.sessions.release(session_id):
                released.append(session_id)
            if self.persistence is not None:
                self.persistence.forget(session_id)
        return released

    def warm_results_from(
        self,
        dirs: Sequence[str],
        ring: Optional[dict] = None,
        slot: Optional[int] = None,
    ) -> int:
        """Replay other shards' result journals into this content cache.

        ``ring`` (a :meth:`repro.service.ring.RingVersion.describe`
        dict) with ``slot`` filters to the keys this shard owns under
        the front's topology — after a remap, each shard warms exactly
        its newly owned keyspace.  Returns the number of results
        loaded; unreadable entries are skipped."""
        self._check_open()
        from .persistence import iter_result_entries

        version = None
        if ring is not None:
            from .ring import RingVersion

            version = RingVersion.from_description(ring)
        warmed = 0
        for root in dirs:
            for key, payload in iter_result_entries(root):
                if version is not None and slot is not None:
                    parts = key.split(":", 2)
                    if len(parts) < 3 or version.owner(parts[1]) != slot:
                        continue
                try:
                    result = JobResult.from_payload(payload)
                except (ReproError, KeyError, ValueError, TypeError):
                    continue  # corrupt entry: skip, never fatal
                self.store.store_result(key, result)
                self._seed_from_key(key, result)
                warmed += 1
        self._results_warmed += warmed
        return warmed

    def _replay_write_behind(self) -> None:
        """Service start: load this shard's own journal (no ownership
        filter — everything in it was recorded here)."""
        assert self.write_behind is not None
        warmed = 0
        for key, payload in self.write_behind.load():
            try:
                result = JobResult.from_payload(payload)
            except (ReproError, KeyError, ValueError, TypeError):
                continue
            self.store.store_result(key, result)
            self._seed_from_key(key, result)
            warmed += 1
        self._results_warmed += warmed

    def _record_result(self, key: str, result: JobResult) -> None:
        """Queue a freshly computed result for the write-behind journal
        (same neutral form the cache stores)."""
        if self.write_behind is None:
            return
        neutral = result.replace(
            cache_hit=False, coalesced=False, latency_s=0.0, spans=None
        )
        self.write_behind.record(key, neutral.to_payload())

    def _seed_from_key(self, key: str, result: JobResult) -> None:
        """Re-seed the warm-start store from a replayed journal entry.
        Keys are ``{kind}:{digest}:k={n}:f={fitness}:...`` by
        construction (:func:`repro.service.cache.request_key`)."""
        if result.assignment is None or result.fitness is None:
            return
        parts = key.split(":")
        if len(parts) < 4:
            return
        try:
            n_parts = int(parts[2].split("=", 1)[1])
            fitness_kind = parts[3].split("=", 1)[1]
        except (IndexError, ValueError):
            return
        self.store.graphs.store_seed_if_better(
            parts[1], n_parts, fitness_kind, result.assignment, result.fitness
        )

    # ------------------------------------------------------------------
    # stats / lifecycle
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        out = {
            "cache": self.store.stats(),
            "scheduler": self.scheduler.stats(),
            "sessions": self.sessions.stats(),
            "latency": self.latency.percentiles(),
            "session_latency": self.session_latency.percentiles(),
        }
        if self.persistence is not None:
            out["persistence"] = self.persistence.stats()
        if self.write_behind is not None:
            out["write_behind"] = dict(
                self.write_behind.stats(),
                results_warmed=self._results_warmed,
            )
        return out

    def metrics(self) -> dict:
        """The unified observability snapshot (see :mod:`repro.obs`):
        the metrics-registry series plus a ``latency_ms`` digest of
        per-endpoint request-latency percentiles derived from the
        ``repro_request_latency_ms`` histograms."""
        snap = self.registry.snapshot()
        digest: dict = {}
        for hist in snap["histograms"]:
            if hist["name"] != "repro_request_latency_ms":
                continue
            endpoint = hist["labels"].get("endpoint", "")
            digest[endpoint] = {
                "count": hist["count"],
                "p50_ms": round(histogram_percentile(hist, 0.50), 3),
                "p95_ms": round(histogram_percentile(hist, 0.95), 3),
                "p99_ms": round(histogram_percentile(hist, 0.99), 3),
            }
        snap["latency_ms"] = digest
        return snap

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            if self.persistence is not None:
                self.persistence.close()
            if self.write_behind is not None:
                self.write_behind.close()
            self.scheduler.shutdown()
            self.tracer.close()

    def __enter__(self) -> "PartitionService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise ServiceError("service is closed")

    # ------------------------------------------------------------------
    # execution (runs on scheduler workers)
    # ------------------------------------------------------------------
    def _resolved_ga_config(self, request: PartitionRequest) -> GAConfig:
        """The effective GAConfig of a dknux request (serving defaults
        plus the request's overrides); raises :class:`ServiceError` on
        bad overrides."""
        overrides = dict(DEFAULT_GA_OVERRIDES)
        if request.ga:
            overrides.update(request.ga)
        try:
            return GAConfig(**overrides)
        except (ConfigError, TypeError) as exc:
            raise ServiceError(f"bad ga overrides: {exc}") from exc

    def _process_route(self, request: Request) -> Optional[GAConfig]:
        """The resolved config when this request should run on a
        process slot, else ``None`` (thread lane).

        Cost model: ``n_nodes × population_size × max_generations``
        estimates the GA work; runs clearing
        ``config.process_threshold`` amortize the one-time graph
        shipping and per-job IPC of a process slot (measured — see
        :data:`~repro.service.config.DEFAULT_PROCESS_THRESHOLD`).
        """
        if (
            self.scheduler.process_pool is None
            or not isinstance(request, PartitionRequest)
            or request.method != "dknux"
        ):
            return None
        config = self._resolved_ga_config(request)
        cost = (
            request.graph.n_nodes
            * config.population_size
            * config.max_generations
        )
        if cost < self.config.process_threshold:
            return None
        return config

    def _was_shipped(self, slot: int, digest: str) -> bool:
        with self._ship_lock:
            per_slot = self._shipped.get(slot)
            if per_slot is None or digest not in per_slot:
                return False
            per_slot.move_to_end(digest)
            return True

    def _mark_shipped(self, slot: int, digest: str) -> None:
        from .procexec import WORKER_GRAPH_CAP

        with self._ship_lock:
            per_slot = self._shipped.setdefault(slot, OrderedDict())
            per_slot[digest] = None
            per_slot.move_to_end(digest)
            while len(per_slot) > WORKER_GRAPH_CAP:
                per_slot.popitem(last=False)

    def _observe_request(self, endpoint: str, latency_s: float) -> None:
        self.registry.inc("repro_requests_total", endpoint=endpoint)
        self.registry.observe(
            "repro_request_latency_ms", latency_s * 1e3, endpoint=endpoint
        )

    def _recorded(self, span, fn):
        """Run ``fn``; when ``span`` is live, install the GA progress
        recorder so generation and kernel hooks land under it.  The
        caller owns the span's lifecycle."""
        if not span:
            return fn()
        with recording(ExecRecorder(self.tracer, span, self.registry)):
            return fn()

    def _execute_and_publish(
        self, request: Request, digest: str, key: str, parent=NULL_SPAN
    ) -> JobResult:
        exec_span = self.tracer.start(
            "service.execute", parent=parent, attrs={"lane": "thread"}
        )
        with exec_span:
            result = self._recorded(
                exec_span, lambda: self._execute(request, digest)
            )
        self.store.store_result(key, result)
        self._store_warm_seed(request, digest, result)
        self._record_result(key, result)
        return result

    def _execute_process_and_publish(
        self,
        request: PartitionRequest,
        digest: str,
        key: str,
        config: GAConfig,
        parent=NULL_SPAN,
    ) -> JobResult:
        """Run a dknux request on its pinned process slot.

        The graph's CSR arrays ship with the first job for this
        (slot, digest) pair; afterwards the digest alone travels.  A
        worker that lost the graph (restart, worker-side LRU eviction)
        answers :data:`NEEDS_GRAPH` and the job is resent once with the
        arrays attached.
        """
        pool = self.scheduler.process_pool
        assert pool is not None
        slot = pool.slot(digest)
        exec_span = self.tracer.start(
            "service.execute", parent=parent,
            attrs={"lane": "process", "slot": slot},
        )
        # the worker only records (and grows the reply) when a context
        # ships; untraced jobs pickle byte-identically to before
        tc = exec_span.context() if exec_span else None
        extra = (tc,) if tc else ()
        seed_assignment = None
        if request.warm_start:
            seed_assignment = self.store.graphs.warm_seed(
                digest, request.n_parts, request.fitness_kind
            )
        arrays = (
            None
            if self._was_shipped(slot, digest)
            else graph_to_arrays(request.graph)
        )
        config_kwargs = dataclasses.asdict(config)
        with exec_span:
            out = pool.submit(
                digest,
                run_partition_job,
                digest,
                arrays,
                request.n_parts,
                request.fitness_kind,
                config_kwargs,
                request.seed,
                seed_assignment,
                *extra,
            ).result()
            if isinstance(out, str) and out == NEEDS_GRAPH:
                out = pool.submit(
                    digest,
                    run_partition_job,
                    digest,
                    graph_to_arrays(request.graph),
                    request.n_parts,
                    request.fitness_kind,
                    config_kwargs,
                    request.seed,
                    seed_assignment,
                    *extra,
                ).result()
            self._mark_shipped(slot, digest)
            if isinstance(out, tuple) and len(out) == 3:
                assignment, fitness, worker_spans = out
            else:
                assignment, fitness = out
                worker_spans = None
            if worker_spans:
                # the worker's subtree: into the local ring, and grafted
                # so a remote-rooted request ships it onward in one piece
                self.tracer.ingest(worker_spans)
                exec_span.adopt(worker_spans)
        partition = Partition(request.graph, assignment, request.n_parts)
        result = result_from_partition(
            partition, request.method, fitness=fitness, executed_in="process"
        )
        self.store.store_result(key, result)
        self._store_warm_seed(request, digest, result)
        self._record_result(key, result)
        return result

    def _execute(self, request: Request, digest: str) -> JobResult:
        if isinstance(request, RefineRequest):
            return self._execute_refine_group([request])[0]
        return self._execute_partition(request, digest)

    def _execute_partition(
        self, request: PartitionRequest, digest: str
    ) -> JobResult:
        from .. import partition_graph
        from ..baselines import (
            greedy_partition,
            random_partition,
            recursive_kl_partition,
            rgb_partition,
            rsb_partition,
        )

        graph, k = request.graph, request.n_parts
        if request.method == "portfolio":
            partition, method, fitness, table = run_portfolio(
                graph,
                k,
                fitness_kind=request.fitness_kind,
                seed=request.seed,
                time_budget=request.time_budget,
                ga=request.ga,
                racing=self.config.racing_portfolio,
            )
            return result_from_partition(
                partition, f"portfolio:{method}", fitness=fitness,
                portfolio=table,
            )
        if request.method == "dknux":
            config = self._resolved_ga_config(request)
            seed_assignment = None
            if request.warm_start:
                seed_assignment = self.store.graphs.warm_seed(
                    digest, k, request.fitness_kind
                )
            partition = partition_graph(
                graph,
                k,
                fitness_kind=request.fitness_kind,
                config=config,
                seed=request.seed,
                seed_assignment=seed_assignment,
            )
        elif request.method == "greedy":
            partition = greedy_partition(graph, k, seed=request.seed)
        elif request.method == "rgb":
            partition = rgb_partition(graph, k)
        elif request.method == "kl":
            partition = recursive_kl_partition(graph, k, seed=request.seed)
        elif request.method == "rsb":
            partition = rsb_partition(graph, k)
        else:  # "random" — SERVICE_METHODS is validated at request build
            partition = random_partition(graph, k, seed=request.seed)
        return result_from_partition(
            partition,
            request.method,
            fitness=_fitness_of(partition, request.fitness_kind),
        )

    def _execute_refine_group(
        self, batch: list[RefineRequest]
    ) -> list[JobResult]:
        """One lockstep climb over every queued refinement of the same
        (graph, k, fitness, passes).

        ``climb_batch`` treats rows independently (per-row move masks
        over a shared scan), so the stacked sweep is bit-identical to
        climbing each request alone — coalescing changes cost, not
        answers."""
        head = batch[0]
        graph, k = head.graph, head.n_parts
        fitness = make_fitness(head.fitness_kind, graph, k)
        rows = np.vstack([r.assignment for r in batch])
        climbed = climb_batch(graph, fitness, rows, max_passes=head.passes)
        values = fitness.evaluate_batch(climbed)
        out = []
        for i in range(len(batch)):
            partition = Partition(graph, climbed[i], k)
            out.append(
                result_from_partition(
                    partition, "refine", fitness=float(values[i])
                )
            )
        return out

    def _store_warm_seed(
        self, request: Request, digest: str, result: JobResult
    ) -> None:
        """Remember the best assignment per (graph, k, fitness) for
        ``warm_start`` traffic (one atomic compare-and-store — no
        re-evaluation, no lost-update race between workers)."""
        if not isinstance(request, (PartitionRequest, RefineRequest)):
            return
        self.store.graphs.store_seed_if_better(
            digest,
            request.n_parts,
            request.fitness_kind,
            result.assignment,
            result.fitness,
        )


def _with_graph(request: Request, graph: CSRGraph) -> Request:
    """Copy of the request carrying the interned graph instance (same
    content by digest); the caller's request object is left untouched."""
    if request.graph is graph:
        return request
    return dataclasses.replace(request, graph=graph)


def _fitness_of(partition: Partition, fitness_kind: str) -> float:
    fitness = make_fitness(fitness_kind, partition.graph, partition.n_parts)
    return float(fitness.evaluate(partition.assignment))
