"""Session persistence: snapshot/restore of incremental sessions.

A shard crash used to lose every open session on that shard — the
partitioner's graph, partition, and RNG stream lived only in the dead
process, so the next ``update_session`` answered "unknown session".
This module closes that hole: each session's resumable state
(:meth:`repro.incremental.partitioner.IncrementalGAPartitioner.
snapshot_state` — graph, committed partition, RNG bit-generator state,
GA config, commit counters) is pickled to a per-shard
:class:`SnapshotStore` directory, and a restarting shard (or a
restarted single-process service) restores every snapshot it finds
before taking traffic.

Write discipline is what makes restore *bit-identical* rather than
merely plausible:

* **On-commit snapshots** run on the session's pinned worker slot,
  immediately after ``open_session`` / ``update_session`` commit and
  before the slot accepts the session's next update — so a snapshot
  always captures a quiescent, committed epoch, never a mid-GA RNG
  state.
* **Periodic snapshots** (``ServiceConfig.snapshot_interval_s > 0``)
  are an alternative cadence for write-heavy deployments: a timer
  thread re-snapshots sessions whose epoch advanced, taking each
  session's ``compute_lock`` *non-blocking* — a session mid-update is
  simply skipped until the next tick, because a consistent snapshot can
  only be taken between updates.

Files are written atomically (temp file + ``os.replace``), so a crash
mid-write leaves the previous committed snapshot intact; a snapshot
that fails to unpickle on restore is skipped and counted, never fatal.
Restoring re-registers the session under its **original id**, so the
sharded front's session→shard routing keeps working unchanged across a
shard restart.

Two elastic-fleet additions (PR 10) live here because this is the one
service module whose on-disk formats are allowed to be private:

* **Ownership handoff** (:meth:`SessionPersistence.adopt_from`): when
  the consistent-hash ring moves a session to a different shard, the
  new owner restores the session directly from the *old* owner's
  snapshot directory (local fleets share a filesystem) and commits it
  to its own store — the session resumes bit-identically at the last
  committed epoch, exactly like a crash restore, because it *is* the
  crash-restore path pointed at a foreign store.
* **Result write-behind** (:class:`ResultWriteBehind`): an append-only
  JSONL journal of ``(request key → result payload)`` next to the
  snapshots.  A restarted or newly admitted shard replays the journal
  into its content cache before taking traffic, so the hottest keys
  answer as cache hits instead of being recomputed.  The journal is
  JSON — :meth:`repro.service.models.JobResult.to_payload` round-trips
  losslessly — so the wire-pickle ban never applies to it and a corrupt
  line is skipped, never fatal.
"""

from __future__ import annotations

import json
import os
import pickle
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Iterator, Optional, Sequence

from ..errors import ServiceError
from ..incremental.partitioner import IncrementalGAPartitioner
from ..obs.logs import get_logger
from .sessions import Session, SessionManager

_LOG = get_logger("service.persistence")

__all__ = [
    "SNAPSHOT_SUFFIX",
    "RESULTS_JOURNAL",
    "SnapshotStore",
    "SessionPersistence",
    "ResultWriteBehind",
    "capture_session_state",
    "snapshot_session",
    "restore_session",
    "iter_result_entries",
]

#: snapshot file suffix inside a store directory
SNAPSHOT_SUFFIX = ".session.pkl"

#: filename of the result write-behind journal inside a store directory
RESULTS_JOURNAL = "results.jsonl"


def capture_session_state(session: Session) -> dict:
    """One session's resumable state as a dict (caller holds the
    session's locks or otherwise guarantees quiescence).

    Capture is cheap — references to the immutable graph/partition
    arrays plus a copy of the RNG state — so it can run under the
    session's state lock; the expensive :func:`pickle.dumps` can then
    happen outside it (the partitioner never mutates these objects in
    place: commits install *new* partition/graph objects)."""
    state = session.partitioner.snapshot_state()
    state["session_id"] = session.id
    state["session_n_updates"] = session.n_updates
    state["session_created_at"] = session.created_at
    state["session_total_ga_seconds"] = session.total_ga_seconds
    return state


def snapshot_session(session: Session) -> bytes:
    """Serialize one session's resumable state (see
    :func:`capture_session_state` for the locking contract)."""
    return pickle.dumps(
        capture_session_state(session), protocol=pickle.HIGHEST_PROTOCOL
    )


def restore_session(data: bytes) -> Session:
    """Rebuild a :class:`Session` from :func:`snapshot_session` bytes."""
    state = pickle.loads(data)
    if not isinstance(state, dict) or "session_id" not in state:
        raise ServiceError("snapshot is not a session state dict")
    session = Session(
        str(state["session_id"]), IncrementalGAPartitioner.from_state(state)
    )
    session.n_updates = int(state.get("session_n_updates", 0))
    session.created_at = float(
        state.get("session_created_at", session.created_at)
    )
    session.total_ga_seconds = float(
        state.get("session_total_ga_seconds", 0.0)
    )
    return session


class SnapshotStore:
    """A directory of per-session snapshot files with atomic writes."""

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, session_id: str) -> Path:
        name = str(session_id)
        if not name or "/" in name or "\\" in name or name.startswith("."):
            raise ServiceError(f"unsafe session id for snapshot: {name!r}")
        return self.root / f"{name}{SNAPSHOT_SUFFIX}"

    def save(self, session_id: str, data: bytes) -> None:
        path = self._path(session_id)
        tmp = path.with_suffix(path.suffix + ".tmp")
        tmp.write_bytes(data)
        os.replace(tmp, path)

    def load(self, session_id: str) -> bytes:
        return self._path(session_id).read_bytes()

    def delete(self, session_id: str) -> None:
        try:
            self._path(session_id).unlink()
        except FileNotFoundError:
            pass

    def list_ids(self) -> list[str]:
        return sorted(
            p.name[: -len(SNAPSHOT_SUFFIX)]
            for p in self.root.glob(f"*{SNAPSHOT_SUFFIX}")
        )

    def __repr__(self) -> str:
        return f"SnapshotStore(root={str(self.root)!r})"


class SessionPersistence:
    """Snapshot pump for one service's :class:`SessionManager`."""

    def __init__(
        self,
        store: SnapshotStore,
        sessions: SessionManager,
        interval_s: float = 0.0,
    ) -> None:
        self.store = store
        self.sessions = sessions
        self.interval_s = float(interval_s)
        self._lock = threading.Lock()
        self._last_epoch: dict[str, int] = {}
        self.snapshots_written = 0
        self.write_failures = 0
        self.restored = 0
        self.restore_failures = 0
        self._stop = threading.Event()
        self._timer: Optional[threading.Thread] = None
        if self.interval_s > 0:
            self._timer = threading.Thread(
                target=self._periodic_loop,
                name="session-snapshots",
                daemon=True,
            )
            self._timer.start()

    # ------------------------------------------------------------------
    def restore_all(self) -> int:
        """Restore every readable snapshot in the store (service start).

        Corrupt or stale snapshots are skipped and counted — a bad file
        must never keep a restarting shard from serving the rest.
        """
        restored = 0
        for session_id in self.store.list_ids():
            try:
                session = restore_session(self.store.load(session_id))
                self.sessions.restore(session)
            # repro: allow[BROAD-EXCEPT] — a corrupt/stale snapshot must not
            # keep a restarting shard from serving; counted in restore_failures
            except Exception as exc:
                with self._lock:
                    self.restore_failures += 1
                _LOG.warning(
                    "snapshot restore failed",
                    extra={
                        "event": "snapshot_restore_failed",
                        "session_id": session_id,
                        "reason": str(exc),
                    },
                )
                continue
            with self._lock:
                self._last_epoch[session.id] = session.partitioner.epoch
                self.restored += 1
            restored += 1
        if restored:
            _LOG.info(
                "sessions restored from snapshots",
                extra={
                    "event": "snapshots_restored",
                    "restored": restored,
                    "dir": str(self.store.root),
                },
            )
        return restored

    def commit(self, session: Session) -> None:
        """On-commit snapshot — runs on the session's pinned worker slot
        right after open/update commit, before the next update of this
        session can start, so the captured RNG state is exactly the
        committed epoch's.

        Never raises: the update has *already committed* in-memory when
        this runs, so a snapshot failure (full disk, unwritable store)
        must degrade durability — counted in ``write_failures`` — not
        fail a request whose answer exists (a caller retrying that
        "failed" update would re-run it on the advanced RNG stream and
        break bit-identity)."""
        try:
            # state lock held only for the cheap reference capture —
            # the pickle and file write must not reintroduce the
            # close/stats blocking the overlapped path exists to avoid
            with session.lock:
                state = capture_session_state(session)
                epoch = session.partitioner.epoch
            data = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
            self._write(session.id, data, epoch)
        # repro: allow[BROAD-EXCEPT] — commit never raises: the update already
        # committed in-memory, so failure degrades durability (write_failures),
        # never the answer (see docstring for the bit-identity argument)
        except Exception as exc:
            with self._lock:
                self.write_failures += 1
            _LOG.warning(
                "snapshot write failed",
                extra={
                    "event": "snapshot_write_failed",
                    "session_id": session.id,
                    "reason": str(exc),
                },
            )
            return
        # a close() racing this commit may have forgotten the session
        # *before* the write landed; re-check after writing so a closed
        # session can never be resurrected from a stale snapshot (any
        # close starting after this point deletes the file itself)
        try:
            self.sessions.get(session.id)
        except ServiceError:
            self.forget(session.id)

    def forget(self, session_id: str) -> None:
        """Drop a closed session's snapshot."""
        self.store.delete(session_id)
        with self._lock:
            self._last_epoch.pop(session_id, None)

    def adopt_from(self, src_root, session_ids: Sequence[str]) -> list[str]:
        """Restore specific sessions from a *foreign* snapshot store
        (ring ownership handoff — see the module docstring) and commit
        them to this shard's own store.

        The source directory belongs to the previous owner, which has
        already flushed its snapshots (or died — same files either way).
        Unreadable snapshots are skipped and counted, like
        :meth:`restore_all`; the returned ids are the sessions this
        shard now serves."""
        src = SnapshotStore(src_root)
        adopted: list[str] = []
        for session_id in session_ids:
            try:
                session = restore_session(src.load(session_id))
                self.sessions.restore(session)
            # repro: allow[BROAD-EXCEPT] — a corrupt/missing snapshot must
            # not abort the rest of the handoff; counted in restore_failures
            except Exception as exc:
                with self._lock:
                    self.restore_failures += 1
                _LOG.warning(
                    "session adoption failed",
                    extra={
                        "event": "session_adopt_failed",
                        "session_id": session_id,
                        "src": str(src.root),
                        "reason": str(exc),
                    },
                )
                continue
            with self._lock:
                self._last_epoch[session.id] = session.partitioner.epoch
                self.restored += 1
            # durable on the new owner before the old owner forgets it:
            # a crash between handoff and first update must restore here
            self.commit(session)
            adopted.append(session_id)
        if adopted:
            _LOG.info(
                "sessions adopted from handoff",
                extra={
                    "event": "sessions_adopted",
                    "adopted": len(adopted),
                    "src": str(src.root),
                },
            )
        return adopted

    def _write(self, session_id: str, data: bytes, epoch: int) -> None:
        self.store.save(session_id, data)
        with self._lock:
            self._last_epoch[session_id] = epoch
            self.snapshots_written += 1

    # ------------------------------------------------------------------
    def _periodic_loop(self) -> None:  # pragma: no cover - timing thread
        while not self._stop.wait(self.interval_s):
            try:
                self.snapshot_open_sessions()
            # repro: allow[BROAD-EXCEPT] — a snapshot pass must never kill
            # the periodic timer thread
            except Exception:
                pass

    def snapshot_open_sessions(self) -> int:
        """One periodic pass: snapshot every open session whose epoch
        advanced since its last write.  Sessions mid-update (compute
        lock held) are skipped — their commit will snapshot anyway, and
        a mid-GA RNG state must never reach the store."""
        written = 0
        with self.sessions._lock:
            open_sessions = list(self.sessions._sessions.values())
        for session in open_sessions:
            if not session.compute_lock.acquire(blocking=False):
                continue
            try:
                with session.lock:
                    epoch = session.partitioner.epoch
                    with self._lock:
                        if self._last_epoch.get(session.id) == epoch:
                            continue
                    state = capture_session_state(session)
                try:
                    data = pickle.dumps(
                        state, protocol=pickle.HIGHEST_PROTOCOL
                    )
                    self._write(session.id, data, epoch)
                # repro: allow[BROAD-EXCEPT] — a per-session write failure
                # degrades durability for that session only; counted, pass
                # continues
                except Exception as exc:
                    with self._lock:
                        self.write_failures += 1
                    _LOG.warning(
                        "snapshot write failed",
                        extra={
                            "event": "snapshot_write_failed",
                            "session_id": session.id,
                            "reason": str(exc),
                        },
                    )
                    continue
                # same close-race guard as commit(): a close that beat
                # this write already deleted the file — never leave a
                # stale snapshot that would resurrect a closed session
                try:
                    self.sessions.get(session.id)
                except ServiceError:
                    self.forget(session.id)
                    continue
                written += 1
            finally:
                session.compute_lock.release()
        return written

    def snapshot_sessions(self, session_ids: Sequence[str]) -> int:
        """Drain-snapshot specific sessions for an ownership handoff.

        Unlike :meth:`snapshot_open_sessions`, this *waits* for each
        session's compute lock instead of skipping a busy session: the
        sharded front calls it after it has stopped routing new updates
        to the session, so the blocking acquire only drains the one
        in-flight update — and the stored epoch is then guaranteed to be
        the latest committed one, which the adopting shard resumes
        bit-identically."""
        written = 0
        for session_id in session_ids:
            try:
                session = self.sessions.get(session_id)
            except ServiceError:
                continue  # closed since the front planned the move
            with session.compute_lock:
                with session.lock:
                    epoch = session.partitioner.epoch
                    state = capture_session_state(session)
                try:
                    data = pickle.dumps(
                        state, protocol=pickle.HIGHEST_PROTOCOL
                    )
                    self._write(session_id, data, epoch)
                # repro: allow[BROAD-EXCEPT] — a failed drain write leaves
                # the on-commit snapshot in place; counted, handoff degrades
                except Exception as exc:
                    with self._lock:
                        self.write_failures += 1
                    _LOG.warning(
                        "handoff snapshot failed",
                        extra={
                            "event": "handoff_snapshot_failed",
                            "session_id": session_id,
                            "reason": str(exc),
                        },
                    )
                    continue
                written += 1
        return written

    def close(self) -> None:
        self._stop.set()
        if self._timer is not None:
            self._timer.join(timeout=5.0)

    def stats(self) -> dict:
        with self._lock:
            return {
                "dir": str(self.store.root),
                "snapshots_written": self.snapshots_written,
                "write_failures": self.write_failures,
                "restored": self.restored,
                "restore_failures": self.restore_failures,
                "interval_s": self.interval_s,
            }


# ----------------------------------------------------------------------
# result write-behind (elastic fleet, PR 10)
# ----------------------------------------------------------------------

def iter_result_entries(root) -> Iterator[tuple[str, dict]]:
    """Yield ``(request key, result payload)`` from a store directory's
    journal, oldest first; corrupt lines are skipped (a crash mid-append
    truncates the last line, it must not poison the rest).  Duplicate
    keys yield repeatedly — callers keep the last occurrence."""
    path = Path(root) / RESULTS_JOURNAL
    try:
        fh = open(path, encoding="utf-8")
    except OSError:
        return
    with fh:
        for line in fh:
            try:
                entry = json.loads(line)
                key, payload = entry["key"], entry["result"]
            except (ValueError, KeyError, TypeError):
                continue
            if isinstance(key, str) and isinstance(payload, dict):
                yield key, payload


class ResultWriteBehind:
    """Append-only JSONL journal of ``(request key → result payload)``.

    ``record`` enqueues without blocking the request path — a dedicated
    writer thread drains the queue and appends, so journal durability
    costs the hot path one lock hop, like the trace ring.  When the
    journal grows past ``max_bytes`` the writer compacts it in place
    (last occurrence per key, newest keys win, atomic replace), so the
    warm set a restarted shard replays is the *recent* hot set, bounded
    on disk.
    """

    def __init__(self, root, max_bytes: int = 16 << 20) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.path = self.root / RESULTS_JOURNAL
        self.max_bytes = int(max_bytes)
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._queue: "OrderedDict[str, dict]" = OrderedDict()
        self._bytes = self.path.stat().st_size if self.path.exists() else 0
        self._stop = False
        self._draining = 0
        self.records_written = 0
        self.write_failures = 0
        self.compactions = 0
        self._writer = threading.Thread(
            target=self._writer_loop, name="result-writebehind", daemon=True
        )
        self._writer.start()

    # ------------------------------------------------------------------
    def record(self, key: str, payload: dict) -> None:
        """Enqueue one (key → payload) for the writer thread; a re-record
        of a queued key replaces it (identical payload anyway — results
        are content-addressed)."""
        with self._wake:
            if self._stop:
                return
            self._queue[key] = payload
            self._queue.move_to_end(key)
            self._wake.notify()

    def flush(self) -> None:
        """Block until everything recorded so far is on disk (handoff
        preparation: the new owner is about to read this journal)."""
        with self._wake:
            while self._queue or self._draining:
                self._wake.wait(timeout=0.05)
                if self._stop:
                    break

    def load(self) -> list[tuple[str, dict]]:
        """The journal's entries, deduplicated last-wins, oldest first —
        what a restarting shard replays into its content cache."""
        self.flush()
        entries: "OrderedDict[str, dict]" = OrderedDict()
        for key, payload in iter_result_entries(self.root):
            entries[key] = payload
            entries.move_to_end(key)
        return list(entries.items())

    def stats(self) -> dict:
        with self._lock:
            return {
                "journal": str(self.path),
                "records_written": self.records_written,
                "write_failures": self.write_failures,
                "compactions": self.compactions,
                "journal_bytes": self._bytes,
            }

    def close(self) -> None:
        with self._wake:
            self._stop = True
            self._wake.notify()
        self._writer.join(timeout=5.0)

    # ------------------------------------------------------------------
    def _writer_loop(self) -> None:
        while True:
            with self._wake:
                while not self._queue and not self._stop:
                    self._wake.wait()
                if not self._queue and self._stop:
                    return
                batch = list(self._queue.items())
                self._queue.clear()
                self._draining = len(batch)
            try:
                self._append(batch)
            # repro: allow[BROAD-EXCEPT] — journal writes degrade warmth,
            # never answers: count the failure, keep the writer alive
            except Exception as exc:
                with self._lock:
                    self.write_failures += len(batch)
                _LOG.warning(
                    "write-behind append failed",
                    extra={
                        "event": "writebehind_append_failed",
                        "journal": str(self.path),
                        "reason": str(exc),
                    },
                )
            finally:
                with self._wake:
                    self._draining = 0
                    self._wake.notify_all()

    def _append(self, batch: list[tuple[str, dict]]) -> None:
        lines = "".join(
            json.dumps({"key": key, "result": payload}) + "\n"
            for key, payload in batch
        )
        data = lines.encode("utf-8")
        with open(self.path, "ab") as fh:
            fh.write(data)
        with self._lock:
            self._bytes += len(data)
            self.records_written += len(batch)
            over = self._bytes > self.max_bytes
        if over:
            self._compact()

    def _compact(self) -> None:
        """Rewrite the journal keeping the last occurrence per key,
        dropping oldest keys until under half the byte budget."""
        entries: "OrderedDict[str, dict]" = OrderedDict()
        for key, payload in iter_result_entries(self.root):
            entries[key] = payload
            entries.move_to_end(key)
        lines = [
            json.dumps({"key": key, "result": payload}) + "\n"
            for key, payload in entries.items()
        ]
        sizes = [len(line.encode("utf-8")) for line in lines]
        total = sum(sizes)
        start = 0
        while total > self.max_bytes // 2 and start < len(lines) - 1:
            total -= sizes[start]
            start += 1
        tmp = self.path.with_suffix(".jsonl.tmp")
        tmp.write_text("".join(lines[start:]), encoding="utf-8")
        os.replace(tmp, self.path)
        with self._lock:
            self._bytes = total
            self.compactions += 1
