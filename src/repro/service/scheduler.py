"""Request scheduling: in-flight coalescing over pinned workers.

The scheduler owns a :class:`repro.ga.parallel.PinnedExecutors` bank of
single-thread workers (numpy kernels release the GIL, so thread slots
give real parallelism without shipping graphs across process
boundaries), an optional second bank of single-worker *processes* for
GA runs long enough to amortize IPC (see
:mod:`repro.service.procexec`), and two coalescing mechanisms on top:

* **in-flight join** — while a job for cache key ``K`` is executing,
  any concurrently submitted job with the same key *joins* it instead
  of executing again; followers get the leader's result marked
  ``coalesced``.  Combined with the content-addressed result cache this
  means identical work is performed at most once no matter how it
  arrives: before execution (cache hit), during (join), after (cache
  hit).  The join table spans both execution lanes, so a thread job
  and a process job for the same key can never run concurrently.
* **group execution** — :meth:`run_group` executes one function for a
  whole batch of compatible jobs (the service stacks concurrently
  queued refinements of the same (graph, k, fitness) into a single
  lockstep :func:`~repro.ga.batch_climb.climb_batch` call) and fans the
  per-item results back out.

Pinning matters for the same reason it does in
:class:`~repro.ga.parallel.ParallelDPGA`: jobs are pinned by graph
digest and session updates by session id, so whatever worker-local
state exists for that content (a session's evolving partitioner, a hot
evaluator memo, a process worker's interned graph) stays on one worker
instead of being rebuilt wherever a shared pool happens to schedule
the job.
"""

from __future__ import annotations

import threading
from typing import Callable, Optional, Sequence

from ..errors import ServiceError
from ..ga.parallel import PinnedExecutors
from .models import JobResult
from .procexec import init_process_worker

__all__ = ["CoalescingScheduler"]


class _InFlight:
    """One executing job; followers wait on ``done``."""

    __slots__ = ("done", "result", "error")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.result: Optional[JobResult] = None
        self.error: Optional[BaseException] = None


class CoalescingScheduler:
    """Dispatches service jobs with dedup, grouping, and slot pinning."""

    def __init__(self, n_workers: int = 2, process_workers: int = 0) -> None:
        if n_workers < 1:
            raise ServiceError(f"n_workers must be >= 1, got {n_workers}")
        if process_workers < 0:
            raise ServiceError(
                f"process_workers must be >= 0, got {process_workers}"
            )
        self.pool = PinnedExecutors(n_workers, kind="thread")
        #: process bank for cost-model-routed long GA runs (lazy jobs:
        #: the executors fork on construction, so only build the bank
        #: when the config actually asks for process execution)
        self.process_pool: Optional[PinnedExecutors] = None
        if process_workers:
            self.process_pool = PinnedExecutors(
                process_workers,
                kind="process",
                initializer=init_process_worker,
            )
        self._lock = threading.Lock()
        self._inflight: dict[str, _InFlight] = {}
        # counters (reads are informational; writes hold _lock)
        self.jobs_executed = 0
        self.jobs_joined = 0
        self.jobs_process = 0
        self.groups_executed = 0
        self.group_members = 0

    # ------------------------------------------------------------------
    def run(
        self,
        key: str,
        pin_key,
        fn: Callable[[], JobResult],
        *,
        inline: bool = False,
    ) -> JobResult:
        """Execute ``fn`` on the slot pinned to ``pin_key``, joining any
        in-flight execution of the same ``key``.

        Returns the leader's result unmarked, or a ``coalesced``-marked
        copy for followers.  The leader's exception propagates to every
        joined caller.

        ``inline=True`` runs ``fn`` on the *calling* thread instead of
        a pinned worker thread — used for process-routed jobs, whose
        ``fn`` merely submits to the process bank and blocks on IPC:
        occupying a worker thread for that wait would let long process
        jobs starve the thread lane.  In-flight joining is identical in
        both modes.
        """
        with self._lock:
            flight = self._inflight.get(key)
            if flight is None:
                flight = _InFlight()
                self._inflight[key] = flight
                leader = True
            else:
                leader = False
        if not leader:
            flight.done.wait()
            with self._lock:
                self.jobs_joined += 1
            if flight.error is not None:
                raise flight.error
            assert flight.result is not None
            return flight.result.replace(coalesced=True)
        try:
            if inline:
                flight.result = fn()
            else:
                future = self.pool.submit(pin_key, fn)
                flight.result = future.result()
            with self._lock:
                self.jobs_executed += 1
                if inline:
                    self.jobs_process += 1
            return flight.result
        except BaseException as exc:
            flight.error = exc
            raise
        finally:
            with self._lock:
                self._inflight.pop(key, None)
            flight.done.set()

    def run_group(
        self,
        keys: Sequence[str],
        pin_key,
        fn: Callable[[], list[JobResult]],
    ) -> list[JobResult]:
        """Execute one function producing a result per key.

        Used for batched refinement: the group runs as a single pinned
        job; every member beyond the first is counted (and marked)
        coalesced.  Members whose key is already in flight are *not*
        deduplicated here — the service's result cache layer handles
        exact repeats before grouping.
        """
        if not keys:
            return []
        future = self.pool.submit(pin_key, fn)
        results = future.result()
        if len(results) != len(keys):
            raise ServiceError(
                f"group produced {len(results)} results for {len(keys)} jobs"
            )
        with self._lock:
            self.groups_executed += 1
            self.group_members += len(keys)
            self.jobs_executed += len(keys)
        if len(results) > 1:
            results = [results[0]] + [
                r.replace(coalesced=True) for r in results[1:]
            ]
        return results

    def queue_depth(self) -> int:
        """Jobs currently executing or being joined (the in-flight
        table's size) — the ``repro_inflight_jobs`` gauge."""
        with self._lock:
            return len(self._inflight)

    def stats(self) -> dict:
        with self._lock:
            return {
                "workers": self.pool.n_slots,
                "process_workers": (
                    0 if self.process_pool is None else self.process_pool.n_slots
                ),
                "jobs_executed": self.jobs_executed,
                "jobs_joined": self.jobs_joined,
                "jobs_process": self.jobs_process,
                "groups_executed": self.groups_executed,
                "group_members": self.group_members,
            }

    def shutdown(self) -> None:
        self.pool.shutdown()
        if self.process_pool is not None:
            self.process_pool.shutdown()
