"""Digest-sharded multi-process serving with supervision and failover.

One Python process can only scale the serving tier so far: worker
threads overlap the GIL-releasing kernels, but every request still
shares one interpreter.  :class:`ShardedPartitionService` is the
shared-nothing answer — ``N`` worker *processes*, each running a full,
independent :class:`~repro.service.core.PartitionService` (its own
caches, pinned executors, and sessions), behind a thin front that
routes every request by **graph digest** through a consistent-hash
ring (:mod:`repro.service.ring`, PR 10)::

    request ──digest──→ shard = ring.owner(digest) ──transport──→ shard
                                                                 worker

Routing by content digest is what keeps the per-shard caches as
effective as a single process's: a given graph always lands on the
same shard, so its interned CSR build, cached results, and warm seeds
concentrate there instead of being diluted across workers.  Sessions
are routed by the digest of their opening graph and then stick to
their shard by session id.

Elastic fleet (PR 10): because the ring is an explicit, epoch-numbered
topology instead of ``% N``, membership can change at runtime:

* ``resize(n)`` / ``add_shard()`` / ``remove_shard(i)`` (the
  ``/v1/admin/ring`` endpoint and the ``ring`` CLI verb) grow or
  shrink a local fleet under traffic.  A remap moves only ~1/N of the
  keyspace; sessions whose owner changed are **handed off warm** —
  the old shard drain-snapshots them, the new owner adopts from its
  store (:meth:`~repro.service.persistence.SessionPersistence.
  adopt_from`) and resumes bit-identically at the last committed
  epoch — and each shard re-warms its newly owned keys from the other
  shards' result write-behind journals, so the warm-hit rate survives
  the remap.
* With ``probe_interval_s > 0`` the front probes every shard
  periodically: a shard that stops answering is ejected from the ring
  (degraded serving at N−1 under a new epoch — its keyspace reroutes
  to the survivors, which compute identical bits) and re-admitted
  when a probe sees it answer again; an attached remote shard is
  reconnected by the probe instead of lazily on the next call.
* The ring protocol is versioned on the ``capabilities`` handshake
  (:data:`~repro.service.ring.RING_PROTOCOL_VERSION` + the front's
  ring epoch ride the hello; ring-aware shards echo them back), so old
  peers keep working on the pre-ring contract.

Transport (PR 5) is one duplex :class:`~repro.service.transport.
ShardTransport` per shard with request multiplexing: the front tags
each request with a sequence id, a per-shard reader thread dispatches
replies to waiting callers, and the shard worker executes requests on
a small thread pool over its service.  Two transports share that
protocol — the **pipe** lane to local child processes (PR 4's fast
path, pickled messages) and the **socket** lane (length-prefixed JSON
frames) to shard servers anywhere (``serve --shard-listen`` /
``--attach-shard``), so a fleet can span machines without changing a
caller.

Fault tolerance (PR 5): every shard lives in a supervised slot with
health tracking.  A shard death (reader-thread EOF, send failure) fails
all in-flight requests for that shard *fast* with
:class:`~repro.errors.ShardDiedError` — nobody blocks on a corpse —
and then:

* **local shards** are restarted automatically (bounded by
  ``restart_limit``) with the *same* slot index, so the digest→shard
  mapping is preserved deterministically; the replacement process
  restores the dead shard's sessions from its snapshot store
  (:mod:`repro.service.persistence`) before taking traffic, so
  ``update_session`` resumes bit-identically from the last committed
  epoch instead of erroring;
* **attached (remote) shards** are reconnected lazily on the next call
  for their slot — the shard server itself outlives the front and kept
  its state all along.

Determinism: every shard executes the identical
:class:`PartitionService` code, so sharded answers are bit-identical
to single-process answers for the same requests — the shard layout,
the transport, and a crash-free restart change which process computes,
never what is computed (enforced by ``tests/test_sharding.py`` and
gated in CI by ``bench_service.py``).

Composition note: local shard workers run with ``process_workers=0`` —
a shard *is* a process, and daemonic shard workers may not spawn child
processes.  A standalone :class:`ShardServer` has no such constraint.
"""

from __future__ import annotations

import hashlib
import itertools
import multiprocessing
import os
import re
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Optional, Sequence

from ..errors import ServiceError, ShardDiedError
from ..graphs.csr import CSRGraph
from ..obs.logs import get_logger
from ..obs.metrics import (
    MetricsRegistry,
    histogram_percentile,
    merge_snapshots,
)
from ..obs.trace import Tracer
from .cache import graph_digest
from .config import ServiceConfig
from .models import JobResult, UpdateRequest
from .ring import RING_PROTOCOL_VERSION, HashRing
from .transport import (
    SHUTDOWN,
    PipeTransport,
    ShardListener,
    ShardTransport,
    connect_shard,
)

__all__ = [
    "ShardedPartitionService",
    "ShardServer",
    "shard_for_digest",
]

_LOG = get_logger("service.sharding")


#: percentile-style stats keys that cannot meaningfully sum across
#: shards — the fleet aggregate takes their max instead
_STATS_MAX_RE = re.compile(r"^(p\d+_ms|max_ms)$")


def _merge_stats(rows: Sequence[dict]) -> dict:
    """Fleet aggregate of per-shard ``stats()`` rows.

    Numeric leaves sum key-by-key (percentile keys take the max — a sum
    of p95s is meaningless), nested dicts merge recursively, and keys
    missing from some rows still aggregate over the rows that have them
    — previously those were silently dropped on the caller's floor.
    Unavailable-shard placeholders and non-numeric leaves are skipped.
    """
    out: dict = {}
    merged_rows = 0
    for row in rows:
        if not isinstance(row, dict) or "unavailable" in row:
            continue
        merged_rows += 1
        _merge_stats_into(out, row)
    out["shards_reporting"] = merged_rows
    return out


def _merge_stats_into(target: dict, row: dict) -> None:
    for key, value in row.items():
        if isinstance(value, dict):
            sub = target.setdefault(key, {})
            if isinstance(sub, dict):
                _merge_stats_into(sub, value)
        elif isinstance(value, bool) or not isinstance(value, (int, float)):
            continue  # strings (snapshot dirs), lists, None
        elif _STATS_MAX_RE.match(key):
            target[key] = max(target.get(key, value), value)
        else:
            target[key] = target.get(key, 0) + value


def shard_for_digest(digest: str, n_shards: int) -> int:
    """Stable digest → shard index (same mapping in every process and
    across runs: a pure function of the content digest).

    This is the PR-4 ``% N`` layout, kept as the frozen reference
    (``tests/test_sharding.py`` pins it).  Live routing moved to the
    consistent-hash ring in PR 10 — see :mod:`repro.service.ring` for
    why the two layouts intentionally differ (a one-time migration:
    ``% N`` cannot be remap-minimal) and why that is safe (every shard
    computes identical bits)."""
    if n_shards < 1:
        raise ServiceError(f"n_shards must be >= 1, got {n_shards}")
    raw = hashlib.blake2b(digest.encode(), digest_size=8).digest()
    return int.from_bytes(raw, "big") % n_shards


# ----------------------------------------------------------------------
# shard worker side
# ----------------------------------------------------------------------

def _safe_exception(exc: BaseException) -> Exception:
    """An exception that survives a pickle **round-trip** (fallback:
    ServiceError).

    Checking only that the exception pickles is not enough: an
    exception whose ``__init__`` signature diverges from its pickled
    args (e.g. extra required parameters) dumps fine on the shard and
    then explodes in ``pickle.loads`` on the front, killing the reply
    dispatch for a perfectly healthy shard.  So the round-trip runs
    *here*, shard-side, and the reconstructed object must come back as
    the same type; any failure or type mismatch degrades to a plain
    :class:`ServiceError` carrying the original type and message.
    """
    import pickle

    try:
        clone = pickle.loads(pickle.dumps(exc))
        if type(clone) is type(exc) and isinstance(exc, Exception):
            return exc
    # repro: allow[BROAD-EXCEPT] — any round-trip failure means the
    # exception is unsafe to ship; degrade to ServiceError below
    except Exception:
        pass
    return ServiceError(f"{type(exc).__name__}: {exc}")


def _serve_shard(transport: ShardTransport, service) -> None:
    """Answer ``(req_id, verb, args)`` messages over one transport until
    EOF or :data:`SHUTDOWN`; requests execute on a small thread pool so
    same-shard traffic overlaps.  Shared by the local pipe worker and
    every :class:`ShardServer` connection.
    """

    def handle(
        req_id: int, verb: str, args: tuple, tc: Optional[dict] = None
    ) -> None:
        try:
            if verb == "submit":
                out = service.submit(args[0], trace=tc)
            elif verb == "submit_many":
                out = service.submit_many(args[0], trace=tc)
            elif verb == "open_session":
                kwargs = dict(args[2])
                payload_tc = kwargs.pop("trace", None)
                out = service.open_session(
                    args[0], args[1],
                    trace=tc if tc is not None else payload_tc,
                    **kwargs,
                )
            elif verb == "update_session":
                out = service.update_session(args[0], trace=tc)
            elif verb == "close_session":
                out = service.close_session(args[0])
            elif verb == "stats":
                out = service.stats()
            elif verb == "metrics":
                out = service.metrics()
            elif verb == "list_sessions":
                out = service.sessions.ids()
            elif verb == "ping":
                # liveness probe (PR 10): answers on the control lane so
                # a fleet saturated with GA work still proves it is alive
                out = {"ok": True, "ring_protocol": RING_PROTOCOL_VERSION}
            elif verb == "prepare_handoff":
                out = service.prepare_handoff(args[0] if args else None)
            elif verb == "adopt_sessions":
                out = service.adopt_sessions(args[0], args[1])
            elif verb == "release_sessions":
                out = service.release_sessions(args[0])
            elif verb == "warm_from":
                out = service.warm_results_from(
                    args[0],
                    ring=args[1] if len(args) > 1 else None,
                    slot=args[2] if len(args) > 2 else None,
                )
            elif verb == "capabilities":
                # feature probe doubling as the binary-lane handshake:
                # only new fronts send it, and a front that does is ready
                # to receive binary replies the moment it gets this
                # answer (old fronts never see one — replies to them stay
                # JSON because this verb is never invoked).  Since PR 10
                # the front's hello rides as an optional args dict (old
                # fronts send none) and the answer carries the shard's
                # ring protocol version plus an echo of the front's ring
                # epoch — the negotiation seam that lets ring-aware
                # fronts drive pre-ring shards and vice versa.
                hello = args[0] if args and isinstance(args[0], dict) else {}
                out = {
                    "binary": bool(transport.enable_binary()),
                    "ring_protocol": RING_PROTOCOL_VERSION,
                }
                if "ring_epoch" in hello:
                    out["ring_epoch"] = hello["ring_epoch"]
            else:
                raise ServiceError(f"unknown shard verb {verb!r}")
            reply = (req_id, True, out)
        # repro: allow[BROAD-EXCEPT] — the serving loop answers every
        # request: handler errors become error replies, never a dead channel
        except BaseException as exc:
            reply = (req_id, False, _safe_exception(exc))
        try:
            transport.send(reply)
        # repro: allow[BROAD-EXCEPT] — a reply that cannot serialize must
        # still be answered, or the front's call would wait forever
        except Exception as exc:
            # a reply that cannot serialize must still be answered, or
            # the front's call would wait forever — fall back to an
            # error reply; if even that fails the channel is dead and
            # the front's reader EOF flushes every waiter
            try:
                transport.send((
                    req_id,
                    False,
                    ServiceError(f"shard reply failed to send: {exc!r}"),
                ))
            # repro: allow[BROAD-EXCEPT] — last resort: if even the error
            # reply fails the channel is dead and the reader's EOF flushes
            # every waiter
            except Exception:
                pass

    # two lanes: data verbs (GA work, may block for seconds) and
    # control verbs (stats / close_session, expected to answer fast).
    # A shared pool would let a burst of long submits queue a stats or
    # close behind GA runs — the very blocking the overlapped-session
    # work removed from the single-process path.
    pool = ThreadPoolExecutor(
        max_workers=service.config.n_workers + 2,
        thread_name_prefix="shard-req",
    )
    control = ThreadPoolExecutor(
        max_workers=2, thread_name_prefix="shard-ctl"
    )
    try:
        while True:
            try:
                msg = transport.recv()
            except (EOFError, OSError):
                break  # peer died or detached
            if msg == SHUTDOWN:
                break
            # requests are (req_id, verb, args) or, when the front ships
            # trace context, (req_id, verb, args, tc) — see transport.py
            req_id, verb, args = msg[0], msg[1], msg[2]
            tc = msg[3] if len(msg) == 4 else None
            lane = (
                control
                if verb in ("stats", "metrics", "close_session",
                            "list_sessions", "capabilities", "ping")
                else pool
            )
            lane.submit(handle, req_id, verb, args, tc)
    finally:
        pool.shutdown(wait=True)
        control.shutdown(wait=True)
        transport.close()


def _shard_main(conn, config: ServiceConfig) -> None:  # pragma: no cover
    """Entry point of one local shard worker process.  (Covered by the
    subprocess-driving tests in ``tests/test_sharding.py``, which
    coverage cannot see.)"""
    from .core import PartitionService

    service = PartitionService(config=config)
    try:
        _serve_shard(PipeTransport(conn), service)
    finally:
        service.close()


class ShardServer:
    """A standalone, socket-reachable shard (``serve --shard-listen``).

    Runs one full :class:`~repro.service.core.PartitionService` and
    answers the shard RPC over :class:`~repro.service.transport.
    SocketTransport` connections — the remote end of
    ``ShardedPartitionService(attach=[...])``.  The server outlives any
    front: a front disconnect merely ends that connection, state (
    caches, sessions, snapshots) stays warm for the next attach, and an
    attaching front rebuilds its session→shard routing from the
    server's open sessions (the ``list_sessions`` verb), so sessions
    opened through a previous front remain addressable.
    Keyword arguments are :class:`ServiceConfig` overrides; unlike
    local pipe shards, a shard server is a first-class process and may
    use ``process_workers``.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        config: Optional[ServiceConfig] = None,
        **overrides,
    ) -> None:
        from .core import PartitionService

        if config is None:
            config = ServiceConfig(**overrides)
        elif overrides:
            config = config.with_updates(**overrides)
        self.config = config
        self.service = PartitionService(config=config)
        try:
            self.listener = ShardListener(host, port)
        except OSError:
            # bind failure must not leak the started service's workers
            self.service.close()
            raise
        self.address = self.listener.address
        self._lock = threading.Lock()
        self._transports: list[ShardTransport] = []
        self._threads: list[threading.Thread] = []
        self._accept_thread: Optional[threading.Thread] = None
        self._closed = False

    def serve_forever(self) -> None:
        """Accept fronts until :meth:`close`; one thread per connection
        (they share the one service, so two fronts see one cache)."""
        while True:
            try:
                transport = self.listener.accept()
            except OSError:
                break  # listener closed
            with self._lock:
                if self._closed:
                    transport.close()
                    break
                thread = threading.Thread(
                    target=self._serve_connection,
                    args=(transport,),
                    name="shard-conn",
                    daemon=True,
                )
                self._transports.append(transport)
                self._threads.append(thread)
            thread.start()

    def _serve_connection(self, transport: ShardTransport) -> None:
        """One connection's serving loop, self-pruning on exit — a
        long-lived server fronted by reconnecting fleets must not
        accumulate every dead connection's transport and thread."""
        try:
            _serve_shard(transport, self.service)
        finally:
            with self._lock:
                try:
                    self._transports.remove(transport)
                except ValueError:
                    pass
                try:
                    self._threads.remove(threading.current_thread())
                except ValueError:
                    pass

    def start(self) -> "ShardServer":
        """Serve in a background daemon thread (tests, embedding)."""
        self._accept_thread = threading.Thread(
            target=self.serve_forever, name="shard-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            transports = list(self._transports)
            threads = list(self._threads)
        self.listener.close()
        for transport in transports:
            transport.close()
        for thread in threads:
            thread.join(timeout=5.0)
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
        self.service.close()

    def __enter__(self) -> "ShardServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"ShardServer(address={self.address!r})"


# ----------------------------------------------------------------------
# front-side shard handle + supervision
# ----------------------------------------------------------------------

class _Reply:
    __slots__ = ("done", "ok", "payload")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.ok = False
        self.payload = None


class _ShardHandle:
    """Front-side endpoint of one shard: multiplexed request/reply over
    a :class:`ShardTransport`; ``process`` is set for local shards."""

    def __init__(
        self,
        index: int,
        transport: ShardTransport,
        process=None,
        on_death=None,
        negotiate: bool = True,
        ring_epoch: int = 0,
    ) -> None:
        self.index = index
        self.process = process
        self.transport = transport
        self.closing = False  # intentional shutdown: no death handling
        self._on_death = on_death
        self._pending_lock = threading.Lock()
        self._pending: dict[int, _Reply] = {}
        self._counter = itertools.count()
        self._alive = True
        self.capabilities: dict = {}
        self.ring_protocol = 0  # 0 = pre-ring peer (or no handshake)
        self._reader = threading.Thread(
            target=self._read_loop, name=f"shard-{index}-reader", daemon=True
        )
        self._reader.start()
        self.binary = self._negotiate(ring_epoch) if negotiate else False

    def _negotiate(self, ring_epoch: int) -> bool:
        """Probe the shard for the zero-copy lane (binary socket frames
        / shared-memory pipe segments) and enable it on both sides,
        carrying the ring hello (protocol version + the front's current
        ring epoch) on the same round trip.

        The ``capabilities`` verb is a plain request, so a pre-binary
        shard server answers it with a graceful unknown-verb error and
        everything stays on JSON frames — the probe can never strand a
        connection.  A pre-ring shard ignores the hello args and omits
        ``ring_protocol`` from its answer; the front then knows not to
        send it ring verbs (``ring_protocol`` stays 0).
        """
        try:
            caps = self.call("capabilities", {
                "ring_protocol": RING_PROTOCOL_VERSION,
                "ring_epoch": int(ring_epoch),
            })
        except ShardDiedError:
            return False  # death path already running; slot restarts
        except ServiceError:
            return False  # old peer: unknown verb, JSON frames forever
        if isinstance(caps, dict):
            self.capabilities = caps
            try:
                self.ring_protocol = int(caps.get("ring_protocol") or 0)
            except (TypeError, ValueError):
                self.ring_protocol = 0
            if caps.get("binary"):
                return self.transport.enable_binary()
        return False

    @property
    def alive(self) -> bool:
        with self._pending_lock:
            return self._alive

    def call(self, verb: str, *args, tc: Optional[dict] = None):
        reply = _Reply()
        req_id = next(self._counter)
        message = (
            (req_id, verb, args)
            if tc is None
            else (req_id, verb, args, dict(tc))
        )
        with self._pending_lock:
            if not self._alive:
                raise ShardDiedError(f"shard {self.index} is not running")
            self._pending[req_id] = reply
        try:
            # transports serialize send internally; no handle-level lock
            self.transport.send(message)
        except (OSError, ValueError, EOFError) as exc:
            with self._pending_lock:
                self._pending.pop(req_id, None)
            # a failed send means the channel is broken: close it so the
            # reader wakes with EOF and the death path runs exactly once
            self.transport.close()
            raise ShardDiedError(
                f"shard {self.index} unreachable: {exc}"
            ) from exc
        except ServiceError:
            # codec rejection (oversized frame, unencodable value):
            # the channel is intact — both codecs fail before writing a
            # byte — so only this request fails; drop its pending entry
            with self._pending_lock:
                self._pending.pop(req_id, None)
            raise
        except Exception as exc:  # e.g. pickle errors on the pipe lane
            with self._pending_lock:
                self._pending.pop(req_id, None)
            raise ServiceError(
                f"request to shard {self.index} failed to serialize: "
                f"{exc!r}"
            ) from exc
        reply.done.wait()
        if not reply.ok:
            raise reply.payload
        return reply.payload

    def _read_loop(self) -> None:
        try:
            while True:
                req_id, ok, payload = self.transport.recv()
                with self._pending_lock:
                    reply = self._pending.pop(req_id, None)
                if reply is None:
                    continue  # response to an abandoned request
                reply.ok = ok
                reply.payload = payload
                reply.done.set()
        except (EOFError, OSError):
            pass
        except ServiceError:
            pass  # malformed frame from a corrupt peer: treat as death
        finally:
            # whatever ended the loop (EOF, OSError, malformed frame),
            # the channel is done: close it so the peer's connection
            # loop sees EOF too instead of blocking in recv forever
            self.transport.close()
            # shard death: fail every in-flight caller *fast* — a caller
            # must never block forever on a request the dead shard will
            # not answer — then hand the slot to the supervisor
            with self._pending_lock:
                self._alive = False
                pending, self._pending = self._pending, {}
            for reply in pending.values():
                reply.ok = False
                reply.payload = ShardDiedError(
                    f"shard {self.index} died with the request in flight"
                )
                reply.done.set()
            if self._on_death is not None and not self.closing:
                self._on_death(self)

    def shutdown(self, timeout: float = 10.0) -> None:
        self.closing = True
        if self.process is not None:
            try:
                self.transport.send(SHUTDOWN)
            except (OSError, ValueError, EOFError):
                pass
            self.process.join(timeout)
            if self.process.is_alive():  # pragma: no cover - stuck worker
                self.process.terminate()
                self.process.join(timeout)
        self.transport.close()


class _ShardSlot:
    """Supervised seat of one shard index in the fleet."""

    __slots__ = (
        "index", "handle", "state", "restarts", "address", "restart_thread",
        "last_probe", "probe_ok", "probe_failures",
    )

    def __init__(self, index: int, address: Optional[str] = None) -> None:
        self.index = index
        self.handle: Optional[_ShardHandle] = None
        self.state = "starting"  # "up" | "restarting" | "down" | "removed"
        self.restarts = 0
        self.address = address  # attach address for remote shards
        self.restart_thread: Optional[threading.Thread] = None
        self.last_probe: Optional[float] = None  # wall clock of last probe
        self.probe_ok: Optional[bool] = None  # verdict of the last probe
        self.probe_failures = 0


# ----------------------------------------------------------------------
# the sharded front
# ----------------------------------------------------------------------

class ShardedPartitionService:
    """Digest-sharded, shared-nothing serving front with supervision.

    Implements the same verbs as :class:`PartitionService` (``submit``,
    ``submit_many``, ``open_session``, ``update_session``,
    ``close_session``, ``stats``, ``close``), so the HTTP frontend and
    :class:`~repro.service.client.ServiceClient` drive either
    interchangeably.  Keyword arguments are
    :class:`~repro.service.config.ServiceConfig` overrides applied to
    every shard.

    Parameters
    ----------
    n_shards:
        Local shard worker processes to spawn (ignored when ``attach``
        is given).
    attach:
        Addresses (``"HOST:PORT"``) of running :class:`ShardServer`\\ s
        to attach instead of spawning local workers; the fleet width is
        ``len(attach)`` and digest routing is identical to a local
        fleet of the same width.
    auto_restart:
        Restart a dead *local* shard in place (same slot → same digest
        routing), restoring its sessions from the per-shard snapshot
        store before it takes traffic.  Attached shards are never
        restarted — they are reconnected on the next call instead.
    restart_limit:
        Ceiling on automatic restarts per slot (crash-loop guard).
    restart_wait_s:
        How long a caller waits for an in-progress restart/reconnect
        before failing with :class:`ShardDiedError`.
    """

    def __init__(
        self,
        n_shards: Optional[int] = None,
        config: Optional[ServiceConfig] = None,
        attach: Optional[Sequence[str]] = None,
        auto_restart: bool = True,
        restart_limit: int = 3,
        restart_wait_s: float = 30.0,
        **overrides,
    ) -> None:
        if config is None:
            config = ServiceConfig(**overrides)
        elif overrides:
            config = config.with_updates(**overrides)
        self._local = attach is None
        if self._local:
            n_shards = 2 if n_shards is None else int(n_shards)
            if n_shards < 1:
                raise ServiceError(f"n_shards must be >= 1, got {n_shards}")
            self.n_shards = n_shards
            if config.process_workers:
                # a shard is already a process; daemonic shard workers
                # may not spawn children (see the module docstring)
                config = config.with_updates(process_workers=0)
        else:
            attach = list(attach)
            if not attach:
                raise ServiceError("attach needs at least one address")
            if n_shards is not None and n_shards != len(attach):
                raise ServiceError(
                    f"n_shards={n_shards} conflicts with {len(attach)} "
                    "attached shard addresses (omit n_shards with attach)"
                )
            if config.without_observability() != ServiceConfig():
                # remote workers run their own configs; silently
                # accepting overrides here would let callers believe
                # settings took effect that never left this process.
                # Observability fields are exempt: they configure the
                # *front's* tracer, which is local by definition.
                raise ServiceError(
                    "attach mode takes no service config overrides — "
                    "configure each shard server (serve --shard-listen) "
                    "instead (tracing flags are front-local and allowed)"
                )
            self.n_shards = len(attach)
        self.config = config
        self._auto_restart = bool(auto_restart)
        self._restart_limit = int(restart_limit)
        self._restart_wait_s = float(restart_wait_s)
        # per-shard snapshot directories: the restart re-warm reads the
        # dead shard's store, so the store must outlive the shard — a
        # private temp dir unless the config names a durable one
        self._tmpdir = None
        self._snapshot_base: Optional[str] = None
        if self._local:
            if config.snapshot_dir:
                self._snapshot_base = config.snapshot_dir
            else:
                # always provisioned since PR 10: besides the restart
                # re-warm, the elastic paths read it on *any* local
                # fleet — resize hands sessions to their new ring
                # owners from here, and a probe-ejected shard's
                # sessions are adopted from its on-commit snapshots
                self._tmpdir = tempfile.TemporaryDirectory(
                    prefix="repro-shard-snapshots-",
                    ignore_cleanup_errors=True,
                )
                self._snapshot_base = self._tmpdir.name
        # front-side observability: the front originates request traces
        # (shards continue them via the frame's trace context) and keeps
        # its own registry of fleet-supervision metrics; metrics() merges
        # it with every reachable shard's snapshot
        self.tracer = Tracer(
            enabled=config.trace_enabled,
            ring_size=config.trace_ring,
            jsonl_path=config.trace_jsonl,
            sample_rate=config.trace_sample,
        )
        self.registry = MetricsRegistry()
        self._mp_ctx = multiprocessing.get_context()
        self._fleet_lock = threading.Lock()
        self._fleet_cond = threading.Condition(self._fleet_lock)
        self._session_lock = threading.Lock()
        self._session_cond = threading.Condition(self._session_lock)
        self._session_shard: dict[str, int] = {}
        #: opening-graph digest per session opened *through this front* —
        #: what lets a ring change compute a session's new owner.
        #: Sessions discovered via ``list_sessions`` (attach, durable
        #: restore) have no recorded digest and stay sticky unless their
        #: shard leaves the fleet (then they move keyed by session id).
        self._session_digest: dict[str, str] = {}
        #: sessions mid-handoff: routing waits them out (bounded) so an
        #: update can never race the move and land on the losing side
        self._moving: set[str] = set()
        #: serializes admin topology changes (a flag, not a lock held
        #: across the blocking handoff RPCs)
        self._admin_busy = False
        self._closed = False
        #: the routing topology: an explicit epoch-numbered ring instead
        #: of PR 4's ``% N`` (see repro.service.ring for the migration)
        self.ring = HashRing(self.n_shards)
        self._slots: list[_ShardSlot] = [
            _ShardSlot(i, address=None if self._local else attach[i])
            for i in range(self.n_shards)
        ]
        self._probe_stop = threading.Event()
        self._probe_thread: Optional[threading.Thread] = None
        try:
            for slot in self._slots:
                slot.handle = (
                    self._spawn_local(slot.index)
                    if self._local
                    else self._connect_remote(slot)
                )
                slot.state = "up"
            # shards may already hold live sessions — a shard server
            # outliving its previous front, or a local shard restored
            # from a durable snapshot store.  Rebuild the session→shard
            # routing map so those sessions remain addressable through
            # this front instead of answering "unknown session".
            for slot in self._slots:
                for session_id in slot.handle.call("list_sessions"):
                    self._session_shard[session_id] = slot.index
            self._register_metrics()
            if config.probe_interval_s > 0:
                self._probe_thread = threading.Thread(
                    target=self._probe_loop,
                    name="shard-probes",
                    daemon=True,
                )
                self._probe_thread.start()
        except BaseException:
            # a partial fleet must not outlive a failed constructor
            for slot in self._slots:
                if slot.handle is not None:
                    slot.handle.shutdown()
            if self._tmpdir is not None:
                self._tmpdir.cleanup()
            raise

    # ------------------------------------------------------------------
    # fleet plumbing
    # ------------------------------------------------------------------
    def _register_metrics(self) -> None:
        """Front-local metric families (see :mod:`repro.obs`): shard
        supervision gauges and the front tracer's counters.  Per-request
        families come from the shards and are merged in :meth:`metrics`."""
        reg = self.registry

        def shard_up():
            return [
                ({"shard": str(entry["shard"])},
                 1.0 if entry["state"] == "up" else 0.0)
                for entry in self.shard_health()
            ]

        reg.gauge_fn("repro_shard_up", shard_up)

        def ring_epoch():
            return [({}, float(self.ring.epoch))]

        def ring_members():
            return [({}, float(len(self.ring.members)))]

        def ring_shares():
            shares = self.ring.version.shares()
            return [
                ({"shard": str(slot)}, float(share))
                for slot, share in sorted(shares.items())
            ]

        reg.gauge_fn("repro_ring_epoch", ring_epoch)
        reg.gauge_fn("repro_ring_members", ring_members)
        reg.gauge_fn("repro_ring_ownership_ratio", ring_shares)
        for field, metric in (
            ("spans_recorded", "repro_trace_spans_total"),
            ("spans_ingested", "repro_trace_spans_ingested_total"),
            ("sink_errors", "repro_trace_sink_errors_total"),
        ):
            reg.counter_fn(
                metric,
                (lambda f: lambda: [({}, float(self.tracer.counters()[f]))])(
                    field
                ),
            )

    def _shard_config(self, index: int) -> ServiceConfig:
        if self._snapshot_base is None:
            return self.config
        return self.config.with_updates(
            snapshot_dir=os.path.join(self._snapshot_base, f"shard-{index}")
        )

    def _spawn_local(self, index: int, ctx=None) -> _ShardHandle:
        ctx = self._mp_ctx if ctx is None else ctx
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        process = ctx.Process(
            target=_shard_main,
            args=(child_conn, self._shard_config(index)),
            name=f"repro-shard-{index}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        return _ShardHandle(
            index,
            PipeTransport(parent_conn),
            process=process,
            on_death=self._on_shard_death,
            negotiate=self.config.binary_frames,
            ring_epoch=self.ring.epoch,
        )

    def _connect_remote(self, slot: _ShardSlot) -> _ShardHandle:
        try:
            transport = connect_shard(slot.address)
        except OSError as exc:
            raise ShardDiedError(
                f"cannot attach shard {slot.index} at {slot.address}: {exc}"
            ) from exc
        return _ShardHandle(
            slot.index, transport, on_death=self._on_shard_death,
            negotiate=self.config.binary_frames,
            ring_epoch=self.ring.epoch,
        )

    def _on_shard_death(self, handle: _ShardHandle) -> None:
        """Reader-thread callback: a shard's channel just died."""
        with self._fleet_lock:
            if handle.index >= len(self._slots):
                return  # slot retired by a fleet shrink
            slot = self._slots[handle.index]
            if self._closed or slot.handle is not handle:
                return  # stale handle (already replaced) or shutting down
            if slot.state == "removed":
                return  # retired slot: no supervision
            slot.handle = None
            self._begin_restart_locked(slot)
            state = slot.state
        self.registry.inc(
            "repro_shard_deaths_total", shard=str(handle.index)
        )
        _LOG.warning(
            "shard died",
            extra={
                "event": "shard_died",
                "shard": handle.index,
                "next_state": state,
                "transport": "pipe" if self._local else "socket",
            },
        )
        if handle.process is not None:
            handle.process.join(timeout=5.0)

    def _begin_restart_locked(self, slot: _ShardSlot) -> None:
        """Kick off (or give up on) a slot restart; fleet lock held."""
        if (
            self._local
            and self._auto_restart
            and slot.restarts < self._restart_limit
        ):
            slot.state = "restarting"
            slot.restart_thread = threading.Thread(
                target=self._restart_slot,
                args=(slot,),
                name=f"shard-{slot.index}-restart",
                daemon=True,
            )
            slot.restart_thread.start()
        else:
            slot.state = "down"
            self._fleet_cond.notify_all()

    def _restart_slot(self, slot: _ShardSlot) -> None:
        """Supervisor: replace a dead local shard in its own slot.

        The replacement keeps the slot index — digest→shard routing is
        a pure function of (digest, n_shards), so re-routing after a
        restart is deterministic by construction — and its service
        restores the dead shard's snapshot store before the new pipe
        serves a single request.
        """
        try:
            # restart with the *spawn* context: the constructor forks
            # before any caller threads exist, but a supervised restart
            # runs while HTTP handlers, other shard readers, and GA
            # workers are live — forking there can hand the child a
            # lock some other thread held at fork time (import, BLAS,
            # allocator) and hang it.  A spawned child starts clean;
            # the answer bits do not depend on the start method.
            handle = self._spawn_local(
                slot.index, ctx=multiprocessing.get_context("spawn")
            )
        # repro: allow[BROAD-EXCEPT] — a failed restart attempt must never
        # crash the restart thread: mark the slot down so waiters fail fast
        except BaseException as exc:
            with self._fleet_lock:
                slot.state = "down"
                self._fleet_cond.notify_all()
            _LOG.error(
                "shard restart failed",
                extra={
                    "event": "shard_restart_failed",
                    "shard": slot.index,
                    "reason": f"{type(exc).__name__}: {exc}",
                },
            )
            return
        installed = False
        with self._fleet_lock:
            if self._closed:
                slot.state = "down"
            elif not handle.alive:
                # the replacement died before it could be installed (a
                # crash loop: startup OOM, bad snapshot dir, ...).  Its
                # on_death callback saw a foreign handle in the slot and
                # stood down, so re-engage the supervisor here — count
                # the attempt and retry while budget remains, otherwise
                # the slot would wedge as "up" around a corpse.
                slot.restarts += 1
                self._begin_restart_locked(slot)
            else:
                slot.handle = handle
                slot.state = "up"
                slot.restarts += 1
                installed = True
            self._fleet_cond.notify_all()
        if installed:
            self.registry.inc(
                "repro_shard_restarts_total", shard=str(slot.index)
            )
            _LOG.info(
                "shard restarted in place",
                extra={
                    "event": "shard_restarted",
                    "shard": slot.index,
                    "restarts": slot.restarts,
                },
            )
        if self._closed:  # lost the race with close(): tidy up
            handle.shutdown()

    def _shard_handle(self, index: int, wait: bool = True) -> _ShardHandle:
        """The live handle for a slot, waiting out an in-progress
        restart (bounded by ``restart_wait_s``) and lazily reconnecting
        attached shards.  ``wait=False`` never blocks and never
        reconnects: a slot that is not up raises immediately (the
        stats path, which must answer mid-crash)."""
        deadline = time.monotonic() + self._restart_wait_s
        reconnect = None
        with self._fleet_lock:
            while True:
                self._check_open()
                if index >= len(self._slots):
                    raise ShardDiedError(
                        f"shard {index} left the fleet (width "
                        f"{len(self._slots)})"
                    )
                slot = self._slots[index]
                if slot.state == "up" and slot.handle is not None:
                    return slot.handle
                if slot.state == "removed":
                    raise ShardDiedError(
                        f"shard {index} was removed from the fleet"
                    )
                if not wait:
                    raise ShardDiedError(
                        f"shard {index} is {slot.state}"
                    )
                if slot.state in ("restarting", "starting"):
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise ShardDiedError(
                            f"shard {index} still restarting after "
                            f"{self._restart_wait_s:.1f}s"
                        )
                    self._fleet_cond.wait(remaining)
                    continue
                # down
                if not self._local:
                    slot.state = "restarting"  # claim the reconnect
                    reconnect = slot
                    break
                raise ShardDiedError(
                    f"shard {index} is down "
                    f"(after {slot.restarts} restart(s))"
                )
        # remote reconnect, outside the fleet lock
        try:
            handle = self._connect_remote(reconnect)
        except ShardDiedError:
            with self._fleet_lock:
                reconnect.state = "down"
                self._fleet_cond.notify_all()
            raise
        with self._fleet_lock:
            if self._closed:
                handle.shutdown()
                self._check_open()
            if not handle.alive:
                # connection dropped before install (server bounced it):
                # leave the slot down so the next call retries, and fail
                # this caller instead of installing a corpse as "up"
                reconnect.state = "down"
                self._fleet_cond.notify_all()
                raise ShardDiedError(
                    f"shard {index} at {reconnect.address} dropped the "
                    "connection during attach"
                )
            reconnect.handle = handle
            reconnect.state = "up"
            reconnect.restarts += 1
            self._fleet_cond.notify_all()
        self.registry.inc(
            "repro_shard_reattach_total", shard=str(index)
        )
        _LOG.info(
            "shard re-attached",
            extra={
                "event": "shard_reattached",
                "shard": index,
                "address": reconnect.address,
            },
        )
        return handle

    def _call(self, shard: int, verb: str, *args):
        return self._shard_handle(shard).call(verb, *args)

    def _traced_call(self, parent, shard: int, verb: str, *args):
        """One shard RPC under a ``shard.call`` hop span.  The hop's
        context rides the request frame, the shard's collected subtree
        rides back in ``result.spans`` and is ingested here — that is
        the whole cross-process stitch.  A failed attempt closes the hop
        with its error; a caller's retry under the same parent appears
        as a sibling hop of the same trace."""
        hop = self.tracer.start(
            "shard.call", parent=parent,
            attrs={"shard": shard, "verb": verb},
        )
        tc = hop.context() if hop else None
        try:
            result = self._shard_handle(shard).call(verb, *args, tc=tc)
        except BaseException as exc:
            hop.fail(exc)
            hop.close()
            if isinstance(exc, ShardDiedError):
                _LOG.warning(
                    "shard call failed fast",
                    extra={
                        "event": "shard_call_failed",
                        "shard": shard,
                        "verb": verb,
                        "trace_id": hop.trace_id,
                        "reason": str(exc),
                    },
                )
            raise
        hop.close()
        spans = getattr(result, "spans", None)
        if spans:
            self.tracer.ingest(spans)
        return result

    def shard_health(self) -> list[dict]:
        """Per-shard supervision state (also embedded in :meth:`stats`).

        Since PR 10 each row also carries the slot's ring membership and
        the outcome of the front's health probes: ``probe_failures``
        counts failed probes over the slot's lifetime, and once a probe
        has run, ``last_probe`` (wall-clock seconds) and ``probe_ok``
        report the most recent verdict."""
        members = set(self.ring.members)
        with self._fleet_lock:
            return [
                {
                    "shard": slot.index,
                    "state": slot.state,
                    "restarts": slot.restarts,
                    "in_ring": slot.index in members,
                    "probe_failures": slot.probe_failures,
                    "transport": "pipe" if self._local else "socket",
                    **(
                        {"address": slot.address}
                        if slot.address is not None
                        else {}
                    ),
                    **(
                        {
                            "last_probe": slot.last_probe,
                            "probe_ok": slot.probe_ok,
                        }
                        if slot.last_probe is not None
                        else {}
                    ),
                }
                for slot in self._slots
            ]

    # ------------------------------------------------------------------
    def shard_of(self, graph: CSRGraph) -> int:
        """The shard a graph's traffic routes to (stable across runs
        *and* across shard restarts, for a given ring epoch)."""
        return self.ring.owner(graph_digest(graph))

    def _mark(self, result: JobResult, shard: int) -> JobResult:
        result.shard = shard
        return result

    # -- verbs ---------------------------------------------------------
    def submit(self, request) -> JobResult:
        self._check_open()
        shard = self.shard_of(request.graph)
        span = self.tracer.start(
            "front.submit", parent=request.trace,
            attrs={"endpoint": "partition", "shard": shard},
        )
        with span:
            result = self._traced_call(span, shard, "submit", request)
        return self._mark(result, shard)

    def submit_many(self, requests: Sequence) -> list[JobResult]:
        """Batch submission: the batch splits by shard, each sub-batch
        keeps its relative order (so per-shard coalescing behaves as in
        a single process), and sub-batches run concurrently."""
        self._check_open()
        by_shard: dict[int, list[int]] = {}
        for i, request in enumerate(requests):
            by_shard.setdefault(self.shard_of(request.graph), []).append(i)
        results: list[Optional[JobResult]] = [None] * len(requests)

        span = self.tracer.start(
            "front.submit_many",
            attrs={"endpoint": "refine_batch", "n_requests": len(requests)},
        )

        def run_shard(shard: int, members: list[int]) -> None:
            batch = [requests[i] for i in members]
            out = self._traced_call(span, shard, "submit_many", batch)
            for i, result in zip(members, out):
                results[i] = self._mark(result, shard)

        with span:
            if len(by_shard) == 1:
                ((shard, members),) = by_shard.items()
                run_shard(shard, members)
            elif by_shard:
                with ThreadPoolExecutor(max_workers=len(by_shard)) as fan:
                    futures = [
                        fan.submit(run_shard, shard, members)
                        for shard, members in by_shard.items()
                    ]
                    for future in futures:
                        future.result()
        return results  # type: ignore[return-value]

    def open_session(self, graph: CSRGraph, n_parts: int, **kwargs) -> JobResult:
        self._check_open()
        digest = graph_digest(graph)
        shard = self.ring.owner(digest)
        span = self.tracer.start(
            "front.open_session", parent=kwargs.get("trace"),
            attrs={"endpoint": "open_session", "shard": shard},
        )
        with span:
            result = self._traced_call(
                span, shard, "open_session", graph, int(n_parts), kwargs
            )
            span.set(session_id=result.session_id)
        with self._session_lock:
            self._session_shard[result.session_id] = shard
            # remember the opening digest: a later ring change uses it
            # to compute the session's new owner for the warm handoff
            self._session_digest[result.session_id] = digest
        self.registry.inc("repro_sessions_routed_total")
        return self._mark(result, shard)

    def update_session(self, request: UpdateRequest) -> JobResult:
        self._check_open()
        shard = self._session_route(request.session_id)
        span = self.tracer.start(
            "front.update_session", parent=request.trace,
            attrs={"endpoint": "update_session", "shard": shard,
                   "session_id": request.session_id},
        )
        with span:
            result = self._traced_call(
                span, shard, "update_session", request
            )
        return self._mark(result, shard)

    def close_session(self, session_id: str) -> dict:
        self._check_open()
        shard = self._session_route(session_id)
        summary = self._call(shard, "close_session", session_id)
        with self._session_lock:
            self._session_shard.pop(session_id, None)
            self._session_digest.pop(session_id, None)
        return summary

    def stats(self) -> dict:
        self._check_open()
        with self._session_lock:
            routed = len(self._session_shard)
        health = self.shard_health()
        shards = []
        for entry in health:
            # never enter the restart wait (or a reconnect) from stats:
            # an operator polling the front mid-crash must get an
            # answer now, with the affected shard reported unavailable,
            # not a response stalled for up to restart_wait_s per shard
            try:
                handle = self._shard_handle(entry["shard"], wait=False)
                shards.append(handle.call("stats"))
            except ShardDiedError as exc:
                shards.append({"unavailable": str(exc)})
        return {
            "n_shards": self.n_shards,
            "sessions_routed": routed,
            "ring": self.ring.describe(),
            "health": health,
            "shards": shards,
            # fleet aggregate: before this existed, callers had to sum
            # the raw per-shard rows themselves and quietly lost any key
            # not present on every row (mixed configs, unavailable
            # shards) — the merge rules live in _merge_stats
            "totals": _merge_stats(shards),
        }

    def metrics(self) -> dict:
        """One :data:`~repro.obs.metrics.METRICS_SCHEMA` snapshot for
        the fleet: every reachable shard's registry merged (counters and
        histogram buckets sum) with the front's own supervision metrics,
        plus the per-endpoint ``latency_ms`` percentile digest.  Shards
        that are down mid-crash are skipped and counted in
        ``shards_reporting``."""
        self._check_open()
        snapshots = []
        for entry in self.shard_health():
            try:
                handle = self._shard_handle(entry["shard"], wait=False)
                snapshots.append(handle.call("metrics"))
            except ShardDiedError:
                continue
        reporting = len(snapshots)
        snapshots.append(self.registry.snapshot())
        merged = merge_snapshots(snapshots)
        digest: dict = {}
        for hist in merged["histograms"]:
            if hist["name"] != "repro_request_latency_ms":
                continue
            endpoint = hist["labels"].get("endpoint", "")
            digest[endpoint] = {
                "count": hist["count"],
                "p50_ms": round(histogram_percentile(hist, 0.50), 3),
                "p95_ms": round(histogram_percentile(hist, 0.95), 3),
                "p99_ms": round(histogram_percentile(hist, 0.99), 3),
            }
        merged["latency_ms"] = digest
        merged["n_shards"] = self.n_shards
        merged["shards_reporting"] = reporting
        return merged

    def _session_route(self, session_id: str) -> int:
        deadline = time.monotonic() + self._restart_wait_s
        with self._session_lock:
            # a session mid-handoff has two copies in flight; routing
            # waits the move out (bounded) so the request lands on
            # exactly one owner — never on the losing side of the move
            while session_id in self._moving:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise ShardDiedError(
                        f"session {session_id!r} still handing off after "
                        f"{self._restart_wait_s:.1f}s"
                    )
                self._session_cond.wait(remaining)
            shard = self._session_shard.get(session_id)
        if shard is None:
            raise ServiceError(f"unknown session {session_id!r}")
        return shard

    # -- health probes (PR 10) -----------------------------------------
    def _probe_loop(self) -> None:
        interval = self.config.probe_interval_s
        while not self._probe_stop.wait(interval):
            if self._closed:
                break
            try:
                self.probe_shards()
            # repro: allow[BROAD-EXCEPT] — the probe loop must outlive any
            # single failed pass; the next tick retries
            except Exception as exc:
                _LOG.warning(
                    "shard probe pass failed",
                    extra={
                        "event": "probe_pass_failed",
                        "reason": f"{type(exc).__name__}: {exc}",
                    },
                )

    def probe_shards(self) -> list[dict]:
        """One health-probe pass over the fleet (the ``probe_interval_s``
        loop calls this; tests and operators may call it directly).

        Each live shard answers a ``ping`` on its control lane — a
        pre-ring peer answers it with an unknown-verb error, which still
        proves liveness.  A shard that cannot answer is ejected from the
        ring (its keyspace reroutes to the survivors under a new epoch,
        and its sessions are adopted from their on-commit snapshots); a
        probe that finds an ejected shard answering again re-admits it
        and re-warms its regained keyspace.  A down *attached* shard is
        reconnected here instead of lazily on the next caller.  Slots
        mid-restart get no verdict — the supervisor owns them.  Returns
        the post-pass :meth:`shard_health` rows.
        """
        with self._fleet_lock:
            width = len(self._slots)
        for index in range(width):
            with self._fleet_lock:
                if self._closed or index >= len(self._slots):
                    break
                slot = self._slots[index]
                state, handle = slot.state, slot.handle
            if state == "removed":
                continue
            verdict: Optional[bool] = None
            if state == "up" and handle is not None:
                try:
                    handle.call("ping")
                    verdict = True
                except ServiceError:
                    verdict = True  # pre-ring peer: it answered, it lives
                except ShardDiedError:
                    verdict = False
            elif state == "down":
                if not self._local:
                    # probe-driven reattach: recover the remote shard
                    # now instead of taxing the next caller with it
                    try:
                        self._shard_handle(index)
                        verdict = True
                    except (ShardDiedError, ServiceError):
                        verdict = False
                else:
                    verdict = False
            # "starting"/"restarting": in flux — no verdict this pass
            if verdict is None:
                continue
            now = time.time()
            with self._fleet_lock:
                if index < len(self._slots):
                    probed = self._slots[index]
                    probed.last_probe = now
                    probed.probe_ok = verdict
                    if not verdict:
                        probed.probe_failures += 1
            if verdict:
                self._readmit_slot(index)
            else:
                self.registry.inc(
                    "repro_shard_probe_failures_total", shard=str(index)
                )
                self._eject_slot(index, reason="probe")
        return self.shard_health()

    def _eject_slot(self, index: int, reason: str) -> bool:
        """Take a slot out of the ring (new epoch; its keyspace reroutes
        to the surviving members).  Idempotent; refuses to empty the
        ring — with one member left, ejecting it would route nothing."""
        with self._fleet_lock:
            if self._closed:
                return False
            members = self.ring.members
            if index not in members or len(members) <= 1:
                return False
            version = self.ring.eject(index)
        self.registry.inc("repro_ring_changes_total")
        self.registry.inc("repro_shard_ejections_total", shard=str(index))
        _LOG.warning(
            "shard ejected from ring",
            extra={
                "event": "ring_eject",
                "shard": index,
                "epoch": version.epoch,
                "reason": reason,
            },
        )
        # the ejected shard's sessions keep answering: every committed
        # epoch is in its on-commit snapshot store, so the new ring
        # owners adopt them from there (degraded, still bit-identical)
        self._rebalance_sessions(dead={index})
        return True

    def _readmit_slot(self, index: int) -> bool:
        """Put a recovered slot back in the ring and re-warm it for the
        keyspace it regains.  Idempotent (a healthy member is a no-op,
        which is what every successful probe of it reports)."""
        with self._fleet_lock:
            if self._closed or index >= len(self._slots):
                return False
            slot = self._slots[index]
            if slot.state != "up" or index in self.ring.members:
                return False
            version = self.ring.readmit(index)
        self.registry.inc("repro_ring_changes_total")
        self.registry.inc("repro_shard_readmissions_total", shard=str(index))
        _LOG.info(
            "shard readmitted to ring",
            extra={
                "event": "ring_readmit",
                "shard": index,
                "epoch": version.epoch,
            },
        )
        self._warm_slot(index)
        return True

    # -- elastic fleet admin (PR 10) -----------------------------------
    def ring_admin(
        self,
        action: str,
        n_shards: Optional[int] = None,
        shard: Optional[int] = None,
    ) -> dict:
        """The ``/v1/admin/ring`` verbs (also the ``ring`` CLI command):

        ``status``
            The ring descriptor plus :meth:`shard_health`.
        ``resize`` (``n_shards``) / ``add_shard`` / ``remove_shard``
            Change the width of a *local* fleet under traffic (see
            :meth:`resize`, :meth:`remove_shard`).
        ``eject`` / ``readmit`` (``shard``)
            Membership-only changes — what the health probes do
            automatically, exposed for operators (and the only resize
            lever an attached fleet has: its width is the address list).
        """
        self._check_open()
        action = str(action)
        if action == "status":
            return self.ring_status()
        if action == "resize":
            if n_shards is None:
                raise ServiceError("ring resize needs n_shards")
            return self.resize(n_shards)
        if action in ("add", "add_shard"):
            return self.add_shard()
        if action in ("remove", "remove_shard"):
            if shard is None:
                raise ServiceError("ring remove_shard needs shard")
            return self.remove_shard(shard)
        if action in ("eject", "readmit"):
            if shard is None:
                raise ServiceError(f"ring {action} needs shard")
            index = int(shard)
            with self._fleet_lock:
                if not 0 <= index < len(self._slots):
                    raise ServiceError(
                        f"no shard {index} (fleet width {len(self._slots)})"
                    )
            if action == "eject":
                changed = self._eject_slot(index, reason="admin")
            else:
                try:
                    self._shard_handle(index)  # reconnect/wait first
                except ShardDiedError as exc:
                    raise ServiceError(
                        f"cannot readmit shard {index}: {exc}"
                    ) from exc
                changed = self._readmit_slot(index)
            out = self.ring_status()
            out["action"] = action
            out["changed"] = changed
            return out
        raise ServiceError(
            f"unknown ring action {action!r} (expected status, resize, "
            "add_shard, remove_shard, eject, or readmit)"
        )

    def ring_status(self) -> dict:
        return {"ring": self.ring.describe(), "health": self.shard_health()}

    def resize(self, n_shards: int) -> dict:
        """Grow or shrink a local fleet to ``n_shards`` slots, live.

        Growing spawns the new shard workers, bumps the ring epoch (the
        remap moves only the minimal ~``(n-current)/n`` share of the
        keyspace), hands sessions whose owner changed to their new
        shards warm (drain-snapshot → adopt → release), and re-warms
        every member's newly owned keys from the other shards' result
        journals.  Shrinking is the mirror image: the leaving slots'
        sessions and journals are handed to the survivors before their
        workers shut down.  Serialized against other admin operations;
        answers under the new topology are bit-identical to the old one
        (same code, same seeds — only *where* is different)."""
        if not self._local:
            raise ServiceError(
                "resize needs local shards — an attached fleet's width is "
                "its address list; use eject/readmit for membership"
            )
        n = int(n_shards)
        if n < 1:
            raise ServiceError(f"n_shards must be >= 1, got {n}")
        self._admin_claim()
        try:
            current = len(self._slots)
            if n == current:
                out = self.ring_status()
                out["action"] = "resize"
                out["changed"] = False
                return out
            summary = self._grow(n) if n > current else self._shrink(n)
            summary["action"] = "resize"
            return summary
        finally:
            self._admin_release()

    def add_shard(self) -> dict:
        """Grow the fleet by one slot (``resize(width + 1)``)."""
        return self.resize(len(self._slots) + 1)

    def remove_shard(self, index: int) -> dict:
        """Retire one slot permanently: hand its sessions to the ring
        survivors, eject it, and shut its worker down.  Unlike a probe
        eject, a removed slot is never re-admitted (state ``removed``;
        the fleet width keeps counting it so slot indices stay stable)."""
        index = int(index)
        self._admin_claim()
        try:
            with self._fleet_lock:
                if not 0 <= index < len(self._slots):
                    raise ServiceError(
                        f"no shard {index} (fleet width {len(self._slots)})"
                    )
                slot = self._slots[index]
                if slot.state == "removed":
                    raise ServiceError(f"shard {index} was already removed")
                alive = slot.state == "up"
                version = self.ring.eject(index)  # raises on last member
            self.registry.inc("repro_ring_changes_total")
            self.registry.inc(
                "repro_shard_ejections_total", shard=str(index)
            )
            _LOG.info(
                "shard leaving fleet",
                extra={
                    "event": "ring_remove",
                    "shard": index,
                    "epoch": version.epoch,
                },
            )
            if alive:
                try:
                    self._call(index, "prepare_handoff", None)
                except (ShardDiedError, ServiceError):
                    pass
            warmed = self._warm_members()
            moved = self._rebalance_sessions(
                force={index}, dead=set() if alive else {index}
            )
            with self._fleet_lock:
                handle = slot.handle
                slot.handle = None
                slot.state = "removed"
                self._fleet_cond.notify_all()
            if handle is not None:
                handle.closing = True
                handle.shutdown()
            return {
                "action": "remove_shard",
                "shard": index,
                "changed": True,
                "sessions_moved": moved,
                "results_warmed": warmed,
                "ring": self.ring.describe(),
            }
        finally:
            self._admin_release()

    def _admin_claim(self) -> None:
        """Serialize topology changes with a flag, not a held lock — a
        resize spends seconds in blocking shard RPCs, and holding a lock
        across those would both stall the fleet and trip the lock-order
        analysis (LOCK-HELD-BLOCKING) for no benefit."""
        with self._fleet_lock:
            self._check_open()
            if self._admin_busy:
                raise ServiceError(
                    "another ring admin operation is in progress"
                )
            self._admin_busy = True

    def _admin_release(self) -> None:
        with self._fleet_lock:
            self._admin_busy = False

    def _grow(self, n: int) -> dict:
        current = len(self._slots)
        spawned = list(range(current, n))
        failed: list[int] = []
        # spawn context, not fork: caller threads are live (same
        # reasoning as _restart_slot); answer bits do not depend on it
        ctx = multiprocessing.get_context("spawn")
        with self._fleet_lock:
            for index in spawned:
                self._slots.append(_ShardSlot(index))
        for index in spawned:
            try:
                handle = self._spawn_local(index, ctx=ctx)
            # repro: allow[BROAD-EXCEPT] — one slot failing to spawn must
            # not abort the grow: it is marked down and left out of the ring
            except Exception as exc:
                failed.append(index)
                with self._fleet_lock:
                    self._slots[index].state = "down"
                    self._fleet_cond.notify_all()
                _LOG.error(
                    "new shard failed to spawn",
                    extra={
                        "event": "shard_spawn_failed",
                        "shard": index,
                        "reason": f"{type(exc).__name__}: {exc}",
                    },
                )
                continue
            # a durable snapshot dir may hand the new slot old sessions
            sessions: list = []
            try:
                sessions = handle.call("list_sessions")
            except (ShardDiedError, ServiceError):
                pass
            with self._fleet_lock:
                slot = self._slots[index]
                slot.handle = handle
                slot.state = "up"
                self._fleet_cond.notify_all()
            with self._session_lock:
                for session_id in sessions:
                    self._session_shard.setdefault(session_id, index)
        self._flush_members()  # complete journals before anyone warms
        with self._fleet_lock:
            version = self.ring.resize(n)
            for index in failed:
                try:
                    version = self.ring.eject(index)
                except ServiceError:
                    pass
            self.n_shards = n
        self.registry.inc("repro_ring_changes_total")
        _LOG.info(
            "fleet grown",
            extra={
                "event": "ring_resize",
                "width": n,
                "epoch": version.epoch,
            },
        )
        warmed = self._warm_members()
        moved = self._rebalance_sessions()
        return {
            "ring": self.ring.describe(),
            "changed": True,
            "spawned": spawned,
            "failed": failed,
            "sessions_moved": moved,
            "results_warmed": warmed,
        }

    def _shrink(self, n: int) -> dict:
        current = len(self._slots)
        leaving = list(range(n, current))
        self._flush_members()  # leaving journals must be complete
        with self._fleet_lock:
            version = self.ring.resize(n)
            self.n_shards = n
            dead = {i for i in leaving if self._slots[i].state != "up"}
        self.registry.inc("repro_ring_changes_total")
        _LOG.info(
            "fleet shrinking",
            extra={
                "event": "ring_resize",
                "width": n,
                "epoch": version.epoch,
            },
        )
        warmed = self._warm_members()
        moved = self._rebalance_sessions(force=set(leaving), dead=dead)
        with self._fleet_lock:
            retired = self._slots[n:]
            del self._slots[n:]
            self._fleet_cond.notify_all()
        for slot in retired:
            slot.state = "removed"
            handle = slot.handle
            slot.handle = None
            if handle is not None:
                handle.closing = True
                handle.shutdown()
        return {
            "ring": self.ring.describe(),
            "changed": True,
            "retired": leaving,
            "sessions_moved": moved,
            "results_warmed": warmed,
        }

    # -- handoff + warm plumbing (PR 10) -------------------------------
    def _shard_dir(self, index: int) -> Optional[str]:
        if self._snapshot_base is None:
            return None
        return os.path.join(self._snapshot_base, f"shard-{index}")

    def _flush_members(self) -> None:
        """Flush every live member's snapshots + result journal (the
        ``prepare_handoff`` verb with no session list) so adopters and
        warmers read complete state.  Best-effort: a dead or pre-ring
        member is skipped — its on-commit snapshots still serve."""
        for index in list(self.ring.members):
            try:
                self._shard_handle(index, wait=False).call(
                    "prepare_handoff", None
                )
            except (ShardDiedError, ServiceError):
                continue

    def _warm_members(self) -> int:
        warmed = 0
        for index in list(self.ring.members):
            warmed += self._warm_slot(index)
        return warmed

    def _warm_slot(self, index: int) -> int:
        """Re-warm one member from the *other* shards' result journals,
        filtered to the keys the current ring assigns it — the step that
        keeps the warm-hit rate intact across a remap.  Best-effort: a
        pre-ring shard rejects the verb (unknown) and simply stays cold
        for its newly owned keys."""
        if self._snapshot_base is None:
            return 0
        with self._fleet_lock:
            width = len(self._slots)
        dirs = [
            d
            for j in range(width)
            if j != index
            for d in [self._shard_dir(j)]
            if d is not None and os.path.isdir(d)
        ]
        if not dirs:
            return 0
        try:
            return int(
                self._shard_handle(index, wait=False).call(
                    "warm_from", dirs, self.ring.describe(), index
                )
            )
        except (ShardDiedError, ServiceError):
            return 0

    def _rebalance_sessions(
        self,
        force: frozenset = frozenset(),
        dead: frozenset = frozenset(),
    ) -> list[str]:
        """Move sessions to their ring owners after a topology change.

        Sessions opened through this front move when the ring says their
        opening digest belongs elsewhere; sessions *discovered* (attach,
        durable restore — no recorded digest) stay sticky unless their
        shard is in ``force`` (leaving the fleet), in which case they
        move keyed by session id.  ``dead`` shards get no drain/release
        RPCs — their on-commit snapshots are adopted as-is."""
        if self._snapshot_base is None or not self._local:
            return []
        with self._session_lock:
            routed = dict(self._session_shard)
            digests = dict(self._session_digest)
        moved = []
        for session_id, current in routed.items():
            key = digests.get(session_id)
            if key is None:
                if current not in force and current not in dead:
                    continue
                key = session_id
            target = self.ring.owner(key)
            if target == current:
                continue
            if self._move_session(
                session_id, current, target, prepare=current not in dead
            ):
                moved.append(session_id)
        return moved

    def _move_session(
        self, session_id: str, src: int, dst: int, prepare: bool = True
    ) -> bool:
        """Hand one session from ``src`` to ``dst`` warm: drain-snapshot
        on the old owner (unless it is dead), adopt on the new owner
        from the old owner's store, then release the old copy.  Routing
        for the session waits the move out (``_moving``), so no request
        can land on the losing side; the adopted partitioner resumes at
        the last committed epoch, so retried updates are bit-identical."""
        src_dir = self._shard_dir(src)
        if src_dir is None:
            return False
        with self._session_lock:
            if (
                self._session_shard.get(session_id) != src
                or session_id in self._moving
            ):
                return False
            self._moving.add(session_id)
        try:
            if prepare:
                try:
                    self._call(src, "prepare_handoff", [session_id])
                except (ShardDiedError, ServiceError) as exc:
                    # fall back to the on-commit snapshot — every
                    # committed epoch is already in the store
                    _LOG.warning(
                        "handoff drain failed; adopting on-commit state",
                        extra={
                            "event": "handoff_drain_failed",
                            "session_id": session_id,
                            "shard": src,
                            "reason": str(exc),
                        },
                    )
            try:
                adopted = self._call(
                    dst, "adopt_sessions", src_dir, [session_id]
                )
            except (ShardDiedError, ServiceError) as exc:
                _LOG.warning(
                    "session adoption failed; session stays put",
                    extra={
                        "event": "handoff_adopt_failed",
                        "session_id": session_id,
                        "shard": dst,
                        "reason": str(exc),
                    },
                )
                return False
            if session_id not in (adopted or []):
                return False
            with self._session_lock:
                self._session_shard[session_id] = dst
            released = False
            if prepare:
                try:
                    self._call(src, "release_sessions", [session_id])
                    released = True
                except (ShardDiedError, ServiceError):
                    pass
            if not released:
                # the old owner could not drop its copy (dead, or a
                # pre-ring peer): delete its snapshot front-side so a
                # restart there cannot resurrect a second live copy
                self._forget_snapshot(src_dir, session_id)
            self.registry.inc("repro_sessions_handed_off_total")
            _LOG.info(
                "session handed off",
                extra={
                    "event": "session_handoff",
                    "session_id": session_id,
                    "from_shard": src,
                    "to_shard": dst,
                    "epoch": self.ring.epoch,
                },
            )
            return True
        finally:
            with self._session_lock:
                self._moving.discard(session_id)
                self._session_cond.notify_all()

    @staticmethod
    def _forget_snapshot(src_dir: str, session_id: str) -> None:
        from .persistence import SnapshotStore

        try:
            SnapshotStore(src_dir).delete(session_id)
        except (OSError, ServiceError):
            pass

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        self._probe_stop.set()
        with self._fleet_lock:
            if self._closed:
                return
            self._closed = True
            handles = [s.handle for s in self._slots if s.handle is not None]
            for handle in handles:
                handle.closing = True
            restarts = [
                s.restart_thread
                for s in self._slots
                if s.restart_thread is not None
            ]
            self._fleet_cond.notify_all()
        # wait out in-flight restarts first: a replacement shard spawned
        # mid-close must be fully shut down (the restart thread does it
        # once it sees _closed) before the snapshot tempdir is removed,
        # or the child would recreate directories under our feet
        if self._probe_thread is not None:
            self._probe_thread.join(timeout=10.0)
        for thread in restarts:
            thread.join(timeout=60.0)
        for handle in handles:
            handle.shutdown()
        if self._tmpdir is not None:
            self._tmpdir.cleanup()
        self.tracer.close()

    def __enter__(self) -> "ShardedPartitionService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise ServiceError("service is closed")
