"""Digest-sharded multi-process serving.

One Python process can only scale the serving tier so far: worker
threads overlap the GIL-releasing kernels, but every request still
shares one interpreter.  :class:`ShardedPartitionService` is the
shared-nothing answer — ``N`` worker *processes*, each running a full,
independent :class:`~repro.service.core.PartitionService` (its own
caches, pinned executors, and sessions), behind a thin front that
routes every request by **graph digest**::

    request ──digest──→ shard = blake2b(digest) % N ──pipe──→ worker
                                                       process N

Routing by content digest is what keeps the per-shard caches as
effective as a single process's: a given graph always lands on the
same shard, so its interned CSR build, cached results, and warm seeds
concentrate there instead of being diluted across workers.  Sessions
are routed by the digest of their opening graph and then stick to
their shard by session id.

Transport is one duplex :func:`multiprocessing.Pipe` per shard with
request multiplexing: the front tags each request with a sequence id,
a per-shard reader thread dispatches replies to waiting callers, and
the shard worker executes requests on a small thread pool over its
service — so concurrent requests to the *same* shard overlap exactly
as they would against a single-process service, and requests to
different shards run on different cores outright.

Determinism: every shard executes the identical
:class:`PartitionService` code, so sharded answers are bit-identical
to single-process answers for the same requests — the shard layout
changes which process computes, never what is computed (enforced by
``tests/test_sharding.py`` and gated in CI by ``bench_service.py``).

Composition note: shard workers run with ``process_workers=0`` — a
shard *is* a process, and daemonic shard workers may not spawn child
processes.  The process-pool execution lane
(:mod:`repro.service.procexec`) is the single-process alternative;
sharding is the multi-process one.
"""

from __future__ import annotations

import hashlib
import itertools
import multiprocessing
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Optional, Sequence

from ..errors import ServiceError
from ..graphs.csr import CSRGraph
from .cache import graph_digest
from .config import ServiceConfig
from .models import JobResult, UpdateRequest

__all__ = ["ShardedPartitionService", "shard_for_digest"]


def shard_for_digest(digest: str, n_shards: int) -> int:
    """Stable digest → shard index (same mapping in every process and
    across runs: a pure function of the content digest)."""
    if n_shards < 1:
        raise ServiceError(f"n_shards must be >= 1, got {n_shards}")
    raw = hashlib.blake2b(digest.encode(), digest_size=8).digest()
    return int.from_bytes(raw, "big") % n_shards


# ----------------------------------------------------------------------
# shard worker process
# ----------------------------------------------------------------------

_SHUTDOWN = "__shutdown__"


def _safe_exception(exc: BaseException) -> Exception:
    """An exception that survives pickling (fallback: ServiceError)."""
    import pickle

    try:
        pickle.loads(pickle.dumps(exc))
        return exc if isinstance(exc, Exception) else ServiceError(repr(exc))
    except Exception:
        return ServiceError(f"{type(exc).__name__}: {exc}")


def _shard_main(conn, config: ServiceConfig) -> None:  # pragma: no cover
    """Entry point of one shard worker process.

    Runs a full PartitionService and answers ``(req_id, verb, args)``
    messages with ``(req_id, ok, payload)``; requests execute on a
    small thread pool so same-shard traffic overlaps.  (Covered by the
    subprocess-driving tests in ``tests/test_sharding.py``, which
    coverage cannot see.)
    """
    from .core import PartitionService

    service = PartitionService(config=config)
    send_lock = threading.Lock()

    def handle(req_id: int, verb: str, args: tuple) -> None:
        try:
            if verb == "submit":
                out = service.submit(args[0])
            elif verb == "submit_many":
                out = service.submit_many(args[0])
            elif verb == "open_session":
                out = service.open_session(args[0], args[1], **args[2])
            elif verb == "update_session":
                out = service.update_session(args[0])
            elif verb == "close_session":
                out = service.close_session(args[0])
            elif verb == "stats":
                out = service.stats()
            else:
                raise ServiceError(f"unknown shard verb {verb!r}")
            reply = (req_id, True, out)
        except BaseException as exc:
            reply = (req_id, False, _safe_exception(exc))
        with send_lock:
            try:
                conn.send(reply)
            except Exception as exc:
                # a reply that cannot serialize must still be answered,
                # or the parent's call would wait forever — fall back to
                # an error reply; if even that fails the pipe is dead
                # and the parent's reader EOF flushes every waiter
                try:
                    conn.send((
                        req_id,
                        False,
                        ServiceError(f"shard reply failed to send: {exc!r}"),
                    ))
                except Exception:
                    pass

    # two lanes: data verbs (GA work, may block for seconds) and
    # control verbs (stats / close_session, expected to answer fast).
    # A shared pool would let a burst of long submits queue a stats or
    # close behind GA runs — the very blocking the overlapped-session
    # work removed from the single-process path.
    pool = ThreadPoolExecutor(
        max_workers=config.n_workers + 2, thread_name_prefix="shard-req"
    )
    control = ThreadPoolExecutor(
        max_workers=2, thread_name_prefix="shard-ctl"
    )
    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break  # parent died: exit with it
            if msg == _SHUTDOWN:
                break
            req_id, verb, args = msg
            lane = control if verb in ("stats", "close_session") else pool
            lane.submit(handle, req_id, verb, args)
    finally:
        pool.shutdown(wait=True)
        control.shutdown(wait=True)
        service.close()
        try:
            conn.close()
        except Exception:
            pass


# ----------------------------------------------------------------------
# parent-side shard handle
# ----------------------------------------------------------------------

class _Reply:
    __slots__ = ("done", "ok", "payload")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.ok = False
        self.payload = None


class _ShardHandle:
    """Parent-side endpoint of one shard: multiplexed request/reply."""

    def __init__(self, index: int, process, conn) -> None:
        self.index = index
        self.process = process
        self.conn = conn
        self._send_lock = threading.Lock()
        self._pending_lock = threading.Lock()
        self._pending: dict[int, _Reply] = {}
        self._counter = itertools.count()
        self._alive = True
        self._reader = threading.Thread(
            target=self._read_loop, name=f"shard-{index}-reader", daemon=True
        )
        self._reader.start()

    def call(self, verb: str, *args):
        reply = _Reply()
        req_id = next(self._counter)
        with self._pending_lock:
            if not self._alive:
                raise ServiceError(f"shard {self.index} is not running")
            self._pending[req_id] = reply
        try:
            with self._send_lock:
                self.conn.send((req_id, verb, args))
        except (OSError, ValueError) as exc:
            with self._pending_lock:
                self._pending.pop(req_id, None)
            raise ServiceError(f"shard {self.index} unreachable: {exc}") from exc
        reply.done.wait()
        if not reply.ok:
            raise reply.payload
        return reply.payload

    def _read_loop(self) -> None:
        try:
            while True:
                req_id, ok, payload = self.conn.recv()
                with self._pending_lock:
                    reply = self._pending.pop(req_id, None)
                if reply is None:
                    continue  # response to an abandoned request
                reply.ok = ok
                reply.payload = payload
                reply.done.set()
        except (EOFError, OSError):
            pass
        finally:
            with self._pending_lock:
                self._alive = False
                pending, self._pending = self._pending, {}
            for reply in pending.values():
                reply.ok = False
                reply.payload = ServiceError(
                    f"shard {self.index} exited with requests in flight"
                )
                reply.done.set()

    def shutdown(self, timeout: float = 10.0) -> None:
        try:
            with self._send_lock:
                self.conn.send(_SHUTDOWN)
        except (OSError, ValueError):
            pass
        self.process.join(timeout)
        if self.process.is_alive():  # pragma: no cover - stuck worker
            self.process.terminate()
            self.process.join(timeout)
        try:
            self.conn.close()
        except Exception:
            pass


# ----------------------------------------------------------------------
# the sharded front
# ----------------------------------------------------------------------

class ShardedPartitionService:
    """Digest-sharded, shared-nothing serving front.

    Implements the same verbs as :class:`PartitionService` (``submit``,
    ``submit_many``, ``open_session``, ``update_session``,
    ``close_session``, ``stats``, ``close``), so the HTTP frontend and
    :class:`~repro.service.client.ServiceClient` drive either
    interchangeably.  Keyword arguments are
    :class:`~repro.service.config.ServiceConfig` overrides applied to
    every shard.
    """

    def __init__(
        self,
        n_shards: int = 2,
        config: Optional[ServiceConfig] = None,
        **overrides,
    ) -> None:
        if n_shards < 1:
            raise ServiceError(f"n_shards must be >= 1, got {n_shards}")
        if config is None:
            config = ServiceConfig(**overrides)
        elif overrides:
            config = config.with_updates(**overrides)
        if config.process_workers:
            # a shard is already a process; daemonic shard workers may
            # not spawn children (see the module docstring)
            config = config.with_updates(process_workers=0)
        self.n_shards = int(n_shards)
        self.config = config
        ctx = multiprocessing.get_context()
        self._shards: list[_ShardHandle] = []
        try:
            for i in range(self.n_shards):
                parent_conn, child_conn = ctx.Pipe(duplex=True)
                process = ctx.Process(
                    target=_shard_main,
                    args=(child_conn, config),
                    name=f"repro-shard-{i}",
                    daemon=True,
                )
                process.start()
                child_conn.close()
                self._shards.append(_ShardHandle(i, process, parent_conn))
        except BaseException:
            # a partial fleet must not outlive a failed constructor
            for handle in self._shards:
                handle.shutdown()
            raise
        self._session_lock = threading.Lock()
        self._session_shard: dict[str, int] = {}
        self._closed = False

    # ------------------------------------------------------------------
    def shard_of(self, graph: CSRGraph) -> int:
        """The shard a graph's traffic routes to (stable across runs)."""
        return shard_for_digest(graph_digest(graph), self.n_shards)

    def _mark(self, result: JobResult, shard: int) -> JobResult:
        result.shard = shard
        return result

    # -- verbs ---------------------------------------------------------
    def submit(self, request) -> JobResult:
        self._check_open()
        shard = self.shard_of(request.graph)
        return self._mark(self._shards[shard].call("submit", request), shard)

    def submit_many(self, requests: Sequence) -> list[JobResult]:
        """Batch submission: the batch splits by shard, each sub-batch
        keeps its relative order (so per-shard coalescing behaves as in
        a single process), and sub-batches run concurrently."""
        self._check_open()
        by_shard: dict[int, list[int]] = {}
        for i, request in enumerate(requests):
            by_shard.setdefault(self.shard_of(request.graph), []).append(i)
        results: list[Optional[JobResult]] = [None] * len(requests)

        def run_shard(shard: int, members: list[int]) -> None:
            batch = [requests[i] for i in members]
            out = self._shards[shard].call("submit_many", batch)
            for i, result in zip(members, out):
                results[i] = self._mark(result, shard)

        if len(by_shard) == 1:
            ((shard, members),) = by_shard.items()
            run_shard(shard, members)
        elif by_shard:
            with ThreadPoolExecutor(max_workers=len(by_shard)) as fan:
                futures = [
                    fan.submit(run_shard, shard, members)
                    for shard, members in by_shard.items()
                ]
                for future in futures:
                    future.result()
        return results  # type: ignore[return-value]

    def open_session(self, graph: CSRGraph, n_parts: int, **kwargs) -> JobResult:
        self._check_open()
        shard = self.shard_of(graph)
        result = self._shards[shard].call(
            "open_session", graph, int(n_parts), kwargs
        )
        with self._session_lock:
            self._session_shard[result.session_id] = shard
        return self._mark(result, shard)

    def update_session(self, request: UpdateRequest) -> JobResult:
        self._check_open()
        shard = self._session_route(request.session_id)
        return self._mark(
            self._shards[shard].call("update_session", request), shard
        )

    def close_session(self, session_id: str) -> dict:
        self._check_open()
        shard = self._session_route(session_id)
        summary = self._shards[shard].call("close_session", session_id)
        with self._session_lock:
            self._session_shard.pop(session_id, None)
        return summary

    def stats(self) -> dict:
        self._check_open()
        with self._session_lock:
            routed = len(self._session_shard)
        return {
            "n_shards": self.n_shards,
            "sessions_routed": routed,
            "shards": [handle.call("stats") for handle in self._shards],
        }

    def _session_route(self, session_id: str) -> int:
        with self._session_lock:
            shard = self._session_shard.get(session_id)
        if shard is None:
            raise ServiceError(f"unknown session {session_id!r}")
        return shard

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for handle in self._shards:
            handle.shutdown()

    def __enter__(self) -> "ShardedPartitionService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise ServiceError("service is closed")
