"""Process-pool execution of long GA runs.

Worker threads are the service's default execution lane: the batch
kernels release the GIL, so short jobs overlap well and nothing crosses
a process boundary.  But a long dknux run spends real time in
Python-level generation bookkeeping that threads serialize; above a
cost threshold (see :class:`~repro.service.config.ServiceConfig`) the
service routes the run to a :class:`~repro.ga.parallel.PinnedExecutors`
bank of single-worker *processes* instead.

The IPC cost model this module amortizes:

* **Graphs ship once per pin.**  Jobs are pinned to process slots by
  graph digest, so every request naming the same content lands in the
  same worker process.  The first job for a digest carries the CSR
  arrays; the worker interns them (pre-warming the strength table and
  unit-weight flags, like the parent's
  :class:`~repro.service.cache.GraphStore`) in a bounded worker-side
  LRU, and every later job carries the digest alone.  A worker that no
  longer holds the digest (restart, LRU eviction) answers with
  :data:`NEEDS_GRAPH` and the parent resends once with the arrays —
  shipping is an optimization with a self-healing fallback, never a
  protocol obligation.
* **Results travel as plain arrays.**  The worker returns the
  assignment plus its scalar metrics; the parent builds the
  :class:`~repro.service.models.JobResult` and publishes to its caches
  (worker processes never see the parent's cache plane).

Determinism: the worker runs :func:`repro.partition_graph` with the
identical resolved config and seed the thread path would use, so
process-routed answers are bit-identical to thread-routed ones — the
threshold decides where a computation runs, never what it returns.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

import numpy as np

from ..graphs.csr import CSRGraph

__all__ = [
    "NEEDS_GRAPH",
    "WORKER_GRAPH_CAP",
    "graph_to_arrays",
    "run_partition_job",
    "init_process_worker",
]

#: sentinel returned by a worker that was handed a digest it does not
#: hold; the parent retries once with the graph arrays attached
NEEDS_GRAPH = "__needs_graph__"

#: graphs each worker process keeps interned (LRU); paper-scale CSR
#: builds are a few hundred KB, so even the cap is a modest footprint
WORKER_GRAPH_CAP = 64

_GRAPHS: "OrderedDict[str, CSRGraph]" = OrderedDict()


def graph_to_arrays(graph: CSRGraph) -> tuple:
    """The picklable CSR payload of a graph (arrays only, no object)."""
    return (
        graph.n_nodes,
        np.asarray(graph.edges_u),
        np.asarray(graph.edges_v),
        np.asarray(graph.edge_weights),
        np.asarray(graph.node_weights),
        None if graph.coords is None else np.asarray(graph.coords),
    )


def _graph_from_arrays(arrays: tuple) -> CSRGraph:
    n_nodes, eu, ev, ew, nw, coords = arrays
    graph = CSRGraph(n_nodes, eu, ev, ew, nw, coords=coords)
    graph.node_strengths()  # pre-warm: shared by every hot path
    graph.has_unit_edge_weights()
    return graph


def init_process_worker() -> None:
    """Executor initializer: start each worker with an empty intern
    table (a forked worker must not inherit stale parent state)."""
    _GRAPHS.clear()


def _intern(digest: str, arrays: Optional[tuple]) -> Optional[CSRGraph]:
    graph = _GRAPHS.get(digest)
    if graph is not None:
        _GRAPHS.move_to_end(digest)
        return graph
    if arrays is None:
        return None
    graph = _graph_from_arrays(arrays)
    _GRAPHS[digest] = graph
    while len(_GRAPHS) > WORKER_GRAPH_CAP:
        _GRAPHS.popitem(last=False)
    return graph


def run_partition_job(
    digest: str,
    arrays: Optional[tuple],
    n_parts: int,
    fitness_kind: str,
    config_kwargs: dict,
    seed: int,
    seed_assignment: Optional[np.ndarray],
    trace: Optional[dict] = None,
):
    """Execute one dknux run in the worker process.

    Returns ``NEEDS_GRAPH`` when ``arrays`` is ``None`` and the digest
    is not interned here, else ``(assignment, fitness)`` — the parent
    rebuilds the partition metrics on its own interned graph instance.
    When the parent ships a ``trace`` context the worker records its
    execution (including per-generation GA spans) and the return grows
    a third element with the finished span records; ``trace=None``
    keeps the original two-element shape, so tracing off means the job
    pickles and the reply are byte-identical to before.
    """
    from .. import partition_graph
    from ..ga.config import GAConfig
    from ..ga.fitness import make_fitness
    from ..obs.hooks import ExecRecorder, recording
    from ..obs.trace import Tracer

    graph = _intern(digest, arrays)
    if graph is None:
        return NEEDS_GRAPH
    if trace is None:
        partition = partition_graph(
            graph,
            n_parts,
            fitness_kind=fitness_kind,
            config=GAConfig(**config_kwargs),
            seed=seed,
            seed_assignment=seed_assignment,
        )
        fitness = make_fitness(fitness_kind, graph, n_parts)
        return (
            np.asarray(partition.assignment, dtype=np.int64),
            float(fitness.evaluate(partition.assignment)),
        )
    # traced lane: identical computation, plus a collected span subtree
    tracer = Tracer(ring_size=256)
    span = tracer.start(
        "procexec.run", parent=trace,
        attrs={"digest": digest[:12], "n_parts": n_parts, "seed": seed},
    )
    with span, recording(ExecRecorder(tracer, span)):
        partition = partition_graph(
            graph,
            n_parts,
            fitness_kind=fitness_kind,
            config=GAConfig(**config_kwargs),
            seed=seed,
            seed_assignment=seed_assignment,
        )
    fitness = make_fitness(fitness_kind, graph, n_parts)
    return (
        np.asarray(partition.assignment, dtype=np.int64),
        float(fitness.evaluate(partition.assignment)),
        span.collected(),
    )
