"""Clients for the partition service.

Two interchangeable clients expose the same verbs (``partition``,
``refine``, ``open_session``, ``update_session``, ``close_session``,
``stats``) returning the same :class:`JobResult` objects:

* :class:`ServiceClient` drives an in-process
  :class:`~repro.service.core.PartitionService` directly — zero
  serialization, the right tool for embedding the service in a Python
  application or benchmark;
* :class:`HTTPServiceClient` speaks the JSON endpoint of
  :mod:`repro.service.http` over a **persistent keep-alive
  connection** (one :class:`http.client.HTTPConnection` per thread,
  reconnecting automatically) — the right tool from another process or
  machine, and the pairing for the event-loop front: a client-side
  benchmark measures the server, not per-request TCP setup.

Because both run the identical service core, a test or traffic replay
written against one client holds for the other.
"""

from __future__ import annotations

import http.client
import json
import threading
from typing import Optional, Sequence
from urllib.parse import urlsplit

import numpy as np

from ..errors import ServiceError, ShardDiedError
from ..graphs.csr import CSRGraph
from .core import PartitionService
from .models import (
    JobResult,
    PartitionRequest,
    RefineRequest,
    UpdateRequest,
    graph_to_wire,
)

__all__ = ["ServiceClient", "HTTPServiceClient"]


class ServiceClient:
    """Programmatic client (owns its service by default).

    ``shards=N`` builds a digest-sharded
    :class:`~repro.service.sharding.ShardedPartitionService` of N
    worker processes instead of an in-process service;
    ``attach=["host:port", ...]`` builds the same front over remote
    socket shards (``serve --shard-listen``).  The client API (and
    every answer) is identical either way.  An explicit ``service`` may
    be a :class:`PartitionService` or a sharded front.
    """

    def __init__(
        self,
        service: Optional[PartitionService] = None,
        shards: int = 0,
        attach: Optional[Sequence[str]] = None,
        **kwargs,
    ) -> None:
        if service is not None and (shards or attach):
            raise ServiceError(
                "pass either an explicit service or shards/attach, not both"
            )
        if shards and attach:
            raise ServiceError(
                "pass either shards=N (local workers) or attach (remote "
                "workers), not both"
            )
        self._owns = service is None
        if service is None:
            if attach:
                from .sharding import ShardedPartitionService

                service = ShardedPartitionService(
                    attach=list(attach), **kwargs
                )
            elif shards:
                from .sharding import ShardedPartitionService

                service = ShardedPartitionService(n_shards=shards, **kwargs)
            else:
                service = PartitionService(**kwargs)
        self.service = service

    # -- verbs ---------------------------------------------------------
    def _submit_idempotent(self, request) -> JobResult:
        """Submit a stateless request, retrying **once** if the owning
        shard died mid-call.  Safe only because ``partition``/``refine``
        are pure functions of the request (same seed → same answer): a
        replay against the restarted or re-ringed shard returns the
        bit-identical result.  Session updates are never retried here —
        a replayed update would advance the session's RNG stream twice
        and break bit-identity."""
        try:
            return self.service.submit(request)
        except ShardDiedError:
            return self.service.submit(request)

    def partition(self, graph: CSRGraph, n_parts: int, **kwargs) -> JobResult:
        return self._submit_idempotent(
            PartitionRequest(graph, n_parts, **kwargs)
        )

    def refine(
        self, graph: CSRGraph, n_parts: int, assignment: np.ndarray, **kwargs
    ) -> JobResult:
        return self._submit_idempotent(
            RefineRequest(graph, n_parts, assignment, **kwargs)
        )

    def submit_many(self, requests: Sequence) -> list[JobResult]:
        return self.service.submit_many(requests)

    def open_session(self, graph: CSRGraph, n_parts: int, **kwargs) -> JobResult:
        return self.service.open_session(graph, n_parts, **kwargs)

    def update_session(self, session_id: str, graph: CSRGraph) -> JobResult:
        return self.service.update_session(UpdateRequest(session_id, graph))

    def close_session(self, session_id: str) -> dict:
        return self.service.close_session(session_id)

    def stats(self) -> dict:
        return self.service.stats()

    def metrics(self) -> dict:
        """The unified :mod:`repro.obs` metrics snapshot (merged across
        shards when the service is a sharded front)."""
        return self.service.metrics()

    def ring_admin(self, action: str, **kwargs) -> dict:
        """Ring admin passthrough (``status``/``resize``/``add_shard``/
        ``remove_shard``/``eject``/``readmit``) — sharded fronts only."""
        if not hasattr(self.service, "ring_admin"):
            raise ServiceError(
                "ring administration needs a sharded service "
                "(shards=N or attach=[...])"
            )
        return self.service.ring_admin(action, **kwargs)

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        if self._owns:
            self.service.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class HTTPServiceClient:
    """JSON-over-HTTP client for a running ``repro-partition serve``.

    The transport is a persistent keep-alive connection: each thread
    using the client owns one :class:`http.client.HTTPConnection`,
    reused across requests and reopened transparently when the server
    closes it (idle timeout, restart).  A request that fails on a
    *reused* connection is retried once on a fresh one — that failure
    mode is the inherent keep-alive race (the server closed the idle
    connection just as the request departed), and the request cannot
    have been processed.  A request that fails on a fresh connection is
    never retried: the service may have seen it, and replaying e.g. a
    session update must be the caller's explicit decision.
    """

    def __init__(self, base_url: str, timeout: float = 60.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = float(timeout)
        parts = urlsplit(self.base_url)
        if parts.scheme not in ("http", ""):
            raise ServiceError(
                f"HTTPServiceClient speaks plain http, got {base_url!r}"
            )
        self._host = parts.hostname or "127.0.0.1"
        self._port = parts.port or 80
        self._prefix = parts.path.rstrip("/")
        self._local = threading.local()  # per-thread persistent connection

    # -- transport -----------------------------------------------------
    def _connection(self) -> tuple[http.client.HTTPConnection, bool]:
        """This thread's connection and whether it is being *reused*."""
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            return conn, True
        conn = http.client.HTTPConnection(
            self._host, self._port, timeout=self.timeout
        )
        self._local.conn = conn
        return conn, False

    def _drop_connection(self) -> None:
        conn = getattr(self._local, "conn", None)
        self._local.conn = None
        if conn is not None:
            conn.close()

    def close(self) -> None:
        """Close this thread's persistent connection (idempotent; the
        next request simply reconnects)."""
        self._drop_connection()

    def _request(
        self, method: str, path: str, body: Optional[bytes], headers: dict
    ) -> tuple[int, bytes]:
        url = f"{self.base_url}{path}"
        for attempt in (0, 1):
            conn, reused = self._connection()
            try:
                conn.request(method, self._prefix + path, body, headers)
                resp = conn.getresponse()
                data = resp.read()  # drain fully: keep-alive needs it
                if resp.headers.get("Connection", "").lower() == "close":
                    self._drop_connection()
                return resp.status, data
            except (http.client.HTTPException, ConnectionError, OSError) as exc:
                self._drop_connection()
                if reused and attempt == 0:
                    # stale keep-alive: the server closed the idle
                    # connection under us; the request was not processed,
                    # so one retry on a fresh connection is safe
                    continue
                raise ServiceError(
                    f"cannot reach service at {url}: {exc}"
                ) from exc
        raise ServiceError(f"cannot reach service at {url}: retries exhausted")

    def _call(self, path: str, payload: Optional[dict] = None) -> dict:
        if payload is None:
            status, data = self._request("GET", path, None, {})
        else:
            status, data = self._request(
                "POST", path, json.dumps(payload).encode(),
                {"Content-Type": "application/json"},
            )
        if status >= 400:
            try:
                message = json.loads(data.decode()).get(
                    "error", f"HTTP {status}"
                )
            except (ValueError, AttributeError, UnicodeDecodeError):
                message = f"HTTP {status}"
            raise ServiceError(f"{path} failed with HTTP {status}: {message}")
        try:
            return json.loads(data.decode())
        except (ValueError, UnicodeDecodeError) as exc:
            raise ServiceError(
                f"{path} answered malformed JSON: {exc}"
            ) from exc

    def _call_idempotent(self, path: str, payload: dict) -> dict:
        """POST a stateless request, retrying **once** on HTTP 503 (the
        front answering "the owning shard died mid-call").  Safe only
        for ``partition``/``refine``: they are pure functions of the
        request, so the replay — now routed by the post-ejection ring —
        returns the bit-identical result.  Session updates never take
        this path: replaying one would advance the session's RNG stream
        twice and break bit-identity."""
        try:
            return self._call(path, payload)
        except ServiceError as exc:
            if "HTTP 503" not in str(exc):
                raise
            return self._call(path, payload)

    # -- verbs ---------------------------------------------------------
    def partition(self, graph: CSRGraph, n_parts: int, **kwargs) -> JobResult:
        payload = PartitionRequest(graph, n_parts, **kwargs).to_payload()
        return JobResult.from_payload(
            self._call_idempotent("/v1/partition", payload)
        )

    def refine(
        self, graph: CSRGraph, n_parts: int, assignment: np.ndarray, **kwargs
    ) -> JobResult:
        payload = RefineRequest(graph, n_parts, assignment, **kwargs).to_payload()
        return JobResult.from_payload(
            self._call_idempotent("/v1/refine", payload)
        )

    def open_session(self, graph: CSRGraph, n_parts: int, **kwargs) -> JobResult:
        payload = {
            "graph": graph_to_wire(graph),
            "n_parts": int(n_parts),
            **kwargs,
        }
        return JobResult.from_payload(self._call("/v1/session/open", payload))

    def update_session(self, session_id: str, graph: CSRGraph) -> JobResult:
        payload = UpdateRequest(session_id, graph).to_payload()
        return JobResult.from_payload(self._call("/v1/session/update", payload))

    def close_session(self, session_id: str) -> dict:
        return self._call("/v1/session/close", {"session_id": session_id})

    def stats(self) -> dict:
        return self._call("/v1/stats")

    def metrics(self) -> dict:
        """``/v1/metrics`` as JSON (the unified snapshot schema)."""
        return self._call("/v1/metrics")

    def metrics_text(self) -> str:
        """``/v1/metrics`` in Prometheus text exposition format."""
        path = "/v1/metrics?format=prometheus"
        status, data = self._request("GET", path, None, {})
        if status >= 400:
            raise ServiceError(f"{path} failed with HTTP {status}")
        return data.decode()

    def healthy(self) -> bool:
        try:
            return bool(self._call("/v1/healthz").get("ok"))
        except ServiceError:
            return False

    # -- ring administration (sharded fronts only) ---------------------
    def ring_status(self) -> dict:
        """``GET /v1/admin/ring`` — ring description + per-shard health."""
        return self._call("/v1/admin/ring")

    def ring_resize(self, n_shards: int) -> dict:
        """Grow or shrink the fleet to ``n_shards`` workers."""
        return self._call(
            "/v1/admin/ring", {"action": "resize", "n_shards": int(n_shards)}
        )

    def ring_eject(self, shard: int) -> dict:
        """Take ``shard`` out of the ring (reversible; no state moves)."""
        return self._call("/v1/admin/ring", {"action": "eject", "shard": int(shard)})

    def ring_readmit(self, shard: int) -> dict:
        """Put a recovered ``shard`` back into the ring (warm-seeds it)."""
        return self._call(
            "/v1/admin/ring", {"action": "readmit", "shard": int(shard)}
        )
