"""Clients for the partition service.

Two interchangeable clients expose the same verbs (``partition``,
``refine``, ``open_session``, ``update_session``, ``close_session``,
``stats``) returning the same :class:`JobResult` objects:

* :class:`ServiceClient` drives an in-process
  :class:`~repro.service.core.PartitionService` directly — zero
  serialization, the right tool for embedding the service in a Python
  application or benchmark;
* :class:`HTTPServiceClient` speaks the JSON endpoint of
  :mod:`repro.service.http` over urllib — the right tool from another
  process or machine.

Because both run the identical service core, a test or traffic replay
written against one client holds for the other.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Optional, Sequence

import numpy as np

from ..errors import ServiceError
from ..graphs.csr import CSRGraph
from .core import PartitionService
from .models import (
    JobResult,
    PartitionRequest,
    RefineRequest,
    UpdateRequest,
    graph_to_wire,
)

__all__ = ["ServiceClient", "HTTPServiceClient"]


class ServiceClient:
    """Programmatic client (owns its service by default).

    ``shards=N`` builds a digest-sharded
    :class:`~repro.service.sharding.ShardedPartitionService` of N
    worker processes instead of an in-process service;
    ``attach=["host:port", ...]`` builds the same front over remote
    socket shards (``serve --shard-listen``).  The client API (and
    every answer) is identical either way.  An explicit ``service`` may
    be a :class:`PartitionService` or a sharded front.
    """

    def __init__(
        self,
        service: Optional[PartitionService] = None,
        shards: int = 0,
        attach: Optional[Sequence[str]] = None,
        **kwargs,
    ) -> None:
        if service is not None and (shards or attach):
            raise ServiceError(
                "pass either an explicit service or shards/attach, not both"
            )
        if shards and attach:
            raise ServiceError(
                "pass either shards=N (local workers) or attach (remote "
                "workers), not both"
            )
        self._owns = service is None
        if service is None:
            if attach:
                from .sharding import ShardedPartitionService

                service = ShardedPartitionService(
                    attach=list(attach), **kwargs
                )
            elif shards:
                from .sharding import ShardedPartitionService

                service = ShardedPartitionService(n_shards=shards, **kwargs)
            else:
                service = PartitionService(**kwargs)
        self.service = service

    # -- verbs ---------------------------------------------------------
    def partition(self, graph: CSRGraph, n_parts: int, **kwargs) -> JobResult:
        return self.service.submit(PartitionRequest(graph, n_parts, **kwargs))

    def refine(
        self, graph: CSRGraph, n_parts: int, assignment: np.ndarray, **kwargs
    ) -> JobResult:
        return self.service.submit(
            RefineRequest(graph, n_parts, assignment, **kwargs)
        )

    def submit_many(self, requests: Sequence) -> list[JobResult]:
        return self.service.submit_many(requests)

    def open_session(self, graph: CSRGraph, n_parts: int, **kwargs) -> JobResult:
        return self.service.open_session(graph, n_parts, **kwargs)

    def update_session(self, session_id: str, graph: CSRGraph) -> JobResult:
        return self.service.update_session(UpdateRequest(session_id, graph))

    def close_session(self, session_id: str) -> dict:
        return self.service.close_session(session_id)

    def stats(self) -> dict:
        return self.service.stats()

    def metrics(self) -> dict:
        """The unified :mod:`repro.obs` metrics snapshot (merged across
        shards when the service is a sharded front)."""
        return self.service.metrics()

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        if self._owns:
            self.service.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class HTTPServiceClient:
    """JSON-over-HTTP client for a running ``repro-partition serve``."""

    def __init__(self, base_url: str, timeout: float = 60.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = float(timeout)

    # -- transport -----------------------------------------------------
    def _call(self, path: str, payload: Optional[dict] = None) -> dict:
        url = f"{self.base_url}{path}"
        if payload is None:
            request = urllib.request.Request(url, method="GET")
        else:
            request = urllib.request.Request(
                url,
                data=json.dumps(payload).encode(),
                headers={"Content-Type": "application/json"},
                method="POST",
            )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                return json.loads(resp.read().decode())
        except urllib.error.HTTPError as exc:
            try:
                message = json.loads(exc.read().decode()).get("error", str(exc))
            except (OSError, ValueError, AttributeError):
                message = str(exc)
            raise ServiceError(
                f"{path} failed with HTTP {exc.code}: {message}"
            ) from exc
        except urllib.error.URLError as exc:
            raise ServiceError(f"cannot reach service at {url}: {exc}") from exc

    # -- verbs ---------------------------------------------------------
    def partition(self, graph: CSRGraph, n_parts: int, **kwargs) -> JobResult:
        payload = PartitionRequest(graph, n_parts, **kwargs).to_payload()
        return JobResult.from_payload(self._call("/v1/partition", payload))

    def refine(
        self, graph: CSRGraph, n_parts: int, assignment: np.ndarray, **kwargs
    ) -> JobResult:
        payload = RefineRequest(graph, n_parts, assignment, **kwargs).to_payload()
        return JobResult.from_payload(self._call("/v1/refine", payload))

    def open_session(self, graph: CSRGraph, n_parts: int, **kwargs) -> JobResult:
        payload = {
            "graph": graph_to_wire(graph),
            "n_parts": int(n_parts),
            **kwargs,
        }
        return JobResult.from_payload(self._call("/v1/session/open", payload))

    def update_session(self, session_id: str, graph: CSRGraph) -> JobResult:
        payload = UpdateRequest(session_id, graph).to_payload()
        return JobResult.from_payload(self._call("/v1/session/update", payload))

    def close_session(self, session_id: str) -> dict:
        return self._call("/v1/session/close", {"session_id": session_id})

    def stats(self) -> dict:
        return self._call("/v1/stats")

    def metrics(self) -> dict:
        """``/v1/metrics`` as JSON (the unified snapshot schema)."""
        return self._call("/v1/metrics")

    def metrics_text(self) -> str:
        """``/v1/metrics`` in Prometheus text exposition format."""
        url = f"{self.base_url}/v1/metrics?format=prometheus"
        request = urllib.request.Request(url, method="GET")
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                return resp.read().decode()
        except urllib.error.URLError as exc:
            raise ServiceError(f"cannot reach service at {url}: {exc}") from exc

    def healthy(self) -> bool:
        try:
            return bool(self._call("/v1/healthz").get("ok"))
        except ServiceError:
            return False
