"""Consistent-hash ring topology for the shard fleet.

PR 4 baked shard addressing into :mod:`repro.service.sharding` as
``blake2b(digest) % N`` — a pure function of the fleet width, which is
exactly why the fleet width could never change: resizing N→N+1 remaps
*every* key, evicting every shard's warm cache at once.  This module
extracts addressing into an explicit topology object so membership can
change at runtime:

* :class:`RingVersion` — one **immutable, epoch-numbered** topology: a
  set of member slots hashed onto a 64-bit ring at
  :data:`DEFAULT_RING_REPLICAS` virtual-node points each.  ``owner()``
  maps a content digest to the member slot whose virtual node follows
  the digest's point clockwise.  Because only the leaving/joining
  slot's virtual nodes appear or vanish, a resize N→N+1 moves ~1/(N+1)
  of the keyspace and an eject moves only the dead slot's share — the
  remap-minimality property ``tests/test_ring.py`` checks.
* :class:`HashRing` — the mutable wrapper the sharded front holds.
  Every mutation (``resize``/``eject``/``readmit``) builds a *new*
  ``RingVersion`` with the epoch advanced and swaps it in atomically;
  readers call :meth:`HashRing.owner` lock-free against whichever
  immutable version they observe.  The front serializes mutations
  under its own fleet lock.

**One-time migration from the ``% N`` layout.**  Epoch 0 of a
width-N ring does *not* reproduce ``shard_for_digest(d, N)`` — a
modulus layout cannot satisfy remap minimality, which is the entire
point of this module.  The migration is a cold-cache event, not a
correctness event: every shard runs identical service code, so routing
decides only *which process computes*, never what is computed (the
bit-identity suite covers any ring history).  ``shard_for_digest``
remains exported for the pre-ring frozen tests and for external
tooling that recorded the old layout.

The ring protocol is versioned on the shard ``capabilities`` verb
(:data:`RING_PROTOCOL_VERSION`): a front sends its ring epoch with the
handshake and a ring-aware shard echoes it back with its protocol
version; old peers ignore the arguments entirely, so mixed fleets keep
working on the pre-ring contract.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, Optional, Sequence

from ..errors import ServiceError

__all__ = [
    "RING_PROTOCOL_VERSION",
    "DEFAULT_RING_REPLICAS",
    "ring_point",
    "RingVersion",
    "HashRing",
]

#: version of the ring wire contract carried on the ``capabilities``
#: verb (see :mod:`repro.service.transport`); bump on incompatible
#: changes to the point function or the handoff verbs
RING_PROTOCOL_VERSION = 1

#: virtual nodes per member slot — enough that per-slot ownership
#: shares stay within a few percent of 1/N at small fleet widths
DEFAULT_RING_REPLICAS = 64

#: the hash space is the 64-bit interval [0, 2^64)
_SPACE = 1 << 64


def ring_point(token: str) -> int:
    """A token's position on the 64-bit ring (pure function: the same
    point in every process and across runs, like ``shard_for_digest``)."""
    raw = hashlib.blake2b(token.encode(), digest_size=8).digest()
    return int.from_bytes(raw, "big")


class RingVersion:
    """One immutable, epoch-numbered ring topology.

    Parameters
    ----------
    epoch:
        Monotonic topology counter.  Epoch 0 is the boot topology; every
        membership change (resize, eject, readmit) produces a new
        version with the epoch advanced.
    n_slots:
        Fleet width — the number of supervised shard seats.  Slot
        indices are ``0..n_slots-1``.
    members:
        The slots currently *in* the ring (owning keyspace).  Defaults
        to all slots; a degraded fleet serves with a strict subset.
    replicas:
        Virtual nodes per member slot.
    """

    __slots__ = (
        "epoch", "n_slots", "members", "replicas", "_points", "_owners",
    )

    def __init__(
        self,
        epoch: int,
        n_slots: int,
        members: Optional[Iterable[int]] = None,
        replicas: int = DEFAULT_RING_REPLICAS,
    ) -> None:
        if n_slots < 1:
            raise ServiceError(f"ring needs n_slots >= 1, got {n_slots}")
        if replicas < 1:
            raise ServiceError(f"ring needs replicas >= 1, got {replicas}")
        if epoch < 0:
            raise ServiceError(f"ring epoch must be >= 0, got {epoch}")
        member_tuple = (
            tuple(range(n_slots))
            if members is None
            else tuple(sorted(set(int(m) for m in members)))
        )
        if not member_tuple:
            raise ServiceError("ring needs at least one member slot")
        for slot in member_tuple:
            if not 0 <= slot < n_slots:
                raise ServiceError(
                    f"ring member {slot} outside slots 0..{n_slots - 1}"
                )
        self.epoch = int(epoch)
        self.n_slots = int(n_slots)
        self.members = member_tuple
        self.replicas = int(replicas)
        # each member contributes `replicas` virtual nodes; a key's
        # owner is the slot of the first virtual node clockwise of the
        # key's point.  Only the token below feeds the point function,
        # so a slot's virtual nodes are identical in every version that
        # contains it — which is what makes remaps minimal.
        pairs = sorted(
            (ring_point(f"ring-slot-{slot}-vnode-{r}"), slot)
            for slot in member_tuple
            for r in range(self.replicas)
        )
        self._points = [p for p, _ in pairs]
        self._owners = [s for _, s in pairs]

    # ------------------------------------------------------------------
    def owner(self, digest: str) -> int:
        """The member slot owning ``digest`` under this topology."""
        idx = bisect.bisect_right(self._points, ring_point(digest))
        if idx == len(self._points):
            idx = 0  # wrap past the highest virtual node
        return self._owners[idx]

    def shares(self) -> dict[int, float]:
        """Fraction of the keyspace each member owns (arc lengths) —
        the ``repro_ring_ownership_ratio`` gauge."""
        points, owners = self._points, self._owners
        totals = {slot: 0 for slot in self.members}
        previous = points[-1] - _SPACE  # the wrap arc belongs to points[0]
        for point, slot in zip(points, owners):
            totals[slot] += point - previous
            previous = point
        return {slot: arc / _SPACE for slot, arc in totals.items()}

    def describe(self) -> dict:
        """JSON-safe summary (the admin endpoint body and the shard-side
        ``warm_from`` ownership filter)."""
        return {
            "epoch": self.epoch,
            "n_slots": self.n_slots,
            "members": list(self.members),
            "replicas": self.replicas,
            "protocol": RING_PROTOCOL_VERSION,
            "shares": {
                str(slot): round(share, 4)
                for slot, share in sorted(self.shares().items())
            },
        }

    @classmethod
    def from_description(cls, desc: dict) -> "RingVersion":
        """Rebuild a version from :meth:`describe` output (shard side of
        the ``warm_from`` verb — the filter must use the *front's* exact
        topology, not whatever the shard believes)."""
        try:
            return cls(
                int(desc["epoch"]),
                int(desc["n_slots"]),
                members=desc.get("members"),
                replicas=int(desc.get("replicas", DEFAULT_RING_REPLICAS)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ServiceError(f"bad ring description: {exc!r}") from exc

    def __repr__(self) -> str:
        return (
            f"RingVersion(epoch={self.epoch}, n_slots={self.n_slots}, "
            f"members={self.members})"
        )


class HashRing:
    """The mutable ring the sharded front routes through.

    Reads (:meth:`owner`) are lock-free: ``version`` is an immutable
    :class:`RingVersion` replaced atomically by each mutation, so a
    reader sees either the old or the new topology, never a torn one.
    Mutations are *not* internally synchronized — the owning front
    serializes them (under its fleet lock), keeping this module free of
    locks and out of the lock graph.
    """

    def __init__(
        self,
        n_slots: int,
        members: Optional[Sequence[int]] = None,
        replicas: int = DEFAULT_RING_REPLICAS,
    ) -> None:
        self.version = RingVersion(0, n_slots, members, replicas)

    # -- read side -----------------------------------------------------
    @property
    def epoch(self) -> int:
        return self.version.epoch

    @property
    def n_slots(self) -> int:
        return self.version.n_slots

    @property
    def members(self) -> tuple[int, ...]:
        return self.version.members

    def owner(self, digest: str) -> int:
        return self.version.owner(digest)

    def describe(self) -> dict:
        return self.version.describe()

    # -- mutations (serialized by the owning front) --------------------
    def _advance(
        self, n_slots: int, members: Iterable[int]
    ) -> RingVersion:
        version = RingVersion(
            self.version.epoch + 1,
            n_slots,
            members,
            self.version.replicas,
        )
        self.version = version
        return version

    def resize(self, n_slots: int) -> RingVersion:
        """Change the fleet width.  Growing admits the new slots as
        members immediately; shrinking drops the top slots.  Slots the
        front had ejected stay ejected — a resize must not silently
        resurrect a dead shard."""
        current = self.version
        if n_slots == current.n_slots and set(range(n_slots)) <= set(
            current.members
        ):
            return current  # identical topology: no epoch churn
        ejected = set(range(current.n_slots)) - set(current.members)
        members = [s for s in range(n_slots) if s not in ejected]
        if not members:
            raise ServiceError("resize would leave the ring empty")
        return self._advance(n_slots, members)

    def eject(self, slot: int) -> RingVersion:
        """Remove a slot's keyspace (dead shard: serve degraded at N−1
        under a new epoch).  Idempotent; refuses to empty the ring."""
        current = self.version
        if not 0 <= slot < current.n_slots:
            raise ServiceError(
                f"cannot eject slot {slot}: outside 0..{current.n_slots - 1}"
            )
        if slot not in current.members:
            return current
        members = [m for m in current.members if m != slot]
        if not members:
            raise ServiceError(
                f"cannot eject slot {slot}: it is the last ring member"
            )
        return self._advance(current.n_slots, members)

    def readmit(self, slot: int) -> RingVersion:
        """Return a recovered slot's keyspace (probe saw it answer
        again).  Idempotent."""
        current = self.version
        if not 0 <= slot < current.n_slots:
            raise ServiceError(
                f"cannot readmit slot {slot}: outside 0..{current.n_slots - 1}"
            )
        if slot in current.members:
            return current
        return self._advance(
            current.n_slots, list(current.members) + [slot]
        )

    def __repr__(self) -> str:
        return f"HashRing({self.version!r})"
