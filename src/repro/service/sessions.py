"""Streaming incremental sessions (the service face of Tables 3/6).

A session is the paper's incremental experiment turned into a
long-lived server object: the client opens a session on a graph, the
service partitions it once, and every subsequent
``insert_local_nodes``-style update is re-partitioned with the
population *seeded from the previous assignment*
(:mod:`repro.incremental`) instead of a cold start — which is exactly
the workload the paper's Tables 3/6 measure, and where incremental
seeding pays: the GA starts concentrated around the previous optimum
and only has to resolve the refined region.

Each session owns an :class:`IncrementalGAPartitioner` (its state: the
current graph, partition, and RNG stream) plus two locks: ``lock``
guards the session's *published state* (the partitioner's graph and
partition, the update counters — everything ``summary()``/``close()``
read) and ``compute_lock`` serializes the session's GA work.  The
service pins every update of a session to one scheduler slot, so the
partitioner's evolving state lives on a single worker for the
session's lifetime.

Two update paths share the same kernels (PR 4):

* :meth:`SessionManager.update` — the serial-lock path: the state lock
  is held for the whole update, GA run included (the original PR-3
  behavior).
* :meth:`SessionManager.update_overlapped` — the overlapped path: the
  state lock is held only for *ingestion* (validate the new graph) and
  *commit* (install the result); the GA runs between the two holding
  only the compute lock.  ``close``/``summary``/stats therefore never
  block behind a GA run: a close that races an in-flight overlapped
  update wins immediately, and the update fails its commit with
  "unknown session" instead of committing to a closed session.  If a
  pipelined caller commits another update meanwhile, the commit detects
  the stale epoch and *rebases*: the pending update re-runs, seeding
  from the newly committed partition — exactly what serial execution
  would have done.

Both paths compose ``begin_update → run_pending → commit_update``
(:mod:`repro.incremental.partitioner`), so for serially issued updates
they produce bit-identical assignments.
"""

from __future__ import annotations

import itertools
import secrets
import threading
import time
from typing import Optional

import numpy as np

from ..errors import ConfigError, ServiceError
from ..ga.config import GAConfig
from ..graphs.csr import CSRGraph
from ..incremental.partitioner import IncrementalGAPartitioner
from ..partition.partition import Partition

__all__ = ["Session", "SessionManager", "SESSION_GA_DEFAULTS"]

#: compact per-update GA budget — sessions answer interactive traffic,
#: not offline tables; callers override any of it per session
SESSION_GA_DEFAULTS = dict(
    population_size=48,
    max_generations=60,
    hill_climb="all",
    hill_climb_passes=2,
    patience=12,
)


class Session:
    """One open incremental-partitioning session."""

    def __init__(
        self,
        session_id: str,
        partitioner: IncrementalGAPartitioner,
    ) -> None:
        self.id = session_id
        self.partitioner = partitioner
        #: guards published state (see module docstring) — held briefly
        #: on the overlapped path, for the whole update on the serial one
        self.lock = threading.Lock()
        #: serializes the session's GA work (RNG stream, engine state)
        self.compute_lock = threading.Lock()
        self.created_at = time.time()
        self.n_updates = 0
        self.total_ga_seconds = 0.0

    def partition_initial(self) -> Partition:
        """Run the session's first GA (the service calls this on the
        worker slot pinned to the session, not on the request thread)."""
        t0 = time.perf_counter()
        with self.compute_lock, self.lock:
            # repro: allow[LOCK-HELD-BLOCKING] — the first GA runs under the
            # state lock by design: the session publishes nothing before its
            # initial partition exists, so nobody can contend
            partition = self.partitioner.partition_initial()
        self.total_ga_seconds += time.perf_counter() - t0
        return partition

    def summary(self) -> dict:
        part = self.partitioner.partition
        return {
            "session_id": self.id,
            "n_nodes": self.partitioner.graph.n_nodes,
            "n_parts": self.partitioner.n_parts,
            "n_updates": self.n_updates,
            "cut_size": None if part is None else float(part.cut_size),
            "total_ga_seconds": round(self.total_ga_seconds, 6),
        }


class SessionManager:
    """Open/update/close lifecycle for incremental sessions."""

    def __init__(self, max_sessions: int = 1024) -> None:
        if max_sessions < 1:
            raise ServiceError(f"max_sessions must be >= 1, got {max_sessions}")
        self.max_sessions = int(max_sessions)
        self._lock = threading.Lock()
        self._sessions: dict[str, Session] = {}
        self._counter = itertools.count()
        self.opened = 0
        self.closed = 0
        self.restored = 0
        self.released = 0
        self.total_updates = 0

    # ------------------------------------------------------------------
    def open(
        self,
        graph: CSRGraph,
        n_parts: int,
        fitness_kind: str = "fitness1",
        seed: int = 0,
        ga: Optional[dict] = None,
    ) -> Session:
        """Create and register a session (no GA work yet — the caller
        runs :meth:`Session.partition_initial` on the session's pinned
        worker slot).  Invalid parameters raise :class:`ServiceError`."""
        from .models import FITNESS_KINDS

        if isinstance(n_parts, bool) or not isinstance(n_parts, int):
            raise ServiceError(f"n_parts must be an integer, got {n_parts!r}")
        if isinstance(seed, bool) or not isinstance(seed, int) or seed < 0:
            raise ServiceError(
                f"seed must be a non-negative integer, got {seed!r}"
            )
        if fitness_kind not in FITNESS_KINDS:
            raise ServiceError(
                f"fitness_kind must be one of {FITNESS_KINDS}, got "
                f"{fitness_kind!r}"
            )
        overrides = dict(SESSION_GA_DEFAULTS)
        if ga:
            if not isinstance(ga, dict):
                raise ServiceError("ga overrides must be a {str: value} object")
            overrides.update(ga)
        try:
            config = GAConfig(**overrides)
        except (ConfigError, TypeError) as exc:
            raise ServiceError(f"bad ga overrides: {exc}") from exc
        try:
            partitioner = IncrementalGAPartitioner(
                graph,
                n_parts,
                fitness_kind=fitness_kind,
                config=config,
                seed=seed,
            )
        except (ConfigError, TypeError, ValueError) as exc:
            raise ServiceError(f"bad session parameters: {exc}") from exc
        session_id = f"s{next(self._counter)}-{secrets.token_hex(4)}"
        session = Session(session_id, partitioner)
        with self._lock:
            if len(self._sessions) >= self.max_sessions:
                raise ServiceError(
                    f"session limit reached ({self.max_sessions} open)"
                )
            self._sessions[session_id] = session
            self.opened += 1
        return session

    def restore(self, session: Session) -> None:
        """Re-register a session restored from a failover snapshot under
        its **original id** (see :mod:`repro.service.persistence`), so
        routing state held outside this process — the sharded front's
        session→shard map, a client's stored session id — stays valid
        across a crash/restart."""
        with self._lock:
            if session.id in self._sessions:
                raise ServiceError(
                    f"session {session.id!r} is already open; refusing to "
                    "overwrite live state with a snapshot"
                )
            if len(self._sessions) >= self.max_sessions:
                raise ServiceError(
                    f"session limit reached ({self.max_sessions} open)"
                )
            self._sessions[session.id] = session
            self.restored += 1

    def release(self, session_id: str) -> bool:
        """Unregister a session *without* closing it — the ring handoff
        path: another shard adopted the session from its snapshot, so
        this shard must stop serving it, but the session itself lives
        on (its updates continue on the new owner, not here)."""
        with self._lock:
            session = self._sessions.pop(session_id, None)
            if session is not None:
                self.released += 1
        return session is not None

    def ids(self) -> list[str]:
        """Ids of the currently open sessions (a routing front attaching
        to a running shard uses this to rebuild its session→shard map)."""
        with self._lock:
            return sorted(self._sessions)

    def get(self, session_id: str) -> Session:
        with self._lock:
            session = self._sessions.get(session_id)
        if session is None:
            raise ServiceError(f"unknown session {session_id!r}")
        return session

    def update(self, session_id: str, new_graph: CSRGraph) -> tuple[Session, Partition]:
        """Re-partition after a graph update, warm-seeded from the
        session's previous assignment (serial-lock path: the state lock
        is held for the whole GA run, so a concurrent close waits)."""
        session = self.get(session_id)
        t0 = time.perf_counter()
        with session.compute_lock, session.lock:
            # re-check under the session lock: a concurrent close() may
            # have removed the session between get() and here, and an
            # update must not "succeed" against a closed session
            self._check_registered(session_id, session)
            # repro: allow[LOCK-HELD-BLOCKING] — the serial-lock path's
            # documented contract: the state lock is held for the whole GA
            # run, so a concurrent close waits (PR 3 semantics)
            partition = session.partitioner.update(new_graph)
            session.n_updates += 1
        with self._lock:
            self.total_updates += 1
        session.total_ga_seconds += time.perf_counter() - t0
        return session, partition

    def update_overlapped(
        self, session_id: str, new_graph: CSRGraph
    ) -> tuple[Session, Partition]:
        """Re-partition after a graph update, holding the state lock
        only for ingestion and commit (see the module docstring).

        Bit-identical to :meth:`update` for serially issued updates:
        both compose the partitioner's ``begin_update → run_pending →
        commit_update`` kernels on the same RNG stream.
        """
        from ..incremental.partitioner import StaleUpdateError

        session = self.get(session_id)
        t0 = time.perf_counter()
        with session.compute_lock:  # serializes this session's GA work
            with session.lock:  # short: ingestion
                self._check_registered(session_id, session)
                if session.partitioner.partition is None:
                    # first contact — an initial partition cannot
                    # overlap with anything; behave like the serial path
                    # repro: allow[LOCK-HELD-BLOCKING] — nothing is published
                    # before the first partition, so nobody can contend
                    partition = session.partitioner.update(new_graph)
                    session.n_updates += 1
                    return self._finish_update(session, t0, partition)
                pending = session.partitioner.begin_update(new_graph)
            while True:
                session.partitioner.run_pending(pending)  # GA: no state lock
                with session.lock:  # short: commit
                    # a close that raced the GA has already won — the
                    # update must not commit to a closed session
                    self._check_registered(session_id, session)
                    try:
                        partition = session.partitioner.commit_update(pending)
                    except StaleUpdateError:
                        continue  # rebase onto the newly committed state
                    session.n_updates += 1
                    break
        return self._finish_update(session, t0, partition)

    def _finish_update(
        self, session: Session, t0: float, partition: Partition
    ) -> tuple[Session, Partition]:
        with self._lock:
            self.total_updates += 1
        session.total_ga_seconds += time.perf_counter() - t0
        return session, partition

    def _check_registered(self, session_id: str, session: Session) -> None:
        with self._lock:
            if self._sessions.get(session_id) is not session:
                raise ServiceError(f"unknown session {session_id!r}")

    def close(self, session_id: str) -> dict:
        with self._lock:
            session = self._sessions.pop(session_id, None)
            if session is not None:
                self.closed += 1
        if session is None:
            raise ServiceError(f"unknown session {session_id!r}")
        # serial-path updates hold the state lock for their whole GA run
        # (close waits, as in PR 3); overlapped updates hold it only
        # briefly, so this returns immediately and a racing update fails
        # its commit against the now-unregistered session
        with session.lock:
            return session.summary()

    def stats(self) -> dict:
        with self._lock:
            return {
                "open": len(self._sessions),
                "opened": self.opened,
                "closed": self.closed,
                "restored": self.restored,
                "released": self.released,
                "updates": self.total_updates,
            }

    def epoch_summary(self) -> dict:
        """Update-epoch digest across open sessions (the
        ``repro_session_epoch_max`` gauge): reads only each session's
        ``n_updates`` counter, never its state lock, so it cannot block
        behind a serial-path GA run."""
        with self._lock:
            epochs = [s.n_updates for s in self._sessions.values()]
        return {
            "open": len(epochs),
            "max_epoch": max(epochs) if epochs else 0,
            "total_epochs": sum(epochs),
        }
