"""Content-addressed caching for the partition service.

Identity in the service is *content*: a graph is named by the digest of
its CSR arrays (:func:`graph_digest`), a request by the digest of its
graph plus every parameter that affects the answer
(:func:`request_key`), and a population row by
:func:`repro.ga.evaluation.hash_rows` — the same hash function the GA's
evaluator memo uses, so a row and a cached service result agree on
identity by construction.

Three stores hang off those names:

* :class:`LRUBytesCache` — a generic thread-safe LRU bounded by a byte
  budget, with hit/miss/eviction counters; backs the result cache.
* :class:`GraphStore` — interns :class:`CSRGraph` instances by digest,
  so repeated requests on the same graph (or a graph arriving again
  over the wire) reuse one CSR build along with its memoized strength
  table and unit-weight flags instead of re-deriving them per request.
  Interning also pre-warms the strength table — it is on every hot
  path (KNUX bias, hill-climb gains).
* warm seed partitions — the best assignment the service has computed
  per ``(graph, k, fitness)``, offered to ``warm_start`` requests so
  near-duplicate traffic starts from a good solution instead of cold.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import OrderedDict
from typing import Optional

import numpy as np

from ..errors import ServiceError
from ..graphs.csr import CSRGraph
from .models import JobResult, PartitionRequest, RefineRequest

__all__ = [
    "graph_digest",
    "request_key",
    "LRUBytesCache",
    "GraphStore",
    "ContentStore",
]


def graph_digest(graph: CSRGraph) -> str:
    """Stable content digest of a graph (hex).

    Hashes the canonical CSR arrays (edge list is deduplicated and
    sorted at construction, so any edge ordering of the same graph
    digests identically), the weights, and the coordinates when
    present — two graphs share a digest iff they are ``==``.
    """
    h = hashlib.blake2b(digest_size=16)
    h.update(str(graph.n_nodes).encode())
    for arr in (
        graph.edges_u,
        graph.edges_v,
        graph.edge_weights,
        graph.node_weights,
    ):
        h.update(np.ascontiguousarray(arr).tobytes())
    if graph.coords is not None:
        h.update(np.ascontiguousarray(graph.coords).tobytes())
    return h.hexdigest()


def request_key(request, digest: Optional[str] = None) -> str:
    """Cache key of a request: graph digest + every answer-affecting
    parameter.  ``digest`` skips re-hashing an already-interned graph."""
    d = digest if digest is not None else graph_digest(request.graph)
    if isinstance(request, PartitionRequest):
        ga = (
            ""
            if request.ga is None
            else json.dumps(request.ga, sort_keys=True)
        )
        return (
            f"partition:{d}:k={request.n_parts}:f={request.fitness_kind}"
            f":m={request.method}:s={request.seed}:w={int(request.warm_start)}"
            f":t={request.time_budget}:ga={ga}"
        )
    if isinstance(request, RefineRequest):
        a = hashlib.blake2b(
            np.ascontiguousarray(request.assignment, dtype=np.int64).tobytes(),
            digest_size=16,
        ).hexdigest()
        return (
            f"refine:{d}:k={request.n_parts}:f={request.fitness_kind}"
            f":p={request.passes}:a={a}"
        )
    raise ServiceError(
        f"cannot build a cache key for {type(request).__name__}"
    )


class LRUBytesCache:
    """Thread-safe LRU keyed by string, bounded by a byte budget.

    Values are opaque; the caller supplies each entry's size.  An entry
    larger than the whole budget is simply not stored (never an error —
    caching is an optimization, not a contract).
    """

    def __init__(self, max_bytes: int) -> None:
        if max_bytes < 0:
            raise ServiceError(f"max_bytes must be >= 0, got {max_bytes}")
        self.max_bytes = int(max_bytes)
        self.current_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, tuple[object, int]]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str):
        """The cached value, or ``None`` (which is never a valid value)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry[0]

    def put(self, key: str, value, n_bytes: int) -> None:
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self.current_bytes -= old[1]
            if n_bytes > self.max_bytes:
                return
            self._entries[key] = (value, int(n_bytes))
            self.current_bytes += int(n_bytes)
            while self.current_bytes > self.max_bytes and self._entries:
                _, (_, size) = self._entries.popitem(last=False)
                self.current_bytes -= size
                self.evictions += 1

    def stats(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._entries),
                "bytes": self.current_bytes,
                "max_bytes": self.max_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }


def _graph_nbytes(graph: CSRGraph) -> int:
    total = (
        graph.edges_u.nbytes
        + graph.edges_v.nbytes
        + graph.edge_weights.nbytes
        + graph.node_weights.nbytes
        + graph.indptr.nbytes
        + graph.indices.nbytes
        + graph.adj_weights.nbytes
        + graph.adj_edge_ids.nbytes
    )
    if graph.coords is not None:
        total += graph.coords.nbytes
    return total


class GraphStore:
    """Interns graphs by content digest and keeps warm seed partitions."""

    def __init__(self, max_bytes: int, max_seeds: int = 256) -> None:
        self._graphs = LRUBytesCache(max_bytes)
        self._lock = threading.Lock()
        self._seeds_lock = threading.Lock()
        self._seeds: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self.max_seeds = int(max_seeds)
        self.interned = 0  # requests answered with an already-built CSR

    def intern(self, graph: CSRGraph) -> tuple[str, CSRGraph]:
        """``(digest, canonical_graph)`` — the returned graph is the
        store's resident instance when one exists, so its lazily-built
        strength table and unit-weight flags are shared by every request
        that names the same content."""
        digest = graph_digest(graph)
        resident = self._graphs.get(digest)
        if resident is not None:
            with self._lock:
                self.interned += 1
            return digest, resident
        graph.node_strengths()  # pre-warm: shared by every hot path
        graph.has_unit_edge_weights()
        self._graphs.put(digest, graph, _graph_nbytes(graph))
        return digest, graph

    # -- warm seed partitions ------------------------------------------
    @staticmethod
    def _seed_key(digest: str, n_parts: int, fitness_kind: str) -> str:
        return f"{digest}:k={n_parts}:f={fitness_kind}"

    def warm_seed(
        self, digest: str, n_parts: int, fitness_kind: str
    ) -> Optional[np.ndarray]:
        key = self._seed_key(digest, n_parts, fitness_kind)
        with self._seeds_lock:
            entry = self._seeds.get(key)
            if entry is not None:
                self._seeds.move_to_end(key)
                return np.array(entry[0], copy=True)
            return None

    def seed_fitness(
        self, digest: str, n_parts: int, fitness_kind: str
    ) -> Optional[float]:
        """Fitness the stored warm seed had when it was stored — kept
        alongside the assignment so "is this result better than the
        seed?" is a float comparison, not a fresh O(edges) evaluation
        on the serving path."""
        key = self._seed_key(digest, n_parts, fitness_kind)
        with self._seeds_lock:
            entry = self._seeds.get(key)
            return None if entry is None else entry[1]

    def store_seed_if_better(
        self,
        digest: str,
        n_parts: int,
        fitness_kind: str,
        assignment: np.ndarray,
        fitness: float,
    ) -> bool:
        """Atomically keep the better of (stored seed, this one).

        Check and store happen under one lock acquisition, so two
        workers publishing results for the same (graph, k, fitness)
        concurrently can never let the worse seed win the race."""
        key = self._seed_key(digest, n_parts, fitness_kind)
        fitness = float(fitness)
        with self._seeds_lock:
            entry = self._seeds.get(key)
            if entry is not None and entry[1] >= fitness:
                return False
            self._seeds[key] = (
                np.array(assignment, dtype=np.int64, copy=True),
                fitness,
            )
            self._seeds.move_to_end(key)
            while len(self._seeds) > self.max_seeds:
                self._seeds.popitem(last=False)
            return True

    def stats(self) -> dict:
        stats = self._graphs.stats()
        stats["interned"] = self.interned
        with self._seeds_lock:
            stats["warm_seeds"] = len(self._seeds)
        return stats


def _result_nbytes(result: JobResult) -> int:
    return int(np.asarray(result.assignment).nbytes) + 256


class ContentStore:
    """The service's cache plane: results + interned graphs + warm seeds.

    ``cache_bytes`` is split between the result cache and the graph
    store (half each) — both are LRU, so hot traffic keeps what it
    uses.
    """

    def __init__(self, cache_bytes: int = 64 << 20, max_seeds: int = 256) -> None:
        if cache_bytes < 0:
            raise ServiceError(f"cache_bytes must be >= 0, got {cache_bytes}")
        self.results = LRUBytesCache(cache_bytes // 2)
        self.graphs = GraphStore(cache_bytes - cache_bytes // 2, max_seeds)

    def lookup_result(self, key: str) -> Optional[JobResult]:
        """A *copy* of the cached result (caller owns mutation flags)."""
        cached = self.results.get(key)
        if cached is None:
            return None
        return cached.replace(cache_hit=True)

    def store_result(self, key: str, result: JobResult) -> None:
        # store a neutral copy: hit/latency flags describe the serving
        # request, not the one that happened to populate the cache (and
        # trace spans belong to the request that recorded them)
        neutral = result.replace(
            cache_hit=False, coalesced=False, latency_s=0.0, spans=None
        )
        self.results.put(key, neutral, _result_nbytes(neutral))

    def stats(self) -> dict:
        return {
            "results": self.results.stats(),
            "graphs": self.graphs.stats(),
        }
