"""repro — Genetic Algorithms for Graph Partitioning and Incremental
Graph Partitioning.

A from-scratch reproduction of Maini, Mehrotra, Mohan & Ranka,
*Proc. IEEE Supercomputing 1994*: the KNUX/DKNUX knowledge-based
crossover operators, the distributed-population GA, both fitness
formulations (total and worst-case communication), incremental
partitioning, and the full baseline suite the paper compares against
(RSB, IBP, RCB, RGB, KL, greedy growth).

Quickstart::

    from repro import partition_graph
    from repro.graphs import mesh_graph

    graph = mesh_graph(200, seed=0)
    part = partition_graph(graph, n_parts=4, seed=0)
    print(part.cut_size, part.part_sizes)

See README.md for the architecture overview and DESIGN.md /
EXPERIMENTS.md for the reproduction inventory.
"""

from __future__ import annotations

from typing import Optional

from ._version import __version__
from .errors import (
    ConfigError,
    ConvergenceError,
    ExperimentError,
    GraphError,
    GraphFormatError,
    PartitionError,
    ReproError,
)
from .graphs.csr import CSRGraph
from .partition.partition import Partition
from .ga.config import GAConfig
from .ga.engine import GAEngine, GAResult
from .ga.fitness import Fitness1, Fitness2, make_fitness
from .ga.knux import KNUX
from .ga.dknux import DKNUX
from .ga.dpga import DPGA, DPGAConfig
from .rng import SeedLike

__all__ = [
    "__version__",
    "ReproError",
    "GraphError",
    "GraphFormatError",
    "PartitionError",
    "ConfigError",
    "ConvergenceError",
    "ExperimentError",
    "CSRGraph",
    "Partition",
    "GAConfig",
    "GAEngine",
    "GAResult",
    "Fitness1",
    "Fitness2",
    "make_fitness",
    "KNUX",
    "DKNUX",
    "DPGA",
    "DPGAConfig",
    "partition_graph",
    "refine_partition",
]


def partition_graph(
    graph: CSRGraph,
    n_parts: int,
    fitness_kind: str = "fitness1",
    config: Optional[GAConfig] = None,
    seed: SeedLike = None,
    seed_assignment=None,
) -> Partition:
    """One-call DKNUX partitioner — the library's front door.

    Runs the memetic DKNUX GA (hill-climbing on offspring) with a
    compact default budget.  ``seed_assignment`` optionally seeds the
    population with a heuristic solution (Section 3.5 of the paper);
    pass e.g. ``rsb_partition(graph, k).assignment``.
    """
    from .ga.population import seeded_population

    cfg = config or GAConfig(
        population_size=64,
        max_generations=100,
        patience=20,
        hill_climb="all",
        hill_climb_passes=2,
        mutation="boundary",
        mutation_rate=0.02,
    )
    fitness = make_fitness(fitness_kind, graph, n_parts)
    engine = GAEngine(graph, fitness, DKNUX(graph, n_parts), config=cfg, seed=seed)
    init_pop = None
    if seed_assignment is not None:
        init_pop = seeded_population(
            graph, n_parts, cfg.population_size, seed_assignment, seed=engine.rng
        )
    return engine.run(init_pop).best


def refine_partition(
    partition: Partition,
    fitness_kind: str = "fitness1",
    config: Optional[GAConfig] = None,
    seed: SeedLike = None,
) -> Partition:
    """Improve an existing partition with the DKNUX GA (paper §4.1).

    This is the "refinement of parts obtained by other methods" use
    case: the input partition seeds the population, and the best
    individual explored is returned (never worse than the input under
    the chosen fitness).
    """
    improved = partition_graph(
        partition.graph,
        partition.n_parts,
        fitness_kind=fitness_kind,
        config=config,
        seed=seed,
        seed_assignment=partition.assignment,
    )
    fitness = make_fitness(
        fitness_kind, partition.graph, partition.n_parts
    )
    if fitness.evaluate(improved.assignment) >= fitness.evaluate(
        partition.assignment
    ):
        return improved
    return partition
