"""Multilevel contraction (the paper's future-work scaling extension)."""

from .matching import heavy_edge_matching
from .coarsen import CoarseLevel, coarsen, coarsen_to
from .uncoarsen import uncoarsen
from .mlga import multilevel_ga_partition

__all__ = [
    "heavy_edge_matching",
    "CoarseLevel",
    "coarsen",
    "coarsen_to",
    "uncoarsen",
    "multilevel_ga_partition",
]
