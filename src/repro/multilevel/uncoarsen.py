"""Uncoarsening: project a coarse partition up and refine at each level."""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..ga.fitness import FitnessFunction, make_fitness
from ..ga.hillclimb import HillClimber
from ..partition.partition import Partition
from ..rng import SeedLike, as_generator
from .coarsen import CoarseLevel

__all__ = ["uncoarsen"]


def uncoarsen(
    levels: list[CoarseLevel],
    coarse_assignment: np.ndarray,
    n_parts: int,
    fitness_kind: str = "fitness1",
    alpha: float = 1.0,
    refine_passes: int = 3,
    seed: SeedLike = None,
) -> np.ndarray:
    """Walk the hierarchy from coarsest to finest, refining at each level.

    ``levels`` is the list returned by
    :func:`repro.multilevel.coarsen.coarsen_to` (fine→coarse order);
    ``coarse_assignment`` partitions ``levels[-1].coarse`` (or the
    original graph when ``levels`` is empty).  Refinement is the paper's
    boundary hill-climbing, whose single-node moves are exactly the
    right granularity after interpolation.
    """
    rng = as_generator(seed)
    assignment = np.asarray(coarse_assignment, dtype=np.int64)
    for level in reversed(levels):
        assignment = level.project_up(assignment)
        fitness = make_fitness(fitness_kind, level.fine, n_parts, alpha)
        climber = HillClimber(level.fine, fitness)
        assignment, _ = climber.improve(
            assignment, max_passes=refine_passes, rng=rng
        )
    return assignment
