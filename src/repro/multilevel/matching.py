"""Heavy-edge matching for graph coarsening.

The paper's conclusion prescribes "a prior graph contraction step" to
scale the GA to large graphs (citing Barnard–Simon's multilevel RSB).
Heavy-edge matching is the standard contraction rule: visit vertices in
random order and match each unmatched vertex with its unmatched neighbor
of maximum edge weight, so contracted edges carry as much weight as
possible out of the cut-relevant edge set.
"""

from __future__ import annotations

import numpy as np

from ..graphs.csr import CSRGraph
from ..rng import SeedLike, as_generator

__all__ = ["heavy_edge_matching"]


def heavy_edge_matching(graph: CSRGraph, seed: SeedLike = None) -> np.ndarray:
    """Match vertices pairwise along heavy edges.

    Returns ``match`` with ``match[i] = j`` if ``i`` and ``j`` are
    matched (``match[i] = i`` for unmatched vertices).  The relation is
    symmetric: ``match[match[i]] == i``.
    """
    rng = as_generator(seed)
    n = graph.n_nodes
    match = np.arange(n, dtype=np.int64)
    taken = np.zeros(n, dtype=bool)
    order = rng.permutation(n)
    for u in order:
        if taken[u]:
            continue
        nbrs = graph.neighbors(u)
        wts = graph.neighbor_weights(u)
        free = ~taken[nbrs]
        if not free.any():
            continue
        cand = nbrs[free]
        cw = wts[free]
        # heaviest edge; ties toward smaller node id for determinism
        best = cand[np.lexsort((cand, -cw))][0]
        match[u] = best
        match[best] = u
        taken[u] = taken[best] = True
    return match
