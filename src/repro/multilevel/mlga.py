"""Multilevel GA partitioner — the paper's proposed scaling path.

Section 5: "Applying a prior graph contraction step should precede the
partitioning of very large graphs using GA's."  This module implements
that pipeline: coarsen with heavy-edge matching until the graph is
GA-sized, run the DKNUX GA on the coarsest graph (where each gene now
represents a cluster of original vertices), then uncoarsen with
hill-climbing refinement at every level.

The default coarsest-level configuration climbs every offspring
(``hill_climb="all"``), which the engine executes with the vectorized
batch climber (:mod:`repro.ga.batch_climb`) — the memetic setting the
paper recommends is no longer the pipeline's bottleneck.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import ConfigError
from ..ga.config import GAConfig
from ..ga.dknux import DKNUX
from ..ga.engine import GAEngine
from ..ga.fitness import make_fitness
from ..graphs.csr import CSRGraph
from ..partition.partition import Partition
from ..rng import SeedLike, as_generator
from .coarsen import coarsen_to
from .uncoarsen import uncoarsen

__all__ = ["multilevel_ga_partition"]


def multilevel_ga_partition(
    graph: CSRGraph,
    n_parts: int,
    fitness_kind: str = "fitness1",
    alpha: float = 1.0,
    coarse_nodes: int = 200,
    config: Optional[GAConfig] = None,
    refine_passes: int = 3,
    seed: SeedLike = None,
) -> Partition:
    """Partition via coarsen → GA(DKNUX) → uncoarsen+refine.

    Parameters
    ----------
    graph:
        Graph to partition (any size; contraction handles scale).
    n_parts:
        Number of parts.
    coarse_nodes:
        Stop coarsening at this size — the GA's comfortable operating
        range, per the paper a few hundred nodes.
    config:
        GA settings for the coarsest-level run; the default is a compact
        memetic configuration.
    """
    if n_parts < 1:
        raise ConfigError(f"n_parts must be >= 1, got {n_parts}")
    if coarse_nodes < max(2 * n_parts, 8):
        raise ConfigError(
            f"coarse_nodes={coarse_nodes} too small for {n_parts} parts"
        )
    rng = as_generator(seed)
    levels = coarsen_to(graph, coarse_nodes, seed=rng)
    coarsest = levels[-1].coarse if levels else graph

    cfg = config or GAConfig(
        population_size=64,
        max_generations=80,
        hill_climb="all",
        hill_climb_passes=2,
        patience=15,
    )
    fitness = make_fitness(fitness_kind, coarsest, n_parts, alpha)
    engine = GAEngine(
        coarsest, fitness, DKNUX(coarsest, n_parts), config=cfg, seed=rng
    )
    result = engine.run()
    assignment = uncoarsen(
        levels,
        result.best.assignment,
        n_parts,
        fitness_kind=fitness_kind,
        alpha=alpha,
        refine_passes=refine_passes,
        seed=rng,
    )
    return Partition(graph, assignment, n_parts)
