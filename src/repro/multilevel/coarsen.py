"""Graph contraction from a matching.

Matched vertex pairs merge into one coarse vertex whose weight is the
pair's total; parallel edges between coarse vertices merge by summing
weights (edges internal to a pair vanish).  A :class:`CoarseLevel`
records the fine→coarse projection so partitions can be interpolated
back during uncoarsening.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graphs.csr import CSRGraph
from ..rng import SeedLike, as_generator
from .matching import heavy_edge_matching

__all__ = ["CoarseLevel", "coarsen", "coarsen_to"]


@dataclass(frozen=True)
class CoarseLevel:
    """One level of a coarsening hierarchy.

    ``fine_to_coarse[i]`` is the coarse vertex containing fine vertex
    ``i``; ``fine`` and ``coarse`` are the two graphs.
    """

    fine: CSRGraph
    coarse: CSRGraph
    fine_to_coarse: np.ndarray

    def project_up(self, coarse_assignment: np.ndarray) -> np.ndarray:
        """Interpolate a coarse assignment onto the fine graph."""
        return np.asarray(coarse_assignment)[self.fine_to_coarse]


def coarsen(graph: CSRGraph, seed: SeedLike = None) -> CoarseLevel:
    """One heavy-edge-matching contraction of ``graph``."""
    match = heavy_edge_matching(graph, seed=seed)
    n = graph.n_nodes
    fine_to_coarse = np.full(n, -1, dtype=np.int64)
    nxt = 0
    for u in range(n):
        if fine_to_coarse[u] != -1:
            continue
        v = match[u]
        fine_to_coarse[u] = nxt
        fine_to_coarse[v] = nxt  # v == u for unmatched vertices
        nxt += 1
    n_coarse = nxt
    cw = np.zeros(n_coarse)
    np.add.at(cw, fine_to_coarse, graph.node_weights)
    cu = fine_to_coarse[graph.edges_u]
    cv = fine_to_coarse[graph.edges_v]
    keep = cu != cv  # intra-pair edges disappear
    coarse = CSRGraph(
        n_coarse, cu[keep], cv[keep], graph.edge_weights[keep], cw,
        coords=None
        if graph.coords is None
        else _coarse_coords(graph, fine_to_coarse, n_coarse),
    )
    return CoarseLevel(fine=graph, coarse=coarse, fine_to_coarse=fine_to_coarse)


def _coarse_coords(
    graph: CSRGraph, fine_to_coarse: np.ndarray, n_coarse: int
) -> np.ndarray:
    """Weight-averaged coordinates of merged vertices."""
    d = graph.coords.shape[1]
    acc = np.zeros((n_coarse, d))
    wsum = np.zeros(n_coarse)
    np.add.at(acc, fine_to_coarse, graph.coords * graph.node_weights[:, None])
    np.add.at(wsum, fine_to_coarse, graph.node_weights)
    wsum = np.where(wsum > 0, wsum, 1.0)
    return acc / wsum[:, None]


def coarsen_to(
    graph: CSRGraph,
    target_nodes: int,
    seed: SeedLike = None,
    max_levels: int = 30,
) -> list[CoarseLevel]:
    """Coarsen repeatedly until at most ``target_nodes`` vertices remain.

    Stops early when a level shrinks by less than 10% (matching has
    saturated — typical for graphs with many isolated vertices).
    Returns the hierarchy fine→coarse, possibly empty if ``graph`` is
    already small enough.
    """
    rng = as_generator(seed)
    levels: list[CoarseLevel] = []
    current = graph
    for _ in range(max_levels):
        if current.n_nodes <= target_nodes:
            break
        level = coarsen(current, seed=rng)
        if level.coarse.n_nodes > 0.9 * current.n_nodes:
            break
        levels.append(level)
        current = level.coarse
    return levels
