"""Fiduccia–Mattheyses-style k-way refinement.

A single-node-move counterpart to KL: each pass tentatively moves every
boundary node once (highest gain first, negative gains allowed, balance
constraint enforced), then rolls back to the best prefix.  Negative-gain
exploration is what lets FM escape local optima that pure hill-climbing
(:class:`repro.ga.hillclimb.HillClimber`) cannot.

Gains are with respect to total cut weight; the balance constraint keeps
every part's load within ``max_ratio`` of the ideal.
"""

from __future__ import annotations

import numpy as np

from ..errors import PartitionError
from ..graphs.csr import CSRGraph
from ..partition.metrics import cut_size, part_loads
from ..partition.partition import Partition

__all__ = ["fm_refine"]


def fm_refine(
    partition: Partition,
    max_passes: int = 5,
    max_ratio: float = 1.1,
) -> Partition:
    """Refine a k-way partition with FM-style pass/rollback moves."""
    if max_ratio < 1.0:
        raise PartitionError(f"max_ratio must be >= 1.0, got {max_ratio}")
    graph = partition.graph
    k = partition.n_parts
    a = partition.assignment.copy()
    avg = graph.total_node_weight() / k
    cap = avg * max_ratio

    for _ in range(max_passes):
        loads = part_loads(graph, a, k)
        locked = np.zeros(graph.n_nodes, dtype=bool)
        work = a.copy()
        gains: list[float] = []
        moves: list[tuple[int, int, int]] = []  # (node, from, to)
        for _ in range(graph.n_nodes):
            best = None  # (gain, node, dest)
            # examine current boundary nodes only
            cut_mask = work[graph.edges_u] != work[graph.edges_v]
            frontier = np.unique(
                np.concatenate(
                    [graph.edges_u[cut_mask], graph.edges_v[cut_mask]]
                )
            )
            frontier = frontier[~locked[frontier]]
            if frontier.size == 0:
                break
            for node in frontier:
                s = work[node]
                nbrs = graph.neighbors(node)
                wts = graph.neighbor_weights(node)
                w_into = np.zeros(k)
                np.add.at(w_into, work[nbrs], wts)
                w_node = graph.node_weights[node]
                for d in np.flatnonzero(w_into > 0):
                    if d == s or loads[d] + w_node > cap:
                        continue
                    gain = float(w_into[d] - w_into[s])
                    if best is None or gain > best[0]:
                        best = (gain, int(node), int(d))
            if best is None:
                break
            gain, node, dest = best
            src = int(work[node])
            gains.append(gain)
            moves.append((node, src, dest))
            work[node] = dest
            loads[src] -= graph.node_weights[node]
            loads[dest] += graph.node_weights[node]
            locked[node] = True
            # stop a pass early once it is clearly unproductive
            if len(gains) >= 2 * int(np.sqrt(graph.n_nodes)) + 8 and sum(
                gains[-8:]
            ) < 0:
                break
        if not gains:
            break
        prefix = np.cumsum(gains)
        best_idx = int(np.argmax(prefix))
        if prefix[best_idx] <= 1e-12:
            break
        for node, _src, dest in moves[: best_idx + 1]:
            a[node] = dest
    return Partition(graph, a, k)
