"""Random balanced partitioning — the floor any heuristic must beat."""

from __future__ import annotations

from ..errors import PartitionError
from ..graphs.csr import CSRGraph
from ..partition.balance import random_balanced_assignment
from ..partition.partition import Partition
from ..rng import SeedLike

__all__ = ["random_partition"]


def random_partition(
    graph: CSRGraph, n_parts: int, seed: SeedLike = None
) -> Partition:
    """Uniformly random assignment with part sizes within one node."""
    if n_parts > graph.n_nodes and graph.n_nodes > 0:
        raise PartitionError(
            f"cannot split {graph.n_nodes} nodes into {n_parts} non-empty parts"
        )
    return Partition(
        graph,
        random_balanced_assignment(graph.n_nodes, n_parts, seed=seed),
        n_parts,
    )
