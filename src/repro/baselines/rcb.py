"""Recursive Coordinate Bisection (RCB).

One of the classical geometric heuristics the paper's introduction
cites: recursively split the vertex set at the weighted median of its
coordinates along the currently longest axis.  Purely geometric — the
edge structure is ignored — so it is fast but cut-blind; a useful
contrast baseline for the experiment ablations.
"""

from __future__ import annotations

import numpy as np

from ..errors import GraphError, PartitionError
from ..graphs.csr import CSRGraph
from ..partition.partition import Partition
from .rsb import split_by_scores

__all__ = ["rcb_partition"]


def _recurse(
    coords: np.ndarray,
    weights: np.ndarray,
    nodes: np.ndarray,
    k: int,
    labels: np.ndarray,
    next_label: int,
) -> int:
    if k == 1 or nodes.size <= 1:
        labels[nodes] = next_label
        return next_label + 1
    pts = coords[nodes]
    spans = pts.max(axis=0) - pts.min(axis=0)
    axis = int(np.argmax(spans))
    k_left = k // 2
    frac = k_left / k
    mask = split_by_scores(pts[:, axis], weights[nodes], frac)
    left, right = nodes[mask], nodes[~mask]
    if left.size == 0 or right.size == 0:
        half = max(nodes.size * k_left // k, 1)
        left, right = nodes[:half], nodes[half:]
    next_label = _recurse(coords, weights, left, k_left, labels, next_label)
    return _recurse(coords, weights, right, k - k_left, labels, next_label)


def rcb_partition(graph: CSRGraph, n_parts: int) -> Partition:
    """Partition a coordinate-carrying graph by recursive coordinate
    bisection along the longest axis."""
    if graph.coords is None:
        raise GraphError("RCB requires vertex coordinates")
    if n_parts < 1:
        raise PartitionError(f"n_parts must be >= 1, got {n_parts}")
    if n_parts > graph.n_nodes:
        raise PartitionError(
            f"cannot split {graph.n_nodes} nodes into {n_parts} parts"
        )
    labels = np.full(graph.n_nodes, -1, dtype=np.int64)
    _recurse(
        graph.coords,
        graph.node_weights,
        np.arange(graph.n_nodes),
        n_parts,
        labels,
        0,
    )
    return Partition(graph, labels, n_parts)
