"""Recursive Spectral Bisection (RSB) — the paper's main comparator.

Following Pothen–Simon–Liou and Simon's unstructured-mesh work (the
paper's refs [11, 12]): compute the Fiedler vector of the (sub)graph,
split the vertices at the weighted median of their Fiedler coordinates,
and recurse on each half until the requested number of parts is
reached.  Non-power-of-two ``k`` is handled by splitting into
``floor(k/2)`` and ``ceil(k/2)`` shares with node-weight targets in the
same proportion.

:func:`rsb_partition` accepts an optional ``deadline`` (a
``time.perf_counter()`` timestamp), checked before each bisection's
eigensolve — the expensive unit of RSB work.  A binding deadline makes
the remaining levels fall back to cheap deterministic index splits, so
a time-budgeted caller (the racing portfolio) can cancel RSB mid-run
and still receive a valid ``k``-way partition; a non-binding deadline
leaves results bit-identical.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from ..errors import PartitionError
from ..graphs.csr import CSRGraph
from ..graphs.ops import subgraph
from ..partition.partition import Partition
from .spectral import fiedler_vector

__all__ = ["rsb_partition", "split_by_scores"]


def split_by_scores(
    scores: np.ndarray, node_weights: np.ndarray, left_fraction: float
) -> np.ndarray:
    """Boolean mask: True for nodes in the "left" side of a bisection.

    Nodes are ordered by score and the prefix whose cumulative node
    weight best matches ``left_fraction`` of the total goes left.  Ties
    in score are broken by node id, making the split deterministic.
    """
    if not 0.0 < left_fraction < 1.0:
        raise PartitionError(
            f"left_fraction must be in (0, 1), got {left_fraction}"
        )
    n = scores.shape[0]
    order = np.lexsort((np.arange(n), scores))
    cumw = np.cumsum(node_weights[order])
    total = cumw[-1]
    target = left_fraction * total
    # Choose the prefix length whose cumulative weight is closest to the
    # target, with at least one node on each side.
    sizes = np.arange(1, n)  # candidate prefix lengths 1..n-1
    err = np.abs(cumw[:-1] - target)
    take = int(sizes[np.argmin(err)])
    mask = np.zeros(n, dtype=bool)
    mask[order[:take]] = True
    return mask


def _recurse(
    graph: CSRGraph,
    nodes: np.ndarray,
    k: int,
    labels: np.ndarray,
    next_label: int,
    method: str,
    seed: Optional[int],
    deadline: Optional[float] = None,
) -> int:
    """Assign labels ``next_label .. next_label+k-1`` to ``nodes``."""
    if k == 1 or nodes.size <= 1:
        labels[nodes] = next_label
        return next_label + 1
    k_left = k // 2
    k_right = k - k_left
    if deadline is not None and time.perf_counter() >= deadline:
        # budget exhausted: skip the eigensolve, split by node order —
        # valid parts now beat a better cut delivered too late
        half = max(nodes.size * k_left // k, 1)
        left, right = nodes[:half], nodes[half:]
        next_label = _recurse(
            graph, left, k_left, labels, next_label, method, seed, deadline
        )
        return _recurse(
            graph, right, k_right, labels, next_label, method, seed, deadline
        )
    sub, mapping = subgraph(graph, nodes)
    frac = k_left / k
    if sub.n_nodes == 2:
        mask = np.array([True, False])
    else:
        vec = fiedler_vector(sub, method=method, seed=seed)
        mask = split_by_scores(vec, sub.node_weights, frac)
    left = mapping[mask]
    right = mapping[~mask]
    if left.size == 0 or right.size == 0:  # degenerate split: force a cut
        half = max(nodes.size * k_left // k, 1)
        left, right = nodes[:half], nodes[half:]
    next_label = _recurse(
        graph, left, k_left, labels, next_label, method, seed, deadline
    )
    return _recurse(
        graph, right, k_right, labels, next_label, method, seed, deadline
    )


def rsb_partition(
    graph: CSRGraph,
    n_parts: int,
    method: str = "auto",
    seed: Optional[int] = None,
    deadline: Optional[float] = None,
) -> Partition:
    """Partition ``graph`` into ``n_parts`` by recursive spectral bisection.

    Parameters
    ----------
    graph:
        Graph to partition (need not be connected; disconnected pieces
        split by component indicator).
    n_parts:
        Number of parts ``k >= 1``.
    method:
        Eigensolver selection passed to :func:`fiedler_vector`
        (``"auto"``, ``"dense"``, ``"sparse"``).
    seed:
        Seed for the sparse eigensolver's start vector (the dense path
        is fully deterministic).
    deadline:
        Optional ``time.perf_counter()`` timestamp; once passed, the
        remaining bisections use cheap index splits instead of
        eigensolves (see the module docstring).
    """
    if n_parts < 1:
        raise PartitionError(f"n_parts must be >= 1, got {n_parts}")
    if graph.n_nodes == 0:
        return Partition(graph, np.zeros(0, dtype=np.int64), n_parts)
    if n_parts > graph.n_nodes:
        raise PartitionError(
            f"cannot split {graph.n_nodes} nodes into {n_parts} non-empty parts"
        )
    labels = np.full(graph.n_nodes, -1, dtype=np.int64)
    _recurse(
        graph, np.arange(graph.n_nodes), n_parts, labels, 0, method, seed,
        deadline,
    )
    return Partition(graph, labels, n_parts)
