"""Kernighan–Lin bisection refinement.

The classical mincut-based method family the paper's introduction cites.
This is the textbook KL: repeated passes that greedily swap the
highest-gain pair of nodes across the cut (allowing temporarily negative
gains), then roll back to the best prefix of the swap sequence.  Works
on 2-way partitions; :func:`kl_refine` improves an existing bisection
and :func:`recursive_kl_partition` builds a ``k``-way partition by
recursive bisection with KL at every level.

Both entry points accept an optional ``deadline`` (a
``time.perf_counter()`` timestamp): the refinement loop checks it per
sweep and per candidate pair, so a binding time budget — the racing
portfolio's, for instance — cancels the run mid-flight while still
returning a *valid* partition (refinement simply stops early).  A
deadline that never binds changes nothing: results are bit-identical
to running without one.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from ..errors import PartitionError
from ..graphs.csr import CSRGraph
from ..graphs.ops import subgraph
from ..partition.partition import Partition
from ..rng import SeedLike, as_generator

__all__ = ["kl_refine", "recursive_kl_partition"]


def _d_values(graph: CSRGraph, side: np.ndarray) -> np.ndarray:
    """KL D-value per node: external minus internal incident weight."""
    d = np.zeros(graph.n_nodes)
    same = side[graph.edges_u] == side[graph.edges_v]
    w = graph.edge_weights
    np.add.at(d, graph.edges_u, np.where(same, -w, w))
    np.add.at(d, graph.edges_v, np.where(same, -w, w))
    return d


def _edge_weight_between(graph: CSRGraph, a: int, b: int) -> float:
    nbrs = graph.neighbors(a)
    w = graph.neighbor_weights(a)
    hit = nbrs == b
    return float(w[hit].sum())


def kl_refine(
    graph: CSRGraph,
    side: np.ndarray,
    max_passes: int = 10,
    deadline: Optional[float] = None,
) -> np.ndarray:
    """One KL optimization of a boolean bisection vector.

    ``side`` is a boolean array (False = part 0).  Returns an improved
    boolean vector with exactly the same part sizes (KL swaps preserve
    balance by construction).  A ``deadline`` that has passed stops
    refinement: completed passes keep their improvements, a pass cut
    mid-sequence is discarded whole (its swaps were provisional until
    the best-prefix rollback, which never ran).
    """
    side = np.asarray(side, dtype=bool).copy()
    if side.shape != (graph.n_nodes,):
        raise PartitionError("side vector length mismatch")
    n = graph.n_nodes
    for _ in range(max_passes):
        if deadline is not None and time.perf_counter() >= deadline:
            break
        d = _d_values(graph, side)
        locked = np.zeros(n, dtype=bool)
        gains: list[float] = []
        swaps: list[tuple[int, int]] = []
        work_side = side.copy()
        n_pairs = min(int(side.sum()), int((~side).sum()))
        for _ in range(n_pairs):
            if deadline is not None and time.perf_counter() >= deadline:
                return side  # mid-pass cut: drop the provisional swaps
            cand_a = np.flatnonzero(~locked & ~work_side)
            cand_b = np.flatnonzero(~locked & work_side)
            if cand_a.size == 0 or cand_b.size == 0:
                break
            # best candidate from each side by D value (top few to keep
            # the pair search cheap but near-exact)
            top_a = cand_a[np.argsort(-d[cand_a])[: min(8, cand_a.size)]]
            top_b = cand_b[np.argsort(-d[cand_b])[: min(8, cand_b.size)]]
            best_gain = -np.inf
            best_pair: Optional[tuple[int, int]] = None
            for a in top_a:
                for b in top_b:
                    g = d[a] + d[b] - 2.0 * _edge_weight_between(graph, int(a), int(b))
                    if g > best_gain:
                        best_gain = g
                        best_pair = (int(a), int(b))
            if best_pair is None:
                break
            a, b = best_pair
            gains.append(best_gain)
            swaps.append(best_pair)
            locked[a] = locked[b] = True
            work_side[a], work_side[b] = work_side[b], work_side[a]
            # update D-values of unlocked neighbors
            for node, entered_side in ((a, True), (b, False)):
                nbrs = graph.neighbors(node)
                w = graph.neighbor_weights(node)
                for j, wj in zip(nbrs, w):
                    if locked[j]:
                        continue
                    # j's connection to `node` flipped between internal
                    # and external
                    if work_side[j] == work_side[node]:
                        d[j] -= 2.0 * wj
                    else:
                        d[j] += 2.0 * wj
        if not gains:
            break
        prefix = np.cumsum(gains)
        best_k = int(np.argmax(prefix))
        if prefix[best_k] <= 1e-12:
            break
        for a, b in swaps[: best_k + 1]:
            side[a], side[b] = side[b], side[a]
    return side


def _bisect(
    graph: CSRGraph,
    nodes: np.ndarray,
    k_left: int,
    k: int,
    rng,
    deadline: Optional[float] = None,
) -> tuple[np.ndarray, np.ndarray]:
    sub, mapping = subgraph(graph, nodes)
    n = sub.n_nodes
    target_left = n * k_left // k
    side = np.zeros(n, dtype=bool)
    # the random split always draws, deadline or not: the RNG stream
    # must not depend on timing (only refinement effort does)
    side[rng.choice(n, size=n - target_left, replace=False)] = True
    side = kl_refine(sub, side, deadline=deadline)
    return mapping[~side], mapping[side]


def recursive_kl_partition(
    graph: CSRGraph,
    n_parts: int,
    seed: SeedLike = None,
    deadline: Optional[float] = None,
) -> Partition:
    """``k``-way partition by recursive bisection with KL refinement.

    Each bisection starts from a random balanced split (KL is a
    refinement method, not a constructor), so different seeds explore
    different local optima.  ``deadline`` is checked per sweep inside
    every bisection's KL refinement: once binding, the remaining levels
    fall back to the unrefined random balanced splits, so the call
    returns a valid ``k``-way partition promptly instead of overshooting
    its time budget.
    """
    if n_parts < 1:
        raise PartitionError(f"n_parts must be >= 1, got {n_parts}")
    if n_parts > graph.n_nodes:
        raise PartitionError(
            f"cannot split {graph.n_nodes} nodes into {n_parts} parts"
        )
    rng = as_generator(seed)
    labels = np.full(graph.n_nodes, -1, dtype=np.int64)

    def recurse(nodes: np.ndarray, k: int, next_label: int) -> int:
        if k == 1 or nodes.size <= 1:
            labels[nodes] = next_label
            return next_label + 1
        k_left = k // 2
        left, right = _bisect(graph, nodes, k_left, k, rng, deadline=deadline)
        if left.size == 0 or right.size == 0:
            half = max(nodes.size * k_left // k, 1)
            left, right = nodes[:half], nodes[half:]
        nl = recurse(left, k_left, next_label)
        return recurse(right, k - k_left, nl)

    recurse(np.arange(graph.n_nodes), n_parts, 0)
    return Partition(graph, labels, n_parts)
