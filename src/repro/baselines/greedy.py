"""Greedy graph-growing partitioner.

A clustering-style heuristic from the family the paper's introduction
cites: grow each part by BFS from a fresh peripheral seed until its
node-weight budget is filled, then start the next part from the nearest
unassigned node.  Fast, structure-aware, and a useful mid-quality
baseline between random and RSB.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..errors import PartitionError
from ..graphs.csr import CSRGraph
from ..partition.partition import Partition
from ..rng import SeedLike, as_generator

__all__ = ["greedy_partition"]


def greedy_partition(
    graph: CSRGraph, n_parts: int, seed: SeedLike = None
) -> Partition:
    """Grow ``n_parts`` parts by weight-bounded breadth-first expansion.

    Each part prefers frontier nodes with the most already-assigned
    neighbors in the part (a greedy cut heuristic), breaking ties by
    insertion order.
    """
    if n_parts < 1:
        raise PartitionError(f"n_parts must be >= 1, got {n_parts}")
    n = graph.n_nodes
    if n_parts > n:
        raise PartitionError(f"cannot split {n} nodes into {n_parts} parts")
    rng = as_generator(seed)
    labels = np.full(n, -1, dtype=np.int64)
    total = graph.total_node_weight()
    target = total / n_parts

    counter = 0
    for q in range(n_parts):
        remaining = np.flatnonzero(labels == -1)
        if remaining.size == 0:
            break
        budget = target
        # seed: random unassigned node (last part takes everything left)
        start = int(rng.choice(remaining))
        # max-heap on (#neighbors already in part q), FIFO tie-break
        heap: list[tuple[float, int, int]] = [(0.0, counter, start)]
        counter += 1
        in_heap = {start}
        while heap and (budget > 0 or q == n_parts - 1):
            neg_gain, _, node = heapq.heappop(heap)
            if labels[node] != -1:
                continue
            labels[node] = q
            budget -= graph.node_weights[node]
            for nbr in graph.neighbors(node):
                if labels[nbr] == -1 and nbr not in in_heap:
                    gain = float(
                        graph.neighbor_weights(nbr)[
                            labels[graph.neighbors(nbr)] == q
                        ].sum()
                    )
                    heapq.heappush(heap, (-gain, counter, int(nbr)))
                    counter += 1
                    in_heap.add(int(nbr))
            if budget <= 0 and q < n_parts - 1:
                break
    # any stragglers (disconnected leftovers) go to the lightest parts
    leftover = np.flatnonzero(labels == -1)
    if leftover.size:
        loads = np.zeros(n_parts)
        assigned = labels >= 0
        np.add.at(loads, labels[assigned], graph.node_weights[assigned])
        for node in leftover:
            q = int(np.argmin(loads))
            labels[node] = q
            loads[q] += graph.node_weights[node]
    return Partition(graph, labels, n_parts)
