"""Recursive Graph Bisection (RGB).

The combinatorial sibling of RCB from the paper's introduction: order
the vertices by breadth-first level from a pseudo-peripheral node and
cut the ordering at the weighted median.  Uses only the graph structure,
so it works for coordinate-free graphs.
"""

from __future__ import annotations

import numpy as np

from ..errors import PartitionError
from ..graphs.csr import CSRGraph
from ..graphs.ops import bfs_distances, peripheral_node, subgraph
from ..partition.partition import Partition
from .rsb import split_by_scores

__all__ = ["rgb_partition"]


def _recurse(
    graph: CSRGraph,
    nodes: np.ndarray,
    k: int,
    labels: np.ndarray,
    next_label: int,
) -> int:
    if k == 1 or nodes.size <= 1:
        labels[nodes] = next_label
        return next_label + 1
    sub, mapping = subgraph(graph, nodes)
    start = peripheral_node(sub, 0)
    dist = bfs_distances(sub, start).astype(np.float64)
    # unreachable nodes (other components) sort last
    dist[dist < 0] = dist.max() + 1 if (dist >= 0).any() else 0.0
    k_left = k // 2
    mask = split_by_scores(dist, sub.node_weights, k_left / k)
    left, right = mapping[mask], mapping[~mask]
    if left.size == 0 or right.size == 0:
        half = max(nodes.size * k_left // k, 1)
        left, right = nodes[:half], nodes[half:]
    next_label = _recurse(graph, left, k_left, labels, next_label)
    return _recurse(graph, right, k - k_left, labels, next_label)


def rgb_partition(graph: CSRGraph, n_parts: int) -> Partition:
    """Partition by recursive BFS-level (graph distance) bisection."""
    if n_parts < 1:
        raise PartitionError(f"n_parts must be >= 1, got {n_parts}")
    if graph.n_nodes == 0:
        return Partition(graph, np.zeros(0, dtype=np.int64), n_parts)
    if n_parts > graph.n_nodes:
        raise PartitionError(
            f"cannot split {graph.n_nodes} nodes into {n_parts} parts"
        )
    labels = np.full(graph.n_nodes, -1, dtype=np.int64)
    _recurse(graph, np.arange(graph.n_nodes), n_parts, labels, 0)
    return Partition(graph, labels, n_parts)
