"""Baseline partitioners: RSB, IBP, RCB, RGB, KL, FM, greedy, random."""

from .spectral import fiedler_value, fiedler_vector
from .rsb import rsb_partition, split_by_scores
from .ibp import ibp_partition, quantize_coords, split_sorted
from .rcb import rcb_partition
from .rgb import rgb_partition
from .kl import kl_refine, recursive_kl_partition
from .fm import fm_refine
from .greedy import greedy_partition
from .random_part import random_partition

__all__ = [
    "fiedler_value",
    "fiedler_vector",
    "rsb_partition",
    "split_by_scores",
    "ibp_partition",
    "quantize_coords",
    "split_sorted",
    "rcb_partition",
    "rgb_partition",
    "kl_refine",
    "recursive_kl_partition",
    "fm_refine",
    "greedy_partition",
    "random_partition",
]
