"""Fiedler-vector computation for spectral bisection.

Recursive spectral bisection (Pothen–Simon–Liou, the paper's primary
comparator) splits a graph by the signs/ranks of the eigenvector of the
graph Laplacian belonging to the second-smallest eigenvalue (the
*Fiedler vector*).  At the paper's scale (hundreds of nodes) a dense
symmetric eigensolve is both faster and far more robust than iterative
sparse methods, so that is the default; ``method="sparse"`` switches to
ARPACK/LOBPCG for larger graphs.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import ConvergenceError, GraphError
from ..graphs.csr import CSRGraph
from ..graphs.ops import laplacian

__all__ = ["fiedler_vector", "fiedler_value"]

#: graphs up to this size always use the dense path under method="auto"
_DENSE_CUTOFF = 1024


def _dense_fiedler(graph: CSRGraph) -> tuple[float, np.ndarray]:
    import scipy.linalg

    lap = laplacian(graph, dense=True)
    # Only the two smallest eigenpairs are needed.
    vals, vecs = scipy.linalg.eigh(lap, subset_by_index=[0, 1])
    return float(vals[1]), vecs[:, 1]


def _sparse_fiedler(graph: CSRGraph, seed: Optional[int]) -> tuple[float, np.ndarray]:
    import scipy.sparse as sp
    import scipy.sparse.linalg as spla

    lap = laplacian(graph)
    n = graph.n_nodes
    rng = np.random.default_rng(seed)
    try:
        # shift-invert around 0 finds the smallest eigenvalues quickly
        vals, vecs = spla.eigsh(
            lap.astype(np.float64),
            k=2,
            sigma=-1e-8,
            which="LM",
            v0=rng.standard_normal(n),
        )
    except (RuntimeError, ValueError):  # ArpackError is a RuntimeError
        try:
            vals, vecs = spla.eigsh(
                lap.astype(np.float64), k=2, which="SM",
                v0=rng.standard_normal(n), maxiter=5000,
            )
        except Exception as exc:  # pragma: no cover - rare ARPACK failure
            raise ConvergenceError(f"sparse Fiedler solve failed: {exc}") from exc
    order = np.argsort(vals)
    return float(vals[order[1]]), vecs[:, order[1]]


def fiedler_vector(
    graph: CSRGraph, method: str = "auto", seed: Optional[int] = None
) -> np.ndarray:
    """Fiedler vector (second Laplacian eigenvector) of a graph.

    For a disconnected graph the algebraic connectivity is 0 and the
    "Fiedler vector" degenerates to a component indicator — still a
    valid splitting vector for bisection, and that is what this returns
    (an explicit ±1 indicator separating one component from the rest),
    avoiding eigensolver ambiguity in the null space.
    """
    if graph.n_nodes < 2:
        raise GraphError("Fiedler vector needs at least 2 nodes")
    from ..graphs.ops import connected_components

    comp = connected_components(graph)
    if comp.max() > 0:
        vec = np.where(comp == 0, -1.0, 1.0)
        return vec
    if method not in ("auto", "dense", "sparse"):
        raise GraphError(f"unknown method {method!r}")
    use_dense = method == "dense" or (
        method == "auto" and graph.n_nodes <= _DENSE_CUTOFF
    )
    if use_dense:
        _, vec = _dense_fiedler(graph)
    else:
        _, vec = _sparse_fiedler(graph, seed)
    # Deterministic sign convention: first nonzero entry is positive.
    nz = np.flatnonzero(np.abs(vec) > 1e-12)
    if nz.size and vec[nz[0]] < 0:
        vec = -vec
    return vec


def fiedler_value(graph: CSRGraph, method: str = "auto") -> float:
    """Algebraic connectivity λ₂ (0 for disconnected graphs)."""
    if graph.n_nodes < 2:
        raise GraphError("Fiedler value needs at least 2 nodes")
    from ..graphs.ops import connected_components

    if connected_components(graph).max() > 0:
        return 0.0
    if method == "sparse" or (method == "auto" and graph.n_nodes > _DENSE_CUTOFF):
        val, _ = _sparse_fiedler(graph, None)
        return val
    val, _ = _dense_fiedler(graph)
    return val
